//! Every concrete numbered claim in the paper, as an executable test.
//!
//! These are the repository's ground truth: if a refactor breaks any of the
//! paper's worked numbers, figures or lemmas, this suite fails.

use rationality_authority::auctions::{
    exact_online_expected_gain, last_mover_advice, last_mover_gain, ParticipationGame,
};
use rationality_authority::congestion::{
    fig6_outcome, fig7_iteration, greedy_assign, greedy_satisfies_lemma2, opt_makespan_exact,
};
use rationality_authority::exact::{rat, Rational};
use rationality_authority::games::named::fig5_game;
use rationality_authority::games::{MixedProfile, MixedStrategy};
use rationality_authority::proofs::{
    honest_row_advice, verify_participation_certificate, verify_support_certificate,
    SupportCertificate,
};
use rationality_authority::solvers::{
    solve_participation_equilibrium, EquilibriumRoot, ParticipationParams,
};

/// §5: "For c/v = 3/8, n = 3, and p = 1/4, the firm's expected gain is
/// v(1 − (3/4)² − 2·(1/4)·(3/4)) = v/16."
#[test]
fn section5_worked_gain() {
    let v = Rational::from(8);
    let direct =
        &v * (Rational::one() - rat(3, 4).pow(2) - Rational::from(2) * rat(1, 4) * rat(3, 4));
    assert_eq!(direct, &v * &rat(1, 16));
    let game = ParticipationGame::paper_example();
    assert_eq!(game.expected_gain_at(&rat(1, 4)), direct);
}

/// §5, Eq. (4): the indifference condition reduces to
/// c = v(n−1)p(1−p)^{n−2}.
#[test]
fn section5_eq4_reduction() {
    for (n, v, c) in [(3u64, 8i64, 3i64), (4, 10, 2), (6, 7, 1)] {
        let params = ParticipationParams::new(n, 2, Rational::from(v), Rational::from(c)).unwrap();
        let game = ParticipationGame::new(params.clone());
        for num in 1..10i64 {
            let p = rat(num, 10);
            // Direct expectation difference == closed form of Eq. (4).
            let gap = game.symmetric_game().indifference_gap(&p);
            let closed = Rational::from(v)
                * Rational::from((n - 1) as i64)
                * &p
                * (Rational::one() - &p).pow((n - 2) as i32)
                - Rational::from(c);
            assert_eq!(gap, closed, "n={n} p={p}");
        }
    }
}

/// §5 online: "If the advice is p = 1, firm f will gain v − c = 5v/8 and if
/// p = 0 [with ≥ k prior entrants], firm f will gain v"; flipping loses.
#[test]
fn section5_online_gains() {
    let params = ParticipationParams::paper_example(); // v = 8 ⇒ 5v/8 = 5
    assert_eq!(last_mover_gain(&params, 1, true), rat(5, 1));
    assert_eq!(last_mover_gain(&params, 2, false), rat(8, 1));
    for prior in 0..3 {
        let a = last_mover_advice(&params, prior);
        assert!(
            last_mover_gain(&params, prior, a.participate)
                > last_mover_gain(&params, prior, !a.participate)
        );
    }
}

/// §5 online: "the expected gain of any firm after advice is at least
/// 1/3 · 5v/8 = 5v/24, still better than v/16 in the off-line case."
#[test]
fn section5_online_beats_bound_and_offline() {
    let params = ParticipationParams::paper_example();
    let online = exact_online_expected_gain(&params, &rat(1, 4));
    let v = &params.v;
    assert!(online >= v * &rat(5, 24), "at least 5v/24");
    assert!(online > v * &rat(1, 16), "better than offline v/16");
    assert_eq!(online, v * &rat(21, 64), "exact value");
}

/// Fig. 5 / Remark 2: with the row advice fixed, any column mix with
/// q_D ≤ 1/2 is an equilibrium with λ2 = 1 — and they are indistinguishable
/// to the row agent.
#[test]
fn fig5_remark2() {
    let game = fig5_game();
    let mut advices = Vec::new();
    for qd_num in 0..=4i64 {
        let qd = rat(qd_num, 8);
        let profile = MixedProfile {
            row: MixedStrategy::pure(2, 0),
            col: MixedStrategy::try_new(vec![Rational::one() - &qd, qd]).unwrap(),
        };
        assert!(game.is_nash(&profile));
        assert_eq!(game.equilibrium_values(&profile), (rat(1, 1), rat(1, 1)));
        advices.push(honest_row_advice(&game, &profile));
    }
    assert!(advices.windows(2).all(|w| w[0] == w[1]));
    // Beyond q_D = 1/2 the profile stops being an equilibrium.
    let beyond = MixedProfile {
        row: MixedStrategy::pure(2, 0),
        col: MixedStrategy::try_new(vec![rat(3, 8), rat(5, 8)]).unwrap(),
    };
    assert!(!game.is_nash(&beyond));
}

/// Lemma 1: the P1 certificate is O(n + m) bits and the verifier solves one
/// (k+1)×(k+1) system — asserted here as "bits equal n + m" plus acceptance.
#[test]
fn lemma1_bits() {
    let game = rationality_authority::games::GameGenerator::seeded(3).bimatrix(5, 7, -20..=20);
    let eq = rationality_authority::solvers::find_one_equilibrium(&game).unwrap();
    let cert = SupportCertificate {
        row_support: eq.row_support,
        col_support: eq.col_support,
    };
    assert_eq!(cert.encoded_bits(&game), 12);
    let verified = verify_support_certificate(&game, &cert).unwrap();
    assert_eq!(verified.transcript.total_bits(), 12);
}

/// Fig. 6: greedy delay 2k+3 vs hindsight 2k+2.
#[test]
fn fig6_numbers() {
    for k in 1..12u64 {
        let (experienced, hindsight) = fig6_outcome(k);
        assert_eq!(experienced, Rational::from((2 * k + 3) as i64));
        assert_eq!(hindsight, Rational::from((2 * k + 2) as i64));
    }
}

/// Lemma 2: greedy ≤ (2 − 1/m)·OPT, tight on the classic instance.
#[test]
fn lemma2_bound_and_tightness() {
    // Tight family: m(m−1) unit loads then one load of size m. OPT = m
    // (big load alone, units spread m per remaining link); greedy ends at
    // 2m − 1.
    for m in 2usize..6 {
        let mut loads = vec![1u64; m * (m - 1)];
        loads.push(m as u64);
        let opt = m as u64;
        if loads.len() <= 16 {
            assert_eq!(
                opt_makespan_exact(&loads, m),
                opt,
                "analytic OPT checked at m={m}"
            );
        }
        let greedy = greedy_assign(&loads, m).makespan();
        assert_eq!(
            greedy as u128 * m as u128,
            (2 * m as u128 - 1) * opt as u128,
            "tight at m={m}"
        );
    }
    // And the bound holds on arbitrary small instances (exact OPT).
    for seed in 0..30u64 {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = rng.random_range(1..12);
        let m = rng.random_range(1..5);
        let loads: Vec<u64> = (0..n).map(|_| rng.random_range(0..50)).collect();
        assert!(greedy_satisfies_lemma2(&loads, m), "seed {seed}");
    }
}

/// Fig. 7's qualitative claim at a reduced scale: "for sufficiently large
/// number of links, obeying the inventor's suggestion outperforms
/// greediness in the vast majority of iterations."
#[test]
fn fig7_shape_reduced() {
    use rand::SeedableRng;
    let mut inventor_wins = 0;
    let total = 60;
    for seed in 0..total {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (greedy, inventor) = fig7_iteration(400, (0, 1000), 60, &mut rng);
        if inventor < greedy {
            inventor_wins += 1;
        }
    }
    assert!(
        inventor_wins * 100 >= total * 85,
        "inventor won {inventor_wins}/{total} at m = 60"
    );
}

/// The participation solver and Eq. (5) verifier agree on the paper's
/// second root too (p = 3/4).
#[test]
fn both_symmetric_equilibria_verify() {
    let params = ParticipationParams::paper_example();
    let roots = solve_participation_equilibrium(&params, &rat(1, 1 << 26)).unwrap();
    assert_eq!(
        roots,
        vec![
            EquilibriumRoot::Exact(rat(1, 4)),
            EquilibriumRoot::Exact(rat(3, 4))
        ]
    );
    for root in roots {
        let cert = rationality_authority::proofs::ParticipationCertificate {
            params: params.clone(),
            root,
        };
        assert!(verify_participation_certificate(&cert, &rat(1, 1024)).is_ok());
    }
}
