//! The fault-injection scenario campaign: the unchanged Fig. 1 protocol
//! and Lemma 1 accounting exercised over [`SimNet`] — loss, latency,
//! reordering, scripted partitions and shard failure — next to the
//! byte-identity guarantee that a lossless `SimNet` engine is
//! indistinguishable from the canonical [`Bus`] engine.
//!
//! Every scenario is seeded and deterministic. The seed comes from
//! `RA_SCENARIO_SEED` (decimal) when set, so CI can pin it and a failing
//! run can be replayed locally; every assertion message carries the seed.

use std::sync::Arc;

use rationality_authority::authority::{
    Bus, CertCacheConfig, DecayingPnCounterMap, GameSpec, GossipPlane, InventorBehavior, Party,
    ReputationConfig, ReputationDecay, ReputationPolicy, ShardStats, ShardedAuthority, SimNet,
    Transport, TransportSite, VerifierBehavior, VersionVector, GOSSIP_HUB,
};
use rationality_authority::exact::rat;
use rationality_authority::games::named::{battle_of_the_sexes, prisoners_dilemma, stag_hunt};
use rationality_authority::solvers::ParticipationParams;

/// The campaign seed: `RA_SCENARIO_SEED` when set (CI pins it and echoes
/// it on failure), a fixed default otherwise.
fn scenario_seed() -> u64 {
    std::env::var("RA_SCENARIO_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xDEC0DE)
}

/// A panel with a persistent saboteur, so reputation evolves and panel
/// churn (exclusion) is reachable in every scenario.
fn saboteur_panel() -> [VerifierBehavior; 3] {
    [
        VerifierBehavior::Honest,
        VerifierBehavior::Honest,
        VerifierBehavior::AlwaysReject,
    ]
}

const SABOTEUR: Party = Party::Verifier(2);

fn specs() -> Vec<Arc<GameSpec>> {
    vec![
        Arc::new(GameSpec::Strategic(prisoners_dilemma().to_strategic())),
        Arc::new(GameSpec::Strategic(stag_hunt(3))),
        Arc::new(GameSpec::Bimatrix(battle_of_the_sexes())),
        Arc::new(GameSpec::Participation(ParticipationParams::paper_example())),
        Arc::new(GameSpec::ParallelLinks {
            current_loads: vec![rat(4, 1), rat(0, 1), rat(9, 2)],
            own_load: rat(7, 2),
            expected_future_load: rat(2, 1),
            expected_future_agents: 5,
        }),
    ]
}

fn batch_requests(n: u64) -> Vec<(u64, Arc<GameSpec>)> {
    let specs = specs();
    (0..n)
        .map(|agent| {
            (
                agent,
                Arc::clone(&specs[(agent % specs.len() as u64) as usize]),
            )
        })
        .collect()
}

/// Strips the execution-shape-dependent pool gauge so stats can be
/// compared across engines.
fn comparable(mut stats: ShardStats) -> ShardStats {
    stats.frame_pool_misses = 0;
    stats
}

fn gossip_config(every: usize) -> ReputationConfig {
    ReputationConfig {
        policy: ReputationPolicy::Gossip { every },
        ..ReputationConfig::default()
    }
}

/// Bytes the hub actually delivered to `shard` as pull frames — the
/// partition scenarios need delivered-only sums, which `bytes_between`
/// (accounted bytes, delivered or not) deliberately does not give.
fn delivered_pull_bytes(transport: &dyn Transport, shard: u64) -> usize {
    transport
        .delivery_log()
        .iter()
        .filter(|r| r.delivered && r.from == GOSSIP_HUB && r.to == Party::Shard(shard))
        .map(|r| r.bytes)
        .sum()
}

fn saboteur_scores(engine: &ShardedAuthority) -> Vec<i64> {
    (0..engine.shard_count())
        .map(|s| engine.with_shard(s, |a| a.reputation().score(SABOTEUR)))
        .collect()
}

// ---------------------------------------------------------------------------
// Byte identity: lossless SimNet engine == Bus engine, end to end.
// ---------------------------------------------------------------------------

/// The tentpole acceptance criterion: an engine whose every network —
/// four session buses and the gossip hub — is a lossless [`SimNet`] is
/// byte-identical to the default [`Bus`] engine across a full mixed
/// batch: same adoption decisions, same per-shard delivery logs, same
/// gossip-plane delivery log, same stats.
#[test]
fn lossless_simnet_engine_is_byte_identical_to_bus_engine() {
    let seed = scenario_seed();
    let requests = batch_requests(64);
    let over_bus = ShardedAuthority::with_transports(
        4,
        InventorBehavior::Honest,
        &saboteur_panel(),
        gossip_config(8),
        CertCacheConfig::default(),
        &|_| Arc::new(Bus::new()),
    );
    let over_sim = ShardedAuthority::with_transports(
        4,
        InventorBehavior::Honest,
        &saboteur_panel(),
        gossip_config(8),
        CertCacheConfig::default(),
        &|site| {
            let salt = match site {
                TransportSite::Shard(s) => s as u64,
                TransportSite::GossipHub => u64::MAX,
            };
            Arc::new(SimNet::lossless(seed ^ salt)) as Arc<dyn Transport>
        },
    );

    let bus_outcomes = over_bus.consult_batch(&requests);
    let sim_outcomes = over_sim.consult_batch(&requests);
    let decisions = |outcomes: &[rationality_authority::authority::SessionOutcome]| {
        outcomes.iter().map(|o| o.adopted).collect::<Vec<_>>()
    };
    assert_eq!(
        decisions(&bus_outcomes),
        decisions(&sim_outcomes),
        "adoption decisions diverged between Bus and lossless SimNet (seed {seed})"
    );
    assert_eq!(
        comparable(over_bus.shard_stats()),
        comparable(over_sim.shard_stats()),
        "engine stats diverged (seed {seed})"
    );
    for s in 0..4 {
        let bus_log = over_bus.with_shard(s, |a| a.bus().delivery_log());
        let sim_log = over_sim.with_shard(s, |a| a.bus().delivery_log());
        assert_eq!(
            bus_log, sim_log,
            "shard {s} session delivery logs diverged (seed {seed})"
        );
    }
    let bus_gossip = over_bus.gossip_bus().expect("gossip engine").delivery_log();
    let sim_gossip = over_sim.gossip_bus().expect("gossip engine").delivery_log();
    assert_eq!(
        bus_gossip, sim_gossip,
        "gossip-plane delivery logs diverged (seed {seed})"
    );
}

/// Batch == sequential determinism holds over SimNet exactly as it does
/// over the bus (the existing determinism suite's core property, replayed
/// at the trait boundary).
#[test]
fn batch_matches_sequential_over_simnet() {
    let seed = scenario_seed();
    let requests = batch_requests(48);
    let engine_factory = |salt: u64| {
        ShardedAuthority::with_transports(
            4,
            InventorBehavior::Honest,
            &saboteur_panel(),
            gossip_config(8),
            CertCacheConfig::default(),
            &|site| {
                let site_salt = match site {
                    TransportSite::Shard(s) => s as u64,
                    TransportSite::GossipHub => u64::MAX,
                };
                Arc::new(SimNet::lossless(seed ^ salt ^ site_salt)) as Arc<dyn Transport>
            },
        )
    };
    let batched = engine_factory(1);
    let sequential = engine_factory(2);
    let batch_outcomes = batched.consult_batch(&requests);
    let sequential_outcomes: Vec<_> = requests
        .iter()
        .map(|(agent, spec)| sequential.consult(*agent, spec.as_ref()))
        .collect();
    assert_eq!(
        batch_outcomes.iter().map(|o| o.adopted).collect::<Vec<_>>(),
        sequential_outcomes
            .iter()
            .map(|o| o.adopted)
            .collect::<Vec<_>>(),
        "batched and sequential runs diverged over SimNet (seed {seed})"
    );
    assert_eq!(
        comparable(batched.shard_stats()),
        comparable(sequential.shard_stats()),
        "stats diverged between batched and sequential SimNet runs (seed {seed})"
    );
}

// ---------------------------------------------------------------------------
// Partition / heal: gossip exclusion propagates by version-vector
// reconciliation, idle pulls stay free, and no full snapshot is re-shipped.
// ---------------------------------------------------------------------------

#[test]
fn gossip_exclusion_propagates_across_a_healed_partition() {
    let seed = scenario_seed();
    let hub_net = Arc::new(SimNet::lossless(seed));
    let hub_for_engine = Arc::clone(&hub_net);
    let engine = ShardedAuthority::with_transports(
        4,
        InventorBehavior::Honest,
        &saboteur_panel(),
        gossip_config(4),
        CertCacheConfig::default(),
        &move |site| match site {
            TransportSite::GossipHub => Arc::clone(&hub_for_engine) as Arc<dyn Transport>,
            TransportSite::Shard(_) => Arc::new(Bus::new()) as Arc<dyn Transport>,
        },
    );
    let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
    let hub = engine.gossip_bus().expect("gossip engine");

    // Phase A: healthy cluster, kept short enough that the saboteur is
    // still trusted everywhere (8 dissents against INITIAL_SCORE = 10).
    // Every shard converges on the same — still positive — score.
    for agent in 0..8u64 {
        engine.consult(agent, &spec);
    }
    engine.sync_reputation();
    let converged = saboteur_scores(&engine);
    assert!(
        converged.windows(2).all(|w| w[0] == w[1]),
        "healthy cluster must converge, got {converged:?} (seed {seed})"
    );
    assert!(
        engine.with_shard(0, |a| a.reputation().is_trusted(SABOTEUR)),
        "phase A must leave the saboteur trusted, got {converged:?} (seed {seed})"
    );
    assert!(
        delivered_pull_bytes(hub, 0) > 0,
        "phase A produced pull traffic (seed {seed})"
    );

    // Phase B: cut shard 0 off the hub. Consultations keep landing on the
    // other shards until the saboteur is excluded there; shard 0 sees
    // nothing of it.
    hub_net.split(&[Party::Shard(0)], &[GOSSIP_HUB]);
    let mut driven = 0u64;
    for agent in 8..2048u64 {
        if engine.shard_of(agent) != 0 {
            engine.consult(agent, &spec);
            driven += 1;
        }
        if driven >= 24 {
            break;
        }
    }
    engine.sync_reputation();
    let partitioned = saboteur_scores(&engine);
    assert!(
        !engine.with_shard(1, |a| a.reputation().is_trusted(SABOTEUR)),
        "connected shards exclude the saboteur, got {partitioned:?} (seed {seed})"
    );
    assert!(
        engine.with_shard(0, |a| a.reputation().is_trusted(SABOTEUR)),
        "partitioned shard 0 must still hold the stale panel (seed {seed})"
    );

    // During the partition, idle pulls to up-to-date connected shards stay
    // zero-byte, and nothing is delivered to shard 0 at all.
    let idle_before: Vec<usize> = (0..4).map(|s| delivered_pull_bytes(hub, s)).collect();
    engine.sync_reputation();
    let idle_after: Vec<usize> = (0..4).map(|s| delivered_pull_bytes(hub, s)).collect();
    assert_eq!(
        idle_before, idle_after,
        "idle pulls must ship zero bytes during the partition (seed {seed})"
    );

    // Phase C: heal. The next sync reconciles shard 0 through its stalled
    // version vector — it receives exactly the slots it missed, not the
    // full merged snapshot — and adopts the exclusion.
    hub_net.heal_partitions();
    let before_heal_pull = delivered_pull_bytes(hub, 0);
    engine.sync_reputation();
    let reconciliation = delivered_pull_bytes(hub, 0) - before_heal_pull;
    assert!(
        reconciliation > 0,
        "the healed shard must receive the missed deltas (seed {seed})"
    );
    let healed = saboteur_scores(&engine);
    assert!(
        healed.windows(2).all(|w| w[0] == w[1]),
        "exclusion must propagate to the healed shard, got {healed:?} (seed {seed})"
    );
    assert!(
        !engine.with_shard(0, |a| a.reputation().is_trusted(SABOTEUR)),
        "shard 0 must exclude the saboteur after reconciliation (seed {seed})"
    );
}

#[test]
fn shard_failure_and_rejoin_recovers_watermarks() {
    let seed = scenario_seed();
    let hub_net = Arc::new(SimNet::lossless(seed ^ 0xF417));
    let hub_for_engine = Arc::clone(&hub_net);
    let engine = ShardedAuthority::with_transports(
        4,
        InventorBehavior::Honest,
        &saboteur_panel(),
        gossip_config(4),
        CertCacheConfig::default(),
        &move |site| match site {
            TransportSite::GossipHub => Arc::clone(&hub_for_engine) as Arc<dyn Transport>,
            TransportSite::Shard(_) => Arc::new(Bus::new()) as Arc<dyn Transport>,
        },
    );
    let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
    let hub = engine.gossip_bus().expect("gossip engine");

    // Short healthy phase: every shard converges, saboteur still trusted.
    for agent in 0..8u64 {
        engine.consult(agent, &spec);
    }
    engine.sync_reputation();

    // "Fail" shard 2's gossip uplink in both directions: its publishes
    // are lost and its pulls never arrive — the watermark stalls. Traffic
    // is steered away from shard 2, so everything it should know about
    // the saboteur's slide to exclusion happens elsewhere.
    hub.drop_link(Party::Shard(2), GOSSIP_HUB);
    hub.drop_link(GOSSIP_HUB, Party::Shard(2));
    let mut driven = 0u64;
    for agent in 8..2048u64 {
        if engine.shard_of(agent) != 2 {
            engine.consult(agent, &spec);
            driven += 1;
        }
        if driven >= 24 {
            break;
        }
    }
    engine.sync_reputation();
    let during = saboteur_scores(&engine);
    assert_ne!(
        during[2], during[1],
        "the failed shard must fall behind while cut off (seed {seed})"
    );

    // Rejoin: heal the links and sync. The shard re-publishes its full
    // replica slice (publishes are idempotent joins) and its stalled
    // watermark pulls everything it missed.
    hub.heal();
    engine.sync_reputation();
    let after = saboteur_scores(&engine);
    assert!(
        after.windows(2).all(|w| w[0] == w[1]),
        "rejoin must restore convergence, got {after:?} (seed {seed})"
    );

    // Watermarks are fully recovered: one more sync is an idle sync, and
    // idle pulls ship zero bytes to every shard.
    let idle_before: Vec<usize> = (0..4).map(|s| delivered_pull_bytes(hub, s)).collect();
    engine.sync_reputation();
    let idle_after: Vec<usize> = (0..4).map(|s| delivered_pull_bytes(hub, s)).collect();
    assert_eq!(
        idle_before, idle_after,
        "recovered watermarks make the next sync free (seed {seed})"
    );
}

/// The precise half of the reconciliation guarantee, measured at the
/// plane level: after a heal, a stalled shard's pull ships exactly the
/// version-vector slots it missed — more than nothing, but strictly less
/// than the full-snapshot pull a fresh (empty-watermark) shard needs for
/// the same hub state.
#[test]
fn healed_partition_reconciliation_ships_only_unseen_slots() {
    let seed = scenario_seed();
    let net = Arc::new(SimNet::lossless(seed ^ 0x5107));
    let plane = GossipPlane::over_transport_with(
        ReputationDecay::None,
        Arc::clone(&net) as Arc<dyn Transport>,
    );

    let mut states: Vec<DecayingPnCounterMap> =
        (0..3).map(|_| DecayingPnCounterMap::new()).collect();
    let mut seens: Vec<VersionVector> = (0..3).map(|_| VersionVector::new()).collect();

    // Phase A: every shard records one observation, publishes its replica
    // slice, and pulls — the cluster converges and watermarks advance.
    for shard in 0..3u64 {
        let s = shard as usize;
        states[s].record(shard, Party::Verifier(shard), true);
        plane.publish_from(shard, states[s].replica_slice(shard));
    }
    for shard in 0..3u64 {
        let s = shard as usize;
        plane.pull_into(shard, &mut states[s], &mut seens[s]);
    }

    // Phase B: shard 2 loses the hub. Shards 0 and 1 keep recording
    // genuinely new slots (new verifiers) and publishing them.
    net.split(&[Party::Shard(2)], &[GOSSIP_HUB]);
    for round in 0..4u64 {
        for shard in 0..2u64 {
            let s = shard as usize;
            states[s].record(
                shard,
                Party::Verifier(10 + round * 2 + shard),
                round % 2 == 0,
            );
            plane.publish_from(shard, states[s].replica_slice(shard));
        }
    }
    // The partitioned shard's pull frame is accounted but dropped: no
    // delivered bytes, and — critically — the watermark stays put, so the
    // missed delta is still owed.
    let dropped_watermark = seens[2].clone();
    let before = delivered_pull_bytes(&*net, 2);
    plane.pull_into(2, &mut states[2], &mut seens[2]);
    assert_eq!(
        delivered_pull_bytes(&*net, 2),
        before,
        "a partitioned pull must deliver nothing (seed {seed})"
    );
    assert_eq!(
        seens[2], dropped_watermark,
        "a dropped pull frame must leave the watermark untouched (seed {seed})"
    );

    // Heal: the reconciliation pull ships only the slots shard 2 missed.
    net.heal_partitions();
    plane.pull_into(2, &mut states[2], &mut seens[2]);
    let reconciliation = delivered_pull_bytes(&*net, 2) - before;
    assert!(
        reconciliation > 0,
        "reconciliation must ship the missed slots (seed {seed})"
    );

    // A fresh shard with an empty watermark needs the full snapshot —
    // strictly more bytes than the incremental reconciliation.
    let mut fresh_state = DecayingPnCounterMap::new();
    let mut fresh_seen = VersionVector::new();
    plane.pull_into(9, &mut fresh_state, &mut fresh_seen);
    let full_snapshot = delivered_pull_bytes(&*net, 9);
    assert!(
        reconciliation < full_snapshot,
        "reconciliation ({reconciliation} B) must be strictly smaller than a \
         full-snapshot pull ({full_snapshot} B) (seed {seed})"
    );

    // The healed shard converged to exactly the fresh shard's view.
    for verifier in (0..3).chain(10..18).map(Party::Verifier) {
        assert_eq!(
            states[2].value(verifier),
            fresh_state.value(verifier),
            "healed and fresh shards must agree on {verifier:?} (seed {seed})"
        );
    }

    // And now that the watermark is recovered, the next pull is free.
    let after = delivered_pull_bytes(&*net, 2);
    plane.pull_into(2, &mut states[2], &mut seens[2]);
    assert_eq!(
        delivered_pull_bytes(&*net, 2),
        after,
        "an up-to-date pull after reconciliation must ship zero bytes (seed {seed})"
    );
}

// ---------------------------------------------------------------------------
// Replay-mode cache soundness when panel changes race message loss.
// ---------------------------------------------------------------------------

/// Under a lossy gossip plane, shards learn of the saboteur's exclusion
/// at different times. The Replay-mode cache must never let a stale
/// cached consultation resurrect an excluded verifier: once a shard's
/// panel has dropped the saboteur, no consultation served by that shard —
/// cached or fresh — may carry a saboteur verdict.
#[test]
fn replay_cache_stays_sound_when_panel_churn_races_loss() {
    let seed = scenario_seed();
    let engine = ShardedAuthority::with_transports(
        2,
        InventorBehavior::Honest,
        &saboteur_panel(),
        gossip_config(2),
        CertCacheConfig::replay(256),
        &|site| match site {
            TransportSite::GossipHub => {
                // 40% gossip loss: exclusion news reaches the shards
                // erratically, racing the cached entries' panel versions.
                let net = SimNet::lossless(seed ^ 0xCAFE);
                net.set_link(
                    GOSSIP_HUB,
                    Party::Shard(0),
                    rationality_authority::authority::LinkProfile::lossy(0.4),
                );
                net.set_link(
                    GOSSIP_HUB,
                    Party::Shard(1),
                    rationality_authority::authority::LinkProfile::lossy(0.4),
                );
                Arc::new(net) as Arc<dyn Transport>
            }
            TransportSite::Shard(_) => Arc::new(Bus::new()) as Arc<dyn Transport>,
        },
    );
    let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
    // A family of pairwise-distinct specs, so phase B's consultations all
    // miss the cache and run the full protocol — each one a fresh dissent
    // pushing the saboteur towards exclusion.
    let fresh_spec = |i: u64| GameSpec::ParallelLinks {
        current_loads: vec![rat((i % 5) as i64, 1), rat(((i / 5) % 7) as i64, 2)],
        own_load: rat((i % 3) as i64 + 1, 1),
        expected_future_load: rat(2, 1),
        expected_future_agents: 3 + (i % 4) as usize,
    };

    // Phase A: prime the cache with one spec while the panel is intact.
    // The cached entries remember the pre-exclusion panel version.
    for agent in 0..16u64 {
        assert!(
            engine.consult(agent, &spec).adopted,
            "honest advice adopted (seed {seed})"
        );
    }
    // Phase B: distinct specs force full protocol runs; the saboteur's
    // dissents accumulate while lossy gossip spreads the news erratically.
    for agent in 16..80u64 {
        engine.consult(agent, &fresh_spec(agent));
    }
    engine.sync_reputation();
    // Phase C: the primed spec again, now against a changed panel. Every
    // hit must be invalidated (`stale`) and re-run — no consultation on a
    // shard that has excluded the saboteur may carry its verdict.
    for agent in 80..112u64 {
        let shard = engine.shard_of(agent);
        let excluded_before = !engine.with_shard(shard, |a| a.reputation().is_trusted(SABOTEUR));
        let outcome = engine.consult(agent, &spec);
        if excluded_before {
            assert!(
                !outcome
                    .verdict_details
                    .iter()
                    .any(|(party, _, _)| *party == SABOTEUR),
                "agent {agent} on shard {shard} saw an excluded verifier's \
                 verdict (cached: {}) (seed {seed})",
                outcome.cached
            );
        }
        assert!(outcome.adopted, "honest advice adopted (seed {seed})");
    }

    let stats = engine.cache_stats();
    assert!(
        stats.hits > 0,
        "the campaign must actually exercise the cache (seed {seed}, {stats:?})"
    );
    assert!(
        stats.stale > 0,
        "panel churn must invalidate stale entries (seed {seed}, {stats:?})"
    );
    let hub = engine.gossip_bus().expect("gossip engine");
    assert!(
        hub.delivered_bytes() < hub.total_bytes(),
        "the lossy plane must actually drop gossip frames (seed {seed})"
    );
    assert!(
        !engine.with_shard(0, |a| a.reputation().is_trusted(SABOTEUR))
            || !engine.with_shard(1, |a| a.reputation().is_trusted(SABOTEUR)),
        "phase B's dissents must exclude the saboteur somewhere (seed {seed})"
    );
}

// ---------------------------------------------------------------------------
// Scripted schedules and seed determinism.
// ---------------------------------------------------------------------------

/// A scripted partition/heal schedule fires as the virtual clock crosses
/// its timestamps, without any manual split/heal calls.
#[test]
fn scripted_schedule_drives_partition_and_heal() {
    use rationality_authority::authority::{LinkProfile, NetEvent, SimNetConfig};
    let seed = scenario_seed();
    let a = Party::Agent(1);
    let b = Party::Agent(2);
    let net = SimNet::new(SimNetConfig {
        seed,
        default_link: LinkProfile::with_latency(10, 10),
        schedule: vec![
            NetEvent::Split {
                at: 50,
                left: vec![a],
                right: vec![b],
            },
            NetEvent::Heal { at: 100 },
        ],
        ..SimNetConfig::default()
    });
    net.register(a);
    let ep = net.register(b);
    let msg = |g| rationality_authority::authority::Message::AdviceRequest { game_id: g };

    net.send(a, b, msg(1)).unwrap();
    net.settle();
    assert_eq!(ep.drain().len(), 1, "pre-split delivery (seed {seed})");

    net.advance_to(60);
    net.send(a, b, msg(2)).unwrap();
    net.settle();
    assert!(
        ep.try_recv().is_none(),
        "the scripted split must cut the link (seed {seed})"
    );

    net.advance_to(120);
    net.send(a, b, msg(3)).unwrap();
    net.settle();
    assert_eq!(ep.drain().len(), 1, "post-heal delivery (seed {seed})");
    assert!(net.delivered_bytes() < net.total_bytes());
}

/// Replaying the lossy cache campaign with the same seed produces the
/// same gossip delivery log; a different seed produces a different one.
/// This is the property that makes `RA_SCENARIO_SEED` a replay handle.
#[test]
fn lossy_campaign_is_seed_deterministic() {
    let run = |seed: u64| {
        let engine = ShardedAuthority::with_transports(
            2,
            InventorBehavior::Honest,
            &saboteur_panel(),
            gossip_config(2),
            CertCacheConfig::default(),
            &|site| match site {
                TransportSite::GossipHub => {
                    let net = SimNet::new(rationality_authority::authority::SimNetConfig {
                        seed,
                        default_link: rationality_authority::authority::LinkProfile::lossy(0.3),
                        ..Default::default()
                    });
                    Arc::new(net) as Arc<dyn Transport>
                }
                TransportSite::Shard(_) => Arc::new(Bus::new()) as Arc<dyn Transport>,
            },
        );
        let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
        for agent in 0..48u64 {
            engine.consult(agent, &spec);
        }
        engine.sync_reputation();
        let hub = engine.gossip_bus().expect("gossip engine");
        (hub.delivery_log(), saboteur_scores(&engine))
    };
    let seed = scenario_seed();
    assert_eq!(
        run(seed),
        run(seed),
        "same seed must replay identically (seed {seed})"
    );
    assert_ne!(
        run(seed).0,
        run(seed ^ 1).0,
        "different seeds must sample different fates (seed {seed})"
    );
}

// ---------------------------------------------------------------------------
// Session resilience: quorum degradation and unresponsiveness churn.
// ---------------------------------------------------------------------------

/// A scripted partition cuts one verifier off mid-session; the resilient
/// consult retries until its budget is spent, closes degraded at quorum,
/// and — once the partition heals after the deadline — the next consult
/// closes full again on the same network.
#[test]
fn midsession_partition_degrades_then_heals_to_full() {
    use rationality_authority::authority::{
        Inventor, LinkProfile, LocalReputation, NetEvent, PanelOutcome, RationalityAuthority,
        ResilienceConfig, SimNetConfig, INITIAL_SCORE,
    };
    let seed = scenario_seed();
    let agent = Party::Agent(0);
    let cut = Party::Verifier(2);
    // Exact 2-tick links make the session's schedule predictable: the
    // advice stage completes around tick 4, so a split at tick 5 lands
    // squarely inside the panel stage — a genuinely mid-session cut.
    let net = Arc::new(SimNet::new(SimNetConfig {
        seed,
        default_link: LinkProfile::with_latency(2, 2),
        schedule: vec![NetEvent::Split {
            at: 5,
            left: vec![agent],
            right: vec![cut],
        }],
        ..SimNetConfig::default()
    }));
    let mut authority = RationalityAuthority::with_transport(
        Inventor::new(0, InventorBehavior::Honest),
        &[VerifierBehavior::Honest; 3],
        Arc::new(LocalReputation::new()),
        Arc::clone(&net) as Arc<dyn Transport>,
    );
    authority.set_resilience(Some(ResilienceConfig {
        deadline: 512,
        quorum: 2,
        max_attempts: 4,
        ..ResilienceConfig::default()
    }));
    let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
    let degraded = authority
        .try_consult(0, &spec)
        .unwrap_or_else(|e| panic!("quorum of 2 was reachable ({e}, seed {seed})"));
    assert!(degraded.adopted, "seed {seed}");
    assert_eq!(
        degraded.panel,
        PanelOutcome::Degraded { missing: vec![cut] },
        "seed {seed}"
    );
    assert!(
        degraded.attempts > 0,
        "the cut forced retries (seed {seed})"
    );
    assert!(
        authority.bus().retransmit_bytes() > 0,
        "retries billed as retransmit bytes (seed {seed})"
    );
    assert_eq!(
        authority.reputation().score(cut),
        INITIAL_SCORE - 1,
        "one unresponsive observation (seed {seed})"
    );
    // The partition outlived the session's whole deadline budget; heal it
    // and the very next consult closes full on the same transport.
    net.heal_partitions();
    let healed = authority
        .try_consult(0, &spec)
        .unwrap_or_else(|e| panic!("healed network completes ({e}, seed {seed})"));
    assert_eq!(healed.panel, PanelOutcome::Full, "seed {seed}");
    assert_eq!(healed.verdict_details.len(), 3, "seed {seed}");
    assert!(healed.adopted, "seed {seed}");
}

/// Persistent unresponsiveness is a trust event: a verifier that stops
/// answering is bled one point per degraded close until excluded, the
/// exclusion bumps the panel version, and the bump invalidates every
/// Replay-cache entry minted under the old panel.
#[test]
fn unresponsive_verifier_excluded_and_replay_cache_invalidated() {
    use rationality_authority::authority::{
        CertCache, Inventor, PanelOutcome, RationalityAuthority, ResilienceConfig,
    };
    let seed = scenario_seed();
    let primed = GameSpec::Strategic(prisoners_dilemma().to_strategic());
    let churn = GameSpec::Bimatrix(battle_of_the_sexes());
    let silent = Party::Verifier(2);
    let mut authority = RationalityAuthority::new(
        Inventor::new(0, InventorBehavior::Honest),
        &[VerifierBehavior::Honest; 3],
    );
    authority.set_cert_cache(Arc::new(CertCache::new(CertCacheConfig::replay(64))));
    authority.set_resilience(Some(ResilienceConfig {
        quorum: 2,
        max_attempts: 2,
        ..ResilienceConfig::default()
    }));
    // Prime under the full, healthy panel.
    let cold = authority.try_consult(0, &primed).expect("healthy panel");
    assert_eq!(cold.panel, PanelOutcome::Full, "seed {seed}");
    assert!(
        authority.try_consult(0, &primed).expect("warm").cached,
        "warm hit before the panel churns (seed {seed})"
    );
    // The verifier goes dark: every churn consult closes degraded and
    // costs it one point, until it crosses the exclusion threshold.
    authority.bus().drop_link(Party::Agent(0), silent);
    let version_before = authority.reputation().snapshot().panel_version();
    let mut rounds = 0;
    while authority.reputation().is_trusted(silent) {
        let outcome = authority
            .try_consult(0, &churn)
            .expect("quorum of 2 still met");
        assert!(
            matches!(outcome.panel, PanelOutcome::Degraded { .. }) || outcome.cached,
            "seed {seed}"
        );
        rounds += 1;
        assert!(
            rounds < 64,
            "exclusion within the trust budget (seed {seed})"
        );
    }
    assert!(
        authority.reputation().snapshot().panel_version() > version_before,
        "exclusion bumps the panel version (seed {seed})"
    );
    // The primed entry was minted under the old panel: the probe is a
    // stale miss, and the re-run closes full on the surviving panel.
    let probe = authority.try_consult(0, &primed).expect("live panel");
    assert!(!probe.cached, "stale entries are not served (seed {seed})");
    assert_eq!(probe.panel, PanelOutcome::Full, "seed {seed}");
    assert_eq!(probe.verdict_details.len(), 2, "seed {seed}");
    let stats = authority.cert_cache().expect("cache attached").stats();
    assert!(stats.stale >= 1, "panel-guard miss recorded (seed {seed})");
}
