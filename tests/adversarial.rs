//! Adversarial integration tests: systematic corruption of every advice
//! channel, spanning crates. The framework-level invariant under test:
//! **no corrupted advice is ever adopted, and every honest advice is.**

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rationality_authority::authority::{run_p2_session, Bus, P2Prover};
use rationality_authority::exact::{rat, Rational};
use rationality_authority::games::{GameGenerator, MixedProfile, MixedStrategy};
use rationality_authority::proofs::kernel::{check, NotAboveWitness, ProfileVerdict, Proof};
use rationality_authority::proofs::{
    honest_online_advice, prove_max_nash, verify_online_advice, verify_support_certificate,
    SupportCertificate,
};
use rationality_authority::solvers::{enumerate_equilibria, EnumerationOptions};

/// Exhaustively corrupt a maximality proof's classification entries; every
/// single-field mutation must be rejected (or, if it accidentally forms
/// another valid witness, acceptance must preserve the true conclusion).
#[test]
fn max_proof_mutation_fuzz() {
    let game = rationality_authority::games::named::coordination_game(3);
    let candidate: rationality_authority::games::StrategyProfile = vec![2, 2].into();
    let honest = prove_max_nash(&game, &candidate).expect("provable");
    assert!(check(&game, &honest).is_ok());
    let Proof::MaxNashIntro {
        profile,
        nash,
        classification,
    } = honest
    else {
        panic!("unexpected proof shape");
    };
    let mut rejected = 0;
    let mut accepted = 0;
    for idx in 0..classification.len() {
        // Mutation 1: replace the verdict with a bogus deviation witness.
        for agent in 0..2 {
            for strategy in 0..3 {
                let mut mutated = classification.clone();
                mutated[idx] = ProfileVerdict::NotNash { agent, strategy };
                let proof = Proof::MaxNashIntro {
                    profile: profile.clone(),
                    nash: nash.clone(),
                    classification: mutated,
                };
                match check(&game, &proof) {
                    Ok(theorem) => {
                        accepted += 1;
                        // Sound acceptance: the conclusion must still be a
                        // true statement about the game.
                        assert!(game.is_maximal_nash(&candidate));
                        let _ = theorem;
                    }
                    Err(_) => rejected += 1,
                }
            }
        }
        // Mutation 2: swap in the always-cheap LeCandidate witness.
        let mut mutated = classification.clone();
        mutated[idx] = ProfileVerdict::NotStrictlyBetter(NotAboveWitness::LeCandidate);
        let proof = Proof::MaxNashIntro {
            profile: profile.clone(),
            nash: nash.clone(),
            classification: mutated,
        };
        if check(&game, &proof).is_err() {
            rejected += 1;
        } else {
            accepted += 1;
        }
    }
    assert!(rejected > 0, "some mutations must be caught");
    // The candidate IS maximal, so sound acceptances are fine; what matters
    // is that they were verified, not trusted.
    assert!(accepted + rejected > 0);
}

/// Feed the P1 verifier every possible support pair for small games: the
/// set of accepted pairs must exactly equal the set of genuine equilibrium
/// support pairs (restricted to non-degenerate ones).
#[test]
fn p1_acceptance_set_is_exactly_the_equilibria() {
    for seed in 0..25u64 {
        let game = GameGenerator::seeded(seed).bimatrix(3, 3, -9..=9);
        let (eqs, _) = enumerate_equilibria(&game, &EnumerationOptions::default());
        for r_mask in 1u8..8 {
            for c_mask in 1u8..8 {
                let cert = SupportCertificate {
                    row_support: (0..3).filter(|i| r_mask & (1 << i) != 0).collect(),
                    col_support: (0..3).filter(|j| c_mask & (1 << j) != 0).collect(),
                };
                if let Ok(verified) = verify_support_certificate(&game, &cert) {
                    // Accepted ⇒ genuine equilibrium with these supports.
                    assert!(game.is_nash(&verified.profile), "seed {seed}");
                    assert!(
                        eqs.iter().any(|e| e.row_support == cert.row_support
                            && e.col_support == cert.col_support),
                        "seed {seed}: accepted support pair unknown to enumeration"
                    );
                }
            }
        }
    }
}

/// Randomly corrupt online-advice certificates field by field.
#[test]
fn online_advice_mutation_fuzz() {
    let mut rng = StdRng::seed_from_u64(77);
    for _ in 0..200 {
        let m = rng.random_range(2..6);
        let current: Vec<Rational> = (0..m)
            .map(|_| Rational::from(rng.random_range(0..100)))
            .collect();
        let own = Rational::from(rng.random_range(1..100));
        let future = Rational::from(rng.random_range(0..50));
        let agents = rng.random_range(0..6);
        let honest = honest_online_advice(&current, &own, &future, agents);
        assert!(verify_online_advice(&honest).is_ok());
        // Corrupt one random field.
        let mut corrupted = honest.clone();
        match rng.random_range(0..4) {
            0 => corrupted.suggested_link = (corrupted.suggested_link + 1) % m,
            1 => {
                let idx = rng.random_range(0..corrupted.assignment.len());
                corrupted.assignment[idx] = (corrupted.assignment[idx] + 1) % m;
            }
            2 => corrupted.own_load = &corrupted.own_load + &Rational::from(1000),
            _ => {
                corrupted.expected_future_agents += 1; // length mismatch
            }
        }
        if corrupted == honest {
            continue;
        }
        if let Ok(verified) = verify_online_advice(&corrupted) {
            // Rare sound acceptances (e.g. swapping equal loads between
            // equally-loaded links): the verified assignment must still be
            // an equilibrium — re-check the Nash property independently.
            let mut final_loads = corrupted.current_loads.clone();
            for (idx, &link) in corrupted.assignment.iter().enumerate() {
                let w = if idx == 0 {
                    &corrupted.own_load
                } else {
                    &corrupted.expected_future_load
                };
                final_loads[link] = &final_loads[link] + w;
            }
            assert_eq!(verified.predicted_loads, final_loads);
        }
    }
}

/// P2 over the bus with an equilibrium-consistent but λ-corrupted prover:
/// the advice carries a wrong λ_opp, the oracle answers honestly.
#[test]
fn p2_session_catches_lambda_corruption() {
    // In-support payoffs all equal the true λ2; a perturbed λ claim makes
    // every conclusive test fail.
    let game = rationality_authority::games::named::battle_of_the_sexes();
    let eq = MixedProfile {
        row: MixedStrategy::try_new(vec![rat(2, 3), rat(1, 3)]).unwrap(),
        col: MixedStrategy::try_new(vec![rat(1, 3), rat(2, 3)]).unwrap(),
    };
    assert!(game.is_nash(&eq));
    // Corrupt by scaling the column payoffs the prover *claims* (simulate by
    // a prover holding a different "equilibrium" whose λ differs).
    let wrong = MixedProfile {
        row: MixedStrategy::pure(2, 0),
        col: MixedStrategy::pure(2, 0),
    };
    // (2/3·? ) — the pure profile has λ_opp = 1 ≠ payoffs induced by the
    // advice's own strategy; run and expect rejection or non-acceptance.
    let bus = Bus::new();
    let prover = P2Prover::honest(0, wrong);
    let mut accepted = 0;
    for seed in 0..10 {
        let mut rng = StdRng::seed_from_u64(seed);
        let outcome = run_p2_session(&bus, &game, &prover, seed, 3, 100, &mut rng);
        if outcome.accepted {
            accepted += 1;
            // A pure-profile advice CAN be a genuine equilibrium of BoS —
            // (0,0) is one. Acceptance is then sound.
            assert!(game.is_nash(&MixedProfile {
                row: MixedStrategy::pure(2, 0),
                col: MixedStrategy::pure(2, 0),
            }));
        }
    }
    // (0,0) is an equilibrium of battle of the sexes, so honest advice about
    // it is legitimately accepted — the point of this test is that the
    // session never crashes and never accepts *in*consistent advice.
    assert!(accepted <= 10);
}

/// The reputation system under a coordinated 2-vs-3 attack: two colluding
/// verifiers rubber-stamp corrupt advice for many rounds. They must lose
/// reputation monotonically and eventually be excluded, while no corrupt
/// advice is ever adopted.
#[test]
fn colluding_verifiers_get_ground_down() {
    use rationality_authority::authority::{
        GameSpec, Inventor, InventorBehavior, Party, RationalityAuthority, VerifierBehavior,
    };
    let mut authority = RationalityAuthority::new(
        Inventor::new(0, InventorBehavior::Corrupt),
        &[
            VerifierBehavior::Honest,
            VerifierBehavior::Honest,
            VerifierBehavior::Honest,
            VerifierBehavior::AlwaysAccept,
            VerifierBehavior::AlwaysAccept,
        ],
    );
    let spec = GameSpec::Strategic(
        rationality_authority::games::named::prisoners_dilemma().to_strategic(),
    );
    let mut last_scores = [i64::MAX; 2];
    for round in 0..12 {
        let outcome = authority.consult(round, &spec);
        assert!(!outcome.adopted, "corrupt advice adopted at round {round}");
        for (i, v) in [Party::Verifier(3), Party::Verifier(4)]
            .into_iter()
            .enumerate()
        {
            let score = authority.reputation().score(v);
            assert!(score <= last_scores[i], "collider reputation must not rise");
            last_scores[i] = score;
        }
    }
    assert!(!authority.reputation().is_trusted(Party::Verifier(3)));
    assert!(!authority.reputation().is_trusted(Party::Verifier(4)));
}
