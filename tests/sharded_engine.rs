//! Integration tests for the sharded multi-bus session engine: routing,
//! batch/sequential determinism, and parity with the single-bus
//! `RationalityAuthority`.

use rationality_authority::authority::{
    GameSpec, InventorBehavior, SessionOutcome, ShardedAuthority, VerifierBehavior,
};
use rationality_authority::exact::rat;
use rationality_authority::games::named::{battle_of_the_sexes, prisoners_dilemma, stag_hunt};
use rationality_authority::solvers::ParticipationParams;

/// 64 consultations over every case-study family, agents 0..64.
fn batch_requests() -> Vec<(u64, GameSpec)> {
    let specs = [
        GameSpec::Strategic(prisoners_dilemma().to_strategic()),
        GameSpec::Strategic(stag_hunt(3)),
        GameSpec::Bimatrix(battle_of_the_sexes()),
        GameSpec::Participation(ParticipationParams::paper_example()),
        GameSpec::ParallelLinks {
            current_loads: vec![rat(4, 1), rat(0, 1), rat(9, 2)],
            own_load: rat(7, 2),
            expected_future_load: rat(2, 1),
            expected_future_agents: 5,
        },
    ];
    (0..64u64)
        .map(|agent| (agent, specs[(agent % specs.len() as u64) as usize].clone()))
        .collect()
}

fn adoption_decisions(outcomes: &[SessionOutcome]) -> Vec<bool> {
    outcomes.iter().map(|o| o.adopted).collect()
}

/// The acceptance-criteria determinism property: a 64-consultation batch
/// on 4 shards produces, per (agent, spec), the same adoption decisions as
/// sequential single-shard consultations — regardless of how the batch
/// workers interleave.
#[test]
fn batch_on_four_shards_matches_single_shard_sequential() {
    // A panel with a persistent saboteur, so reputation actually evolves
    // during the run and the comparison is not vacuous.
    let panel = [
        VerifierBehavior::Honest,
        VerifierBehavior::Honest,
        VerifierBehavior::AlwaysReject,
    ];
    let requests = batch_requests();

    let sharded = ShardedAuthority::new(4, InventorBehavior::Honest, &panel);
    let batch_outcomes = sharded.consult_batch(&requests);
    assert_eq!(batch_outcomes.len(), 64);

    let single = ShardedAuthority::new(1, InventorBehavior::Honest, &panel);
    let sequential_outcomes: Vec<SessionOutcome> = requests
        .iter()
        .map(|(agent, spec)| single.consult(*agent, spec))
        .collect();

    assert_eq!(
        adoption_decisions(&batch_outcomes),
        adoption_decisions(&sequential_outcomes),
        "sharding must not change any adoption decision"
    );
    // Honest majority everywhere: everything is adopted in both engines.
    assert!(batch_outcomes.iter().all(|o| o.adopted));
}

/// Repeating the batch on identically configured engines is bitwise
/// deterministic in decisions, votes, and byte accounting.
#[test]
fn batches_are_reproducible_across_engines() {
    let requests = batch_requests();
    let run = || {
        let engine =
            ShardedAuthority::new(4, InventorBehavior::Honest, &[VerifierBehavior::Honest; 3]);
        let outcomes = engine.consult_batch(&requests);
        let trace: Vec<(bool, usize, usize)> = outcomes
            .iter()
            .map(|o| (o.adopted, o.advice_bytes, o.session_bytes))
            .collect();
        (trace, engine.shard_bytes(), engine.message_count())
    };
    assert_eq!(run(), run());
}

/// Corrupt advice is rejected on every shard, exactly as on one bus.
#[test]
fn corrupt_inventor_rejected_across_shards() {
    let requests = batch_requests();
    let engine =
        ShardedAuthority::new(4, InventorBehavior::Corrupt, &[VerifierBehavior::Honest; 5]);
    for (outcome, (agent, _)) in engine.consult_batch(&requests).iter().zip(&requests) {
        assert!(!outcome.adopted, "agent {agent} adopted corrupt advice");
    }
}

/// Agents are pinned: per-shard reputation stores only ever see traffic
/// from their own agents, and routing is stable across engines.
#[test]
fn routing_is_deterministic_and_pinned() {
    let a = ShardedAuthority::new(8, InventorBehavior::Honest, &[VerifierBehavior::Honest]);
    let b = ShardedAuthority::new(8, InventorBehavior::Honest, &[VerifierBehavior::Honest]);
    for agent in 0..512u64 {
        assert_eq!(a.shard_of(agent), b.shard_of(agent));
    }
    let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
    a.consult(17, &spec);
    a.consult(17, &spec);
    let home = a.shard_of(17);
    let bytes = a.shard_bytes();
    for (shard, &shard_bytes) in bytes.iter().enumerate() {
        assert_eq!(shard != home, shard_bytes == 0);
    }
}
