//! Integration tests for the sharded multi-bus session engine: routing,
//! batch/sequential determinism, parity with the single-bus
//! `RationalityAuthority`, and cross-shard reputation gossip.

use std::sync::Arc;

use rationality_authority::authority::{
    GameSpec, InventorBehavior, Party, ReputationConfig, ReputationDecay, ReputationPolicy,
    SessionOutcome, ShardStats, ShardedAuthority, VerifierBehavior, VoteRule,
};
use rationality_authority::exact::rat;
use rationality_authority::games::named::{battle_of_the_sexes, prisoners_dilemma, stag_hunt};
use rationality_authority::solvers::ParticipationParams;

/// 64 consultations over every case-study family, agents 0..64.
fn batch_requests() -> Vec<(u64, Arc<GameSpec>)> {
    let specs = [
        GameSpec::Strategic(prisoners_dilemma().to_strategic()),
        GameSpec::Strategic(stag_hunt(3)),
        GameSpec::Bimatrix(battle_of_the_sexes()),
        GameSpec::Participation(ParticipationParams::paper_example()),
        GameSpec::ParallelLinks {
            current_loads: vec![rat(4, 1), rat(0, 1), rat(9, 2)],
            own_load: rat(7, 2),
            expected_future_load: rat(2, 1),
            expected_future_agents: 5,
        },
    ];
    let specs = specs.map(Arc::new);
    (0..64u64)
        .map(|agent| {
            (
                agent,
                Arc::clone(&specs[(agent % specs.len() as u64) as usize]),
            )
        })
        .collect()
}

/// Strips the execution-shape-dependent `frame_pool_misses` gauge (pool
/// workers warm their own thread-local scratch) so the shape-independent
/// byte counters can be compared between batched and sequential runs.
fn comparable(mut stats: ShardStats) -> ShardStats {
    stats.frame_pool_misses = 0;
    stats
}

fn adoption_decisions(outcomes: &[SessionOutcome]) -> Vec<bool> {
    outcomes.iter().map(|o| o.adopted).collect()
}

/// The acceptance-criteria determinism property: a 64-consultation batch
/// on 4 shards produces, per (agent, spec), the same adoption decisions as
/// sequential single-shard consultations — regardless of how the batch
/// workers interleave.
#[test]
fn batch_on_four_shards_matches_single_shard_sequential() {
    // A panel with a persistent saboteur, so reputation actually evolves
    // during the run and the comparison is not vacuous.
    let panel = [
        VerifierBehavior::Honest,
        VerifierBehavior::Honest,
        VerifierBehavior::AlwaysReject,
    ];
    let requests = batch_requests();

    let sharded = ShardedAuthority::new(4, InventorBehavior::Honest, &panel);
    let batch_outcomes = sharded.consult_batch(&requests);
    assert_eq!(batch_outcomes.len(), 64);

    let single = ShardedAuthority::new(1, InventorBehavior::Honest, &panel);
    let sequential_outcomes: Vec<SessionOutcome> = requests
        .iter()
        .map(|(agent, spec)| single.consult(*agent, spec.as_ref()))
        .collect();

    assert_eq!(
        adoption_decisions(&batch_outcomes),
        adoption_decisions(&sequential_outcomes),
        "sharding must not change any adoption decision"
    );
    // Honest majority everywhere: everything is adopted in both engines.
    assert!(batch_outcomes.iter().all(|o| o.adopted));
}

/// Repeating the batch on identically configured engines is bitwise
/// deterministic in decisions, votes, and byte accounting.
#[test]
fn batches_are_reproducible_across_engines() {
    let requests = batch_requests();
    let run = || {
        let engine =
            ShardedAuthority::new(4, InventorBehavior::Honest, &[VerifierBehavior::Honest; 3]);
        let outcomes = engine.consult_batch(&requests);
        let trace: Vec<(bool, usize, usize)> = outcomes
            .iter()
            .map(|o| (o.adopted, o.advice_bytes, o.session_bytes))
            .collect();
        (trace, engine.shard_bytes(), engine.message_count())
    };
    assert_eq!(run(), run());
}

/// Corrupt advice is rejected on every shard, exactly as on one bus.
#[test]
fn corrupt_inventor_rejected_across_shards() {
    let requests = batch_requests();
    let engine =
        ShardedAuthority::new(4, InventorBehavior::Corrupt, &[VerifierBehavior::Honest; 5]);
    for (outcome, (agent, _)) in engine.consult_batch(&requests).iter().zip(&requests) {
        assert!(!outcome.adopted, "agent {agent} adopted corrupt advice");
    }
}

/// The acceptance-criteria determinism property under gossip: the same
/// 64-consultation batch on the same 4 shards, now with
/// `ReputationPolicy::Gossip` and an epoch shorter than the batch (so
/// merges land mid-stream), still matches routed sequential consultations
/// outcome for outcome.
#[test]
fn gossip_batch_matches_sequential_on_four_shards() {
    let panel = [
        VerifierBehavior::Honest,
        VerifierBehavior::Honest,
        VerifierBehavior::AlwaysReject,
    ];
    let policy = ReputationPolicy::Gossip { every: 16 };
    let requests = batch_requests();

    let batched = ShardedAuthority::with_policy(4, InventorBehavior::Honest, &panel, policy);
    let batch_outcomes = batched.consult_batch(&requests);

    let sequential = ShardedAuthority::with_policy(4, InventorBehavior::Honest, &panel, policy);
    let sequential_outcomes: Vec<SessionOutcome> = requests
        .iter()
        .map(|(agent, spec)| sequential.consult(*agent, spec.as_ref()))
        .collect();

    assert_eq!(
        adoption_decisions(&batch_outcomes),
        adoption_decisions(&sequential_outcomes),
        "gossip must not break batch/sequential equality"
    );
    for (b, s) in batch_outcomes.iter().zip(&sequential_outcomes) {
        assert_eq!(b.majority, s.majority);
        assert_eq!(b.session_bytes, s.session_bytes);
    }
    assert_eq!(batched.shard_bytes(), sequential.shard_bytes());
}

/// The acceptance-criteria propagation property: a verifier that falls to
/// the exclusion threshold on ONE shard (all dissents observed there)
/// stops being consulted on EVERY shard within one gossip epoch.
#[test]
fn exclusion_propagates_to_all_shards_within_one_epoch() {
    let panel = [
        VerifierBehavior::Honest,
        VerifierBehavior::Honest,
        VerifierBehavior::AlwaysReject,
    ];
    let every = 8;
    let engine = ShardedAuthority::with_policy(
        4,
        InventorBehavior::Honest,
        &panel,
        ReputationPolicy::Gossip { every },
    );
    let saboteur = Party::Verifier(2);
    let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
    // Agents all pinned to one home shard, so every dissent lands there.
    let home = engine.shard_of(0);
    let pinned: Vec<u64> = (0..10_000u64)
        .filter(|&a| engine.shard_of(a) == home)
        .collect();
    let mut agents = pinned.iter().copied();

    // Drain the saboteur's score through home-shard consultations only,
    // until the observing shard itself excludes it.
    let mut consultations = 0usize;
    while engine.with_shard(home, |a| a.reputation().is_trusted(saboteur)) {
        engine.consult(agents.next().expect("enough pinned agents"), &spec);
        consultations += 1;
        assert!(
            consultations <= 32,
            "home shard never excluded the saboteur"
        );
    }
    // Within at most one more epoch of (still pinned) consultations, the
    // boundary sync spreads the exclusion engine-wide.
    for _ in 0..every {
        let excluded_everywhere = (0..engine.shard_count())
            .all(|s| engine.with_shard(s, |a| !a.reputation().is_trusted(saboteur)));
        if excluded_everywhere {
            break;
        }
        engine.consult(agents.next().expect("enough pinned agents"), &spec);
    }
    for s in 0..engine.shard_count() {
        assert!(
            engine.with_shard(s, |a| !a.reputation().is_trusted(saboteur)),
            "shard {s} still trusts the saboteur one epoch after exclusion"
        );
    }
    // A consultation routed to a *different* shard no longer involves the
    // saboteur: only the two honest panel members answer.
    let away_agent = (0..10_000u64)
        .find(|&a| engine.shard_of(a) != home)
        .expect("some agent routes elsewhere");
    let outcome = engine.consult(away_agent, &spec);
    assert!(outcome.adopted);
    assert_eq!(
        outcome.verdict_details.len(),
        2,
        "excluded verifier was still consulted on a foreign shard"
    );
}

/// Under `Isolated` the same scenario does NOT propagate: the deviant
/// keeps serving other shards — the gap the gossip plane closes.
#[test]
fn isolated_policy_keeps_exclusion_local() {
    let panel = [
        VerifierBehavior::Honest,
        VerifierBehavior::Honest,
        VerifierBehavior::AlwaysReject,
    ];
    let engine = ShardedAuthority::new(4, InventorBehavior::Honest, &panel);
    let saboteur = Party::Verifier(2);
    let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
    let home = engine.shard_of(0);
    let mut pinned = (0..10_000u64).filter(|&a| engine.shard_of(a) == home);
    let mut consultations = 0;
    while engine.with_shard(home, |a| a.reputation().is_trusted(saboteur)) {
        engine.consult(pinned.next().expect("enough pinned agents"), &spec);
        consultations += 1;
        assert!(
            consultations <= 32,
            "home shard never excluded the saboteur"
        );
    }
    for s in 0..engine.shard_count() {
        let trusted = engine.with_shard(s, |a| a.reputation().is_trusted(saboteur));
        assert_eq!(s != home, trusted, "isolated shards share no reputation");
    }
}

/// The acceptance-criteria determinism property for the full reputation
/// configuration space: stake-weighted votes, half-life decay and the
/// adaptive dissent-burst policy (separately and combined) all preserve
/// batch/sequential equality — outcomes, majorities, per-session bytes,
/// per-shard consultation bytes AND control-plane gossip bytes.
#[test]
fn weighted_decaying_adaptive_batches_match_sequential() {
    let panel = [
        VerifierBehavior::Honest,
        VerifierBehavior::Honest,
        VerifierBehavior::AlwaysReject,
    ];
    let configs = [
        ReputationConfig {
            policy: ReputationPolicy::Gossip { every: 16 },
            vote_rule: VoteRule::Weighted,
            decay: ReputationDecay::None,
        },
        ReputationConfig {
            policy: ReputationPolicy::Gossip { every: 8 },
            vote_rule: VoteRule::Simple,
            decay: ReputationDecay::HalfLife { retention: 3 },
        },
        ReputationConfig {
            policy: ReputationPolicy::Adaptive {
                every: 32,
                check_every: 4,
                burst: 2,
            },
            vote_rule: VoteRule::Weighted,
            decay: ReputationDecay::HalfLife { retention: 4 },
        },
    ];
    let requests = batch_requests();
    for config in configs {
        let batched = ShardedAuthority::with_config(4, InventorBehavior::Honest, &panel, config);
        let batch_outcomes = batched.consult_batch(&requests);
        let sequential = ShardedAuthority::with_config(4, InventorBehavior::Honest, &panel, config);
        let sequential_outcomes: Vec<SessionOutcome> = requests
            .iter()
            .map(|(agent, spec)| sequential.consult(*agent, spec.as_ref()))
            .collect();
        assert_eq!(
            adoption_decisions(&batch_outcomes),
            adoption_decisions(&sequential_outcomes),
            "{config:?}: batching changed an adoption decision"
        );
        for (b, s) in batch_outcomes.iter().zip(&sequential_outcomes) {
            assert_eq!(b.majority, s.majority, "{config:?}");
            assert_eq!(b.session_bytes, s.session_bytes, "{config:?}");
        }
        assert_eq!(
            comparable(batched.shard_stats()),
            comparable(sequential.shard_stats()),
            "{config:?}: execution shape leaked into byte accounting"
        );
    }
}

/// The acceptance-criteria accounting property: under a gossip policy the
/// epoch merges are real framed sends on a dedicated inter-shard bus, so
/// `shard_stats()` reports non-zero control-plane bytes; under `Isolated`
/// there is no gossip bus and the figure is exactly zero.
#[test]
fn gossip_merge_traffic_is_byte_accounted() {
    let requests = batch_requests();
    for policy in [
        ReputationPolicy::Gossip { every: 16 },
        ReputationPolicy::Adaptive {
            every: 16,
            check_every: 4,
            burst: 2,
        },
    ] {
        let engine = ShardedAuthority::with_policy(
            4,
            InventorBehavior::Honest,
            &[VerifierBehavior::Honest; 3],
            policy,
        );
        engine.consult_batch(&requests);
        let stats = engine.shard_stats();
        assert!(
            stats.gossip_bytes > 0,
            "{policy:?}: merges left no trace in the accounting"
        );
        assert!(stats.gossip_messages > 0);
        let bus = engine.gossip_bus().expect("gossip engine exposes its bus");
        assert_eq!(stats.gossip_bytes, bus.delivered_bytes());
        // Control-plane frames stay small relative to consultations: the
        // whole point of Lemma 1 is that coordination is cheap.
        assert!(stats.gossip_bytes < stats.total_bytes);
    }
    let isolated =
        ShardedAuthority::new(4, InventorBehavior::Honest, &[VerifierBehavior::Honest; 3]);
    isolated.consult_batch(&requests);
    let stats = isolated.shard_stats();
    assert_eq!(stats.gossip_bytes, 0, "isolated engines gossip nothing");
    assert_eq!(stats.gossip_messages, 0);
    assert!(isolated.gossip_bus().is_none());
}

/// Agents are pinned: per-shard reputation stores only ever see traffic
/// from their own agents, and routing is stable across engines.
#[test]
fn routing_is_deterministic_and_pinned() {
    let a = ShardedAuthority::new(8, InventorBehavior::Honest, &[VerifierBehavior::Honest]);
    let b = ShardedAuthority::new(8, InventorBehavior::Honest, &[VerifierBehavior::Honest]);
    for agent in 0..512u64 {
        assert_eq!(a.shard_of(agent), b.shard_of(agent));
    }
    let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
    a.consult(17, &spec);
    a.consult(17, &spec);
    let home = a.shard_of(17);
    let bytes = a.shard_bytes();
    for (shard, &shard_bytes) in bytes.iter().enumerate() {
        assert_eq!(shard != home, shard_bytes == 0);
    }
}
