//! Cross-crate integration tests: full consultation flows, determinism,
//! wire-level replay, and the separation-of-concerns guarantees.

use rationality_authority::authority::{
    Advice, GameSpec, Inventor, InventorBehavior, Message, Party, RationalityAuthority,
    VerifierBehavior, Wire,
};
use rationality_authority::exact::rat;
use rationality_authority::games::named::{battle_of_the_sexes, prisoners_dilemma, stag_hunt};
use rationality_authority::games::GameGenerator;
use rationality_authority::proofs::kernel::check;
use rationality_authority::proofs::{prove_max_nash, PureNashCertificate};
use rationality_authority::solvers::ParticipationParams;

fn all_specs() -> Vec<GameSpec> {
    vec![
        GameSpec::Strategic(prisoners_dilemma().to_strategic()),
        GameSpec::Strategic(stag_hunt(3)),
        GameSpec::Bimatrix(battle_of_the_sexes()),
        GameSpec::Participation(ParticipationParams::paper_example()),
        GameSpec::ParallelLinks {
            current_loads: vec![rat(4, 1), rat(0, 1), rat(9, 2)],
            own_load: rat(7, 2),
            expected_future_load: rat(2, 1),
            expected_future_agents: 5,
        },
    ]
}

#[test]
fn honest_flow_all_case_studies() {
    for spec in all_specs() {
        let mut authority = RationalityAuthority::new(
            Inventor::new(0, InventorBehavior::Honest),
            &[VerifierBehavior::Honest; 5],
        );
        let outcome = authority.consult(0, &spec);
        assert!(outcome.adopted, "{spec:?}");
        assert_eq!(outcome.majority.unwrap().accept_votes, 5);
    }
}

#[test]
fn corrupt_flow_all_case_studies() {
    for spec in all_specs() {
        let mut authority = RationalityAuthority::new(
            Inventor::new(0, InventorBehavior::Corrupt),
            &[VerifierBehavior::Honest; 5],
        );
        let outcome = authority.consult(0, &spec);
        assert!(!outcome.adopted, "{spec:?}");
    }
}

/// Determinism: identical sessions produce identical byte traffic.
#[test]
fn sessions_are_deterministic() {
    let run = || {
        let mut authority = RationalityAuthority::new(
            Inventor::new(0, InventorBehavior::Honest),
            &[VerifierBehavior::Honest; 3],
        );
        let mut bytes = Vec::new();
        for spec in all_specs() {
            let outcome = authority.consult(0, &spec);
            bytes.push((outcome.advice_bytes, outcome.session_bytes, outcome.adopted));
        }
        bytes
    };
    assert_eq!(run(), run());
}

/// Advice survives a genuine serialize → deserialize round trip and still
/// verifies — i.e. verification works on what actually crosses the wire.
#[test]
fn advice_verifies_after_wire_round_trip() {
    let inventor = Inventor::new(0, InventorBehavior::Honest);
    for spec in all_specs() {
        let Some(advice) = inventor.advise(&spec) else {
            continue;
        };
        let msg = Message::AdviceWithProof {
            game_id: 1,
            advice: Box::new(advice),
        };
        let bytes = msg.to_bytes();
        let mut buf = bytes.clone();
        let decoded = Message::decode(&mut buf).expect("decodes");
        let Message::AdviceWithProof { advice, .. } = decoded else {
            panic!("wrong message kind");
        };
        let verifier =
            rationality_authority::authority::VerifierService::new(0, VerifierBehavior::Honest);
        let (accepted, detail) = verifier.verify(&spec, &advice);
        assert!(accepted, "{spec:?}: {detail}");
    }
}

/// A man-in-the-middle who flips bytes in the advice message cannot get a
/// corrupted message adopted: it either fails to decode or fails
/// verification. (Acceptance of a mutated-but-valid message must still be a
/// true equilibrium — checked for the strategic case.)
#[test]
fn bitflip_fuzz_on_the_wire() {
    let game = prisoners_dilemma().to_strategic();
    let spec = GameSpec::Strategic(game.clone());
    let inventor = Inventor::new(0, InventorBehavior::Honest);
    let advice = inventor.advise(&spec).unwrap();
    let msg = Message::AdviceWithProof {
        game_id: 1,
        advice: Box::new(advice),
    };
    let bytes = msg.to_bytes();
    let verifier =
        rationality_authority::authority::VerifierService::new(0, VerifierBehavior::Honest);
    let mut accepted_mutants = 0;
    for i in 0..bytes.len() {
        for bit in 0..8 {
            let mut mutated = bytes.to_vec();
            mutated[i] ^= 1 << bit;
            let mut buf = rationality_authority::authority::WireBytes::from(mutated);
            let Ok(Message::AdviceWithProof { advice, .. }) = Message::decode(&mut buf) else {
                continue;
            };
            if !buf.is_empty() {
                continue; // trailing garbage — a framed transport drops it
            }
            let (ok, _) = verifier.verify(&spec, &advice);
            if ok {
                accepted_mutants += 1;
                // Acceptance must still be sound: the advised profile is a
                // genuine equilibrium of the game.
                if let Advice::PureNash(cert) = advice.as_ref() {
                    assert!(
                        game.is_pure_nash(&cert.profile),
                        "unsound acceptance at byte {i} bit {bit}"
                    );
                }
            }
        }
    }
    // Mutants that survive must be semantically identical (or another true
    // statement); there should be very few of them.
    assert!(
        accepted_mutants <= 8,
        "too many accepted mutants: {accepted_mutants}"
    );
}

/// §3 maximality proofs flow end-to-end: the inventor can ship an IsMaxNash
/// certificate and the kernel accepts it only for truly maximal equilibria.
#[test]
fn maximal_advice_end_to_end() {
    let game = stag_hunt(4);
    let maximal: rationality_authority::games::StrategyProfile = vec![1, 1, 1, 1].into();
    let proof = prove_max_nash(&game, &maximal).expect("all-stag is maximal");
    let cert = PureNashCertificate {
        profile: maximal,
        proof,
    };
    let theorem = cert.verify(&game).expect("verifies");
    assert!(theorem.applies_to(&game));
    // The same certificate fails against a different game.
    let other = stag_hunt(3);
    assert!(!theorem.applies_to(&other));
}

/// Reputation isolates a flaky verifier over many random games while the
/// honest panel keeps serving correct verdicts.
#[test]
fn long_run_reputation_dynamics() {
    let mut authority = RationalityAuthority::new(
        Inventor::new(0, InventorBehavior::Honest),
        &[
            VerifierBehavior::Honest,
            VerifierBehavior::Honest,
            VerifierBehavior::Honest,
            VerifierBehavior::Random {
                accept_per_mille: 300,
            },
        ],
    );
    let mut consultations = 0u64;
    for seed in 0..120u64 {
        let game = GameGenerator::seeded(seed).strategic(vec![2, 2], -9..=9);
        if game.pure_nash_equilibria().is_empty() {
            continue;
        }
        let outcome = authority.consult(seed, &GameSpec::Strategic(game));
        assert!(
            outcome.adopted,
            "honest majority always adopts (seed {seed})"
        );
        consultations += 1;
        if !authority.reputation().is_trusted(Party::Verifier(3)) {
            break;
        }
    }
    assert!(
        consultations >= 5,
        "ran a meaningful number of consultations"
    );
    assert!(
        !authority.reputation().is_trusted(Party::Verifier(3)),
        "the mostly-rejecting flaky verifier must eventually be excluded"
    );
}

/// The kernel check and StrategicGame::is_pure_nash can never disagree —
/// across many random games and every profile. This is the cross-crate
/// soundness anchor.
#[test]
fn kernel_and_definition_agree_everywhere() {
    for seed in 0..60u64 {
        let game = GameGenerator::seeded(seed).strategic(vec![3, 2, 2], -7..=7);
        for profile in game.profiles() {
            let claim = rationality_authority::proofs::prove_is_nash(profile.clone());
            assert_eq!(
                check(&game, &claim).is_ok(),
                game.is_pure_nash(&profile),
                "seed {seed}, profile {profile}"
            );
        }
    }
}
