//! Workspace smoke test: exercises the facade crate's re-exports end to
//! end, so a broken `pub use` in `src/lib.rs` (or a crate dropped from the
//! workspace DAG) fails tier-1 instead of being discovered downstream.
//!
//! Everything here goes through `rationality_authority::*` paths on
//! purpose — do not shortcut to the `ra_*` crates.

use rationality_authority::authority::{Bus, Message, Party, Wire};
use rationality_authority::exact::rat;
use rationality_authority::games::named::prisoners_dilemma;
use rationality_authority::proofs::{prove_is_nash, PureNashCertificate};
use rationality_authority::solvers::analyze_pure_nash;
use rationality_authority::{auctions, congestion};

#[test]
fn facade_certificate_pipeline() {
    // Inventor side (untrusted): find the equilibrium the expensive way.
    let game = prisoners_dilemma().to_strategic();
    let analysis = analyze_pure_nash(&game);
    let profile = analysis
        .equilibria
        .first()
        .expect("PD has (defect, defect)")
        .clone();

    // Ship it as a checkable certificate.
    let cert = PureNashCertificate {
        profile: profile.clone(),
        proof: prove_is_nash(profile),
    };

    // Agent side (trusted kernel): re-check the claim.
    let theorem = cert.verify(&game).expect("honest certificate verifies");
    assert!(theorem.applies_to(&game));
}

#[test]
fn facade_rejects_dishonest_certificate() {
    let game = prisoners_dilemma().to_strategic();
    // (cooperate, cooperate) is not an equilibrium; the kernel must say so.
    let lie = PureNashCertificate {
        profile: vec![0, 0].into(),
        proof: prove_is_nash(vec![0, 0].into()),
    };
    assert!(lie.verify(&game).is_err());
}

#[test]
fn facade_bus_and_wire_round_trip() {
    let bus = Bus::new();
    let inventor = Party::Inventor(1);
    let agent = Party::Agent(1);
    bus.register(inventor);
    let agent_ep = bus.register(agent);
    let msg = Message::AdviceRequest { game_id: 42 };
    let encoded_len = msg.encoded_len();
    bus.send(agent, inventor, msg.clone()).ok();
    bus.send(inventor, agent, msg.clone()).unwrap();
    let (from, received) = agent_ep.try_recv().expect("delivered");
    assert_eq!(from, inventor);
    assert_eq!(received, msg);
    assert_eq!(bus.bytes_between(inventor, agent), encoded_len);
}

#[test]
fn facade_exact_and_case_study_crates_are_wired() {
    // exact
    assert_eq!(rat(1, 2) + rat(1, 3), rat(5, 6));
    // congestion: Graham's bound holds for the greedy assignment.
    let loads = [4u64, 7, 1, 9, 3];
    let m = 2;
    let greedy = congestion::greedy_assign(&loads, m).makespan();
    let opt = congestion::opt_makespan_exact(&loads, m);
    assert!(greedy <= (2 * m as u64 - 1) * opt / m as u64 + opt);
    // auctions: the paper's running example constructs.
    let _ = auctions::ParticipationGame::paper_example();
}
