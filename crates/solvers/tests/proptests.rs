//! Property-based tests for the inventor-side solvers.
//!
//! The common theme: whatever a solver outputs must pass the *definitional*
//! equilibrium checks from `ra-games` — the same checks the verification
//! side re-derives from certificates.

use proptest::prelude::*;
use ra_exact::{rat, Rational};
use ra_games::{GameGenerator, ProfileIter};
use ra_solvers::{
    analyze_pure_nash, best_response_dynamics, enumerate_equilibria, lemke_howson,
    solve_participation_equilibrium, DynamicsOutcome, EnumerationOptions, EquilibriumRoot,
    ParticipationParams,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lemke–Howson always returns a genuine Nash equilibrium, any label,
    /// any (small) shape, including degenerate games with payoff ties.
    #[test]
    fn lemke_howson_sound(seed in 0u64..1000, r in 1usize..5, c in 1usize..5, lo in -3i64..0) {
        let game = GameGenerator::seeded(seed).bimatrix(r, c, lo..=3);
        let label = (seed as usize) % (r + c);
        let eq = lemke_howson(&game, label).unwrap();
        prop_assert!(game.is_nash(&eq));
    }

    /// Support enumeration returns only genuine equilibria, with correct
    /// supports and λ values.
    #[test]
    fn support_enumeration_sound(seed in 0u64..500, r in 1usize..4, c in 1usize..4) {
        let game = GameGenerator::seeded(seed).bimatrix(r, c, -10..=10);
        let (eqs, _) = enumerate_equilibria(&game, &EnumerationOptions::default());
        prop_assert!(!eqs.is_empty(), "full enumeration over all support pairs finds at least one equilibrium in games this small");
        for eq in &eqs {
            prop_assert!(game.is_nash(&eq.profile));
            prop_assert_eq!(eq.profile.row.support(), eq.row_support.clone());
            prop_assert_eq!(eq.profile.col.support(), eq.col_support.clone());
            let (l1, l2) = game.equilibrium_values(&eq.profile);
            prop_assert_eq!(&l1, &eq.lambda1);
            prop_assert_eq!(&l2, &eq.lambda2);
        }
    }

    /// Exhaustive PNE analysis: equilibria list matches a from-scratch
    /// filter; maximal/minimal classifications are internally consistent.
    #[test]
    fn pure_analysis_consistent(seed in 0u64..300) {
        let counts = vec![2usize, 3, 2];
        let game = GameGenerator::seeded(seed).strategic(counts.clone(), -6..=6);
        let analysis = analyze_pure_nash(&game);
        let direct: Vec<_> = ProfileIter::new(counts).filter(|p| game.is_pure_nash(p)).collect();
        prop_assert_eq!(&analysis.equilibria, &direct);
        for m in &analysis.maximal {
            prop_assert!(game.is_maximal_nash(m));
        }
        for m in &analysis.minimal {
            prop_assert!(game.is_minimal_nash(m));
        }
        // Every equilibrium is dominated by some maximal one or is maximal.
        for e in &analysis.equilibria {
            prop_assert!(
                analysis.maximal.iter().any(|m| game.profile_le(e, m) || e == m)
                    || analysis.maximal.is_empty()
            );
        }
    }

    /// Best-response dynamics never claims convergence to a non-equilibrium.
    #[test]
    fn dynamics_sound(seed in 0u64..300, budget in 1usize..100) {
        let game = GameGenerator::seeded(seed).strategic(vec![3, 3], -8..=8);
        if let DynamicsOutcome::Converged { equilibrium, .. } =
            best_response_dynamics(&game, vec![0, 0].into(), budget)
        {
            prop_assert!(game.is_pure_nash(&equilibrium));
        }
    }

    /// Participation-game roots: every root returned satisfies (or brackets)
    /// the indifference equation, and roots are correctly ordered around the
    /// peak.
    #[test]
    fn participation_roots_sound(n in 2u64..9, k_off in 0u64..7, v_num in 2i64..50, c_num in 1i64..49) {
        let k = 2 + (k_off % (n.max(2) - 1)).min(n - 2);
        prop_assume!(k >= 2 && k <= n);
        prop_assume!(c_num < v_num);
        let params = ParticipationParams::new(
            n, k, Rational::from(v_num), Rational::from(c_num),
        ).unwrap();
        let tol = rat(1, 1 << 24);
        match solve_participation_equilibrium(&params, &tol) {
            Ok(roots) => {
                prop_assert!(!roots.is_empty());
                prop_assert!(roots.len() <= 2);
                for root in &roots {
                    match root {
                        EquilibriumRoot::Exact(p) => {
                            prop_assert_eq!(params.indifference_fn(p), Rational::zero());
                            prop_assert!(!p.is_negative() && p <= &Rational::one());
                        }
                        EquilibriumRoot::Bracket { lo, hi } => {
                            prop_assert!((hi - lo) <= tol);
                            let s_lo = params.indifference_fn(lo).is_negative();
                            let s_hi = params.indifference_fn(hi).is_negative();
                            prop_assert!(s_lo != s_hi, "bracket must straddle a sign change");
                        }
                    }
                }
            }
            Err(_) => {
                // No interior equilibrium: the peak value must be negative.
                prop_assert!(params.indifference_fn(&params.peak()).is_negative());
            }
        }
    }
}

/// Battle-of-sexes-like games: LH from all labels and support enumeration
/// must agree on the *set* of equilibrium payoffs for nondegenerate games.
#[test]
fn lh_subset_of_enumeration_nondegenerate() {
    let mut checked = 0;
    for seed in 0..120u64 {
        let game = GameGenerator::seeded(seed).bimatrix(3, 3, -50..=50);
        let (eqs, _) = enumerate_equilibria(&game, &EnumerationOptions::default());
        // Heuristic nondegeneracy filter: all equilibria have equal-sized
        // supports and the counts are odd (nondegenerate games have an odd
        // number of equilibria).
        if eqs.len() % 2 == 0
            || eqs
                .iter()
                .any(|e| e.row_support.len() != e.col_support.len())
        {
            continue;
        }
        checked += 1;
        for label in 0..6 {
            let lh = lemke_howson(&game, label).unwrap();
            // The LH endpoint itself can expose a degeneracy (payoff tie)
            // that the enumerated equilibria do not show: unequal support
            // sizes. Soundness still must hold; containment need not.
            if lh.row.support().len() != lh.col.support().len() {
                assert!(game.is_nash(&lh), "seed {seed}, label {label}");
                continue;
            }
            assert!(
                eqs.iter().any(|e| e.profile == lh),
                "seed {seed}, label {label}"
            );
        }
    }
    assert!(
        checked > 20,
        "expected plenty of nondegenerate instances, got {checked}"
    );
}
