//! Property tests for the zero-sum LP solver: minimax duality and agreement
//! with the general-purpose machinery.

use proptest::prelude::*;
use ra_exact::Rational;
use ra_games::{GameGenerator, MixedStrategy};
use ra_solvers::{lemke_howson, solve_zero_sum};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The LP solution is always a Nash equilibrium, and its value equals
    /// the game value found via Lemke–Howson (all equilibria of a zero-sum
    /// game share one value).
    #[test]
    fn minimax_is_nash_with_unique_value(seed in 0u64..500, r in 1usize..5, c in 1usize..5) {
        let game = GameGenerator::seeded(seed).zero_sum(r, c, -15..=15);
        let solution = solve_zero_sum(&game).unwrap();
        prop_assert!(game.is_nash(&solution.profile));
        let lh = lemke_howson(&game, 0).unwrap();
        prop_assert_eq!(
            solution.value.clone(),
            game.expected_row_payoff(&lh.row, &lh.col)
        );
    }

    /// Security levels: the row strategy guarantees at least the value
    /// against EVERY pure column reply, and symmetrically for the column
    /// strategy (the minimax property itself).
    #[test]
    fn strategies_guarantee_the_value(seed in 0u64..500, r in 1usize..4, c in 1usize..4) {
        let game = GameGenerator::seeded(seed ^ 0xbeef).zero_sum(r, c, -9..=9);
        let solution = solve_zero_sum(&game).unwrap();
        let x = &solution.profile.row;
        let y = &solution.profile.col;
        for j in 0..c {
            // Row payoff when the column agent replies with pure j:
            // −(xᵀB)_j since B = −A.
            let row_gets = -game.col_payoff_against(x, j);
            prop_assert!(row_gets >= solution.value, "column reply {j} beats the value");
        }
        for i in 0..r {
            let row_gets = game.row_payoff_against(i, y);
            prop_assert!(row_gets <= solution.value, "row reply {i} beats the value");
        }
    }

    /// Shift invariance: adding a constant to all payoffs shifts the value
    /// by that constant and preserves optimal strategies' validity.
    #[test]
    fn value_shifts_with_payoffs(seed in 0u64..200, shift in -10i64..=10) {
        let base = GameGenerator::seeded(seed ^ 0x5a5a).zero_sum(3, 3, -9..=9);
        let shifted = ra_games::BimatrixGame::new(
            ra_exact::Matrix::from_fn(3, 3, |i, j| base.a(i, j) + &Rational::from(shift)),
            ra_exact::Matrix::from_fn(3, 3, |i, j| base.b(i, j) - &Rational::from(shift)),
        );
        prop_assert!(shifted.is_zero_sum());
        let v0 = solve_zero_sum(&base).unwrap().value;
        let v1 = solve_zero_sum(&shifted).unwrap().value;
        prop_assert_eq!(v1, v0 + Rational::from(shift));
    }
}

/// 1×1 and single-row/column degenerate shapes.
#[test]
fn degenerate_shapes() {
    let g = ra_games::BimatrixGame::from_i64_tables(&[&[7]], &[&[-7]]);
    let s = solve_zero_sum(&g).unwrap();
    assert_eq!(s.value, Rational::from(7));
    assert_eq!(s.profile.row, MixedStrategy::pure(1, 0));
    // Single row: value = max over columns? No — the COLUMN agent picks the
    // minimizing column.
    let g = ra_games::BimatrixGame::from_i64_tables(&[&[3, -2, 5]], &[&[-3, 2, -5]]);
    let s = solve_zero_sum(&g).unwrap();
    assert_eq!(s.value, Rational::from(-2));
}
