//! Exhaustive pure-equilibrium search (the §3 inventor-side computation).
//!
//! The §3 proof scheme has the inventor enumerate every strategy profile
//! (`allStrat`), classify each as equilibrium-or-counterexample (`allNash`),
//! and compare equilibria under `≥u` (`NashMax`). These routines perform the
//! enumeration and also report how much work it took, so the benchmarks can
//! contrast it with certificate *checking*.

use ra_games::{StrategicGame, StrategyProfile};

/// Result of an exhaustive pure-Nash analysis of a game.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PureNashAnalysis {
    /// Every pure Nash equilibrium, in enumeration order.
    pub equilibria: Vec<StrategyProfile>,
    /// Equilibria that are maximal under the `≥u` partial order.
    pub maximal: Vec<StrategyProfile>,
    /// Equilibria that are minimal under the `≥u` partial order.
    pub minimal: Vec<StrategyProfile>,
    /// Number of profiles examined (the full profile space).
    pub profiles_examined: usize,
    /// Number of unilateral deviations evaluated during the search.
    pub deviations_checked: u64,
}

/// Exhaustively analyses a game: all pure equilibria plus the maximal and
/// minimal ones.
///
/// Cost is `Θ(|A| · Σ_i |A_i|)` payoff lookups, where `|A|` is the profile
/// space — intractable as games grow, which is precisely why the paper has
/// the *inventor* do it once and the agents only check certificates.
///
/// # Examples
///
/// ```
/// use ra_games::named::coordination_game;
/// use ra_solvers::analyze_pure_nash;
///
/// let analysis = analyze_pure_nash(&coordination_game(3));
/// assert_eq!(analysis.equilibria.len(), 3);
/// assert_eq!(analysis.maximal, vec![vec![2, 2].into()]);
/// assert_eq!(analysis.minimal, vec![vec![0, 0].into()]);
/// ```
pub fn analyze_pure_nash(game: &StrategicGame) -> PureNashAnalysis {
    let mut equilibria = Vec::new();
    let mut profiles_examined = 0usize;
    let mut deviations_checked = 0u64;
    let deviations_per_profile: u64 = game.strategy_counts().iter().map(|&c| (c - 1) as u64).sum();
    for profile in game.profiles() {
        profiles_examined += 1;
        deviations_checked += deviations_per_profile;
        if game.is_pure_nash(&profile) {
            equilibria.push(profile);
        }
    }
    let maximal = equilibria
        .iter()
        .filter(|e| {
            equilibria
                .iter()
                .all(|other| *e == other || !game.profile_le(e, other) || game.profile_le(other, e))
        })
        .cloned()
        .collect();
    let minimal = equilibria
        .iter()
        .filter(|e| {
            equilibria
                .iter()
                .all(|other| *e == other || !game.profile_le(other, e) || game.profile_le(e, other))
        })
        .cloned()
        .collect();
    PureNashAnalysis {
        equilibria,
        maximal,
        minimal,
        profiles_examined,
        deviations_checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ra_games::named::{coordination_game, stag_hunt};
    use ra_games::GameGenerator;

    #[test]
    fn coordination_analysis() {
        let analysis = analyze_pure_nash(&coordination_game(4));
        assert_eq!(analysis.equilibria.len(), 4);
        assert_eq!(analysis.maximal.len(), 1);
        assert_eq!(analysis.minimal.len(), 1);
        assert_eq!(analysis.profiles_examined, 16);
        assert_eq!(analysis.deviations_checked, 16 * 6);
    }

    #[test]
    fn stag_hunt_analysis() {
        let analysis = analyze_pure_nash(&stag_hunt(4));
        assert_eq!(analysis.equilibria.len(), 2);
        assert_eq!(analysis.maximal, vec![vec![1, 1, 1, 1].into()]);
        assert_eq!(analysis.minimal, vec![vec![0, 0, 0, 0].into()]);
    }

    #[test]
    fn no_equilibrium_game() {
        // Matching pennies has no PNE.
        let g = ra_games::named::matching_pennies().to_strategic();
        let analysis = analyze_pure_nash(&g);
        assert!(analysis.equilibria.is_empty());
        assert!(analysis.maximal.is_empty());
        assert!(analysis.minimal.is_empty());
        assert_eq!(analysis.profiles_examined, 4);
    }

    #[test]
    fn equilibria_match_direct_filter(/* regression vs StrategicGame */) {
        for seed in 0..30 {
            let g = GameGenerator::seeded(seed).strategic(vec![3, 3, 2], -5..=5);
            let analysis = analyze_pure_nash(&g);
            assert_eq!(analysis.equilibria, g.pure_nash_equilibria(), "seed {seed}");
        }
    }
}
