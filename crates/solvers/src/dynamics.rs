//! Best-response dynamics.
//!
//! Repeatedly lets some agent with a profitable deviation switch to a best
//! response. On potential games (e.g. the congestion games of §6) this is
//! guaranteed to reach a pure Nash equilibrium; on general games it may
//! cycle, which the driver detects and reports.

use std::collections::HashSet;

use ra_games::{StrategicGame, StrategyProfile};

/// Outcome of running best-response dynamics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DynamicsOutcome {
    /// Converged to a pure Nash equilibrium.
    Converged {
        /// The equilibrium reached.
        equilibrium: StrategyProfile,
        /// Number of improvement steps taken.
        steps: usize,
    },
    /// A profile repeated: the dynamics cycle (no potential function).
    Cycled {
        /// The first profile seen twice.
        repeated: StrategyProfile,
        /// Steps taken before the repeat.
        steps: usize,
    },
    /// The step budget ran out first.
    OutOfBudget,
}

/// Runs best-response dynamics from `start`, letting the lowest-indexed
/// improvable agent move to its (lowest-indexed) best response each step.
///
/// # Panics
///
/// Panics if `start` is not a valid profile for `game`.
///
/// # Examples
///
/// ```
/// use ra_games::named::coordination_game;
/// use ra_solvers::{best_response_dynamics, DynamicsOutcome};
///
/// let g = coordination_game(3);
/// match best_response_dynamics(&g, vec![0, 2].into(), 100) {
///     DynamicsOutcome::Converged { equilibrium, .. } => {
///         assert!(g.is_pure_nash(&equilibrium));
///     }
///     other => panic!("expected convergence, got {other:?}"),
/// }
/// ```
pub fn best_response_dynamics(
    game: &StrategicGame,
    start: StrategyProfile,
    max_steps: usize,
) -> DynamicsOutcome {
    assert!(
        start.is_valid_for(game.strategy_counts()),
        "start profile invalid for game"
    );
    let mut current = start;
    let mut seen: HashSet<StrategyProfile> = HashSet::new();
    seen.insert(current.clone());
    for step in 0..max_steps {
        let deviation = (0..game.num_agents()).find_map(|agent| {
            let best = game.best_responses(agent, &current);
            let cur_u = game.payoff(agent, &current);
            let target = best.first().copied()?;
            let target_u = game.payoff(agent, &current.with_strategy(agent, target));
            (target_u > cur_u).then_some((agent, target))
        });
        match deviation {
            None => {
                debug_assert!(game.is_pure_nash(&current));
                return DynamicsOutcome::Converged {
                    equilibrium: current,
                    steps: step,
                };
            }
            Some((agent, s)) => {
                current = current.with_strategy(agent, s);
                if !seen.insert(current.clone()) {
                    return DynamicsOutcome::Cycled {
                        repeated: current,
                        steps: step + 1,
                    };
                }
            }
        }
    }
    // One last check: the budget may end exactly at an equilibrium.
    if game.is_pure_nash(&current) {
        return DynamicsOutcome::Converged {
            equilibrium: current,
            steps: max_steps,
        };
    }
    DynamicsOutcome::OutOfBudget
}

#[cfg(test)]
mod tests {
    use super::*;
    use ra_games::named::{coordination_game, matching_pennies, stag_hunt};
    use ra_games::GameGenerator;

    #[test]
    fn converges_on_coordination() {
        let g = coordination_game(4);
        for start in g.profiles() {
            match best_response_dynamics(&g, start.clone(), 50) {
                DynamicsOutcome::Converged { equilibrium, .. } => {
                    assert!(g.is_pure_nash(&equilibrium), "from {start}");
                }
                other => panic!("from {start}: {other:?}"),
            }
        }
    }

    #[test]
    fn cycles_on_matching_pennies() {
        let g = matching_pennies().to_strategic();
        match best_response_dynamics(&g, vec![0, 0].into(), 100) {
            DynamicsOutcome::Cycled { steps, .. } => assert!(steps <= 5),
            other => panic!("expected cycle, got {other:?}"),
        }
    }

    #[test]
    fn immediate_equilibrium_is_zero_steps() {
        let g = stag_hunt(3);
        let eq: StrategyProfile = vec![1, 1, 1].into();
        assert_eq!(
            best_response_dynamics(&g, eq.clone(), 10),
            DynamicsOutcome::Converged {
                equilibrium: eq,
                steps: 0
            }
        );
    }

    #[test]
    fn random_games_never_return_false_equilibria() {
        for seed in 0..50 {
            let g = GameGenerator::seeded(seed).strategic(vec![3, 3], -10..=10);
            if let DynamicsOutcome::Converged { equilibrium, .. } =
                best_response_dynamics(&g, vec![0, 0].into(), 200)
            {
                assert!(g.is_pure_nash(&equilibrium), "seed {seed}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "start profile invalid")]
    fn invalid_start_panics() {
        let g = coordination_game(2);
        let _ = best_response_dynamics(&g, vec![5, 5].into(), 10);
    }
}
