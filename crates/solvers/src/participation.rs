//! Inventor-side equilibrium computation for the participation game (§5).
//!
//! The symmetric equilibrium probability `p` satisfies the indifference
//! condition derived from Eq. (2)/(5) of the paper, which reduces to
//!
//! ```text
//! c = v · C(n−1, k−1) · p^{k−1} · (1−p)^{n−k}
//! ```
//!
//! (`k = 2` gives the paper's Eq. (4): `c = v(n−1)p(1−p)^{n−2}`).
//! Finding `p` is the hard/tedious part the paper assigns to the inventor;
//! this module isolates the root(s) by exact bisection and, where the
//! equation happens to have a rational root, refines it to an *exact*
//! certificate.

use std::fmt;

use ra_exact::{binomial, bisect, rat, BisectionResult, Rational};

/// Parameters of the §5 participation game.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParticipationParams {
    /// Number of firms `n ≥ 2`.
    pub n: u64,
    /// Participation threshold `k` (the paper's running example is `k = 2`).
    pub k: u64,
    /// Prize value `v > 0`.
    pub v: Rational,
    /// Participation fee `0 < c < v`.
    pub c: Rational,
}

impl ParticipationParams {
    /// Validated constructor.
    ///
    /// # Errors
    ///
    /// Returns a message describing the violated constraint.
    pub fn new(n: u64, k: u64, v: Rational, c: Rational) -> Result<ParticipationParams, String> {
        if n < 2 {
            return Err(format!("need at least two firms, got n = {n}"));
        }
        if k < 2 || k > n {
            return Err(format!("threshold must satisfy 2 <= k <= n, got k = {k}"));
        }
        if !v.is_positive() {
            return Err(format!("prize must be positive, got v = {v}"));
        }
        if !c.is_positive() || c >= v {
            return Err(format!("fee must satisfy 0 < c < v, got c = {c}"));
        }
        Ok(ParticipationParams { n, k, v, c })
    }

    /// The paper's worked example: `c/v = 3/8`, `n = 3`, `k = 2`
    /// (scaled to `v = 8`, `c = 3`), with equilibrium `p = 1/4`.
    pub fn paper_example() -> ParticipationParams {
        ParticipationParams::new(3, 2, Rational::from(8), Rational::from(3))
            .expect("paper example parameters are valid")
    }

    /// `g(p) = v·C(n−1,k−1)·p^{k−1}(1−p)^{n−k} − c`, whose roots in `(0,1)`
    /// are the interior symmetric equilibria.
    pub fn indifference_fn(&self, p: &Rational) -> Rational {
        let coeff = Rational::from(binomial(self.n - 1, self.k - 1));
        let q = Rational::one() - p;
        &self.v * &coeff * p.pow((self.k - 1) as i32) * q.pow((self.n - self.k) as i32) - &self.c
    }

    /// The mode of the binomial pmf factor: `p* = (k−1)/(n−1)`, where the
    /// indifference function peaks. Roots, if any, lie on either side.
    pub fn peak(&self) -> Rational {
        Rational::from_bigints(
            ra_exact::BigInt::from(self.k - 1),
            ra_exact::BigInt::from(self.n - 1),
        )
    }
}

/// An equilibrium probability as produced by the inventor: either exactly
/// rational, or bracketed to a requested tolerance with a sign-change
/// certificate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EquilibriumRoot {
    /// `p` satisfies the indifference condition exactly.
    Exact(Rational),
    /// The indifference function changes sign over `[lo, hi]`; a true
    /// equilibrium lies inside.
    Bracket {
        /// Lower end of the bracket.
        lo: Rational,
        /// Upper end of the bracket.
        hi: Rational,
    },
}

impl EquilibriumRoot {
    /// A representative value of the root (midpoint for brackets).
    pub fn value(&self) -> Rational {
        match self {
            EquilibriumRoot::Exact(p) => p.clone(),
            EquilibriumRoot::Bracket { lo, hi } => (lo + hi) * rat(1, 2),
        }
    }
}

/// Error from [`solve_participation_equilibrium`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParticipationSolveError {
    /// `c` is too large: even at the peak of the indifference function
    /// participating never pays, so no interior equilibrium exists
    /// (`p = 0` remains the unique symmetric equilibrium).
    NoInteriorEquilibrium,
}

impl fmt::Display for ParticipationSolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParticipationSolveError::NoInteriorEquilibrium => {
                write!(
                    f,
                    "no interior symmetric equilibrium: fee exceeds peak incentive"
                )
            }
        }
    }
}

impl std::error::Error for ParticipationSolveError {}

/// Computes the interior symmetric equilibria of the participation game.
///
/// Returns one or two roots (the indifference function is unimodal): the
/// smaller root is the conventional advice (lowest participation intensity
/// consistent with equilibrium). Each root is refined until `tolerance` and
/// upgraded to [`EquilibriumRoot::Exact`] when a bracket endpoint or the
/// midpoint hits the root exactly.
///
/// # Errors
///
/// [`ParticipationSolveError::NoInteriorEquilibrium`] when
/// `g(p*) < 0`, i.e. the fee is too high for any interior equilibrium.
///
/// # Examples
///
/// ```
/// use ra_solvers::{solve_participation_equilibrium, EquilibriumRoot, ParticipationParams};
/// use ra_exact::rat;
///
/// let params = ParticipationParams::paper_example();
/// let roots = solve_participation_equilibrium(&params, &rat(1, 1 << 30)).unwrap();
/// assert_eq!(roots[0], EquilibriumRoot::Exact(rat(1, 4)));
/// assert_eq!(roots[1], EquilibriumRoot::Exact(rat(3, 4)));
/// ```
pub fn solve_participation_equilibrium(
    params: &ParticipationParams,
    tolerance: &Rational,
) -> Result<Vec<EquilibriumRoot>, ParticipationSolveError> {
    let g = |p: &Rational| params.indifference_fn(p);
    let peak = params.peak();
    let at_peak = g(&peak);
    if at_peak.is_negative() {
        return Err(ParticipationSolveError::NoInteriorEquilibrium);
    }
    if at_peak.is_zero() {
        // Tangency: the peak itself is the unique interior equilibrium.
        return Ok(vec![EquilibriumRoot::Exact(peak)]);
    }
    let mut roots = Vec::new();
    // Rising branch [0, peak]: g(0) = −c < 0 < g(peak).
    if let Ok(res) = bisect(g, Rational::zero(), peak.clone(), tolerance) {
        roots.push(finish_root(g, res));
    }
    // Falling branch [peak, 1]: g(1) = −c < 0 (for k < n; for k = n the
    // factor (1−p)^{n−k} = 1 and g(1) = v·C − c may stay positive, in which
    // case every p ≥ root is... no: k = n makes g increasing, no second
    // root).
    let at_one = g(&Rational::one());
    if at_one.is_negative() {
        if let Ok(res) = bisect(g, peak, Rational::one(), tolerance) {
            roots.push(finish_root(g, res));
        }
    }
    Ok(roots)
}

/// Converts a bisection bracket to the public root representation, detecting
/// exact rational roots.
fn finish_root(g: impl Fn(&Rational) -> Rational, res: BisectionResult) -> EquilibriumRoot {
    if res.lo == res.hi {
        return EquilibriumRoot::Exact(res.lo);
    }
    if g(&res.lo).is_zero() {
        return EquilibriumRoot::Exact(res.lo);
    }
    if g(&res.hi).is_zero() {
        return EquilibriumRoot::Exact(res.hi);
    }
    let mid = res.midpoint();
    if g(&mid).is_zero() {
        return EquilibriumRoot::Exact(mid);
    }
    EquilibriumRoot::Bracket {
        lo: res.lo,
        hi: res.hi,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_exact_roots() {
        let params = ParticipationParams::paper_example();
        let roots = solve_participation_equilibrium(&params, &rat(1, 1 << 25)).unwrap();
        assert_eq!(roots.len(), 2);
        assert_eq!(roots[0], EquilibriumRoot::Exact(rat(1, 4)));
        assert_eq!(roots[1], EquilibriumRoot::Exact(rat(3, 4)));
    }

    #[test]
    fn indifference_fn_matches_eq4() {
        // For k = 2 the function is v(n−1)p(1−p)^{n−2} − c.
        let params = ParticipationParams::new(5, 2, Rational::from(10), Rational::from(1)).unwrap();
        let p = rat(1, 3);
        let by_hand =
            Rational::from(10) * Rational::from(4) * &p * rat(2, 3).pow(3) - Rational::from(1);
        assert_eq!(params.indifference_fn(&p), by_hand);
    }

    #[test]
    fn bracket_roots_bracket_sign_change() {
        // n = 5, k = 2, v = 10, c = 1: roots are irrational.
        let params = ParticipationParams::new(5, 2, Rational::from(10), Rational::from(1)).unwrap();
        let tol = rat(1, 1 << 20);
        let roots = solve_participation_equilibrium(&params, &tol).unwrap();
        assert_eq!(roots.len(), 2);
        for root in roots {
            match root {
                EquilibriumRoot::Bracket { lo, hi } => {
                    assert!(&hi - &lo <= tol);
                    let g_lo = params.indifference_fn(&lo);
                    let g_hi = params.indifference_fn(&hi);
                    assert!(g_lo.is_negative() != g_hi.is_negative());
                }
                EquilibriumRoot::Exact(p) => {
                    assert!(params.indifference_fn(&p).is_zero());
                }
            }
        }
    }

    #[test]
    fn general_k_roots() {
        // n = 6, k = 4, v = 16, c = 1.
        let params = ParticipationParams::new(6, 4, Rational::from(16), Rational::from(1)).unwrap();
        let roots = solve_participation_equilibrium(&params, &rat(1, 1 << 20)).unwrap();
        assert_eq!(roots.len(), 2);
        // Both roots straddle the peak (k−1)/(n−1) = 3/5.
        assert!(roots[0].value() < rat(3, 5));
        assert!(roots[1].value() > rat(3, 5));
    }

    #[test]
    fn excessive_fee_has_no_interior_equilibrium() {
        // Peak incentive for n=3,k=2,v=8 is 8·2·(1/2)·(1/2) = 4; pick c in
        // (4, 8) — valid parameters but no interior root.
        let params = ParticipationParams::new(3, 2, Rational::from(8), Rational::from(5)).unwrap();
        assert_eq!(
            solve_participation_equilibrium(&params, &rat(1, 1024)),
            Err(ParticipationSolveError::NoInteriorEquilibrium)
        );
    }

    #[test]
    fn tangency_case() {
        // c exactly equal to the peak value: n=3,k=2,v=8 ⇒ peak g = 4 at
        // p = 1/2; choose c = 4.
        let params = ParticipationParams::new(3, 2, Rational::from(8), Rational::from(4)).unwrap();
        let roots = solve_participation_equilibrium(&params, &rat(1, 1024)).unwrap();
        assert_eq!(roots, vec![EquilibriumRoot::Exact(rat(1, 2))]);
    }

    #[test]
    fn k_equals_n_single_root() {
        // k = n: g(p) = v·p^{n−1} − c is increasing; single root.
        let params = ParticipationParams::new(3, 3, Rational::from(8), Rational::from(2)).unwrap();
        let roots = solve_participation_equilibrium(&params, &rat(1, 1 << 25)).unwrap();
        assert_eq!(roots.len(), 1);
        // Root of 8p² = 2 ⇒ p = 1/2 exactly.
        assert_eq!(roots[0], EquilibriumRoot::Exact(rat(1, 2)));
    }

    #[test]
    fn parameter_validation() {
        assert!(ParticipationParams::new(1, 2, Rational::from(8), Rational::from(3)).is_err());
        assert!(ParticipationParams::new(3, 1, Rational::from(8), Rational::from(3)).is_err());
        assert!(ParticipationParams::new(3, 4, Rational::from(8), Rational::from(3)).is_err());
        assert!(ParticipationParams::new(3, 2, Rational::from(0), Rational::from(3)).is_err());
        assert!(ParticipationParams::new(3, 2, Rational::from(8), Rational::from(9)).is_err());
        assert!(ParticipationParams::new(3, 2, Rational::from(8), Rational::from(0)).is_err());
    }
}
