//! # ra-solvers — inventor-side equilibrium computation
//!
//! The rationality-authority design splits game analysis into an expensive,
//! untrusted *computation* step (done by the game inventor) and a cheap,
//! trusted *verification* step (done by agents with verifier-supplied
//! procedures). This crate is the inventor's toolbox:
//!
//! * [`analyze_pure_nash`] — exhaustive pure-equilibrium enumeration with
//!   maximal/minimal classification (§3);
//! * [`enumerate_equilibria`] / [`find_one_equilibrium`] — support
//!   enumeration for bimatrix games (§4);
//! * [`lemke_howson`] — complementary pivoting with exact arithmetic (§4);
//! * [`solve_participation_equilibrium`] — root isolation for the
//!   participation game's symmetric equilibrium (§5);
//! * [`best_response_dynamics`] — improvement paths (used by the congestion
//!   case study of §6).
//!
//! Nothing in this crate is trusted by agents: its outputs are turned into
//! certificates by `ra-proofs` and re-checked there.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dynamics;
mod lemke_howson;
mod participation;
mod pure_enum;
mod support_enum;
mod zero_sum;

pub use dynamics::{best_response_dynamics, DynamicsOutcome};
pub use lemke_howson::{lemke_howson, lemke_howson_all, LemkeHowsonError};
pub use participation::{
    solve_participation_equilibrium, EquilibriumRoot, ParticipationParams, ParticipationSolveError,
};
pub use pure_enum::{analyze_pure_nash, PureNashAnalysis};
pub use support_enum::{
    enumerate_equilibria, find_one_equilibrium, EnumerationOptions, EnumerationStats,
    SupportEquilibrium,
};
pub use zero_sum::{solve_zero_sum, MinimaxSolution, ZeroSumError};
