//! The Lemke–Howson algorithm with exact rational pivoting.
//!
//! This is the classic complementary-pivoting path-following algorithm for
//! finding one mixed Nash equilibrium of a bimatrix game. It is the
//! inventor's workhorse for §4: worst-case exponential (and PPAD-complete in
//! general), yet it terminates on every game thanks to the lexicographic
//! ratio test used here — so the honest inventor can always *produce* the
//! advice whose verification P1/P2 make cheap.
//!
//! Implementation notes: two tableaux, one per best-response polytope
//! (`Ay ≤ 1` and `Bᵀx ≤ 1`), payoffs shifted to be strictly positive (which
//! leaves the equilibrium set unchanged), variables labelled `0..n` for row
//! strategies and `n..n+m` for column strategies. All arithmetic is over
//! [`Rational`], so degeneracy is handled exactly rather than by epsilon.

use std::fmt;

use ra_exact::Rational;
use ra_games::{BimatrixGame, MixedProfile, MixedStrategy};

/// Error returned by [`lemke_howson`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LemkeHowsonError {
    /// The initial dropped label is out of range (`>= rows + cols`).
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// Number of labels in the game (`rows + cols`).
        num_labels: usize,
    },
    /// The pivot loop exceeded its iteration budget. With the lexicographic
    /// ratio test this should never happen; it is kept as a defensive bound.
    IterationLimit,
}

impl fmt::Display for LemkeHowsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LemkeHowsonError::LabelOutOfRange { label, num_labels } => {
                write!(
                    f,
                    "label {label} out of range (game has {num_labels} labels)"
                )
            }
            LemkeHowsonError::IterationLimit => write!(f, "pivot iteration limit exceeded"),
        }
    }
}

impl std::error::Error for LemkeHowsonError {}

/// A simplex-style tableau over the rationals with lexicographic pivoting.
struct Tableau {
    /// `coeffs[row][var]` for `var < num_vars`; the RHS is at index
    /// `num_vars`.
    coeffs: Vec<Vec<Rational>>,
    /// Basic variable id of each row (ids double as labels).
    basis: Vec<usize>,
    num_vars: usize,
}

impl Tableau {
    fn new(rows: Vec<Vec<Rational>>, basis: Vec<usize>, num_vars: usize) -> Tableau {
        Tableau {
            coeffs: rows,
            basis,
            num_vars,
        }
    }

    /// Lexicographic minimum-ratio test: returns the pivot row for the
    /// entering variable, or `None` if the column is non-positive (unbounded
    /// — impossible for the bounded LH polytopes).
    fn choose_row(&self, entering: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for r in 0..self.coeffs.len() {
            let c = &self.coeffs[r][entering];
            if !c.is_positive() {
                continue;
            }
            best = Some(match best {
                None => r,
                Some(b) => {
                    if self.lex_less(r, b, entering) {
                        r
                    } else {
                        b
                    }
                }
            });
        }
        best
    }

    /// Compares rows `r` and `b` by the lexicographic ratio rule for the
    /// entering column: first by `rhs/coeff`, then column by column.
    fn lex_less(&self, r: usize, b: usize, entering: usize) -> bool {
        let cr = &self.coeffs[r][entering];
        let cb = &self.coeffs[b][entering];
        // Compare rhs/cr vs rhs/cb, i.e. rhs_r * cb vs rhs_b * cr (both
        // denominators positive).
        for col in std::iter::once(self.num_vars).chain(0..self.num_vars) {
            let lhs = &self.coeffs[r][col] * cb;
            let rhs = &self.coeffs[b][col] * cr;
            if lhs != rhs {
                return lhs < rhs;
            }
        }
        // Fully identical ratio rows cannot happen for linearly independent
        // tableau rows; break ties deterministically anyway.
        r < b
    }

    /// Pivots `entering` into the basis; returns the label/id of the
    /// variable that leaves.
    fn pivot(&mut self, entering: usize) -> usize {
        let row = self
            .choose_row(entering)
            .expect("LH polytope is bounded, pivot column must have a positive entry");
        let leaving = self.basis[row];
        let pivot_val = self.coeffs[row][entering].clone();
        for col in 0..=self.num_vars {
            let v = self.coeffs[row][col].clone();
            self.coeffs[row][col] = &v / &pivot_val;
        }
        for r in 0..self.coeffs.len() {
            if r == row || self.coeffs[r][entering].is_zero() {
                continue;
            }
            let factor = self.coeffs[r][entering].clone();
            for col in 0..=self.num_vars {
                let sub = &factor * &self.coeffs[row][col];
                let cur = self.coeffs[r][col].clone();
                self.coeffs[r][col] = &cur - &sub;
            }
        }
        self.basis[row] = entering;
        leaving
    }

    /// Value of basic variable `var` (zero if nonbasic).
    fn value_of(&self, var: usize) -> Rational {
        for (r, &b) in self.basis.iter().enumerate() {
            if b == var {
                return self.coeffs[r][self.num_vars].clone();
            }
        }
        Rational::zero()
    }
}

/// Runs Lemke–Howson on `game`, dropping `initial_label` first
/// (labels `0..rows` are row strategies, `rows..rows+cols` column
/// strategies). Returns one exact mixed Nash equilibrium.
///
/// # Errors
///
/// Returns an error if `initial_label` is out of range or the defensive
/// iteration bound is hit.
///
/// # Examples
///
/// ```
/// use ra_games::named::matching_pennies;
/// use ra_solvers::lemke_howson;
///
/// let eq = lemke_howson(&matching_pennies(), 0).unwrap();
/// assert!(matching_pennies().is_nash(&eq));
/// ```
pub fn lemke_howson(
    game: &BimatrixGame,
    initial_label: usize,
) -> Result<MixedProfile, LemkeHowsonError> {
    let n = game.rows();
    let m = game.cols();
    let num_labels = n + m;
    if initial_label >= num_labels {
        return Err(LemkeHowsonError::LabelOutOfRange {
            label: initial_label,
            num_labels,
        });
    }
    // Shift payoffs to be strictly positive (equilibria are invariant).
    let mut min_entry = game.a(0, 0).clone();
    for i in 0..n {
        for j in 0..m {
            if game.a(i, j) < &min_entry {
                min_entry = game.a(i, j).clone();
            }
            if game.b(i, j) < &min_entry {
                min_entry = game.b(i, j).clone();
            }
        }
    }
    let shift = Rational::one() - &min_entry;
    let a_pos = |i: usize, j: usize| game.a(i, j) + &shift;
    let b_pos = |i: usize, j: usize| game.b(i, j) + &shift;

    // Tableau A (row player's constraints on y): r_i + Σ_j A⁺[i,j] y_j = 1.
    // Variable ids coincide with labels: r_i ↦ i, y_j ↦ n + j.
    let tab_a_rows: Vec<Vec<Rational>> = (0..n)
        .map(|i| {
            let mut row = vec![Rational::zero(); num_labels + 1];
            row[i] = Rational::one();
            for j in 0..m {
                row[n + j] = a_pos(i, j);
            }
            row[num_labels] = Rational::one();
            row
        })
        .collect();
    // Tableau B (column player's constraints on x): s_j + Σ_i B⁺[i,j] x_i = 1.
    // Variable ids: x_i ↦ i, s_j ↦ n + j.
    let tab_b_rows: Vec<Vec<Rational>> = (0..m)
        .map(|j| {
            let mut row = vec![Rational::zero(); num_labels + 1];
            row[n + j] = Rational::one();
            for (i, slot) in row.iter_mut().enumerate().take(n) {
                *slot = b_pos(i, j);
            }
            row[num_labels] = Rational::one();
            row
        })
        .collect();
    let mut tab_a = Tableau::new(tab_a_rows, (0..n).collect(), num_labels);
    let mut tab_b = Tableau::new(tab_b_rows, (n..num_labels).collect(), num_labels);

    // The variable with the dropped label enters the tableau where it is a
    // decision variable: x_k lives in tableau B, y_k in tableau A.
    let mut in_tableau_b = initial_label < n;
    let mut entering = initial_label;
    let max_iters = 64 * (num_labels as u64 + 1) * (num_labels as u64 + 1);
    let mut iters = 0u64;
    loop {
        iters += 1;
        if iters > max_iters {
            return Err(LemkeHowsonError::IterationLimit);
        }
        let leaving = if in_tableau_b {
            tab_b.pivot(entering)
        } else {
            tab_a.pivot(entering)
        };
        if leaving == initial_label {
            break;
        }
        // The twin variable with the same label lives in the other tableau.
        entering = leaving;
        in_tableau_b = !in_tableau_b;
    }

    // Extract and normalize strategies.
    let x_raw: Vec<Rational> = (0..n).map(|i| tab_b.value_of(i)).collect();
    let y_raw: Vec<Rational> = (0..m).map(|j| tab_a.value_of(n + j)).collect();
    let normalize = |raw: Vec<Rational>| -> MixedStrategy {
        let total: Rational = raw.iter().fold(Rational::zero(), |acc, v| acc + v);
        debug_assert!(
            total.is_positive(),
            "LH produced the artificial equilibrium"
        );
        MixedStrategy::try_new(raw.into_iter().map(|v| &v / &total).collect())
            .expect("normalized LH output is a distribution")
    };
    Ok(MixedProfile {
        row: normalize(x_raw),
        col: normalize(y_raw),
    })
}

/// Runs Lemke–Howson from every initial label and returns the distinct
/// equilibria found (at most `rows + cols`, often fewer).
pub fn lemke_howson_all(game: &BimatrixGame) -> Vec<MixedProfile> {
    let mut out: Vec<MixedProfile> = Vec::new();
    for label in 0..game.rows() + game.cols() {
        if let Ok(profile) = lemke_howson(game, label) {
            if !out.contains(&profile) {
                out.push(profile);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ra_exact::rat;
    use ra_games::named::{
        battle_of_the_sexes, fig5_game, matching_pennies, prisoners_dilemma, rock_paper_scissors,
    };
    use ra_games::GameGenerator;

    #[test]
    fn solves_matching_pennies() {
        for label in 0..4 {
            let eq = lemke_howson(&matching_pennies(), label).unwrap();
            assert!(matching_pennies().is_nash(&eq), "label {label}");
            assert_eq!(eq.row, MixedStrategy::uniform(2));
        }
    }

    #[test]
    fn solves_prisoners_dilemma() {
        let g = prisoners_dilemma();
        for label in 0..4 {
            let eq = lemke_howson(&g, label).unwrap();
            assert!(g.is_nash(&eq), "label {label}");
            assert_eq!(eq.row, MixedStrategy::pure(2, 1));
            assert_eq!(eq.col, MixedStrategy::pure(2, 1));
        }
    }

    #[test]
    fn solves_rock_paper_scissors() {
        let g = rock_paper_scissors();
        let eq = lemke_howson(&g, 0).unwrap();
        assert!(g.is_nash(&eq));
        assert_eq!(eq.row, MixedStrategy::uniform(3));
        assert_eq!(eq.col, MixedStrategy::uniform(3));
    }

    #[test]
    fn battle_of_sexes_labels_reach_multiple_equilibria() {
        let g = battle_of_the_sexes();
        let eqs = lemke_howson_all(&g);
        assert!(!eqs.is_empty());
        for eq in &eqs {
            assert!(g.is_nash(eq));
        }
        // LH from different labels finds at least the two pure equilibria.
        assert!(eqs.len() >= 2);
    }

    #[test]
    fn handles_degenerate_fig5() {
        let g = fig5_game();
        for label in 0..4 {
            let eq = lemke_howson(&g, label).unwrap();
            assert!(g.is_nash(&eq), "label {label}: {eq:?}");
        }
    }

    #[test]
    fn label_out_of_range() {
        assert_eq!(
            lemke_howson(&matching_pennies(), 4),
            Err(LemkeHowsonError::LabelOutOfRange {
                label: 4,
                num_labels: 4
            })
        );
    }

    #[test]
    fn random_games_always_yield_verified_equilibria() {
        for seed in 0..60 {
            let game = GameGenerator::seeded(seed).bimatrix(4, 4, -25..=25);
            let eq = lemke_howson(&game, (seed % 8) as usize).unwrap();
            assert!(game.is_nash(&eq), "seed {seed}");
        }
    }

    #[test]
    fn rectangular_games() {
        for seed in 0..20 {
            let game = GameGenerator::seeded(seed).bimatrix(2, 5, -10..=10);
            let eq = lemke_howson(&game, 0).unwrap();
            assert!(game.is_nash(&eq), "seed {seed}");
            let game = GameGenerator::seeded(seed).bimatrix(5, 2, -10..=10);
            let eq = lemke_howson(&game, 3).unwrap();
            assert!(game.is_nash(&eq), "seed {seed}");
        }
    }

    #[test]
    fn one_by_one_game() {
        let g = BimatrixGame::from_i64_tables(&[&[7]], &[&[-3]]);
        let eq = lemke_howson(&g, 0).unwrap();
        assert_eq!(eq.row.probs(), &[rat(1, 1)]);
        assert_eq!(eq.col.probs(), &[rat(1, 1)]);
    }

    #[test]
    fn agrees_with_support_enumeration_values() {
        use crate::support_enum::{enumerate_equilibria, EnumerationOptions};
        for seed in 100..120 {
            let game = GameGenerator::seeded(seed).bimatrix(3, 3, -10..=10);
            let lh = lemke_howson(&game, 0).unwrap();
            // In a nondegenerate game every equilibrium has equal-sized
            // supports; unequal sizes certify degeneracy (e.g. seed 105 has
            // a payoff tie creating a continuum of equilibria), where
            // support enumeration is allowed to return a subset.
            if lh.row.support().len() != lh.col.support().len() {
                assert!(game.is_nash(&lh), "seed {seed}");
                continue;
            }
            let (all, _) = enumerate_equilibria(&game, &EnumerationOptions::default());
            assert!(
                all.iter().any(|e| e.profile == lh),
                "LH equilibrium must appear in the support enumeration (seed {seed})"
            );
        }
    }
}
