//! Zero-sum bimatrix games: exact minimax via linear programming.
//!
//! For `B = −A` the equilibrium problem collapses to von Neumann's minimax
//! LP, solvable in polynomial time — a good "easy island" baseline next to
//! the PPAD-hard general case, and another consumer of the exact simplex
//! that makes Lemma 1's "LP(n, m)" literal.
//!
//! Reduction (payoffs shifted so `A > 0`): the column (minimizing) agent
//! solves `max Σ w` s.t. `A w ≤ 1, w ≥ 0`; then `value = 1/Σw` and
//! `y = value · w`. The row agent's strategy comes from the symmetric LP on
//! `−Aᵀ` (shifted), i.e. one more simplex call instead of dual extraction —
//! two small LPs keep the code auditable.

use ra_exact::{maximize, LpError, LpResult, Matrix, Rational};
use ra_games::{BimatrixGame, MixedProfile, MixedStrategy};

/// The exact minimax solution of a zero-sum game.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MinimaxSolution {
    /// The game value (row agent's guaranteed expected payoff).
    pub value: Rational,
    /// An optimal mixed profile (a Nash equilibrium of the game).
    pub profile: MixedProfile,
}

/// Errors from [`solve_zero_sum`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ZeroSumError {
    /// The game is not zero-sum (`B ≠ −A`).
    NotZeroSum,
    /// Internal LP failure (cannot happen for well-formed inputs; surfaced
    /// for debuggability).
    Lp(LpError),
}

impl std::fmt::Display for ZeroSumError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZeroSumError::NotZeroSum => write!(f, "game is not zero-sum"),
            ZeroSumError::Lp(e) => write!(f, "internal LP error: {e}"),
        }
    }
}

impl std::error::Error for ZeroSumError {}

impl From<LpError> for ZeroSumError {
    fn from(e: LpError) -> ZeroSumError {
        ZeroSumError::Lp(e)
    }
}

/// Solves a zero-sum game exactly by two LP calls.
///
/// # Errors
///
/// [`ZeroSumError::NotZeroSum`] if `B ≠ −A`.
///
/// # Examples
///
/// ```
/// use ra_games::named::rock_paper_scissors;
/// use ra_solvers::solve_zero_sum;
/// use ra_exact::Rational;
///
/// let solution = solve_zero_sum(&rock_paper_scissors()).unwrap();
/// assert_eq!(solution.value, Rational::zero());
/// assert!(rock_paper_scissors().is_nash(&solution.profile));
/// ```
pub fn solve_zero_sum(game: &BimatrixGame) -> Result<MinimaxSolution, ZeroSumError> {
    if !game.is_zero_sum() {
        return Err(ZeroSumError::NotZeroSum);
    }
    let n = game.rows();
    let m = game.cols();
    // Shift so all entries are strictly positive: value_shifted > 0.
    let mut min_entry = game.a(0, 0).clone();
    for i in 0..n {
        for j in 0..m {
            if game.a(i, j) < &min_entry {
                min_entry = game.a(i, j).clone();
            }
        }
    }
    let shift = Rational::one() - &min_entry;

    // Column agent: max Σ w  s.t.  A⁺ w ≤ 1  (A⁺ = A + shift > 0).
    let a_pos = Matrix::from_fn(n, m, |i, j| game.a(i, j) + &shift);
    let y = solve_side(&a_pos)?;
    // Row agent: by symmetry of the zero-sum game, solve the same program
    // on (A⁺)ᵀ read as the *column* agent of the transposed game where the
    // roles flip: max Σ u s.t. (A⁺)ᵀ u ≤ 1 gives the row strategy of the
    // original game... with a sign flip: the row agent *maximizes* A, so in
    // the transposed view it minimizes −Aᵀ; shifting −Aᵀ positive gives the
    // right program.
    let mut min_neg = -game.a(0, 0);
    for i in 0..n {
        for j in 0..m {
            let v = -game.a(i, j);
            if v < min_neg {
                min_neg = v;
            }
        }
    }
    let shift_t = Rational::one() - &min_neg;
    let at_pos = Matrix::from_fn(m, n, |j, i| -game.a(i, j) + &shift_t);
    let x = solve_side(&at_pos)?;

    let profile = MixedProfile { row: x, col: y };
    let value = game.expected_row_payoff(&profile.row, &profile.col);
    debug_assert!(
        game.is_nash(&profile),
        "minimax profile must be an equilibrium"
    );
    Ok(MinimaxSolution { value, profile })
}

/// Solves `max Σw s.t. M w ≤ 1, w ≥ 0` for a strictly positive matrix `M`
/// and normalizes the optimum into a mixed strategy.
fn solve_side(m_pos: &Matrix) -> Result<MixedStrategy, ZeroSumError> {
    let cols = m_pos.cols();
    let ones_obj = vec![Rational::one(); cols];
    let ones_rhs = vec![Rational::one(); m_pos.rows()];
    match maximize(&ones_obj, m_pos, &ones_rhs)? {
        LpResult::Optimal { x, value } => {
            debug_assert!(value.is_positive(), "positive matrix ⇒ positive optimum");
            let probs: Vec<Rational> = x.iter().map(|w| w / &value).collect();
            Ok(MixedStrategy::try_new(probs).expect("normalized LP solution is a distribution"))
        }
        LpResult::Unbounded => unreachable!("M > 0 bounds the feasible region"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ra_exact::rat;
    use ra_games::named::{matching_pennies, prisoners_dilemma, rock_paper_scissors};
    use ra_games::GameGenerator;

    #[test]
    fn classic_games() {
        let mp = solve_zero_sum(&matching_pennies()).unwrap();
        assert_eq!(mp.value, Rational::zero());
        assert_eq!(mp.profile.row, MixedStrategy::uniform(2));
        let rps = solve_zero_sum(&rock_paper_scissors()).unwrap();
        assert_eq!(rps.value, Rational::zero());
        assert_eq!(rps.profile.col, MixedStrategy::uniform(3));
    }

    #[test]
    fn asymmetric_value() {
        // A = [[2, -1], [-1, 1]]: value = (2·1 − 1·1)/(2+1+1+1) = 1/5.
        let game = BimatrixGame::from_i64_tables(&[&[2, -1], &[-1, 1]], &[&[-2, 1], &[1, -1]]);
        let solution = solve_zero_sum(&game).unwrap();
        assert_eq!(solution.value, rat(1, 5));
        assert!(game.is_nash(&solution.profile));
        // Optimal strategies: x = (2/5, 3/5), y = (2/5, 3/5).
        assert_eq!(solution.profile.row.probs(), &[rat(2, 5), rat(3, 5)]);
    }

    #[test]
    fn saddle_point_game() {
        // A = [[3, 1], [2, 0]]: row 0 dominates, col 1 dominates → value 1.
        let game = BimatrixGame::from_i64_tables(&[&[3, 1], &[2, 0]], &[&[-3, -1], &[-2, 0]]);
        let solution = solve_zero_sum(&game).unwrap();
        assert_eq!(solution.value, rat(1, 1));
        assert!(game.is_nash(&solution.profile));
    }

    #[test]
    fn non_zero_sum_rejected() {
        assert_eq!(
            solve_zero_sum(&prisoners_dilemma()),
            Err(ZeroSumError::NotZeroSum)
        );
    }

    #[test]
    fn random_zero_sum_games_solve_and_verify() {
        for seed in 0..40 {
            let game = GameGenerator::seeded(seed).zero_sum(4, 5, -20..=20);
            let solution = solve_zero_sum(&game).unwrap();
            assert!(game.is_nash(&solution.profile), "seed {seed}");
            // The value is what the profile actually pays.
            assert_eq!(
                solution.value,
                game.expected_row_payoff(&solution.profile.row, &solution.profile.col),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn agrees_with_lemke_howson() {
        for seed in 0..15 {
            let game = GameGenerator::seeded(100 + seed).zero_sum(3, 3, -9..=9);
            let lp = solve_zero_sum(&game).unwrap();
            let lh = crate::lemke_howson(&game, 0).unwrap();
            // Zero-sum games can have many equilibria, but they all share
            // the same value.
            assert_eq!(
                lp.value,
                game.expected_row_payoff(&lh.row, &lh.col),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn rectangular_games() {
        for seed in 0..10 {
            let game = GameGenerator::seeded(seed).zero_sum(2, 6, -9..=9);
            let solution = solve_zero_sum(&game).unwrap();
            assert!(game.is_nash(&solution.profile), "seed {seed}");
        }
    }
}
