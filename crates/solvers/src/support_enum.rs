//! Support enumeration for bimatrix games.
//!
//! The inventor-side computation of §4: find mixed Nash equilibria of an
//! `n × m` bimatrix game by trying candidate support pairs and solving the
//! indifference linear systems exactly. Worst-case exponential in `n + m` —
//! the PPAD-hardness of the problem is the whole reason the paper delegates
//! it to the inventor and gives agents the cheap P1/P2 *verification* path.

use ra_exact::{solve_linear_system, LinearSolution, Matrix, Rational};
use ra_games::{BimatrixGame, MixedProfile, MixedStrategy};

/// A mixed equilibrium found by [`enumerate_equilibria`], together with the
/// support data the P1 prover sends to agents.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SupportEquilibrium {
    /// The equilibrium profile.
    pub profile: MixedProfile,
    /// Row-agent support (sorted indices).
    pub row_support: Vec<usize>,
    /// Column-agent support (sorted indices).
    pub col_support: Vec<usize>,
    /// Row agent's equilibrium payoff λ₁.
    pub lambda1: Rational,
    /// Column agent's equilibrium payoff λ₂.
    pub lambda2: Rational,
}

/// Options controlling the enumeration.
#[derive(Clone, Debug, Default)]
pub struct EnumerationOptions {
    /// Stop after this many equilibria (`None` = find all).
    pub max_equilibria: Option<usize>,
    /// Only try support pairs of equal cardinality (complete for
    /// nondegenerate games and much faster).
    pub equal_sized_supports_only: bool,
}

/// Statistics about an enumeration run (inventor-side effort accounting for
/// the verify-vs-compute benchmarks).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EnumerationStats {
    /// Support pairs examined.
    pub support_pairs_tried: u64,
    /// Linear systems solved.
    pub linear_systems_solved: u64,
}

/// Enumerates mixed Nash equilibria of `game` by support enumeration.
///
/// Complete for nondegenerate games; for degenerate games it still returns
/// only genuine equilibria (every candidate is re-checked with
/// [`BimatrixGame::is_nash`]) but may miss equilibria whose indifference
/// systems are underdetermined.
///
/// # Examples
///
/// ```
/// use ra_games::named::matching_pennies;
/// use ra_solvers::{enumerate_equilibria, EnumerationOptions};
///
/// let (eqs, _) = enumerate_equilibria(&matching_pennies(), &EnumerationOptions::default());
/// assert_eq!(eqs.len(), 1);
/// assert_eq!(eqs[0].row_support, vec![0, 1]);
/// ```
pub fn enumerate_equilibria(
    game: &BimatrixGame,
    options: &EnumerationOptions,
) -> (Vec<SupportEquilibrium>, EnumerationStats) {
    let n = game.rows();
    let m = game.cols();
    let mut found: Vec<SupportEquilibrium> = Vec::new();
    let mut stats = EnumerationStats::default();
    let row_supports = non_empty_subsets(n);
    let col_supports = non_empty_subsets(m);
    'outer: for s1 in &row_supports {
        for s2 in &col_supports {
            if options.equal_sized_supports_only && s1.len() != s2.len() {
                continue;
            }
            stats.support_pairs_tried += 1;
            if let Some(eq) = try_support_pair(game, s1, s2, &mut stats) {
                // Deduplicate identical profiles (degenerate games can
                // produce the same equilibrium from several support pairs).
                if !found.iter().any(|f| f.profile == eq.profile) {
                    found.push(eq);
                }
                if let Some(max) = options.max_equilibria {
                    if found.len() >= max {
                        break 'outer;
                    }
                }
            }
        }
    }
    (found, stats)
}

/// Finds one equilibrium (if any) quickly: equal-sized supports, stop at the
/// first hit.
pub fn find_one_equilibrium(game: &BimatrixGame) -> Option<SupportEquilibrium> {
    let (eqs, _) = enumerate_equilibria(
        game,
        &EnumerationOptions {
            max_equilibria: Some(1),
            equal_sized_supports_only: false,
        },
    );
    eqs.into_iter().next()
}

fn non_empty_subsets(n: usize) -> Vec<Vec<usize>> {
    assert!(n < 25, "support enumeration limited to < 25 strategies");
    let mut out = Vec::with_capacity((1usize << n) - 1);
    for mask in 1u32..(1u32 << n) {
        out.push((0..n).filter(|&i| mask & (1 << i) != 0).collect());
    }
    // Sort by cardinality so small supports (and hence pure equilibria) are
    // found first — matching the order a human analyst would try.
    out.sort_by_key(Vec::len);
    out
}

/// Solves the indifference system for a support pair and validates the
/// result into an equilibrium.
fn try_support_pair(
    game: &BimatrixGame,
    s1: &[usize],
    s2: &[usize],
    stats: &mut EnumerationStats,
) -> Option<SupportEquilibrium> {
    let m = game.cols();
    let n = game.rows();
    // System for the column agent's probabilities y (over s2) and λ1:
    // for each i ∈ s1: Σ_{j∈s2} A[i,j]·y_j − λ1 = 0; Σ y_j = 1.
    let y_solution = solve_indifference(
        s1.len(),
        s2.len(),
        |r, c| game.a(s1[r], s2[c]).clone(),
        stats,
    )?;
    // System for the row agent's probabilities x (over s1) and λ2:
    // for each j ∈ s2: Σ_{i∈s1} B[i,j]·x_i − λ2 = 0; Σ x_i = 1.
    let x_solution = solve_indifference(
        s2.len(),
        s1.len(),
        |r, c| game.b(s1[c], s2[r]).clone(),
        stats,
    )?;
    let (y_vals, lambda1) = y_solution;
    let (x_vals, lambda2) = x_solution;
    // Probabilities must be non-negative, and strictly positive on the
    // claimed support for it to *be* the support.
    if y_vals.iter().any(|p| !p.is_positive()) || x_vals.iter().any(|p| !p.is_positive()) {
        return None;
    }
    let mut x = vec![Rational::zero(); n];
    for (k, &i) in s1.iter().enumerate() {
        x[i] = x_vals[k].clone();
    }
    let mut y = vec![Rational::zero(); m];
    for (k, &j) in s2.iter().enumerate() {
        y[j] = y_vals[k].clone();
    }
    let profile = MixedProfile {
        row: MixedStrategy::try_new(x).ok()?,
        col: MixedStrategy::try_new(y).ok()?,
    };
    // Final exact re-check covers the outside-support best-response
    // conditions (and any degeneracy the linear systems glossed over).
    if !game.is_nash(&profile) {
        return None;
    }
    Some(SupportEquilibrium {
        row_support: s1.to_vec(),
        col_support: s2.to_vec(),
        lambda1,
        lambda2,
        profile,
    })
}

/// Solves `Σ_c payoff(r, c)·p_c = λ` for all `r`, `Σ p_c = 1`.
/// Returns the support probabilities and λ.
fn solve_indifference(
    num_eqs: usize,
    num_probs: usize,
    payoff: impl Fn(usize, usize) -> Rational,
    stats: &mut EnumerationStats,
) -> Option<(Vec<Rational>, Rational)> {
    // Unknowns: p_0..p_{k-1}, λ. Equations: num_eqs indifference + 1 sum.
    let unknowns = num_probs + 1;
    let a = Matrix::from_fn(num_eqs + 1, unknowns, |r, c| {
        if r < num_eqs {
            if c < num_probs {
                payoff(r, c)
            } else {
                Rational::from(-1)
            }
        } else if c < num_probs {
            Rational::one()
        } else {
            Rational::zero()
        }
    });
    let mut b = vec![Rational::zero(); num_eqs + 1];
    b[num_eqs] = Rational::one();
    stats.linear_systems_solved += 1;
    let solution = match solve_linear_system(&a, &b) {
        LinearSolution::Unique(x) => x,
        // Underdetermined systems arise in degenerate games; the particular
        // solution is still a valid candidate — it just may not be the only
        // one. Candidates are re-verified afterwards either way.
        LinearSolution::Underdetermined { particular, .. } => particular,
        LinearSolution::Inconsistent => return None,
    };
    let lambda = solution[num_probs].clone();
    Some((solution[..num_probs].to_vec(), lambda))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ra_exact::rat;
    use ra_games::named::{
        battle_of_the_sexes, fig5_game, matching_pennies, prisoners_dilemma, rock_paper_scissors,
    };
    use ra_games::GameGenerator;

    #[test]
    fn matching_pennies_unique_equilibrium() {
        let (eqs, stats) =
            enumerate_equilibria(&matching_pennies(), &EnumerationOptions::default());
        assert_eq!(eqs.len(), 1);
        let eq = &eqs[0];
        assert_eq!(eq.profile.row, MixedStrategy::uniform(2));
        assert_eq!(eq.profile.col, MixedStrategy::uniform(2));
        assert_eq!(eq.lambda1, rat(0, 1));
        assert!(stats.support_pairs_tried <= 9);
    }

    #[test]
    fn prisoners_dilemma_pure_only() {
        let (eqs, _) = enumerate_equilibria(&prisoners_dilemma(), &EnumerationOptions::default());
        assert_eq!(eqs.len(), 1);
        assert_eq!(eqs[0].row_support, vec![1]);
        assert_eq!(eqs[0].col_support, vec![1]);
        assert_eq!(eqs[0].lambda1, rat(-2, 1));
    }

    #[test]
    fn battle_of_sexes_three_equilibria() {
        let (eqs, _) = enumerate_equilibria(&battle_of_the_sexes(), &EnumerationOptions::default());
        assert_eq!(eqs.len(), 3);
        // Two pure + the mixed ((2/3,1/3),(1/3,2/3)).
        let mixed = eqs.iter().find(|e| e.row_support.len() == 2).unwrap();
        assert_eq!(mixed.profile.row.probs(), &[rat(2, 3), rat(1, 3)]);
        assert_eq!(mixed.profile.col.probs(), &[rat(1, 3), rat(2, 3)]);
        assert_eq!(mixed.lambda1, rat(2, 3));
    }

    #[test]
    fn rps_full_support() {
        let (eqs, _) = enumerate_equilibria(&rock_paper_scissors(), &EnumerationOptions::default());
        assert_eq!(eqs.len(), 1);
        assert_eq!(eqs[0].row_support, vec![0, 1, 2]);
        assert_eq!(eqs[0].profile.row, MixedStrategy::uniform(3));
    }

    #[test]
    fn fig5_degenerate_game_has_equilibria() {
        // Fig. 5 is degenerate (a continuum of equilibria). Enumeration must
        // return genuine equilibria only; the pure (A, C) one in particular.
        let (eqs, _) = enumerate_equilibria(&fig5_game(), &EnumerationOptions::default());
        assert!(!eqs.is_empty());
        for eq in &eqs {
            assert!(fig5_game().is_nash(&eq.profile));
            assert_eq!(eq.lambda1, rat(1, 1));
        }
        assert!(eqs
            .iter()
            .any(|e| e.row_support == vec![0] && e.col_support == vec![0]));
    }

    #[test]
    fn equal_size_restriction_still_finds_nondegenerate() {
        let options = EnumerationOptions {
            max_equilibria: None,
            equal_sized_supports_only: true,
        };
        let (eqs, stats) = enumerate_equilibria(&matching_pennies(), &options);
        assert_eq!(eqs.len(), 1);
        // 2 singleton pairs^2 = 4, plus the full-support pair = 5.
        assert_eq!(stats.support_pairs_tried, 5);
    }

    #[test]
    fn all_enumerated_equilibria_verify_on_random_games() {
        for seed in 0..40 {
            let game = GameGenerator::seeded(seed).bimatrix(3, 3, -10..=10);
            let (eqs, _) = enumerate_equilibria(&game, &EnumerationOptions::default());
            for eq in &eqs {
                assert!(game.is_nash(&eq.profile), "seed {seed}");
                let (l1, l2) = game.equilibrium_values(&eq.profile);
                assert_eq!(l1, eq.lambda1, "seed {seed}");
                assert_eq!(l2, eq.lambda2, "seed {seed}");
                assert_eq!(eq.profile.row.support(), eq.row_support, "seed {seed}");
                assert_eq!(eq.profile.col.support(), eq.col_support, "seed {seed}");
            }
        }
    }

    #[test]
    fn find_one_returns_some_for_random_games() {
        // Nash's theorem: every finite game has a mixed equilibrium. With
        // full support-pair enumeration we find one for small nondegenerate
        // games; random integer games are nondegenerate w.h.p.
        for seed in 0..40 {
            let game = GameGenerator::seeded(1000 + seed).bimatrix(3, 4, -20..=20);
            let eq = find_one_equilibrium(&game);
            assert!(eq.is_some(), "seed {seed}");
        }
    }
}
