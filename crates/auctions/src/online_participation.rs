//! On-line participation (§5, "On-line Participation").
//!
//! Firms decide sequentially; the inventor watches who has already entered
//! and advises the *last* firm with a degenerate probability `p ∈ {0, 1}`:
//! enter iff exactly `k − 1` entrants are missing for the prize to
//! materialise (for `k = 2`: iff exactly one other firm has entered).
//! Following the advice is provably optimal given the entry count; flipping
//! it "will result in a loss" — both facts are checkable by the firm.
//!
//! The paper's expected-gain comparison (random arrival order, `n = 3`,
//! `c/v = 3/8`): offline equilibrium play yields `v/16` per firm, online
//! advice at least `1/3 · 5v/8 = 5v/24`. The exact value computed here is
//! `21v/64`, comfortably above the paper's lower bound.

use rand::Rng;

use ra_exact::{binomial_pmf, Rational};
use ra_solvers::ParticipationParams;

/// Advice to the last-deciding firm, given the observed entry count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LastMoverAdvice {
    /// Whether to participate (`p = 1`) or not (`p = 0`).
    pub participate: bool,
    /// The inventor's claim about how many firms have already entered —
    /// auditable against the signed statistics stream (`ra-authority`).
    pub claimed_prior_entrants: usize,
}

/// Computes the optimal last-mover action for `prior_entrants` entrants.
pub fn last_mover_advice(params: &ParticipationParams, prior_entrants: usize) -> LastMoverAdvice {
    let k = params.k as usize;
    // Entering yields v−c if total (= prior + 1) ≥ k, else −c.
    let enter_gain = if prior_entrants + 1 >= k {
        &params.v - &params.c
    } else {
        -&params.c
    };
    // Staying out yields v if prior ≥ k, else 0.
    let stay_gain = if prior_entrants >= k {
        params.v.clone()
    } else {
        Rational::zero()
    };
    LastMoverAdvice {
        participate: enter_gain > stay_gain,
        claimed_prior_entrants: prior_entrants,
    }
}

/// The gain the last mover receives by taking `participate` with
/// `prior_entrants` already in.
pub fn last_mover_gain(
    params: &ParticipationParams,
    prior_entrants: usize,
    participate: bool,
) -> Rational {
    let k = params.k as usize;
    if participate {
        if prior_entrants + 1 >= k {
            &params.v - &params.c
        } else {
            -&params.c
        }
    } else if prior_entrants >= k {
        params.v.clone()
    } else {
        Rational::zero()
    }
}

/// Verification of last-mover advice (the agent's side): given the claimed
/// entry count, re-derive the optimal action and check the advice matches;
/// returns the guaranteed gain. Also demonstrates the paper's warning — the
/// flipped advice is returned with its (strictly smaller) gain.
///
/// # Errors
///
/// Returns `Err((advised_gain, flipped_gain))` when the advice is *not*
/// optimal for the claimed count (a dishonest inventor).
// The error carries both gains so the agent can show exactly what the bad
// advice would have cost; the path is cold.
#[allow(clippy::result_large_err)]
pub fn verify_last_mover_advice(
    params: &ParticipationParams,
    advice: &LastMoverAdvice,
) -> Result<Rational, (Rational, Rational)> {
    let advised = last_mover_gain(params, advice.claimed_prior_entrants, advice.participate);
    let flipped = last_mover_gain(params, advice.claimed_prior_entrants, !advice.participate);
    if advised >= flipped {
        Ok(advised)
    } else {
        Err((advised, flipped))
    }
}

/// Exact expected gain of a designated firm under the online mechanism with
/// a uniformly random arrival order: non-last firms play the offline
/// symmetric probability `p_offline`; the last firm follows the inventor's
/// advice. Only `k = 2` semantics are implemented for the non-last payoff
/// accounting (the paper's running case).
///
/// # Panics
///
/// Panics if `params.k != 2` or `p_offline ∉ [0, 1]`.
pub fn exact_online_expected_gain(params: &ParticipationParams, p_offline: &Rational) -> Rational {
    assert_eq!(
        params.k, 2,
        "closed-form online analysis implemented for k = 2"
    );
    assert!(
        !p_offline.is_negative() && p_offline <= &Rational::one(),
        "probability out of range"
    );
    let n = params.n as usize;
    let v = &params.v;
    let c = &params.c;
    let one = Rational::one();
    let pr_last = Rational::new(1, n as i64);

    // Case A: the designated firm is last (probability 1/n). The other
    // n−1 firms entered independently with p_offline; advice: enter iff
    // exactly one entered (k−1 = 1), stay out if ≥ 2 (free ride) or 0.
    let mut gain_last = Rational::zero();
    for j in 0..n {
        let pr_j = binomial_pmf((n - 1) as u64, j as u64, p_offline);
        let advice = last_mover_advice(params, j);
        gain_last += &(&pr_j * &last_mover_gain(params, j, advice.participate));
    }

    // Case B: the designated firm is not last (probability (n−1)/n). It
    // plays p_offline; among the other firms, n−2 are non-last (play
    // p_offline) and one is the advised last mover.
    // Enumerate the firm's own action and the count j of entrants among the
    // other n−2 offline players; the last mover reacts to (own + j).
    let mut gain_nonlast = Rational::zero();
    for own in [true, false] {
        let pr_own = if own {
            p_offline.clone()
        } else {
            &one - p_offline
        };
        for j in 0..=(n - 2) {
            let pr_j = binomial_pmf((n - 2) as u64, j as u64, p_offline);
            let prior = j + usize::from(own);
            let last_enters = last_mover_advice(params, prior).participate;
            let total = prior + usize::from(last_enters);
            let gain = if own {
                if total >= 2 {
                    v - c
                } else {
                    -c
                }
            } else if total >= 2 {
                v.clone()
            } else {
                Rational::zero()
            };
            gain_nonlast += &(&pr_own * &pr_j * &gain);
        }
    }

    &pr_last * &gain_last + (&one - &pr_last) * &gain_nonlast
}

/// Monte-Carlo cross-check of [`exact_online_expected_gain`].
pub fn simulate_online_expected_gain(
    params: &ParticipationParams,
    p_offline: &Rational,
    rounds: usize,
    rng: &mut dyn rand::RngCore,
) -> f64 {
    assert_eq!(params.k, 2, "simulation implemented for k = 2");
    let n = params.n as usize;
    let p = p_offline.to_f64();
    let v = params.v.to_f64();
    let c = params.c.to_f64();
    let mut total = 0.0;
    for _ in 0..rounds {
        // The designated firm is index 0; draw a uniformly random arrival
        // order by picking its position.
        let pos = rng.random_range(0..n);
        let mut entered = 0usize;
        let mut own_entered = false;
        for slot in 0..n {
            let is_designated = slot == pos;
            let is_last = slot == n - 1;
            let enters = if is_last {
                last_mover_advice(params, entered).participate
            } else {
                rng.random_bool(p)
            };
            if is_designated {
                own_entered = enters;
            }
            if enters {
                entered += 1;
            }
        }
        total += if own_entered {
            if entered >= 2 {
                v - c
            } else {
                -c
            }
        } else if entered >= 2 {
            v
        } else {
            0.0
        };
    }
    total / rounds as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ra_exact::rat;
    use rand::SeedableRng;

    fn paper() -> ParticipationParams {
        ParticipationParams::paper_example()
    }

    #[test]
    fn advice_matches_paper_cases() {
        let params = paper();
        // Nobody entered: stay out (p = 0), gain 0.
        let a0 = last_mover_advice(&params, 0);
        assert!(!a0.participate);
        assert_eq!(last_mover_gain(&params, 0, false), rat(0, 1));
        // One entered: enter (p = 1), gain v − c = 5v/8 = 5 for v = 8.
        let a1 = last_mover_advice(&params, 1);
        assert!(a1.participate);
        assert_eq!(last_mover_gain(&params, 1, true), rat(5, 1));
        // Two entered: free-ride (p = 0), gain v = 8.
        let a2 = last_mover_advice(&params, 2);
        assert!(!a2.participate);
        assert_eq!(last_mover_gain(&params, 2, false), rat(8, 1));
    }

    #[test]
    fn flipped_advice_is_a_loss() {
        // The paper: "false advice to the last agent, i.e., a flip of the
        // value of p, will result in a loss!"
        let params = paper();
        for prior in 0..3 {
            let honest = last_mover_advice(&params, prior);
            let honest_gain = last_mover_gain(&params, prior, honest.participate);
            let flipped_gain = last_mover_gain(&params, prior, !honest.participate);
            assert!(flipped_gain < honest_gain, "prior = {prior}");
            // Verifier accepts honest advice and rejects flipped.
            assert!(verify_last_mover_advice(&params, &honest).is_ok());
            let dishonest = LastMoverAdvice {
                participate: !honest.participate,
                claimed_prior_entrants: prior,
            };
            assert!(verify_last_mover_advice(&params, &dishonest).is_err());
        }
    }

    #[test]
    fn exact_expected_gain_beats_paper_bound_and_offline() {
        let params = paper();
        let gain = exact_online_expected_gain(&params, &rat(1, 4));
        // Exact value 21v/64 with v = 8: 21/8.
        assert_eq!(gain, rat(21, 8));
        // Paper's lower bound 5v/24 = 5/3, offline value v/16 = 1/2.
        assert!(gain > rat(5, 3), "beats the paper's 5v/24 bound");
        assert!(gain > rat(1, 2), "beats the offline v/16");
    }

    #[test]
    fn monte_carlo_agrees_with_exact() {
        let params = paper();
        let exact = exact_online_expected_gain(&params, &rat(1, 4)).to_f64();
        let mut rng = rand::rngs::StdRng::seed_from_u64(12345);
        let simulated = simulate_online_expected_gain(&params, &rat(1, 4), 200_000, &mut rng);
        assert!(
            (simulated - exact).abs() < 0.05,
            "simulated {simulated} vs exact {exact}"
        );
    }

    #[test]
    fn larger_n_still_beats_offline() {
        // n = 5, c/v = 1/10 (k = 2): offline equilibrium gain vs online.
        let params = ParticipationParams::new(5, 2, Rational::from(10), Rational::from(1)).unwrap();
        let roots = ra_solvers::solve_participation_equilibrium(&params, &rat(1, 1 << 22)).unwrap();
        let p = roots[0].value();
        let online = exact_online_expected_gain(&params, &p);
        // Offline gain at the (bracketed) equilibrium ≈ v·C_k; compare via
        // the participation game's expected payoff.
        let game = crate::ParticipationGame::new(params);
        let offline = game.expected_gain_at(&p);
        assert!(online > offline, "online {online} vs offline {offline}");
    }

    #[test]
    #[should_panic(expected = "k = 2")]
    fn general_k_not_supported_in_closed_form() {
        let params = ParticipationParams::new(5, 3, Rational::from(10), Rational::from(1)).unwrap();
        let _ = exact_online_expected_gain(&params, &rat(1, 4));
    }
}
