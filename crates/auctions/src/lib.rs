//! # ra-auctions — auction case studies with verifiable advice (§5)
//!
//! * [`ParticipationGame`] — the paper's running example: entry fee `c`,
//!   prize `v`, threshold `k`; the inventor computes the hard-to-find
//!   symmetric equilibrium probability and ships it as a checkable
//!   certificate.
//! * [`last_mover_advice`] / [`exact_online_expected_gain`] — the on-line
//!   variant where the last-deciding firm gets provably optimal `p ∈ {0,1}`
//!   advice (and flipping it provably loses).
//! * [`SealedBidAuction`] — first/second-price auctions expanded to explicit
//!   games, with truthfulness claims checked by dominance certificates.
//! * [`GspAuction`] — the generalized second-price keyword auction from the
//!   paper's introduction, where "bid your value" is the seductive advice
//!   the verifiers refute.
//! * [`Lottery`] / [`verify_lottery_advisory`] — the Discussion section's
//!   fake-raffle advisory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gsp;
mod lottery;
mod online_participation;
mod participation;
mod sealed_bid;

pub use gsp::GspAuction;
pub use lottery::{verify_lottery_advisory, Area, Lottery, LotteryAdvisory, LotteryAdvisoryError};
pub use online_participation::{
    exact_online_expected_gain, last_mover_advice, last_mover_gain, simulate_online_expected_gain,
    verify_last_mover_advice, LastMoverAdvice,
};
pub use participation::ParticipationGame;
pub use sealed_bid::{AuctionRule, SealedBidAuction};
