//! The generalized second-price (GSP) ad auction.
//!
//! The paper's introduction motivates the rationality authority with
//! auctions, citing Google's keyword auction [5, 11] (Edelman, Ostrovsky,
//! Schwarz: *Internet advertising and the generalized second-price
//! auction*). GSP is the canonical example of "every variant of an auction
//! introduces the need for a new proof": unlike Vickrey, truthful bidding
//! is **not** dominant in GSP — an inventor shipping the familiar
//! "bid your value" advice here is exactly the plausible-but-wrong
//! consultation the verification machinery must catch.
//!
//! This module builds explicit GSP instances, expands them to
//! [`StrategicGame`]s, and exposes the classic counterexample: the
//! dominance certificate for truthful bidding verifies under second-price
//! (single slot) and is *refuted* under GSP with two slots.

use ra_exact::Rational;
use ra_games::{Dominance, StrategicGame};
use ra_proofs::DominanceCertificate;

/// A GSP instance: `slots.len()` ad positions with click-through rates
/// (CTRs), bidders with per-click valuations, integer bid levels
/// `0..=max_bid`.
///
/// Allocation: bidders sorted by bid (ties toward the lower index) fill the
/// slots in CTR order; the bidder in slot `s` pays the *next* bid down per
/// click.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GspAuction {
    /// Click-through rate of each slot, best first (non-increasing),
    /// as exact rationals in `[0, 1]`.
    pub slot_ctrs: Vec<Rational>,
    /// Each bidder's per-click valuation.
    pub valuations: Vec<u64>,
    /// Bids range over `0..=max_bid`.
    pub max_bid: u64,
}

impl GspAuction {
    /// Validated constructor.
    ///
    /// # Panics
    ///
    /// Panics if there are fewer bidders than slots + 1 (GSP needs a
    /// price-setting loser for the last slot to be interesting), if CTRs
    /// are not non-increasing in `[0, 1]`, or if a valuation exceeds
    /// `max_bid`.
    pub fn new(slot_ctrs: Vec<Rational>, valuations: Vec<u64>, max_bid: u64) -> GspAuction {
        assert!(!slot_ctrs.is_empty(), "at least one slot");
        assert!(
            valuations.len() > slot_ctrs.len(),
            "need more bidders than slots (a price-setter for the last slot)"
        );
        assert!(
            slot_ctrs.windows(2).all(|w| w[0] >= w[1]),
            "CTRs must be non-increasing"
        );
        assert!(
            slot_ctrs
                .iter()
                .all(|c| !c.is_negative() && c <= &Rational::one()),
            "CTRs must lie in [0, 1]"
        );
        assert!(
            valuations.iter().all(|&v| v <= max_bid),
            "valuations must be expressible as bids"
        );
        GspAuction {
            slot_ctrs,
            valuations,
            max_bid,
        }
    }

    /// Number of bidders.
    pub fn num_bidders(&self) -> usize {
        self.valuations.len()
    }

    /// Outcome of one bid profile: for each bidder, `(slot, price_per_click)`
    /// or `None` if unplaced.
    pub fn allocate(&self, bids: &[u64]) -> Vec<Option<(usize, u64)>> {
        assert_eq!(bids.len(), self.num_bidders(), "one bid per bidder");
        // Rank bidders by (bid desc, index asc).
        let mut order: Vec<usize> = (0..bids.len()).collect();
        order.sort_by(|&a, &b| bids[b].cmp(&bids[a]).then(a.cmp(&b)));
        let mut out = vec![None; bids.len()];
        for (slot, &bidder) in order.iter().take(self.slot_ctrs.len()).enumerate() {
            // Price per click = the next-ranked bid (0 if none).
            let price = order.get(slot + 1).map_or(0, |&next| bids[next]);
            out[bidder] = Some((slot, price));
        }
        out
    }

    /// Expands the auction into an explicit strategic game; utility of a
    /// placed bidder is `ctr · (valuation − price)`.
    pub fn to_strategic(&self) -> StrategicGame {
        let n = self.num_bidders();
        let strategies = vec![(self.max_bid + 1) as usize; n];
        let this = self.clone();
        StrategicGame::from_payoff_fn(strategies, move |profile| {
            let bids: Vec<u64> = (0..n).map(|i| profile.strategy_of(i) as u64).collect();
            let allocation = this.allocate(&bids);
            (0..n)
                .map(|i| match &allocation[i] {
                    Some((slot, price)) => {
                        &this.slot_ctrs[*slot]
                            * (Rational::from(this.valuations[i] as i64)
                                - Rational::from(*price as i64))
                    }
                    None => Rational::zero(),
                })
                .collect()
        })
    }

    /// The tempting-but-wrong advice: "bid your valuation, it is weakly
    /// dominant" — true for one slot (where GSP *is* second-price), false
    /// in general.
    pub fn truthful_dominance_certificate(&self, agent: usize) -> DominanceCertificate {
        DominanceCertificate {
            agent,
            strategy: self.valuations[agent] as usize,
            kind: Dominance::Weak,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ra_exact::rat;
    use ra_proofs::verify_dominance_certificate;

    /// The classic EOS counterexample shape: two slots with CTRs 1 and 1/2,
    /// three bidders.
    fn eos_instance() -> GspAuction {
        GspAuction::new(vec![rat(1, 1), rat(1, 2)], vec![8, 5, 2], 10)
    }

    #[test]
    fn allocation_and_prices() {
        let auction = eos_instance();
        // Truthful bids (8, 5, 2): bidder 0 → slot 0 at price 5,
        // bidder 1 → slot 1 at price 2, bidder 2 unplaced.
        let alloc = auction.allocate(&[8, 5, 2]);
        assert_eq!(alloc[0], Some((0, 5)));
        assert_eq!(alloc[1], Some((1, 2)));
        assert_eq!(alloc[2], None);
        // Ties go to the lower index.
        let alloc = auction.allocate(&[5, 5, 5]);
        assert_eq!(alloc[0], Some((0, 5)));
        assert_eq!(alloc[1], Some((1, 5)));
    }

    #[test]
    fn utilities_match_ctr_times_surplus() {
        let auction = eos_instance();
        let game = auction.to_strategic();
        // Bids (8, 5, 2): u0 = 1·(8−5) = 3; u1 = 1/2·(5−2) = 3/2; u2 = 0.
        let payoffs = game.payoffs(&vec![8usize, 5, 2].into());
        assert_eq!(payoffs[0], rat(3, 1));
        assert_eq!(payoffs[1], rat(3, 2));
        assert_eq!(payoffs[2], rat(0, 1));
    }

    #[test]
    fn truthful_bidding_not_dominant_in_gsp() {
        // The headline fact: bidder 0 can profit by shading its bid below
        // bidder 1's — taking slot 2 cheaply instead of slot 1 expensively.
        // Against bids (·, 5, 2): truthful 8 → u = 1·(8−5) = 3;
        // shading to 4 → slot 1 at price 2 → u = 1/2·(8−2) = 3.
        // With CTRs (1, 0.6) shading strictly wins; use those.
        let auction = GspAuction::new(vec![rat(1, 1), rat(3, 5)], vec![8, 5, 2], 10);
        let game = auction.to_strategic();
        // Truthful u0 = 3; shaded-to-4 u0 = 3/5·(8−2) = 18/5 > 3.
        let truthful = game.payoff(0, &vec![8usize, 5, 2].into()).clone();
        let shaded = game.payoff(0, &vec![4usize, 5, 2].into()).clone();
        assert_eq!(truthful, rat(3, 1));
        assert_eq!(shaded, rat(18, 5));
        assert!(shaded > truthful);
        // And the certificate machinery catches the inventor's false claim.
        let cert = auction.truthful_dominance_certificate(0);
        assert!(verify_dominance_certificate(&game, &cert).is_err());
    }

    #[test]
    fn single_slot_gsp_is_second_price() {
        // With one slot GSP degenerates to Vickrey: truthful bidding is
        // weakly dominant and the certificate verifies.
        let auction = GspAuction::new(vec![rat(1, 1)], vec![4, 2], 6);
        let game = auction.to_strategic();
        for agent in 0..2 {
            let cert = auction.truthful_dominance_certificate(agent);
            verify_dominance_certificate(&game, &cert)
                .unwrap_or_else(|e| panic!("agent {agent}: {e}"));
        }
    }

    #[test]
    fn truthful_profile_can_still_be_nash() {
        // Truthfulness is not dominant, but for the EOS instance the
        // truthful profile happens to be a Nash equilibrium — the subtlety
        // that makes naive advice so seductive.
        let auction = eos_instance();
        let game = auction.to_strategic();
        assert!(game.is_pure_nash(&vec![8usize, 5, 2].into()));
    }

    #[test]
    fn pure_equilibria_exist() {
        let auction = eos_instance();
        let game = auction.to_strategic();
        let eqs = game.pure_nash_equilibria();
        assert!(!eqs.is_empty(), "GSP has pure equilibria (EOS Theorem 1)");
    }

    #[test]
    #[should_panic(expected = "more bidders than slots")]
    fn too_few_bidders_rejected() {
        let _ = GspAuction::new(vec![rat(1, 1), rat(1, 2)], vec![3, 2], 5);
    }

    #[test]
    #[should_panic(expected = "non-increasing")]
    fn increasing_ctrs_rejected() {
        let _ = GspAuction::new(vec![rat(1, 2), rat(1, 1)], vec![3, 2, 1], 5);
    }
}
