//! Sealed-bid auctions as explicit strategic games.
//!
//! The paper's introduction motivates the rationality authority with
//! auctions: "every variant of an auction introduces the need for a new
//! proof that, say, reconfirms that the second price auction is the best to
//! use". Here both first- and second-price sealed-bid auctions are expanded
//! into explicit [`StrategicGame`]s, so the dominance certificates of
//! `ra-proofs` can *prove* (or refute) truthfulness claims per instance.

use ra_exact::Rational;
use ra_games::{Dominance, StrategicGame};
use ra_proofs::DominanceCertificate;

/// Payment rule of a sealed-bid auction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AuctionRule {
    /// Winner pays its own bid.
    FirstPrice,
    /// Winner pays the highest losing bid (Vickrey).
    SecondPrice,
}

/// A sealed-bid auction instance with integer private valuations and bid
/// levels `0..=max_bid`. Ties are broken toward the lowest bidder index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SealedBidAuction {
    /// Each bidder's (privately known) valuation.
    pub valuations: Vec<u64>,
    /// Bids range over `0..=max_bid`.
    pub max_bid: u64,
    /// Payment rule.
    pub rule: AuctionRule,
}

impl SealedBidAuction {
    /// Validated constructor.
    ///
    /// # Panics
    ///
    /// Panics if there are fewer than two bidders or a valuation exceeds
    /// `max_bid` (truthful bidding must be an available strategy).
    pub fn new(valuations: Vec<u64>, max_bid: u64, rule: AuctionRule) -> SealedBidAuction {
        assert!(valuations.len() >= 2, "auction needs at least two bidders");
        assert!(
            valuations.iter().all(|&v| v <= max_bid),
            "valuations must be expressible as bids"
        );
        SealedBidAuction {
            valuations,
            max_bid,
            rule,
        }
    }

    /// Number of bidders.
    pub fn num_bidders(&self) -> usize {
        self.valuations.len()
    }

    /// Expands the auction into an explicit strategic game
    /// (strategy `b` of bidder `i` = bidding `b`).
    pub fn to_strategic(&self) -> StrategicGame {
        let n = self.num_bidders();
        let strategies = vec![(self.max_bid + 1) as usize; n];
        let valuations = self.valuations.clone();
        let rule = self.rule;
        StrategicGame::from_payoff_fn(strategies, move |profile| {
            let bids: Vec<u64> = (0..n).map(|i| profile.strategy_of(i) as u64).collect();
            let winner = (0..n)
                .max_by(|&a, &b| bids[a].cmp(&bids[b]).then(b.cmp(&a)))
                .expect("at least one bidder");
            let price = match rule {
                AuctionRule::FirstPrice => bids[winner],
                AuctionRule::SecondPrice => bids
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != winner)
                    .map(|(_, &b)| b)
                    .max()
                    .unwrap_or(0),
            };
            (0..n)
                .map(|i| {
                    if i == winner {
                        Rational::from(valuations[i] as i64) - Rational::from(price as i64)
                    } else {
                        Rational::zero()
                    }
                })
                .collect()
        })
    }

    /// The inventor's advice for bidder `agent`: "bid your valuation, it is
    /// weakly dominant" — packaged as a checkable certificate. Only honest
    /// for second-price auctions; shipping it for a first-price auction is
    /// exactly the kind of bias the verifier catches.
    pub fn truthful_dominance_certificate(&self, agent: usize) -> DominanceCertificate {
        DominanceCertificate {
            agent,
            strategy: self.valuations[agent] as usize,
            kind: Dominance::Weak,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ra_exact::rat;
    use ra_proofs::verify_dominance_certificate;

    #[test]
    fn second_price_truthfulness_certified() {
        let auction = SealedBidAuction::new(vec![3, 5], 6, AuctionRule::SecondPrice);
        let game = auction.to_strategic();
        for agent in 0..2 {
            let cert = auction.truthful_dominance_certificate(agent);
            verify_dominance_certificate(&game, &cert)
                .unwrap_or_else(|e| panic!("agent {agent}: {e}"));
        }
    }

    #[test]
    fn first_price_truthfulness_refuted() {
        // Truthful bidding in a first-price auction yields zero utility;
        // shading the bid is strictly better in some profiles.
        let auction = SealedBidAuction::new(vec![3, 5], 6, AuctionRule::FirstPrice);
        let game = auction.to_strategic();
        let cert = auction.truthful_dominance_certificate(1);
        assert!(verify_dominance_certificate(&game, &cert).is_err());
    }

    #[test]
    fn payoffs_match_rules() {
        let auction = SealedBidAuction::new(vec![4, 2], 5, AuctionRule::SecondPrice);
        let game = auction.to_strategic();
        // Bids (4, 2): bidder 0 wins, pays 2 → utility 2; loser 0.
        assert_eq!(game.payoffs(&vec![4, 2].into()), &[rat(2, 1), rat(0, 1)]);
        // Tie at 3: lowest index wins, pays 3 → utility 4−3 = 1.
        assert_eq!(game.payoffs(&vec![3, 3].into()), &[rat(1, 1), rat(0, 1)]);
        let first = SealedBidAuction::new(vec![4, 2], 5, AuctionRule::FirstPrice);
        let game = first.to_strategic();
        // Bids (4, 2): winner pays own bid 4 → utility 0.
        assert_eq!(game.payoffs(&vec![4, 2].into()), &[rat(0, 1), rat(0, 1)]);
        // Overbidding beyond valuation can go negative.
        assert_eq!(game.payoffs(&vec![5, 2].into()), &[rat(-1, 1), rat(0, 1)]);
    }

    #[test]
    fn truthful_profile_is_nash_in_second_price() {
        for valuations in [vec![3u64, 5], vec![2, 2, 4], vec![1, 6, 3]] {
            let max = 7;
            let auction = SealedBidAuction::new(valuations.clone(), max, AuctionRule::SecondPrice);
            let game = auction.to_strategic();
            let truthful: ra_games::StrategyProfile = valuations
                .iter()
                .map(|&v| v as usize)
                .collect::<Vec<_>>()
                .into();
            assert!(game.is_pure_nash(&truthful), "valuations {valuations:?}");
        }
    }

    #[test]
    fn three_bidder_second_price_dominance() {
        let auction = SealedBidAuction::new(vec![2, 4, 3], 5, AuctionRule::SecondPrice);
        let game = auction.to_strategic();
        for agent in 0..3 {
            let cert = auction.truthful_dominance_certificate(agent);
            assert!(
                verify_dominance_certificate(&game, &cert).is_ok(),
                "agent {agent}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least two bidders")]
    fn single_bidder_rejected() {
        let _ = SealedBidAuction::new(vec![3], 5, AuctionRule::SecondPrice);
    }

    #[test]
    #[should_panic(expected = "expressible as bids")]
    fn valuation_above_max_bid_rejected() {
        let _ = SealedBidAuction::new(vec![3, 9], 5, AuctionRule::SecondPrice);
    }
}
