//! The Participation game (§5, offline version).
//!
//! `n` firms decide whether to enter an auction with participation fee `c`
//! and prize value `v`; the prize materialises only if at least `k` firms
//! enter. Entering when fewer than `k` enter costs the fee; staying out when
//! `≥ k` enter yields `v` for free. This wraps the raw payoff rules around
//! [`SymmetricBinaryGame`], ties them to the solver's
//! [`ParticipationParams`], and produces the inventor's verifiable advice.

use ra_exact::Rational;
use ra_games::SymmetricBinaryGame;
use ra_proofs::ParticipationCertificate;
use ra_solvers::{solve_participation_equilibrium, ParticipationParams, ParticipationSolveError};

/// The participation game: parameters plus the induced symmetric game.
#[derive(Clone, Debug)]
pub struct ParticipationGame {
    params: ParticipationParams,
    game: SymmetricBinaryGame,
}

impl ParticipationGame {
    /// Builds the game from validated parameters.
    pub fn new(params: ParticipationParams) -> ParticipationGame {
        let (v, c, k) = (params.v.clone(), params.c.clone(), params.k as usize);
        let game = SymmetricBinaryGame::from_fn(params.n as usize, move |own, others_in| {
            let total = others_in + own as usize;
            match own {
                1 if total >= k => &v - &c,
                1 => -&c,
                0 if others_in >= k => v.clone(),
                _ => Rational::zero(),
            }
        });
        ParticipationGame { params, game }
    }

    /// The paper's worked example (`n = 3`, `k = 2`, `c/v = 3/8`).
    pub fn paper_example() -> ParticipationGame {
        ParticipationGame::new(ParticipationParams::paper_example())
    }

    /// Game parameters.
    pub fn params(&self) -> &ParticipationParams {
        &self.params
    }

    /// The underlying symmetric game.
    pub fn symmetric_game(&self) -> &SymmetricBinaryGame {
        &self.game
    }

    /// Expected payoff of one firm when everyone participates independently
    /// with probability `p` (by symmetry every firm gets the same).
    pub fn expected_gain_at(&self, p: &Rational) -> Rational {
        // At equilibrium both actions tie; off equilibrium report the mix.
        let in_pay = self.game.expected_payoff(1, p);
        let out_pay = self.game.expected_payoff(0, p);
        p * &in_pay + (Rational::one() - p) * &out_pay
    }

    /// The inventor's job: compute the symmetric equilibrium advice and
    /// package it as a verifiable certificate (smallest interior root, the
    /// conventional advice).
    ///
    /// # Errors
    ///
    /// Propagates [`ParticipationSolveError`] when no interior equilibrium
    /// exists.
    pub fn inventor_advice(
        &self,
        tolerance: &Rational,
    ) -> Result<ParticipationCertificate, ParticipationSolveError> {
        let roots = solve_participation_equilibrium(&self.params, tolerance)?;
        Ok(ParticipationCertificate {
            params: self.params.clone(),
            root: roots
                .into_iter()
                .next()
                .expect("solver returns at least one root"),
        })
    }

    /// Consistency check: the indifference function of the solver parameters
    /// agrees with the symmetric game's indifference gap (they were derived
    /// independently — Eq. (4) algebra vs. direct expectation).
    pub fn indifference_consistent_at(&self, p: &Rational) -> bool {
        self.game.indifference_gap(p) == self.params.indifference_fn(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ra_exact::rat;
    use ra_proofs::verify_participation_certificate;

    #[test]
    fn paper_equilibrium_and_gain() {
        let game = ParticipationGame::paper_example();
        let p = rat(1, 4);
        assert!(game.symmetric_game().is_symmetric_equilibrium(&p));
        // Expected gain at the equilibrium: v/16 = 1/2 for v = 8.
        assert_eq!(game.expected_gain_at(&p), rat(1, 2));
    }

    #[test]
    fn advice_round_trip() {
        let game = ParticipationGame::paper_example();
        let cert = game.inventor_advice(&rat(1, 1 << 24)).unwrap();
        let verified = verify_participation_certificate(&cert, &rat(1, 1 << 20)).unwrap();
        assert_eq!(verified.p, rat(1, 4));
        assert_eq!(verified.expected_gain, rat(1, 2));
    }

    #[test]
    fn indifference_derivations_agree() {
        // The symmetric-game expectation and the Eq. (4)/(5) closed form
        // must agree everywhere, for several parameterisations.
        for (n, k, v, c) in [
            (3u64, 2u64, 8i64, 3i64),
            (5, 2, 10, 1),
            (6, 4, 16, 1),
            (4, 4, 9, 2),
        ] {
            let params =
                ParticipationParams::new(n, k, Rational::from(v), Rational::from(c)).unwrap();
            let game = ParticipationGame::new(params);
            for num in 0..=10i64 {
                let p = rat(num, 10);
                assert!(
                    game.indifference_consistent_at(&p),
                    "n={n} k={k} p={p}: gap {} vs closed form {}",
                    game.symmetric_game().indifference_gap(&p),
                    game.params().indifference_fn(&p)
                );
            }
        }
    }

    #[test]
    fn no_advice_when_fee_too_high() {
        let params = ParticipationParams::new(3, 2, Rational::from(8), Rational::from(5)).unwrap();
        let game = ParticipationGame::new(params);
        assert!(game.inventor_advice(&rat(1, 1024)).is_err());
        // p = 0 remains an equilibrium of the symmetric game.
        assert!(game
            .symmetric_game()
            .is_symmetric_equilibrium(&Rational::zero()));
    }

    #[test]
    fn general_k_consistency_with_strategic_expansion() {
        let params = ParticipationParams::new(4, 3, Rational::from(10), Rational::from(2)).unwrap();
        let game = ParticipationGame::new(params);
        let strategic = game.symmetric_game().to_strategic();
        // Pure profile with exactly 3 participants is a Nash equilibrium:
        // each participant gets v−c=8>0 (leaving → k unmet → others... the
        // leaver gets 0); the outsider joining gets v−c=8 vs currently
        // v=10 — prefers to stay out.
        assert!(strategic.is_pure_nash(&vec![1, 1, 1, 0].into()));
        // Exactly 2 participants: not an equilibrium (they pay c).
        assert!(!strategic.is_pure_nash(&vec![1, 1, 0, 0].into()));
    }
}
