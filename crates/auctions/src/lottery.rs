//! The lottery advisory from the paper's Discussion section.
//!
//! A lottery sells `x` valid raffle tickets; fake tickets circulate in some
//! geographic areas. The lottery company (the game inventor — it profits
//! from sales) can advise participants to avoid the tainted areas, with a
//! *checkable proof*: the per-area valid/fake counts, committed to by
//! signature (see `ra-authority::audit`). The advisory lets buyers keep
//! their winning chance at `1/x` while revealing only the minimum — which
//! areas to avoid — matching the paper's "information disclosure is minimal
//! but very useful" point.

use ra_exact::Rational;

/// Ticket counts for one sales area.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Area {
    /// Genuine tickets on sale in this area.
    pub valid: u64,
    /// Fake (never-winning) tickets mixed into this area.
    pub fake: u64,
}

/// The lottery model: total valid tickets and the per-area composition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lottery {
    /// Total number of genuine tickets `x` (across all areas).
    pub total_valid: u64,
    /// Sales areas.
    pub areas: Vec<Area>,
}

impl Lottery {
    /// Validated constructor.
    ///
    /// # Panics
    ///
    /// Panics if the per-area valid counts do not sum to `total_valid`, or
    /// if there are no sellable tickets somewhere.
    pub fn new(areas: Vec<Area>) -> Lottery {
        assert!(!areas.is_empty(), "lottery needs at least one area");
        assert!(
            areas.iter().all(|a| a.valid + a.fake > 0),
            "every area must sell something"
        );
        let total_valid = areas.iter().map(|a| a.valid).sum();
        assert!(total_valid > 0, "no genuine tickets at all");
        Lottery { total_valid, areas }
    }

    /// Probability that a uniformly-chosen ticket bought in `area` wins:
    /// `(valid / (valid + fake)) · (1 / x)`.
    ///
    /// # Panics
    ///
    /// Panics if `area` is out of range.
    pub fn win_probability(&self, area: usize) -> Rational {
        let a = &self.areas[area];
        Rational::new(a.valid as i64, (a.valid + a.fake) as i64)
            * Rational::new(1, self.total_valid as i64)
    }

    /// The fair-lottery baseline `1/x`.
    pub fn fair_probability(&self) -> Rational {
        Rational::new(1, self.total_valid as i64)
    }
}

/// The company's advisory: areas to avoid, with the committed counts as the
/// proof.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LotteryAdvisory {
    /// Area indices the company claims are tainted.
    pub avoid: Vec<usize>,
    /// The committed model backing the claim.
    pub model: Lottery,
}

/// Rejection reasons for lottery advisories.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LotteryAdvisoryError {
    /// An avoid-listed area actually has no fake tickets.
    CleanAreaDefamed {
        /// The falsely accused area.
        area: usize,
    },
    /// A tainted area was left off the avoid list — the advisory would
    /// leave buyers exposed.
    TaintedAreaOmitted {
        /// The omitted tainted area.
        area: usize,
    },
    /// An index is out of range.
    OutOfRange,
}

impl std::fmt::Display for LotteryAdvisoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LotteryAdvisoryError::CleanAreaDefamed { area } => {
                write!(f, "area {area} has no fake tickets but was advised against")
            }
            LotteryAdvisoryError::TaintedAreaOmitted { area } => {
                write!(
                    f,
                    "area {area} sells fakes but is missing from the advisory"
                )
            }
            LotteryAdvisoryError::OutOfRange => write!(f, "area index out of range"),
        }
    }
}

impl std::error::Error for LotteryAdvisoryError {}

/// Verifies an advisory against the committed model: the avoid list must be
/// exactly the set of areas whose win probability falls below the fair
/// `1/x` (i.e. areas selling fakes).
///
/// # Errors
///
/// See [`LotteryAdvisoryError`].
pub fn verify_lottery_advisory(advisory: &LotteryAdvisory) -> Result<(), LotteryAdvisoryError> {
    let model = &advisory.model;
    if advisory.avoid.iter().any(|&a| a >= model.areas.len()) {
        return Err(LotteryAdvisoryError::OutOfRange);
    }
    for (idx, area) in model.areas.iter().enumerate() {
        let listed = advisory.avoid.contains(&idx);
        let tainted = area.fake > 0;
        if listed && !tainted {
            return Err(LotteryAdvisoryError::CleanAreaDefamed { area: idx });
        }
        if !listed && tainted {
            return Err(LotteryAdvisoryError::TaintedAreaOmitted { area: idx });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ra_exact::rat;

    fn example() -> Lottery {
        Lottery::new(vec![
            Area { valid: 50, fake: 0 },
            Area {
                valid: 30,
                fake: 30,
            },
            Area { valid: 20, fake: 0 },
        ])
    }

    #[test]
    fn win_probabilities() {
        let lottery = example();
        assert_eq!(lottery.total_valid, 100);
        assert_eq!(lottery.fair_probability(), rat(1, 100));
        assert_eq!(lottery.win_probability(0), rat(1, 100));
        // Area 1: half the tickets are fake — chance halves.
        assert_eq!(lottery.win_probability(1), rat(1, 200));
        assert_eq!(lottery.win_probability(2), rat(1, 100));
    }

    #[test]
    fn honest_advisory_verifies() {
        let advisory = LotteryAdvisory {
            avoid: vec![1],
            model: example(),
        };
        assert!(verify_lottery_advisory(&advisory).is_ok());
        // Following the advisory preserves the fair chance.
        for &area in &[0usize, 2] {
            assert_eq!(
                advisory.model.win_probability(area),
                advisory.model.fair_probability()
            );
        }
    }

    #[test]
    fn defamation_caught() {
        // Claiming a clean area is tainted (e.g. to steer buyers) fails.
        let advisory = LotteryAdvisory {
            avoid: vec![0, 1],
            model: example(),
        };
        assert_eq!(
            verify_lottery_advisory(&advisory),
            Err(LotteryAdvisoryError::CleanAreaDefamed { area: 0 })
        );
    }

    #[test]
    fn omission_caught() {
        let advisory = LotteryAdvisory {
            avoid: vec![],
            model: example(),
        };
        assert_eq!(
            verify_lottery_advisory(&advisory),
            Err(LotteryAdvisoryError::TaintedAreaOmitted { area: 1 })
        );
    }

    #[test]
    fn out_of_range_caught() {
        let advisory = LotteryAdvisory {
            avoid: vec![7],
            model: example(),
        };
        assert_eq!(
            verify_lottery_advisory(&advisory),
            Err(LotteryAdvisoryError::OutOfRange)
        );
    }

    #[test]
    #[should_panic(expected = "at least one area")]
    fn empty_lottery_rejected() {
        let _ = Lottery::new(vec![]);
    }
}
