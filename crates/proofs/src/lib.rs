//! # ra-proofs — certificates, interactive proofs and the proof kernel
//!
//! This crate is the heart of the rationality authority: everything an agent
//! needs to *verify* advice without trusting the (possibly biased) game
//! inventor who produced it.
//!
//! Three layers:
//!
//! 1. **Kernel** ([`kernel`]) — a minimal LCF-style proof checker over the
//!    Fig. 2 vocabulary (`isStrat`, `isNash`, `isMaxNash`, `≤u`, …). The
//!    checker is the stand-in for the paper's use of Coq;
//!    [`kernel::CheckedProp`] values can only be minted by [`kernel::check`].
//! 2. **Certificates** — one verifiable advice format per case study: §3
//!    enumeration proofs, §4's P1 support certificates and P2 private
//!    interactive proofs, §5 participation-probability certificates, §6
//!    online congestion advice, and dominant-strategy claims for auctions.
//! 3. **Transcripts** ([`Transcript`]) — bit-level communication and
//!    disclosure accounting, so Lemma 1's `O(n + m)` bits and Remark 2/3's
//!    privacy claims are *measured*, not asserted.
//!
//! ## Example: verify advice without trusting the inventor
//!
//! ```
//! use ra_games::named::prisoners_dilemma;
//! use ra_proofs::{PureNashCertificate, prove_is_nash};
//!
//! let game = prisoners_dilemma().to_strategic();
//! // Inventor side (untrusted): claims (defect, defect) is an equilibrium.
//! let cert = PureNashCertificate {
//!     profile: vec![1, 1].into(),
//!     proof: prove_is_nash(vec![1, 1].into()),
//! };
//! // Agent side (trusted kernel): re-check the claim.
//! let theorem = cert.verify(&game).expect("honest certificate");
//! assert!(theorem.applies_to(&game));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Rejections deliberately carry the full offending proposition/profile so
// agents can audit *why* advice was refused; the error path is cold.
#![allow(clippy::result_large_err)]

mod certificates;
pub mod kernel;
mod transcript;

pub use certificates::dominant::{
    verify_dominance_certificate, DominanceCertificate, DominanceError,
};
pub use certificates::online_advice::{
    honest_online_advice, verify_online_advice, OnlineAdviceCertificate, OnlineAdviceError,
    OnlineAdviceVerified,
};
pub use certificates::participation::{
    cross_check_advice, verify_participation_certificate, ParticipationCertificate,
    ParticipationError, ParticipationVerified,
};
pub use certificates::private::{
    honest_row_advice, verify_private_advice, HonestOracle, LyingOracle, P2Advice, P2Config,
    P2Outcome, P2Rejection, SupportOracle,
};
pub use certificates::pure_nash::{
    prove_is_nash, prove_max_nash, prove_min_nash, prove_not_nash, PureNashCertificate,
};
pub use certificates::support::{
    verify_support_certificate, P1Error, P1Verified, SupportCertificate,
};
pub use transcript::{Disclosure, Transcript, TranscriptEvent};
