//! The trusted proof checker — the kernel of the rationality authority.
//!
//! This is the only code an agent must trust (the paper's "verification
//! procedure v() supplied by a reputable verifier"). It is deliberately
//! small: every rule reduces to exact rational comparisons of utility
//! lookups. Proofs are untrusted input from the (possibly biased) inventor;
//! the checker either derives a sealed [`CheckedProp`] or reports precisely
//! why the proof is invalid.
//!
//! Soundness argument, rule by rule, is in each match arm below; the
//! [`CheckedProp`] type cannot be constructed outside this module, so a
//! value of that type *is* the theorem (LCF style).

use std::fmt;

use ra_games::{StrategicGame, StrategyProfile};

use super::proof::{NotAboveWitness, ProfileVerdict, Proof};
use super::prop::Prop;
use super::term::{Term, TermError};

/// A fingerprint binding checked statements to one specific game, so a
/// certificate for game `G` cannot be replayed against `G'`.
///
/// Costs one pass over the payoff tensor. A verifier serving many
/// certificates for the same game should compute this once and use
/// [`check_prehashed`] afterwards — certificate checking itself is then
/// `O(Σ_i |A_i|)`, preserving the paper's verify-vs-compute asymmetry.
///
/// (SipHash via [`std::hash`]; collision resistance is not a security goal
/// here — end-to-end sessions in `ra-authority` additionally commit to
/// games with SHA-256.)
pub fn game_fingerprint(game: &StrategicGame) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    game.num_agents().hash(&mut hasher);
    game.strategy_counts().hash(&mut hasher);
    for profile in game.profiles() {
        for u in game.payoffs(&profile) {
            u.hash(&mut hasher);
        }
    }
    hasher.finish()
}

/// Cost accounting for a verification run — the basis of the §3
/// verify-vs-compute experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckCost {
    /// Exact utility-table lookups performed.
    pub utility_lookups: u64,
    /// Proof rules applied.
    pub rules_applied: u64,
}

/// A proposition that has been *verified* against a specific game.
///
/// Values of this type can only be produced by [`check`]; holding one is
/// holding the theorem. (The constructor is private — this is the Rust
/// encoding of an LCF-style kernel.)
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckedProp {
    prop: Prop,
    fingerprint: u64,
    cost: CheckCost,
}

impl CheckedProp {
    /// The proposition that was established.
    pub fn prop(&self) -> &Prop {
        &self.prop
    }

    /// Fingerprint of the game the proposition was checked against.
    pub fn game_fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// What the verification cost.
    pub fn cost(&self) -> CheckCost {
        self.cost
    }

    /// Returns `true` if this theorem talks about the given game.
    pub fn applies_to(&self, game: &StrategicGame) -> bool {
        self.fingerprint == game_fingerprint(game)
    }
}

/// Reasons a proof can be rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProofError {
    /// `EvalAtom` was applied to a non-atomic proposition.
    NotAtomic(Prop),
    /// An atomic proposition evaluated to false.
    AtomFalse(Prop),
    /// A term referred outside the game.
    Term(TermError),
    /// `OrIntro` index out of range.
    OrIndexOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of disjuncts.
        len: usize,
    },
    /// The witness inside an `OrIntro` proves a different disjunct.
    OrWitnessMismatch {
        /// What the disjunct at the index is.
        expected: Prop,
        /// What the witness actually claims.
        actual: Prop,
    },
    /// A claimed equilibrium profile is malformed for the game.
    InvalidProfile(StrategyProfile),
    /// `NashIntro` failed: the profile admits an improving deviation.
    DeviationFound {
        /// The profile that is not an equilibrium.
        profile: StrategyProfile,
        /// Deviating agent.
        agent: usize,
        /// Improving strategy.
        strategy: usize,
    },
    /// A `NashRefute` witness is out of range or not improving.
    RefutationInvalid {
        /// Why the witness fails.
        reason: String,
    },
    /// A maximality classification has the wrong length.
    ClassificationLength {
        /// Provided entries.
        got: usize,
        /// Required entries (profile-space size).
        expected: usize,
    },
    /// A classification verdict fails to check at some profile.
    VerdictInvalid {
        /// Index of the profile (in enumeration order).
        profile_index: usize,
        /// Why the verdict fails.
        reason: String,
    },
    /// The `nash` sub-proof of a max/min proof proves the wrong statement.
    SubProofMismatch {
        /// What was required.
        expected: Prop,
        /// What the sub-proof established.
        actual: Prop,
    },
}

impl fmt::Display for ProofError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProofError::NotAtomic(p) => write!(f, "EvalAtom on non-atomic proposition {p}"),
            ProofError::AtomFalse(p) => write!(f, "atomic proposition is false: {p}"),
            ProofError::Term(e) => write!(f, "{e}"),
            ProofError::OrIndexOutOfRange { index, len } => {
                write!(f, "disjunct index {index} out of range ({len} disjuncts)")
            }
            ProofError::OrWitnessMismatch { expected, actual } => {
                write!(f, "or-witness proves {actual}, expected {expected}")
            }
            ProofError::InvalidProfile(s) => write!(f, "profile {s} invalid for game"),
            ProofError::DeviationFound { profile, agent, strategy } => write!(
                f,
                "profile {profile} is not an equilibrium: agent {agent} improves by strategy {strategy}"
            ),
            ProofError::RefutationInvalid { reason } => write!(f, "refutation invalid: {reason}"),
            ProofError::ClassificationLength { got, expected } => {
                write!(f, "classification covers {got} profiles, game has {expected}")
            }
            ProofError::VerdictInvalid { profile_index, reason } => {
                write!(f, "verdict for profile #{profile_index} invalid: {reason}")
            }
            ProofError::SubProofMismatch { expected, actual } => {
                write!(f, "sub-proof proves {actual}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for ProofError {}

impl From<TermError> for ProofError {
    fn from(e: TermError) -> ProofError {
        ProofError::Term(e)
    }
}

/// Checks `proof` against `game`.
///
/// # Errors
///
/// Returns a [`ProofError`] describing the first invalid step found.
///
/// # Examples
///
/// ```
/// use ra_games::named::prisoners_dilemma;
/// use ra_proofs::kernel::{check, Proof, Prop};
///
/// let game = prisoners_dilemma().to_strategic();
/// let proof = Proof::NashIntro { profile: vec![1, 1].into() };
/// let theorem = check(&game, &proof).unwrap();
/// assert_eq!(theorem.prop(), &Prop::IsNash(vec![1, 1].into()));
///
/// // A false claim is rejected, with the improving deviation reported.
/// let bogus = Proof::NashIntro { profile: vec![0, 0].into() };
/// assert!(check(&game, &bogus).is_err());
/// ```
pub fn check(game: &StrategicGame, proof: &Proof) -> Result<CheckedProp, ProofError> {
    check_prehashed(game, game_fingerprint(game), proof)
}

/// Checks `proof` against `game`, reusing a fingerprint previously computed
/// by [`game_fingerprint`] for the *same* game.
///
/// This is the hot path for a verifier serving many certificates about one
/// game: the `O(|A|)` game hash is paid once, and each check costs only the
/// kernel work (e.g. `Σ_i (|A_i| − 1)` lookups for `IsNash`). Passing a
/// fingerprint of a different game produces theorems bound to that other
/// game — callers own that invariant.
///
/// # Errors
///
/// Same as [`check`].
pub fn check_prehashed(
    game: &StrategicGame,
    fingerprint: u64,
    proof: &Proof,
) -> Result<CheckedProp, ProofError> {
    let mut cost = CheckCost::default();
    let prop = check_inner(game, proof, &mut cost)?;
    Ok(CheckedProp {
        prop,
        fingerprint,
        cost,
    })
}

fn check_inner(
    game: &StrategicGame,
    proof: &Proof,
    cost: &mut CheckCost,
) -> Result<Prop, ProofError> {
    cost.rules_applied += 1;
    match proof {
        Proof::EvalAtom(prop) => {
            if !prop.is_atomic() {
                return Err(ProofError::NotAtomic(prop.clone()));
            }
            if eval_atom(game, prop, cost)? {
                Ok(prop.clone())
            } else {
                Err(ProofError::AtomFalse(prop.clone()))
            }
        }
        Proof::AndIntro(parts) => {
            let mut props = Vec::with_capacity(parts.len());
            for part in parts {
                props.push(check_inner(game, part, cost)?);
            }
            Ok(Prop::And(props))
        }
        Proof::OrIntro {
            disjuncts,
            index,
            witness,
        } => {
            let expected = disjuncts.get(*index).ok_or(ProofError::OrIndexOutOfRange {
                index: *index,
                len: disjuncts.len(),
            })?;
            let actual = check_inner(game, witness, cost)?;
            if &actual != expected {
                return Err(ProofError::OrWitnessMismatch {
                    expected: expected.clone(),
                    actual,
                });
            }
            Ok(Prop::Or(disjuncts.clone()))
        }
        Proof::NashIntro { profile } => {
            check_is_nash(game, profile, cost)?;
            Ok(Prop::IsNash(profile.clone()))
        }
        Proof::NashRefute {
            profile,
            agent,
            strategy,
        } => {
            check_refutation(game, profile, *agent, *strategy, cost)?;
            Ok(Prop::NotNash(profile.clone()))
        }
        Proof::MaxNashIntro {
            profile,
            nash,
            classification,
        } => {
            check_extremal(game, profile, nash, classification, cost, Extremum::Max)?;
            Ok(Prop::IsMaxNash(profile.clone()))
        }
        Proof::MinNashIntro {
            profile,
            nash,
            classification,
        } => {
            check_extremal(game, profile, nash, classification, cost, Extremum::Min)?;
            Ok(Prop::IsMinNash(profile.clone()))
        }
    }
}

fn eval_term(
    game: &StrategicGame,
    t: &Term,
    cost: &mut CheckCost,
) -> Result<ra_exact::Rational, ProofError> {
    cost.utility_lookups += t.lookup_count();
    Ok(t.eval(game)?)
}

fn eval_atom(game: &StrategicGame, prop: &Prop, cost: &mut CheckCost) -> Result<bool, ProofError> {
    Ok(match prop {
        Prop::Le(a, b) => eval_term(game, a, cost)? <= eval_term(game, b, cost)?,
        Prop::Lt(a, b) => eval_term(game, a, cost)? < eval_term(game, b, cost)?,
        Prop::Eq(a, b) => eval_term(game, a, cost)? == eval_term(game, b, cost)?,
        Prop::IsStrat(s) => s.is_valid_for(game.strategy_counts()),
        Prop::EqStrat(a, b) => a == b,
        Prop::LeStrat(a, b) => {
            require_valid(game, a)?;
            require_valid(game, b)?;
            cost.utility_lookups += 2 * game.num_agents() as u64;
            game.profile_le(a, b)
        }
        Prop::NoComp(a, b) => {
            require_valid(game, a)?;
            require_valid(game, b)?;
            cost.utility_lookups += 4 * game.num_agents() as u64;
            game.profiles_incomparable(a, b)
        }
        _ => unreachable!("is_atomic filtered non-atoms"),
    })
}

fn require_valid(game: &StrategicGame, s: &StrategyProfile) -> Result<(), ProofError> {
    if s.is_valid_for(game.strategy_counts()) {
        Ok(())
    } else {
        Err(ProofError::InvalidProfile(s.clone()))
    }
}

/// Soundness of `NashIntro`: we *re-derive* the equilibrium property by
/// checking all `Σ_i (|A_i| − 1)` unilateral deviations; nothing from the
/// untrusted proof is consumed beyond the profile itself.
fn check_is_nash(
    game: &StrategicGame,
    profile: &StrategyProfile,
    cost: &mut CheckCost,
) -> Result<(), ProofError> {
    require_valid(game, profile)?;
    for agent in 0..game.num_agents() {
        let current = game.payoff(agent, profile);
        cost.utility_lookups += 1;
        for s in 0..game.strategy_counts()[agent] {
            if s == profile.strategy_of(agent) {
                continue;
            }
            cost.utility_lookups += 1;
            if game.payoff(agent, &profile.with_strategy(agent, s)) > current {
                return Err(ProofError::DeviationFound {
                    profile: profile.clone(),
                    agent,
                    strategy: s,
                });
            }
        }
    }
    Ok(())
}

/// Soundness of `NashRefute`: the single claimed deviation is re-evaluated;
/// it must be in range, distinct, and *strictly* improving.
fn check_refutation(
    game: &StrategicGame,
    profile: &StrategyProfile,
    agent: usize,
    strategy: usize,
    cost: &mut CheckCost,
) -> Result<(), ProofError> {
    require_valid(game, profile)?;
    if agent >= game.num_agents() {
        return Err(ProofError::RefutationInvalid {
            reason: format!("agent {agent} out of range"),
        });
    }
    if strategy >= game.strategy_counts()[agent] {
        return Err(ProofError::RefutationInvalid {
            reason: format!("strategy {strategy} out of range for agent {agent}"),
        });
    }
    if strategy == profile.strategy_of(agent) {
        return Err(ProofError::RefutationInvalid {
            reason: "witness strategy equals the profile's strategy".to_owned(),
        });
    }
    cost.utility_lookups += 2;
    let improved = game.payoff(agent, &profile.with_strategy(agent, strategy));
    if improved > game.payoff(agent, profile) {
        Ok(())
    } else {
        Err(ProofError::RefutationInvalid {
            reason: format!("deviation of agent {agent} to strategy {strategy} does not improve"),
        })
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Extremum {
    Max,
    Min,
}

/// Soundness of `MaxNashIntro`/`MinNashIntro`: the candidate is re-checked
/// as an equilibrium, and the classification is forced to cover the profile
/// space *in the kernel's own enumeration order* — the proof cannot skip or
/// duplicate profiles. Each verdict is verified by constant-many lookups:
///
/// * `NotNash` — the witness deviation must strictly improve, so the
///   profile genuinely is not an equilibrium and is irrelevant to
///   maximality.
/// * `NotStrictlyBetter(PrefersCandidate)` — some agent strictly prefers the
///   candidate, so ¬(candidate ≤u other) (for Min: prefers other, so
///   ¬(other ≤u candidate)).
/// * `NotStrictlyBetter(LeCandidate)` — other ≤u candidate is checked for
///   all agents (for Min: candidate ≤u other), which rules out strict
///   domination in the relevant direction.
///
/// Together these imply Fig. 2's `NashMax` (resp. the footnote-1 minimal
/// variant).
fn check_extremal(
    game: &StrategicGame,
    candidate: &StrategyProfile,
    nash: &Proof,
    classification: &[ProfileVerdict],
    cost: &mut CheckCost,
    direction: Extremum,
) -> Result<(), ProofError> {
    let expected_prop = Prop::IsNash(candidate.clone());
    let actual = check_inner(game, nash, cost)?;
    if actual != expected_prop {
        return Err(ProofError::SubProofMismatch {
            expected: expected_prop,
            actual,
        });
    }
    let total = game.num_profiles();
    if classification.len() != total {
        return Err(ProofError::ClassificationLength {
            got: classification.len(),
            expected: total,
        });
    }
    for (idx, (other, verdict)) in game.profiles().zip(classification).enumerate() {
        match verdict {
            ProfileVerdict::NotNash { agent, strategy } => {
                check_refutation(game, &other, *agent, *strategy, cost).map_err(|e| {
                    ProofError::VerdictInvalid {
                        profile_index: idx,
                        reason: e.to_string(),
                    }
                })?;
            }
            ProfileVerdict::NotStrictlyBetter(witness) => match witness {
                NotAboveWitness::PrefersCandidate { agent } => {
                    if *agent >= game.num_agents() {
                        return Err(ProofError::VerdictInvalid {
                            profile_index: idx,
                            reason: format!("agent {agent} out of range"),
                        });
                    }
                    cost.utility_lookups += 2;
                    let (good, bad) = match direction {
                        Extremum::Max => (candidate, &other),
                        Extremum::Min => (&other, candidate),
                    };
                    // Max: candidate strictly preferred ⇒ ¬(candidate ≤u other).
                    // Min: other strictly preferred ⇒ ¬(other ≤u candidate).
                    if game.payoff(*agent, good) <= game.payoff(*agent, bad) {
                        return Err(ProofError::VerdictInvalid {
                            profile_index: idx,
                            reason: format!(
                                "agent {agent} does not strictly prefer the required side"
                            ),
                        });
                    }
                }
                NotAboveWitness::LeCandidate => {
                    cost.utility_lookups += 2 * game.num_agents() as u64;
                    let holds = match direction {
                        Extremum::Max => game.profile_le(&other, candidate),
                        Extremum::Min => game.profile_le(candidate, &other),
                    };
                    if !holds {
                        return Err(ProofError::VerdictInvalid {
                            profile_index: idx,
                            reason: "claimed ≤u relation with candidate does not hold".to_owned(),
                        });
                    }
                }
            },
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ra_exact::rat;
    use ra_games::named::{coordination_game, prisoners_dilemma};

    fn pd() -> StrategicGame {
        prisoners_dilemma().to_strategic()
    }

    #[test]
    fn eval_atoms() {
        let game = pd();
        let t1 = Term::utility(0, vec![1, 1].into());
        let t2 = Term::constant(rat(-1, 1));
        let ok = check(&game, &Proof::EvalAtom(Prop::Le(t1.clone(), t2.clone()))).unwrap();
        assert_eq!(ok.cost().utility_lookups, 1);
        assert!(ok.applies_to(&game));
        let bad = check(&game, &Proof::EvalAtom(Prop::Lt(t2, t1)));
        assert!(matches!(bad, Err(ProofError::AtomFalse(_))));
    }

    #[test]
    fn non_atomic_rejected() {
        let game = pd();
        let p = Proof::EvalAtom(Prop::IsNash(vec![1, 1].into()));
        assert!(matches!(check(&game, &p), Err(ProofError::NotAtomic(_))));
    }

    #[test]
    fn nash_intro_and_refute() {
        let game = pd();
        assert!(check(
            &game,
            &Proof::NashIntro {
                profile: vec![1, 1].into()
            }
        )
        .is_ok());
        assert!(matches!(
            check(
                &game,
                &Proof::NashIntro {
                    profile: vec![0, 0].into()
                }
            ),
            Err(ProofError::DeviationFound {
                agent: 0,
                strategy: 1,
                ..
            })
        ));
        assert!(check(
            &game,
            &Proof::NashRefute {
                profile: vec![0, 0].into(),
                agent: 1,
                strategy: 1
            }
        )
        .is_ok());
        // Non-improving witness rejected.
        assert!(matches!(
            check(
                &game,
                &Proof::NashRefute {
                    profile: vec![1, 1].into(),
                    agent: 0,
                    strategy: 0
                }
            ),
            Err(ProofError::RefutationInvalid { .. })
        ));
    }

    #[test]
    fn or_intro() {
        let game = pd();
        let disjuncts = vec![
            Prop::IsNash(vec![0, 0].into()),
            Prop::IsNash(vec![1, 1].into()),
        ];
        let ok = Proof::OrIntro {
            disjuncts: disjuncts.clone(),
            index: 1,
            witness: Box::new(Proof::NashIntro {
                profile: vec![1, 1].into(),
            }),
        };
        assert!(check(&game, &ok).is_ok());
        let wrong_index = Proof::OrIntro {
            disjuncts: disjuncts.clone(),
            index: 0,
            witness: Box::new(Proof::NashIntro {
                profile: vec![1, 1].into(),
            }),
        };
        assert!(matches!(
            check(&game, &wrong_index),
            Err(ProofError::OrWitnessMismatch { .. })
        ));
        let oob = Proof::OrIntro {
            disjuncts,
            index: 5,
            witness: Box::new(Proof::NashIntro {
                profile: vec![1, 1].into(),
            }),
        };
        assert!(matches!(
            check(&game, &oob),
            Err(ProofError::OrIndexOutOfRange { .. })
        ));
    }

    #[test]
    fn max_nash_full_proof() {
        // Coordination game with 2 strategies: equilibria (0,0) < (1,1).
        let game = coordination_game(2);
        let candidate: StrategyProfile = vec![1, 1].into();
        // Profiles in order: (0,0), (1,0), (0,1), (1,1).
        let classification = vec![
            // (0,0): equilibrium but ≤u candidate.
            ProfileVerdict::NotStrictlyBetter(NotAboveWitness::LeCandidate),
            // (1,0): not an equilibrium (agent 0 should match agent 1).
            ProfileVerdict::NotNash {
                agent: 0,
                strategy: 0,
            },
            // (0,1): symmetric.
            ProfileVerdict::NotNash {
                agent: 0,
                strategy: 1,
            },
            // (1,1): the candidate itself — ≤u candidate trivially.
            ProfileVerdict::NotStrictlyBetter(NotAboveWitness::LeCandidate),
        ];
        let proof = Proof::MaxNashIntro {
            profile: candidate.clone(),
            nash: Box::new(Proof::NashIntro {
                profile: candidate.clone(),
            }),
            classification,
        };
        let theorem = check(&game, &proof).unwrap();
        assert_eq!(theorem.prop(), &Prop::IsMaxNash(candidate));
    }

    #[test]
    fn max_nash_rejects_false_claim() {
        let game = coordination_game(2);
        let candidate: StrategyProfile = vec![0, 0].into();
        // Try to claim (0,0) is maximal by mislabelling (1,1).
        let classification = vec![
            ProfileVerdict::NotStrictlyBetter(NotAboveWitness::LeCandidate),
            ProfileVerdict::NotNash {
                agent: 0,
                strategy: 0,
            },
            ProfileVerdict::NotNash {
                agent: 0,
                strategy: 1,
            },
            // (1,1) is an equilibrium strictly above (0,0): every honest
            // verdict fails. LeCandidate is false...
            ProfileVerdict::NotStrictlyBetter(NotAboveWitness::LeCandidate),
        ];
        let proof = Proof::MaxNashIntro {
            profile: candidate.clone(),
            nash: Box::new(Proof::NashIntro {
                profile: candidate.clone(),
            }),
            classification,
        };
        assert!(matches!(
            check(&game, &proof),
            Err(ProofError::VerdictInvalid {
                profile_index: 3,
                ..
            })
        ));
        // ...and so is a fake deviation witness.
        let classification = vec![
            ProfileVerdict::NotStrictlyBetter(NotAboveWitness::LeCandidate),
            ProfileVerdict::NotNash {
                agent: 0,
                strategy: 0,
            },
            ProfileVerdict::NotNash {
                agent: 0,
                strategy: 1,
            },
            ProfileVerdict::NotNash {
                agent: 1,
                strategy: 0,
            },
        ];
        let proof = Proof::MaxNashIntro {
            profile: candidate.clone(),
            nash: Box::new(Proof::NashIntro { profile: candidate }),
            classification,
        };
        assert!(matches!(
            check(&game, &proof),
            Err(ProofError::VerdictInvalid {
                profile_index: 3,
                ..
            })
        ));
    }

    #[test]
    fn classification_length_enforced() {
        let game = coordination_game(2);
        let candidate: StrategyProfile = vec![1, 1].into();
        let proof = Proof::MaxNashIntro {
            profile: candidate.clone(),
            nash: Box::new(Proof::NashIntro { profile: candidate }),
            classification: vec![ProfileVerdict::NotStrictlyBetter(
                NotAboveWitness::LeCandidate,
            )],
        };
        assert!(matches!(
            check(&game, &proof),
            Err(ProofError::ClassificationLength {
                got: 1,
                expected: 4
            })
        ));
    }

    #[test]
    fn min_nash_proof() {
        let game = coordination_game(2);
        let candidate: StrategyProfile = vec![0, 0].into();
        let classification = vec![
            ProfileVerdict::NotStrictlyBetter(NotAboveWitness::LeCandidate),
            ProfileVerdict::NotNash {
                agent: 0,
                strategy: 0,
            },
            ProfileVerdict::NotNash {
                agent: 0,
                strategy: 1,
            },
            // (1,1): equilibrium, strictly above candidate: for Min proofs
            // PrefersCandidate means "some agent strictly prefers other",
            // i.e. ¬(other ≤u candidate).
            ProfileVerdict::NotStrictlyBetter(NotAboveWitness::PrefersCandidate { agent: 0 }),
        ];
        let proof = Proof::MinNashIntro {
            profile: candidate.clone(),
            nash: Box::new(Proof::NashIntro {
                profile: candidate.clone(),
            }),
            classification,
        };
        let theorem = check(&game, &proof).unwrap();
        assert_eq!(theorem.prop(), &Prop::IsMinNash(candidate));
    }

    #[test]
    fn fingerprint_distinguishes_games() {
        let g1 = pd();
        let g2 = coordination_game(2);
        assert_ne!(game_fingerprint(&g1), game_fingerprint(&g2));
        let theorem = check(
            &g1,
            &Proof::NashIntro {
                profile: vec![1, 1].into(),
            },
        )
        .unwrap();
        assert!(theorem.applies_to(&g1));
        assert!(!theorem.applies_to(&g2));
    }

    #[test]
    fn cost_is_linear_not_exponential_for_nash_intro() {
        // 3 agents × 4 strategies: profile space 64, but a Nash check costs
        // only Σ(|A_i|−1) + n = 3·3 + 3 = 12 lookups.
        let game = ra_games::GameGenerator::seeded(3).strategic(vec![4, 4, 4], -5..=5);
        let eqs = game.pure_nash_equilibria();
        if let Some(eq) = eqs.first() {
            let theorem = check(
                &game,
                &Proof::NashIntro {
                    profile: eq.clone(),
                },
            )
            .unwrap();
            assert_eq!(theorem.cost().utility_lookups, 12);
        }
    }
}
