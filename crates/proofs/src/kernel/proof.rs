//! Proof objects — the untrusted data the inventor ships to agents.
//!
//! A [`Proof`] is a tree of rule applications. The rules mirror the §3 proof
//! scheme (Fig. 2): equilibrium introduction checks every unilateral
//! deviation, refutation carries a single improving-deviation witness, and
//! maximality carries a *complete classification* of the profile space
//! (`allStrat` / `allNash` / `NashMax`) where each entry is a constant-time
//! checkable witness.
//!
//! Proofs can be arbitrarily wrong — they are produced by a possibly biased
//! inventor. Soundness lives entirely in the checker.

use ra_games::{Strategy, StrategyProfile};

use super::prop::Prop;

/// Witness that a Nash equilibrium `other` does not strictly dominate the
/// maximality candidate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NotAboveWitness {
    /// Some agent strictly prefers the candidate to `other`
    /// (hence ¬(candidate ≤u other)).
    PrefersCandidate {
        /// The witnessing agent.
        agent: usize,
    },
    /// `other ≤u candidate` — the candidate is at least as good everywhere,
    /// so `other` cannot strictly dominate it.
    LeCandidate,
}

/// Per-profile verdict inside a maximality/minimality proof.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProfileVerdict {
    /// The profile is not an equilibrium; `(agent, strategy)` is an
    /// improving unilateral deviation.
    NotNash {
        /// Deviating agent.
        agent: usize,
        /// The strategy it deviates to.
        strategy: Strategy,
    },
    /// The profile may be an equilibrium, but it does not strictly dominate
    /// (for max proofs) / is not strictly dominated by (for min proofs) the
    /// candidate.
    NotStrictlyBetter(NotAboveWitness),
}

/// A proof tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Proof {
    /// Decide an atomic proposition ([`Prop::is_atomic`]) by direct
    /// evaluation in the kernel.
    EvalAtom(Prop),
    /// Prove a conjunction from proofs of all conjuncts.
    AndIntro(Vec<Proof>),
    /// Prove `Or(disjuncts)` from a proof of the disjunct at `index`.
    OrIntro {
        /// The full disjunction being proved.
        disjuncts: Vec<Prop>,
        /// Which disjunct the witness establishes.
        index: usize,
        /// Proof of that disjunct.
        witness: Box<Proof>,
    },
    /// Prove `IsNash(profile)`. The kernel exhaustively checks all
    /// unilateral deviations (cost `Σ_i (|A_i| − 1)` utility comparisons —
    /// polynomial, unlike finding the equilibrium).
    NashIntro {
        /// The claimed equilibrium.
        profile: StrategyProfile,
    },
    /// Prove `NotNash(profile)` from one improving-deviation witness
    /// (constant-time check).
    NashRefute {
        /// The profile being refuted.
        profile: StrategyProfile,
        /// Deviating agent.
        agent: usize,
        /// Improving strategy for that agent.
        strategy: Strategy,
    },
    /// Prove `IsMaxNash(profile)`: a Nash sub-proof plus one verdict per
    /// profile of the game, in the canonical [`ra_games::ProfileIter`]
    /// order. This is the machine-checkable form of Fig. 2's
    /// `allStrat → allNash → NashMax` pipeline.
    MaxNashIntro {
        /// The claimed maximal equilibrium.
        profile: StrategyProfile,
        /// Proof that it is an equilibrium at all.
        nash: Box<Proof>,
        /// One verdict for every profile, in enumeration order.
        classification: Vec<ProfileVerdict>,
    },
    /// Prove `IsMinNash(profile)` — the dual of [`Proof::MaxNashIntro`]
    /// (footnote 1 of the paper).
    MinNashIntro {
        /// The claimed minimal equilibrium.
        profile: StrategyProfile,
        /// Proof that it is an equilibrium at all.
        nash: Box<Proof>,
        /// One verdict for every profile, in enumeration order.
        classification: Vec<ProfileVerdict>,
    },
}

impl Proof {
    /// The proposition this proof claims to establish (before checking).
    pub fn claims(&self) -> Prop {
        match self {
            Proof::EvalAtom(p) => p.clone(),
            Proof::AndIntro(ps) => Prop::And(ps.iter().map(Proof::claims).collect()),
            Proof::OrIntro { disjuncts, .. } => Prop::Or(disjuncts.clone()),
            Proof::NashIntro { profile } => Prop::IsNash(profile.clone()),
            Proof::NashRefute { profile, .. } => Prop::NotNash(profile.clone()),
            Proof::MaxNashIntro { profile, .. } => Prop::IsMaxNash(profile.clone()),
            Proof::MinNashIntro { profile, .. } => Prop::IsMinNash(profile.clone()),
        }
    }

    /// Size of the proof tree in rule applications (a rough "proof length"
    /// measure for the experiments).
    pub fn size(&self) -> u64 {
        match self {
            Proof::EvalAtom(_) | Proof::NashIntro { .. } | Proof::NashRefute { .. } => 1,
            Proof::AndIntro(ps) => 1 + ps.iter().map(Proof::size).sum::<u64>(),
            Proof::OrIntro { witness, .. } => 1 + witness.size(),
            Proof::MaxNashIntro {
                nash,
                classification,
                ..
            }
            | Proof::MinNashIntro {
                nash,
                classification,
                ..
            } => 1 + nash.size() + classification.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_shape() {
        let s: StrategyProfile = vec![0, 1].into();
        let p = Proof::NashIntro { profile: s.clone() };
        assert_eq!(p.claims(), Prop::IsNash(s.clone()));
        let r = Proof::NashRefute {
            profile: s.clone(),
            agent: 0,
            strategy: 1,
        };
        assert_eq!(r.claims(), Prop::NotNash(s.clone()));
        let and = Proof::AndIntro(vec![p, r]);
        assert_eq!(
            and.claims(),
            Prop::And(vec![Prop::IsNash(s.clone()), Prop::NotNash(s)])
        );
    }

    #[test]
    fn size_counts_rules() {
        let s: StrategyProfile = vec![0, 0].into();
        let nash = Proof::NashIntro { profile: s.clone() };
        let max = Proof::MaxNashIntro {
            profile: s,
            nash: Box::new(nash),
            classification: vec![
                ProfileVerdict::NotStrictlyBetter(NotAboveWitness::LeCandidate);
                4
            ],
        };
        assert_eq!(max.size(), 1 + 1 + 4);
    }
}
