//! The proof kernel: terms, propositions, proof rules and the trusted
//! checker.
//!
//! This is the workspace's stand-in for the paper's use of Coq (§3): a
//! small, auditable core that checks inventor-supplied proof objects. The
//! LCF discipline is encoded in the type system — [`CheckedProp`] values can
//! only be minted by [`check`].

mod checker;
mod proof;
mod prop;
mod term;

pub use checker::{check, check_prehashed, game_fingerprint, CheckCost, CheckedProp, ProofError};
pub use proof::{NotAboveWitness, ProfileVerdict, Proof};
pub use prop::Prop;
pub use term::{Term, TermError};
