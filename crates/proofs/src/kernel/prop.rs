//! Propositions of the proof language — the Fig. 2 vocabulary.
//!
//! Propositions are *closed* statements about one fixed game. Universal
//! statements over the (finite) profile space are handled by dedicated proof
//! rules rather than binders, keeping the trusted checker small.

use std::fmt;

use ra_games::StrategyProfile;

use super::term::Term;

/// A closed proposition about a fixed strategic game.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Prop {
    /// `lhs ≤ rhs`.
    Le(Term, Term),
    /// `lhs < rhs`.
    Lt(Term, Term),
    /// `lhs = rhs`.
    Eq(Term, Term),
    /// Fig. 2 `isStrat`: the profile is well-formed for the game.
    IsStrat(StrategyProfile),
    /// Fig. 2 `eqStrat`: the two profiles are identical.
    EqStrat(StrategyProfile, StrategyProfile),
    /// Fig. 2 `leStrat`: `s1 ≤u s2` (every agent weakly prefers `s2`).
    LeStrat(StrategyProfile, StrategyProfile),
    /// Fig. 2 `noComp`: the profiles are `≤u`-incomparable.
    NoComp(StrategyProfile, StrategyProfile),
    /// Fig. 2 `isNash`: the profile is a pure Nash equilibrium.
    IsNash(StrategyProfile),
    /// Negation of `isNash` (established by a deviation witness).
    NotNash(StrategyProfile),
    /// Fig. 2 `isMaxNash`: a Nash equilibrium not strictly `≤u`-below any
    /// other Nash equilibrium.
    IsMaxNash(StrategyProfile),
    /// Minimal-equilibrium variant (footnote 1).
    IsMinNash(StrategyProfile),
    /// Conjunction.
    And(Vec<Prop>),
    /// Disjunction.
    Or(Vec<Prop>),
}

impl Prop {
    /// Returns `true` for the *atomic* propositions that the kernel's
    /// `EvalAtom` rule may decide by direct evaluation: those whose cost is
    /// bounded by a constant number of term evaluations / profile scans —
    /// crucially *not* the quantified predicates (`IsNash`, `IsMaxNash`),
    /// which need structured proofs.
    pub fn is_atomic(&self) -> bool {
        matches!(
            self,
            Prop::Le(..)
                | Prop::Lt(..)
                | Prop::Eq(..)
                | Prop::IsStrat(..)
                | Prop::EqStrat(..)
                | Prop::LeStrat(..)
                | Prop::NoComp(..)
        )
    }
}

impl fmt::Display for Prop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Prop::Le(a, b) => write!(f, "{a} <= {b}"),
            Prop::Lt(a, b) => write!(f, "{a} < {b}"),
            Prop::Eq(a, b) => write!(f, "{a} = {b}"),
            Prop::IsStrat(s) => write!(f, "isStrat({s})"),
            Prop::EqStrat(a, b) => write!(f, "eqStrat({a}, {b})"),
            Prop::LeStrat(a, b) => write!(f, "leStrat({a}, {b})"),
            Prop::NoComp(a, b) => write!(f, "noComp({a}, {b})"),
            Prop::IsNash(s) => write!(f, "isNash({s})"),
            Prop::NotNash(s) => write!(f, "¬isNash({s})"),
            Prop::IsMaxNash(s) => write!(f, "isMaxNash({s})"),
            Prop::IsMinNash(s) => write!(f, "isMinNash({s})"),
            Prop::And(ps) => {
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Prop::Or(ps) => {
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ra_exact::rat;

    #[test]
    fn atomicity_classification() {
        let s: StrategyProfile = vec![0, 0].into();
        assert!(Prop::IsStrat(s.clone()).is_atomic());
        assert!(Prop::LeStrat(s.clone(), s.clone()).is_atomic());
        assert!(!Prop::IsNash(s.clone()).is_atomic());
        assert!(!Prop::IsMaxNash(s.clone()).is_atomic());
        assert!(!Prop::And(vec![]).is_atomic());
        let t = Term::constant(rat(1, 1));
        assert!(Prop::Le(t.clone(), t.clone()).is_atomic());
    }

    #[test]
    fn display_round() {
        let s: StrategyProfile = vec![1, 0].into();
        let p = Prop::And(vec![Prop::IsNash(s.clone()), Prop::IsStrat(s)]);
        assert_eq!(format!("{p}"), "(isNash((1, 0)) ∧ isStrat((1, 0)))");
    }
}
