//! Terms of the proof language.
//!
//! A [`Term`] is a closed arithmetic expression over a fixed game: rational
//! constants, utility lookups `u(i, Si)` (Fig. 2's `u`), and arithmetic. The
//! kernel evaluates terms exactly; there are no free variables, so
//! evaluation is total once the profile indices are in range.

use std::fmt;

use ra_exact::Rational;
use ra_games::{StrategicGame, StrategyProfile};

/// A closed arithmetic term over a game's utility tensor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Term {
    /// A rational constant.
    Const(Rational),
    /// `u(agent, profile)` — the agent's utility under the profile.
    Utility {
        /// The agent whose utility is read.
        agent: usize,
        /// The pure profile at which it is read.
        profile: StrategyProfile,
    },
    /// Sum of two terms.
    Add(Box<Term>, Box<Term>),
    /// Difference of two terms.
    Sub(Box<Term>, Box<Term>),
    /// Product of two terms.
    Mul(Box<Term>, Box<Term>),
}

/// Error raised when a term refers outside the game.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TermError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for TermError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "term error: {}", self.message)
    }
}

impl std::error::Error for TermError {}

impl Term {
    /// Convenience constructor for a utility lookup.
    pub fn utility(agent: usize, profile: StrategyProfile) -> Term {
        Term::Utility { agent, profile }
    }

    /// Convenience constructor for a constant.
    pub fn constant(v: Rational) -> Term {
        Term::Const(v)
    }

    /// Exact evaluation against a game.
    ///
    /// # Errors
    ///
    /// Returns [`TermError`] if a utility lookup is out of range for the
    /// game (invalid agent or profile).
    pub fn eval(&self, game: &StrategicGame) -> Result<Rational, TermError> {
        match self {
            Term::Const(v) => Ok(v.clone()),
            Term::Utility { agent, profile } => {
                if *agent >= game.num_agents() {
                    return Err(TermError {
                        message: format!("agent {agent} out of range"),
                    });
                }
                if !profile.is_valid_for(game.strategy_counts()) {
                    return Err(TermError {
                        message: format!("profile {profile} invalid for game"),
                    });
                }
                Ok(game.payoff(*agent, profile).clone())
            }
            Term::Add(a, b) => Ok(a.eval(game)? + b.eval(game)?),
            Term::Sub(a, b) => Ok(a.eval(game)? - b.eval(game)?),
            Term::Mul(a, b) => Ok(a.eval(game)? * b.eval(game)?),
        }
    }

    /// Number of utility lookups the term performs — the kernel's unit of
    /// verification cost.
    pub fn lookup_count(&self) -> u64 {
        match self {
            Term::Const(_) => 0,
            Term::Utility { .. } => 1,
            Term::Add(a, b) | Term::Sub(a, b) | Term::Mul(a, b) => {
                a.lookup_count() + b.lookup_count()
            }
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(v) => write!(f, "{v}"),
            Term::Utility { agent, profile } => write!(f, "u({agent}, {profile})"),
            Term::Add(a, b) => write!(f, "({a} + {b})"),
            Term::Sub(a, b) => write!(f, "({a} - {b})"),
            Term::Mul(a, b) => write!(f, "({a} * {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ra_exact::rat;
    use ra_games::named::prisoners_dilemma;

    #[test]
    fn evaluates_utilities() {
        let game = prisoners_dilemma().to_strategic();
        let t = Term::utility(0, vec![1, 0].into());
        assert_eq!(t.eval(&game).unwrap(), rat(0, 1));
        let t2 = Term::Add(
            Box::new(Term::utility(0, vec![1, 1].into())),
            Box::new(Term::Const(rat(5, 1))),
        );
        assert_eq!(t2.eval(&game).unwrap(), rat(3, 1));
    }

    #[test]
    fn arithmetic() {
        let game = prisoners_dilemma().to_strategic();
        let t = Term::Mul(
            Box::new(Term::Sub(
                Box::new(Term::Const(rat(7, 2))),
                Box::new(Term::Const(rat(1, 2))),
            )),
            Box::new(Term::Const(rat(2, 3))),
        );
        assert_eq!(t.eval(&game).unwrap(), rat(2, 1));
    }

    #[test]
    fn out_of_range_errors() {
        let game = prisoners_dilemma().to_strategic();
        assert!(Term::utility(5, vec![0, 0].into()).eval(&game).is_err());
        assert!(Term::utility(0, vec![0, 7].into()).eval(&game).is_err());
        assert!(Term::utility(0, vec![0].into()).eval(&game).is_err());
    }

    #[test]
    fn lookup_counting() {
        let t = Term::Add(
            Box::new(Term::utility(0, vec![0, 0].into())),
            Box::new(Term::Mul(
                Box::new(Term::utility(1, vec![0, 0].into())),
                Box::new(Term::Const(rat(1, 1))),
            )),
        );
        assert_eq!(t.lookup_count(), 2);
    }

    #[test]
    fn display_is_readable() {
        let t = Term::Sub(
            Box::new(Term::utility(0, vec![1, 0].into())),
            Box::new(Term::Const(rat(1, 2))),
        );
        assert_eq!(format!("{t}"), "(u(0, (1, 0)) - 1/2)");
    }
}
