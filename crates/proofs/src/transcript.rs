//! Communication transcripts and privacy accounting.
//!
//! Lemma 1 of the paper bounds P1's communication at `O(n + m)` bits, and
//! Remarks 2–3 argue P2 reveals strictly less than P1 while making few
//! oracle queries. To make those claims *measurable* rather than asserted,
//! every interactive verification in this crate logs its messages into a
//! [`Transcript`] with explicit bit counts and disclosure tags.

use std::fmt;

/// Who learns a given piece of information.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Disclosure {
    /// Only the advised agent itself learns it (its own data).
    OwnData,
    /// Information about the *other* agents (supports, probabilities) —
    /// exactly what P2 is designed to avoid leaking.
    OpponentData,
    /// Aggregate/equilibrium values (the λ payoffs) — revealed by both P1
    /// and P2.
    EquilibriumValue,
}

/// One logged protocol event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TranscriptEvent {
    /// Prover → agent message.
    ProverMessage {
        /// Bits transferred.
        bits: u64,
        /// What kind of information the bits disclose.
        disclosure: Disclosure,
        /// Human-readable description.
        label: String,
    },
    /// Agent → prover oracle query (an index, `⌈log₂ range⌉` bits).
    Query {
        /// Bits transferred.
        bits: u64,
        /// The queried index.
        index: usize,
    },
    /// Prover → agent oracle answer (one bit of opponent information).
    Answer {
        /// The membership bit.
        in_support: bool,
    },
}

/// A complete record of one interactive verification.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Transcript {
    events: Vec<TranscriptEvent>,
}

impl Transcript {
    /// Creates an empty transcript.
    pub fn new() -> Transcript {
        Transcript::default()
    }

    /// Logs a prover message.
    pub fn prover_message(&mut self, bits: u64, disclosure: Disclosure, label: impl Into<String>) {
        self.events.push(TranscriptEvent::ProverMessage {
            bits,
            disclosure,
            label: label.into(),
        });
    }

    /// Logs a query for `index` out of `range` possibilities.
    pub fn query(&mut self, index: usize, range: usize) {
        let bits = usize::BITS as u64 - (range.max(2) - 1).leading_zeros() as u64;
        self.events.push(TranscriptEvent::Query { bits, index });
    }

    /// Logs an oracle answer.
    pub fn answer(&mut self, in_support: bool) {
        self.events.push(TranscriptEvent::Answer { in_support });
    }

    /// All events, in order.
    pub fn events(&self) -> &[TranscriptEvent] {
        &self.events
    }

    /// Number of oracle queries made.
    pub fn num_queries(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e, TranscriptEvent::Query { .. }))
            .count() as u64
    }

    /// Total bits communicated in either direction.
    pub fn total_bits(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                TranscriptEvent::ProverMessage { bits, .. } => *bits,
                TranscriptEvent::Query { bits, .. } => *bits,
                TranscriptEvent::Answer { .. } => 1,
            })
            .sum()
    }

    /// Bits of *opponent* information disclosed to the agent — the privacy
    /// metric distinguishing P1 (whole supports) from P2 (one bit per
    /// query).
    pub fn opponent_bits_disclosed(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                TranscriptEvent::ProverMessage {
                    bits,
                    disclosure: Disclosure::OpponentData,
                    ..
                } => *bits,
                TranscriptEvent::Answer { .. } => 1,
                _ => 0,
            })
            .sum()
    }
}

impl fmt::Display for Transcript {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "transcript: {} events, {} bits total, {} opponent bits",
            self.events.len(),
            self.total_bits(),
            self.opponent_bits_disclosed()
        )?;
        for e in &self.events {
            match e {
                TranscriptEvent::ProverMessage {
                    bits,
                    disclosure,
                    label,
                } => writeln!(f, "  prover → agent: {label} ({bits} bits, {disclosure:?})")?,
                TranscriptEvent::Query { bits, index } => {
                    writeln!(f, "  agent → prover: query index {index} ({bits} bits)")?
                }
                TranscriptEvent::Answer { in_support } => {
                    writeln!(f, "  prover → agent: answer {in_support} (1 bit)")?
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting() {
        let mut t = Transcript::new();
        t.prover_message(8, Disclosure::OwnData, "own support");
        t.prover_message(16, Disclosure::EquilibriumValue, "lambdas");
        t.prover_message(4, Disclosure::OpponentData, "opponent support mask");
        t.query(3, 8); // 3 bits
        t.answer(true);
        assert_eq!(t.num_queries(), 1);
        assert_eq!(t.total_bits(), 8 + 16 + 4 + 3 + 1);
        assert_eq!(t.opponent_bits_disclosed(), 4 + 1);
        assert_eq!(t.events().len(), 5);
    }

    #[test]
    fn query_bit_width() {
        let mut t = Transcript::new();
        t.query(0, 2); // 1 bit
        t.query(0, 1024); // 10 bits
        assert_eq!(t.total_bits(), 11);
    }

    #[test]
    fn display_contains_summary() {
        let mut t = Transcript::new();
        t.answer(false);
        let s = t.to_string();
        assert!(s.contains("1 bits total"));
        assert!(s.contains("answer false"));
    }
}
