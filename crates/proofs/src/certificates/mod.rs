//! Certificate formats and their verifiers — one module per case study.
//!
//! | module | paper section | certificate | verifier cost |
//! |---|---|---|---|
//! | [`pure_nash`] | §3 | kernel proof objects | `O(Σ|Aᵢ|)` per Nash claim, `O(|A|)` for maximality |
//! | [`support`] | §4 P1 | both supports (`n + m` bits) | one exact `(k+1)×(k+1)` solve per agent |
//! | [`private`] | §4 P2 | own data + λs + oracle access | expected `O(n)` queries, constant for large supports |
//! | [`participation`] | §5 | equilibrium probability (exact or bracket) | a few exact binomial tails |
//! | [`online_advice`] | §6 | statistics + Nash assignment | `O(loads · links)` |
//! | [`dominant`] | auctions | dominant-strategy claim | table scan |

pub mod dominant;
pub mod online_advice;
pub mod participation;
pub mod private;
pub mod pure_nash;
pub mod support;
