//! The P1 interactive proof (§4, Fig. 3, Lemma 1).
//!
//! The prover (inventor) sends each agent *both supports* of the claimed
//! mixed equilibrium — `O(n + m)` bits as two index masks. The verifier
//! reconstructs the equilibrium by solving the indifference linear system
//! exactly and re-checks every Nash condition, so a dishonest support claim
//! can never be accepted.

use std::fmt;

use ra_exact::{solve_linear_system, LinearSolution, Matrix, Rational};
use ra_games::{BimatrixGame, MixedProfile, MixedStrategy};

use crate::transcript::{Disclosure, Transcript};

/// The P1 certificate: just the two supports (Fig. 3's prover message).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SupportCertificate {
    /// Claimed support of the row agent (sorted, non-empty).
    pub row_support: Vec<usize>,
    /// Claimed support of the column agent (sorted, non-empty).
    pub col_support: Vec<usize>,
}

impl SupportCertificate {
    /// The certificate's wire size in bits: one membership bit per pure
    /// strategy of each agent — Lemma 1's `O(n + m)`.
    pub fn encoded_bits(&self, game: &BimatrixGame) -> u64 {
        (game.rows() + game.cols()) as u64
    }
}

/// Successful P1 verification: the reconstructed equilibrium and the
/// evidence trail.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct P1Verified {
    /// The reconstructed mixed equilibrium.
    pub profile: MixedProfile,
    /// Row agent's equilibrium payoff λ₁.
    pub lambda1: Rational,
    /// Column agent's equilibrium payoff λ₂.
    pub lambda2: Rational,
    /// Communication transcript (for the Lemma 1 measurements).
    pub transcript: Transcript,
}

/// Reasons P1 verification rejects a certificate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum P1Error {
    /// A support is empty or contains out-of-range indices.
    MalformedSupport {
        /// Description of the problem.
        reason: String,
    },
    /// The indifference system has no solution: the claimed supports cannot
    /// carry an equilibrium.
    IndifferenceInconsistent,
    /// The indifference system is underdetermined (degenerate game); P1
    /// cannot pin down the equilibrium from supports alone.
    Degenerate,
    /// A reconstructed probability is negative or zero on the claimed
    /// support.
    InvalidProbability {
        /// Which agent's distribution is broken (0 = row, 1 = column).
        agent: usize,
        /// The offending strategy index.
        index: usize,
    },
    /// A strategy outside the support would earn more than λ — the claimed
    /// profile is not an equilibrium.
    OutsideSupportImproves {
        /// Which agent could deviate (0 = row, 1 = column).
        agent: usize,
        /// The profitable strategy outside the support.
        strategy: usize,
    },
}

impl fmt::Display for P1Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            P1Error::MalformedSupport { reason } => write!(f, "malformed support: {reason}"),
            P1Error::IndifferenceInconsistent => {
                write!(f, "indifference system inconsistent for the claimed supports")
            }
            P1Error::Degenerate => write!(
                f,
                "indifference system underdetermined: degenerate game, supports do not determine the equilibrium"
            ),
            P1Error::InvalidProbability { agent, index } => {
                write!(f, "reconstructed probability invalid for agent {agent}, strategy {index}")
            }
            P1Error::OutsideSupportImproves { agent, strategy } => write!(
                f,
                "agent {agent} would profit by deviating to out-of-support strategy {strategy}"
            ),
        }
    }
}

impl std::error::Error for P1Error {}

/// Runs the P1 verifier (both agents' sides) on a support certificate.
///
/// Follows Fig. 3: solve the `(k+1) × (k+1)` linear system (1) for the
/// opponent's probabilities and λ, check `0 ≤ y ≤ 1`, and check that every
/// out-of-support strategy earns at most λ. All arithmetic is exact.
///
/// # Errors
///
/// See [`P1Error`]; every rejection pinpoints the failed condition.
///
/// # Examples
///
/// ```
/// use ra_games::named::matching_pennies;
/// use ra_proofs::{verify_support_certificate, SupportCertificate};
///
/// let cert = SupportCertificate { row_support: vec![0, 1], col_support: vec![0, 1] };
/// let verified = verify_support_certificate(&matching_pennies(), &cert).unwrap();
/// assert_eq!(verified.lambda1, ra_exact::rat(0, 1));
///
/// // Lying about the support is caught.
/// let bogus = SupportCertificate { row_support: vec![0], col_support: vec![0, 1] };
/// assert!(verify_support_certificate(&matching_pennies(), &bogus).is_err());
/// ```
pub fn verify_support_certificate(
    game: &BimatrixGame,
    certificate: &SupportCertificate,
) -> Result<P1Verified, P1Error> {
    validate_support(&certificate.row_support, game.rows(), "row")?;
    validate_support(&certificate.col_support, game.cols(), "column")?;
    let mut transcript = Transcript::new();
    transcript.prover_message(
        game.rows() as u64,
        Disclosure::OwnData,
        "row support mask (S1)",
    );
    transcript.prover_message(
        game.cols() as u64,
        Disclosure::OpponentData,
        "column support mask (S2)",
    );

    // Row agent's verifier: reconstruct the column agent's probabilities y
    // and λ1 from the indifference of rows in S1 (Fig. 3, system (1)).
    let (y, lambda1) = solve_side(
        &certificate.row_support,
        &certificate.col_support,
        |i, j| game.a(i, j).clone(),
        game.cols(),
        0,
    )?;
    // Outside-support condition for the row agent: every i ∉ S1 earns ≤ λ1.
    for i in 0..game.rows() {
        if certificate.row_support.contains(&i) {
            continue;
        }
        if game.row_payoff_against(i, &y) > lambda1 {
            return Err(P1Error::OutsideSupportImproves {
                agent: 0,
                strategy: i,
            });
        }
    }

    // Column agent's verifier (symmetric, "easy to state" per the paper).
    let (x, lambda2) = solve_side(
        &certificate.col_support,
        &certificate.row_support,
        |j, i| game.b(i, j).clone(),
        game.rows(),
        1,
    )?;
    for j in 0..game.cols() {
        if certificate.col_support.contains(&j) {
            continue;
        }
        if game.col_payoff_against(&x, j) > lambda2 {
            return Err(P1Error::OutsideSupportImproves {
                agent: 1,
                strategy: j,
            });
        }
    }

    let profile = MixedProfile { row: x, col: y };
    debug_assert!(game.is_nash(&profile), "P1 acceptance implies Nash");
    Ok(P1Verified {
        profile,
        lambda1,
        lambda2,
        transcript,
    })
}

fn validate_support(support: &[usize], bound: usize, who: &str) -> Result<(), P1Error> {
    if support.is_empty() {
        return Err(P1Error::MalformedSupport {
            reason: format!("{who} support is empty"),
        });
    }
    if support.windows(2).any(|w| w[0] >= w[1]) {
        return Err(P1Error::MalformedSupport {
            reason: format!("{who} support not strictly sorted"),
        });
    }
    if support.iter().any(|&i| i >= bound) {
        return Err(P1Error::MalformedSupport {
            reason: format!("{who} support index out of range"),
        });
    }
    Ok(())
}

/// Solves the indifference system for one side: probabilities of the
/// `opp_support` strategies (over the opponent's full strategy space of size
/// `opp_total`) making every `own_support` strategy earn the same λ.
fn solve_side(
    own_support: &[usize],
    opp_support: &[usize],
    payoff: impl Fn(usize, usize) -> Rational,
    opp_total: usize,
    agent: usize,
) -> Result<(MixedStrategy, Rational), P1Error> {
    let k = opp_support.len();
    let rows = own_support.len() + 1;
    let a = Matrix::from_fn(rows, k + 1, |r, c| {
        if r < own_support.len() {
            if c < k {
                payoff(own_support[r], opp_support[c])
            } else {
                Rational::from(-1)
            }
        } else if c < k {
            Rational::one()
        } else {
            Rational::zero()
        }
    });
    let mut b = vec![Rational::zero(); rows];
    b[own_support.len()] = Rational::one();
    let solution = match solve_linear_system(&a, &b) {
        LinearSolution::Unique(x) => x,
        LinearSolution::Underdetermined { .. } => return Err(P1Error::Degenerate),
        LinearSolution::Inconsistent => return Err(P1Error::IndifferenceInconsistent),
    };
    let lambda = solution[k].clone();
    let mut probs = vec![Rational::zero(); opp_total];
    for (idx, &j) in opp_support.iter().enumerate() {
        let p = &solution[idx];
        // Strictly positive on the claimed support, ≤ 1 implicitly via the
        // simplex sum; Fig. 3 asks for 0 ≤ y_t ≤ 1, strictness pins the
        // support exactly.
        if !p.is_positive() || p > &Rational::one() {
            return Err(P1Error::InvalidProbability { agent, index: j });
        }
        probs[j] = p.clone();
    }
    let mixed = MixedStrategy::try_new(probs).map_err(|_| P1Error::InvalidProbability {
        agent,
        index: opp_support[0],
    })?;
    Ok((mixed, lambda))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ra_exact::rat;
    use ra_games::named::{battle_of_the_sexes, matching_pennies, prisoners_dilemma};
    use ra_games::GameGenerator;
    use ra_solvers::{enumerate_equilibria, EnumerationOptions};

    #[test]
    fn verifies_matching_pennies() {
        let cert = SupportCertificate {
            row_support: vec![0, 1],
            col_support: vec![0, 1],
        };
        let v = verify_support_certificate(&matching_pennies(), &cert).unwrap();
        assert_eq!(v.profile.row, MixedStrategy::uniform(2));
        assert_eq!(v.lambda1, rat(0, 1));
        assert_eq!(v.lambda2, rat(0, 1));
        assert_eq!(cert.encoded_bits(&matching_pennies()), 4);
    }

    #[test]
    fn verifies_pure_support() {
        let cert = SupportCertificate {
            row_support: vec![1],
            col_support: vec![1],
        };
        let v = verify_support_certificate(&prisoners_dilemma(), &cert).unwrap();
        assert_eq!(v.profile.row, MixedStrategy::pure(2, 1));
        assert_eq!(v.lambda1, rat(-2, 1));
    }

    #[test]
    fn rejects_wrong_supports() {
        // (cooperate, cooperate) is not an equilibrium of the PD.
        let cert = SupportCertificate {
            row_support: vec![0],
            col_support: vec![0],
        };
        let err = verify_support_certificate(&prisoners_dilemma(), &cert).unwrap_err();
        assert!(matches!(err, P1Error::OutsideSupportImproves { .. }));
    }

    #[test]
    fn rejects_malformed_supports() {
        let g = matching_pennies();
        for (r, c) in [
            (vec![], vec![0]),
            (vec![0, 0], vec![0]),
            (vec![1, 0], vec![0]),
            (vec![0, 7], vec![0]),
        ] {
            let cert = SupportCertificate {
                row_support: r,
                col_support: c,
            };
            assert!(matches!(
                verify_support_certificate(&g, &cert),
                Err(P1Error::MalformedSupport { .. })
            ));
        }
    }

    #[test]
    fn rejects_infeasible_mixed_support() {
        // Battle of the sexes: claiming support {0,1}×{0} is inconsistent —
        // the row agent cannot be indifferent between 2 and 0 against pure
        // column 0.
        let cert = SupportCertificate {
            row_support: vec![0, 1],
            col_support: vec![0],
        };
        let err = verify_support_certificate(&battle_of_the_sexes(), &cert).unwrap_err();
        assert!(matches!(
            err,
            P1Error::IndifferenceInconsistent | P1Error::InvalidProbability { .. }
        ));
    }

    #[test]
    fn transcript_matches_lemma1_bits() {
        let game = GameGenerator::seeded(5).bimatrix(4, 6, -9..=9);
        let (eqs, _) = enumerate_equilibria(&game, &EnumerationOptions::default());
        let eq = &eqs[0];
        let cert = SupportCertificate {
            row_support: eq.row_support.clone(),
            col_support: eq.col_support.clone(),
        };
        let v = verify_support_certificate(&game, &cert).unwrap();
        // Prover messages: n + m bits exactly (two masks); no queries in P1.
        assert_eq!(v.transcript.total_bits(), 10);
        assert_eq!(v.transcript.num_queries(), 0);
        // P1 reveals the opponent's support to the row agent.
        assert_eq!(v.transcript.opponent_bits_disclosed(), 6);
    }

    #[test]
    fn round_trip_with_solvers_on_random_games() {
        let mut accepted = 0;
        for seed in 0..60 {
            let game = GameGenerator::seeded(seed).bimatrix(3, 3, -12..=12);
            let (eqs, _) = enumerate_equilibria(&game, &EnumerationOptions::default());
            for eq in &eqs {
                let cert = SupportCertificate {
                    row_support: eq.row_support.clone(),
                    col_support: eq.col_support.clone(),
                };
                match verify_support_certificate(&game, &cert) {
                    Ok(v) => {
                        accepted += 1;
                        assert_eq!(v.profile, eq.profile, "seed {seed}");
                        assert_eq!(v.lambda1, eq.lambda1, "seed {seed}");
                        assert_eq!(v.lambda2, eq.lambda2, "seed {seed}");
                    }
                    // Degenerate supports are allowed to be rejected as such.
                    Err(P1Error::Degenerate) => {}
                    Err(other) => panic!("seed {seed}: unexpected rejection {other}"),
                }
            }
        }
        assert!(accepted > 50, "most enumerated equilibria verify via P1");
    }

    #[test]
    fn acceptance_implies_nash_fuzz() {
        // Feed arbitrary support claims; every acceptance must be a genuine
        // equilibrium (soundness).
        let mut accepted = 0;
        for seed in 0..200u64 {
            let game = GameGenerator::seeded(seed).bimatrix(3, 3, -6..=6);
            let r_mask = 1 + (seed % 7) as usize;
            let c_mask = 1 + ((seed / 7) % 7) as usize;
            let cert = SupportCertificate {
                row_support: (0..3).filter(|i| r_mask & (1 << i) != 0).collect(),
                col_support: (0..3).filter(|j| c_mask & (1 << j) != 0).collect(),
            };
            if let Ok(v) = verify_support_certificate(&game, &cert) {
                accepted += 1;
                assert!(game.is_nash(&v.profile), "seed {seed}");
            }
        }
        assert!(accepted > 0, "some random support guesses hit equilibria");
    }
}
