//! §6 certificates: verifiable link advice for online parallel-link games.
//!
//! The inventor observes the current link loads (published, signed — see
//! `ra-authority::audit`), knows the arriving agent's load and how many
//! agents are still expected, and computes a Nash-equilibrium assignment of
//! the agent's load plus the expected future loads (greatest load first onto
//! least-loaded links). The advice is "take the link your load got in that
//! assignment", and the *proof* is the assignment itself: the agent verifies
//! the Nash property of the assignment locally — no trust in the inventor's
//! computation needed.

use std::fmt;

use ra_exact::Rational;

/// A §6 advice certificate for one arriving agent on `m` parallel links.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OnlineAdviceCertificate {
    /// Link loads at the agent's arrival time (the inventor's published
    /// statistics).
    pub current_loads: Vec<Rational>,
    /// The arriving agent's own load `w_i`.
    pub own_load: Rational,
    /// The inventor's estimate of each future agent's load (the running
    /// average `w̄_i` in the paper's second model).
    pub expected_future_load: Rational,
    /// Number of agents still expected to arrive (`n − i`).
    pub expected_future_agents: usize,
    /// The claimed equilibrium assignment: entry 0 is the link assigned to
    /// the agent's own load; entries `1..` are links for the expected
    /// future loads.
    pub assignment: Vec<usize>,
    /// The advised link (must equal `assignment[0]`).
    pub suggested_link: usize,
}

/// Rejection reasons for online advice.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OnlineAdviceError {
    /// No links, negative loads, or assignment of the wrong length.
    Malformed {
        /// Description.
        reason: String,
    },
    /// The advised link differs from the assignment's own-load entry.
    SuggestionMismatch,
    /// The assignment is not a Nash equilibrium of the induced
    /// load-balancing game: some assigned load would strictly reduce its
    /// completion delay by moving.
    NotEquilibrium {
        /// Index into the assignment (0 = own load).
        load_index: usize,
        /// A strictly better link for that load.
        better_link: usize,
    },
}

impl fmt::Display for OnlineAdviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OnlineAdviceError::Malformed { reason } => write!(f, "malformed advice: {reason}"),
            OnlineAdviceError::SuggestionMismatch => {
                write!(
                    f,
                    "suggested link differs from the assignment's own-load link"
                )
            }
            OnlineAdviceError::NotEquilibrium {
                load_index,
                better_link,
            } => write!(
                f,
                "assignment not an equilibrium: load #{load_index} prefers link {better_link}"
            ),
        }
    }
}

impl std::error::Error for OnlineAdviceError {}

/// Verified online advice: the link to take plus the final loads the
/// equilibrium assignment predicts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OnlineAdviceVerified {
    /// The advised link.
    pub link: usize,
    /// Predicted final load per link under the certified assignment.
    pub predicted_loads: Vec<Rational>,
    /// Predicted delay the agent will experience (its link's final load,
    /// identity delay functions as in Fig. 7's setting).
    pub predicted_own_delay: Rational,
}

/// Verifies a §6 advice certificate.
///
/// The Nash property checked is the standard one for load balancing on
/// identical (equispeed) links: no single assigned load can move to another
/// link and end up with a strictly smaller completed load
/// (`target + w < source`, i.e. the move lowers the delay the moved load
/// experiences). The check costs `O((1 + future) · m)` — independent of how
/// the inventor *found* the assignment.
///
/// # Errors
///
/// See [`OnlineAdviceError`].
pub fn verify_online_advice(
    certificate: &OnlineAdviceCertificate,
) -> Result<OnlineAdviceVerified, OnlineAdviceError> {
    let m = certificate.current_loads.len();
    if m == 0 {
        return Err(OnlineAdviceError::Malformed {
            reason: "no links".to_owned(),
        });
    }
    if certificate.current_loads.iter().any(Rational::is_negative) {
        return Err(OnlineAdviceError::Malformed {
            reason: "negative link load".to_owned(),
        });
    }
    if certificate.own_load.is_negative() || certificate.expected_future_load.is_negative() {
        return Err(OnlineAdviceError::Malformed {
            reason: "negative agent load".to_owned(),
        });
    }
    if certificate.assignment.len() != 1 + certificate.expected_future_agents {
        return Err(OnlineAdviceError::Malformed {
            reason: format!(
                "assignment covers {} loads, expected {}",
                certificate.assignment.len(),
                1 + certificate.expected_future_agents
            ),
        });
    }
    if certificate.assignment.iter().any(|&l| l >= m) {
        return Err(OnlineAdviceError::Malformed {
            reason: "assignment refers to a non-existent link".to_owned(),
        });
    }
    if certificate.suggested_link != certificate.assignment[0] {
        return Err(OnlineAdviceError::SuggestionMismatch);
    }
    // Predicted final loads.
    let mut final_loads = certificate.current_loads.clone();
    let load_of = |idx: usize| -> &Rational {
        if idx == 0 {
            &certificate.own_load
        } else {
            &certificate.expected_future_load
        }
    };
    for (idx, &link) in certificate.assignment.iter().enumerate() {
        final_loads[link] = &final_loads[link] + load_of(idx);
    }
    // Nash property: no assigned load strictly gains by moving.
    for (idx, &link) in certificate.assignment.iter().enumerate() {
        let w = load_of(idx);
        if w.is_zero() {
            continue;
        }
        let here = final_loads[link].clone();
        for (target, target_load) in final_loads.iter().enumerate() {
            if target == link {
                continue;
            }
            if (target_load + w) < here {
                return Err(OnlineAdviceError::NotEquilibrium {
                    load_index: idx,
                    better_link: target,
                });
            }
        }
    }
    let link = certificate.suggested_link;
    let predicted_own_delay = final_loads[link].clone();
    Ok(OnlineAdviceVerified {
        link,
        predicted_loads: final_loads,
        predicted_own_delay,
    })
}

/// The honest inventor's construction: LPT/greedy Nash assignment of the
/// agent's load plus `future` expected loads onto the current link loads
/// (each load, greatest first, goes to the least-loaded link — ties to the
/// lowest index).
///
/// This is exactly the strategy of the Fig. 7 simulation; the returned
/// certificate always verifies.
pub fn honest_online_advice(
    current_loads: &[Rational],
    own_load: &Rational,
    expected_future_load: &Rational,
    expected_future_agents: usize,
) -> OnlineAdviceCertificate {
    // Order loads greatest-first; remember which is the agent's own.
    let mut items: Vec<(usize, Rational)> = Vec::with_capacity(1 + expected_future_agents);
    items.push((0, own_load.clone()));
    for k in 0..expected_future_agents {
        items.push((k + 1, expected_future_load.clone()));
    }
    items.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut loads = current_loads.to_vec();
    let mut assignment = vec![0usize; 1 + expected_future_agents];
    for (idx, w) in items {
        let best = (0..loads.len())
            .min_by(|&a, &b| loads[a].cmp(&loads[b]).then(a.cmp(&b)))
            .expect("at least one link");
        assignment[idx] = best;
        loads[best] = &loads[best] + &w;
    }
    OnlineAdviceCertificate {
        current_loads: current_loads.to_vec(),
        own_load: own_load.clone(),
        expected_future_load: expected_future_load.clone(),
        expected_future_agents,
        assignment: assignment.clone(),
        suggested_link: assignment[0],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ra_exact::rat;

    fn r(v: i64) -> Rational {
        Rational::from(v)
    }

    #[test]
    fn honest_advice_verifies() {
        let cert = honest_online_advice(&[r(3), r(1), r(2)], &r(4), &r(2), 3);
        let verified = verify_online_advice(&cert).unwrap();
        assert_eq!(verified.link, cert.suggested_link);
        // Total predicted load conserved: 6 existing + 4 + 3·2 = 16.
        let total: Rational = verified
            .predicted_loads
            .iter()
            .fold(Rational::zero(), |a, b| a + b);
        assert_eq!(total, r(16));
    }

    #[test]
    fn lpt_places_big_load_on_least_loaded() {
        // Own load 10 dominates: goes to the emptiest link (index 1).
        let cert = honest_online_advice(&[r(3), r(0), r(2)], &r(10), &r(1), 2);
        assert_eq!(cert.suggested_link, 1);
        assert!(verify_online_advice(&cert).is_ok());
    }

    #[test]
    fn tampered_suggestion_rejected() {
        let mut cert = honest_online_advice(&[r(5), r(0)], &r(1), &r(1), 1);
        let other = 1 - cert.suggested_link;
        cert.suggested_link = other;
        assert_eq!(
            verify_online_advice(&cert),
            Err(OnlineAdviceError::SuggestionMismatch)
        );
    }

    #[test]
    fn non_equilibrium_assignment_rejected() {
        // Force the agent's load onto the heavily loaded link.
        let cert = OnlineAdviceCertificate {
            current_loads: vec![r(10), r(0)],
            own_load: r(2),
            expected_future_load: r(0),
            expected_future_agents: 0,
            assignment: vec![0],
            suggested_link: 0,
        };
        assert_eq!(
            verify_online_advice(&cert),
            Err(OnlineAdviceError::NotEquilibrium {
                load_index: 0,
                better_link: 1
            })
        );
    }

    #[test]
    fn malformed_certificates_rejected() {
        let good = honest_online_advice(&[r(1), r(2)], &r(1), &r(1), 1);
        let mut no_links = good.clone();
        no_links.current_loads.clear();
        assert!(matches!(
            verify_online_advice(&no_links),
            Err(OnlineAdviceError::Malformed { .. })
        ));
        let mut short = good.clone();
        short.assignment.pop();
        assert!(matches!(
            verify_online_advice(&short),
            Err(OnlineAdviceError::Malformed { .. })
        ));
        let mut bad_link = good.clone();
        bad_link.assignment[0] = 9;
        assert!(matches!(
            verify_online_advice(&bad_link),
            Err(OnlineAdviceError::Malformed { .. })
        ));
        let mut negative = good;
        negative.own_load = r(-1);
        assert!(matches!(
            verify_online_advice(&negative),
            Err(OnlineAdviceError::Malformed { .. })
        ));
    }

    #[test]
    fn zero_future_agents_is_last_mover() {
        // Last mover: pure least-loaded placement, trivially an equilibrium.
        let cert = honest_online_advice(&[r(7), r(3), r(5)], &r(2), &r(0), 0);
        assert_eq!(cert.suggested_link, 1);
        let v = verify_online_advice(&cert).unwrap();
        assert_eq!(v.predicted_own_delay, r(5));
    }

    #[test]
    fn fractional_loads() {
        let cert = honest_online_advice(&[rat(1, 2), rat(3, 4)], &rat(5, 4), &rat(1, 3), 2);
        assert!(verify_online_advice(&cert).is_ok());
    }

    #[test]
    fn equilibria_other_than_lpt_also_accepted() {
        // The verifier checks the Nash property, not LPT provenance:
        // swapping two equal future loads keeps the equilibrium.
        let mut cert = honest_online_advice(&[r(0), r(0)], &r(2), &r(2), 1);
        cert.assignment.swap(0, 1);
        cert.suggested_link = cert.assignment[0];
        assert!(verify_online_advice(&cert).is_ok());
    }
}
