//! Dominant-strategy certificates (auction case studies).
//!
//! The related-work section of the paper cites Tadjouddine's result that
//! verifying dominant-strategy equilibria is NP-complete for succinct game
//! representations; for explicitly tabulated games the check is linear in
//! the table, which is what this verifier does. `ra-auctions` uses these
//! certificates to ship "bidding truthfully is dominant" advice for
//! second-price auctions.

use std::fmt;

use ra_games::{Dominance, ProfileIter, StrategicGame, Strategy, StrategyProfile};

/// A claim that `strategy` is a dominant strategy for `agent`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DominanceCertificate {
    /// The agent the advice is for.
    pub agent: usize,
    /// The claimed dominant strategy.
    pub strategy: Strategy,
    /// Strict or weak dominance.
    pub kind: Dominance,
}

/// Rejection reasons for dominance certificates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DominanceError {
    /// Agent or strategy out of range.
    OutOfRange,
    /// A counterexample: against `opponents`, `better_strategy` beats (or
    /// ties, under strict dominance) the claimed strategy.
    CounterExample {
        /// The opponents' strategies (the agent's own slot is arbitrary).
        opponents: StrategyProfile,
        /// The strategy that defeats the claim there.
        better_strategy: Strategy,
    },
}

impl fmt::Display for DominanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DominanceError::OutOfRange => write!(f, "agent or strategy out of range"),
            DominanceError::CounterExample {
                opponents,
                better_strategy,
            } => write!(
                f,
                "dominance fails against {opponents}: strategy {better_strategy} does better"
            ),
        }
    }
}

impl std::error::Error for DominanceError {}

/// Verifies a dominance certificate by scanning all opponent profiles —
/// `O(|A_{−i}| · |A_i|)` exact comparisons on the explicit table.
///
/// # Errors
///
/// Returns the first counterexample found.
///
/// # Examples
///
/// ```
/// use ra_games::named::prisoners_dilemma;
/// use ra_games::Dominance;
/// use ra_proofs::{verify_dominance_certificate, DominanceCertificate};
///
/// let game = prisoners_dilemma().to_strategic();
/// let cert = DominanceCertificate { agent: 0, strategy: 1, kind: Dominance::Strict };
/// assert!(verify_dominance_certificate(&game, &cert).is_ok());
/// let bogus = DominanceCertificate { agent: 0, strategy: 0, kind: Dominance::Weak };
/// assert!(verify_dominance_certificate(&game, &bogus).is_err());
/// ```
pub fn verify_dominance_certificate(
    game: &StrategicGame,
    certificate: &DominanceCertificate,
) -> Result<(), DominanceError> {
    let agent = certificate.agent;
    if agent >= game.num_agents() || certificate.strategy >= game.strategy_counts()[agent] {
        return Err(DominanceError::OutOfRange);
    }
    let mut opponent_counts = game.strategy_counts().to_vec();
    opponent_counts[agent] = 1;
    for opponents in ProfileIter::new(opponent_counts) {
        let with_claim = opponents.with_strategy(agent, certificate.strategy);
        let claim_payoff = game.payoff(agent, &with_claim);
        for other in 0..game.strategy_counts()[agent] {
            if other == certificate.strategy {
                continue;
            }
            let other_payoff = game.payoff(agent, &opponents.with_strategy(agent, other));
            let ok = match certificate.kind {
                Dominance::Strict => claim_payoff > other_payoff,
                Dominance::Weak => claim_payoff >= other_payoff,
            };
            if !ok {
                return Err(DominanceError::CounterExample {
                    opponents,
                    better_strategy: other,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ra_exact::Rational;
    use ra_games::named::{matching_pennies, prisoners_dilemma};

    #[test]
    fn prisoners_dilemma_defection_certified() {
        let game = prisoners_dilemma().to_strategic();
        for agent in 0..2 {
            for kind in [Dominance::Strict, Dominance::Weak] {
                let cert = DominanceCertificate {
                    agent,
                    strategy: 1,
                    kind,
                };
                assert!(verify_dominance_certificate(&game, &cert).is_ok());
            }
        }
    }

    #[test]
    fn counterexample_reported() {
        let game = matching_pennies().to_strategic();
        let cert = DominanceCertificate {
            agent: 0,
            strategy: 0,
            kind: Dominance::Weak,
        };
        let err = verify_dominance_certificate(&game, &cert).unwrap_err();
        assert!(matches!(
            err,
            DominanceError::CounterExample {
                better_strategy: 1,
                ..
            }
        ));
    }

    #[test]
    fn weak_vs_strict_distinction() {
        // Strategy 1 ties against column 0, wins against column 1.
        let r = Rational::from;
        let game = StrategicGame::from_tables(
            &[vec![r(1), r(0)], vec![r(1), r(1)]],
            &[vec![r(0), r(0)], vec![r(0), r(0)]],
        );
        let weak = DominanceCertificate {
            agent: 0,
            strategy: 1,
            kind: Dominance::Weak,
        };
        let strict = DominanceCertificate {
            agent: 0,
            strategy: 1,
            kind: Dominance::Strict,
        };
        assert!(verify_dominance_certificate(&game, &weak).is_ok());
        assert!(matches!(
            verify_dominance_certificate(&game, &strict),
            Err(DominanceError::CounterExample { .. })
        ));
    }

    #[test]
    fn out_of_range_rejected() {
        let game = prisoners_dilemma().to_strategic();
        let cert = DominanceCertificate {
            agent: 7,
            strategy: 0,
            kind: Dominance::Weak,
        };
        assert_eq!(
            verify_dominance_certificate(&game, &cert),
            Err(DominanceError::OutOfRange)
        );
        let cert = DominanceCertificate {
            agent: 0,
            strategy: 9,
            kind: Dominance::Weak,
        };
        assert_eq!(
            verify_dominance_certificate(&game, &cert),
            Err(DominanceError::OutOfRange)
        );
    }

    #[test]
    fn agrees_with_games_crate_predicate() {
        for seed in 0..40 {
            let game = ra_games::GameGenerator::seeded(seed).strategic(vec![3, 3], -5..=5);
            for agent in 0..2 {
                for s in 0..3 {
                    for kind in [Dominance::Strict, Dominance::Weak] {
                        let cert = DominanceCertificate {
                            agent,
                            strategy: s,
                            kind,
                        };
                        assert_eq!(
                            verify_dominance_certificate(&game, &cert).is_ok(),
                            ra_games::is_dominant_strategy(&game, agent, s, kind),
                            "seed {seed} agent {agent} strategy {s} {kind:?}"
                        );
                    }
                }
            }
        }
    }
}
