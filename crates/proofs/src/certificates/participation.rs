//! §5 certificates: verifiable advice for the participation game.
//!
//! The inventor ships the equilibrium participation probability `p` (hard to
//! find); the verifier re-checks the indifference condition Eq. (5) — a
//! handful of exact binomial evaluations. Irrational roots are shipped as
//! sign-change *bracket* certificates, which are just as checkable.
//!
//! The paper also notes that with multiple symmetric equilibria a dishonest
//! prover could send different (individually valid) probabilities to
//! different firms; [`cross_check_advice`] implements the players'
//! cross-check.

use std::fmt;

use ra_exact::{binomial_tail_at_least, binomial_tail_at_most, Rational};
use ra_solvers::{EquilibriumRoot, ParticipationParams};

/// The §5 certificate sent to each firm.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParticipationCertificate {
    /// The game parameters (public).
    pub params: ParticipationParams,
    /// The advised equilibrium probability.
    pub root: EquilibriumRoot,
}

/// Successful verification: the advice plus the Eq. (5) quantities the
/// verifier recomputed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParticipationVerified {
    /// The advised probability (bracket midpoint for brackets).
    pub p: Rational,
    /// `A_k` = Pr[at least k − 1 others participate] (participant wins).
    pub a_k: Rational,
    /// `B_k` = Pr[at most k − 2 others participate] (participant loses fee).
    pub b_k: Rational,
    /// `C_k` = Pr[at least k others participate] (non-participant wins).
    pub c_k: Rational,
    /// `D_k` = Pr[at most k − 1 others participate] (non-participant gets 0).
    pub d_k: Rational,
    /// The firm's expected equilibrium gain
    /// `(v−c)·A_k − c·B_k` (= `v·C_k` at an exact equilibrium).
    pub expected_gain: Rational,
}

/// Rejection reasons for participation certificates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParticipationError {
    /// `p` (or a bracket endpoint) is outside `[0, 1]`.
    ProbabilityOutOfRange,
    /// An exact certificate fails the indifference equation.
    IndifferenceViolated {
        /// The (non-zero) value of the indifference function at `p`.
        residual: Rational,
    },
    /// A bracket certificate's endpoints do not straddle a sign change.
    BracketWithoutSignChange,
    /// A bracket certificate is wider than the verifier's tolerance.
    BracketTooWide {
        /// The bracket width.
        width: Rational,
        /// The verifier's tolerance.
        tolerance: Rational,
    },
}

impl fmt::Display for ParticipationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParticipationError::ProbabilityOutOfRange => {
                write!(f, "advised probability outside [0, 1]")
            }
            ParticipationError::IndifferenceViolated { residual } => {
                write!(f, "indifference equation violated (residual {residual})")
            }
            ParticipationError::BracketWithoutSignChange => {
                write!(f, "bracket endpoints do not straddle a sign change")
            }
            ParticipationError::BracketTooWide { width, tolerance } => {
                write!(f, "bracket width {width} exceeds tolerance {tolerance}")
            }
        }
    }
}

impl std::error::Error for ParticipationError {}

/// Verifies a participation certificate: Eq. (5) for exact roots, the
/// sign-change property (plus a width bound) for brackets.
///
/// # Errors
///
/// See [`ParticipationError`].
///
/// # Examples
///
/// ```
/// use ra_exact::rat;
/// use ra_proofs::{verify_participation_certificate, ParticipationCertificate};
/// use ra_solvers::{EquilibriumRoot, ParticipationParams};
///
/// // The paper's worked example: p = 1/4 for c/v = 3/8, n = 3.
/// let cert = ParticipationCertificate {
///     params: ParticipationParams::paper_example(),
///     root: EquilibriumRoot::Exact(rat(1, 4)),
/// };
/// let verified = verify_participation_certificate(&cert, &rat(1, 1_000_000)).unwrap();
/// // Expected equilibrium gain is v/16 = 8/16 = 1/2.
/// assert_eq!(verified.expected_gain, rat(1, 2));
/// ```
pub fn verify_participation_certificate(
    certificate: &ParticipationCertificate,
    tolerance: &Rational,
) -> Result<ParticipationVerified, ParticipationError> {
    let params = &certificate.params;
    let in_unit = |p: &Rational| !p.is_negative() && p <= &Rational::one();
    let p = match &certificate.root {
        EquilibriumRoot::Exact(p) => {
            if !in_unit(p) {
                return Err(ParticipationError::ProbabilityOutOfRange);
            }
            let residual = params.indifference_fn(p);
            if !residual.is_zero() {
                return Err(ParticipationError::IndifferenceViolated { residual });
            }
            p.clone()
        }
        EquilibriumRoot::Bracket { lo, hi } => {
            if !in_unit(lo) || !in_unit(hi) || lo >= hi {
                return Err(ParticipationError::ProbabilityOutOfRange);
            }
            let width = hi - lo;
            if &width > tolerance {
                return Err(ParticipationError::BracketTooWide {
                    width,
                    tolerance: tolerance.clone(),
                });
            }
            let g_lo = params.indifference_fn(lo);
            let g_hi = params.indifference_fn(hi);
            if g_lo.is_zero() || g_hi.is_zero() {
                // An endpoint is itself a root: fine.
            } else if g_lo.is_negative() == g_hi.is_negative() {
                return Err(ParticipationError::BracketWithoutSignChange);
            }
            certificate.root.value()
        }
    };
    // Recompute the Eq. (5) conditional probabilities at the advised p.
    let others = params.n - 1;
    let a_k = binomial_tail_at_least(others, params.k - 1, &p);
    let b_k = binomial_tail_at_most(others, params.k.saturating_sub(2), &p);
    let c_k = binomial_tail_at_least(others, params.k, &p);
    let d_k = binomial_tail_at_most(others, params.k - 1, &p);
    let expected_gain = (&params.v - &params.c) * &a_k - &params.c * &b_k;
    Ok(ParticipationVerified {
        p,
        a_k,
        b_k,
        c_k,
        d_k,
        expected_gain,
    })
}

/// The firms' cross-check (end of §5): with several symmetric equilibria a
/// dishonest prover might advise different firms different probabilities.
/// Returns `true` iff all advised roots are identical.
pub fn cross_check_advice(certificates: &[ParticipationCertificate]) -> bool {
    certificates
        .windows(2)
        .all(|w| w[0].root == w[1].root && w[0].params == w[1].params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ra_exact::rat;
    use ra_solvers::solve_participation_equilibrium;

    fn paper_cert() -> ParticipationCertificate {
        ParticipationCertificate {
            params: ParticipationParams::paper_example(),
            root: EquilibriumRoot::Exact(rat(1, 4)),
        }
    }

    #[test]
    fn paper_numbers_check_out() {
        let v = verify_participation_certificate(&paper_cert(), &rat(1, 1024)).unwrap();
        // With p = 1/4 and two other firms:
        assert_eq!(v.a_k, rat(7, 16)); // ≥1 other participates
        assert_eq!(v.b_k, rat(9, 16)); // no other participates
        assert_eq!(v.c_k, rat(1, 16)); // ≥2 others participate
        assert_eq!(v.d_k, rat(15, 16));
        // Expected gain v/16 = 1/2 for v = 8 — and equals v·C_k exactly.
        assert_eq!(v.expected_gain, rat(1, 2));
        assert_eq!(v.expected_gain, rat(8, 1) * &v.c_k);
        // Tails are complementary.
        assert_eq!(&v.a_k + &v.b_k, Rational::one());
        assert_eq!(&v.c_k + &v.d_k, Rational::one());
    }

    #[test]
    fn wrong_p_rejected() {
        let mut cert = paper_cert();
        cert.root = EquilibriumRoot::Exact(rat(1, 3));
        assert!(matches!(
            verify_participation_certificate(&cert, &rat(1, 1024)),
            Err(ParticipationError::IndifferenceViolated { .. })
        ));
        cert.root = EquilibriumRoot::Exact(rat(5, 4));
        assert!(matches!(
            verify_participation_certificate(&cert, &rat(1, 1024)),
            Err(ParticipationError::ProbabilityOutOfRange)
        ));
    }

    #[test]
    fn second_equilibrium_also_verifies() {
        let mut cert = paper_cert();
        cert.root = EquilibriumRoot::Exact(rat(3, 4));
        assert!(verify_participation_certificate(&cert, &rat(1, 1024)).is_ok());
    }

    #[test]
    fn bracket_certificates() {
        // Irrational roots: n = 5, k = 2, v = 10, c = 1.
        let params = ParticipationParams::new(5, 2, Rational::from(10), Rational::from(1)).unwrap();
        let tol = rat(1, 1 << 20);
        let roots = solve_participation_equilibrium(&params, &tol).unwrap();
        for root in roots {
            let cert = ParticipationCertificate {
                params: params.clone(),
                root,
            };
            assert!(verify_participation_certificate(&cert, &tol).is_ok());
        }
    }

    #[test]
    fn bad_brackets_rejected() {
        let params = ParticipationParams::paper_example();
        // No sign change across [0.3, 0.5] (g > 0 on both: 16·0.3·0.7=3.36>3,
        // 16·0.5·0.5=4>3).
        let cert = ParticipationCertificate {
            params: params.clone(),
            root: EquilibriumRoot::Bracket {
                lo: rat(3, 10),
                hi: rat(1, 2),
            },
        };
        assert!(matches!(
            verify_participation_certificate(&cert, &rat(1, 1)),
            Err(ParticipationError::BracketWithoutSignChange)
        ));
        // Too wide for the verifier's tolerance.
        let cert = ParticipationCertificate {
            params,
            root: EquilibriumRoot::Bracket {
                lo: rat(1, 10),
                hi: rat(1, 2),
            },
        };
        assert!(matches!(
            verify_participation_certificate(&cert, &rat(1, 100)),
            Err(ParticipationError::BracketTooWide { .. })
        ));
    }

    #[test]
    fn cross_check_detects_split_advice() {
        let a = paper_cert();
        let mut b = paper_cert();
        assert!(cross_check_advice(&[a.clone(), b.clone(), a.clone()]));
        // Both 1/4 and 3/4 verify individually — only the cross-check
        // catches the prover playing firms against each other.
        b.root = EquilibriumRoot::Exact(rat(3, 4));
        assert!(verify_participation_certificate(&b, &rat(1, 1024)).is_ok());
        assert!(!cross_check_advice(&[a, b]));
    }

    #[test]
    fn solver_to_verifier_round_trip() {
        for (n, k, v, c) in [(4u64, 2u64, 12i64, 2i64), (6, 3, 20, 3), (8, 2, 9, 1)] {
            let params =
                ParticipationParams::new(n, k, Rational::from(v), Rational::from(c)).unwrap();
            let tol = rat(1, 1 << 22);
            if let Ok(roots) = solve_participation_equilibrium(&params, &tol) {
                for root in roots {
                    let cert = ParticipationCertificate {
                        params: params.clone(),
                        root,
                    };
                    verify_participation_certificate(&cert, &tol)
                        .unwrap_or_else(|e| panic!("n={n} k={k}: {e}"));
                }
            }
        }
    }
}
