//! §3 certificates: inventor-side proof generation for pure equilibria.
//!
//! The inventor runs the expensive exhaustive analysis (`ra-solvers`) and
//! packages the result as a kernel-checkable [`Proof`]. Agents re-check with
//! [`crate::kernel::check`] — they never rerun the search.

use ra_games::{StrategicGame, StrategyProfile};

use crate::kernel::{check, CheckedProp, NotAboveWitness, ProfileVerdict, Proof, ProofError};

/// A §3 certificate: a claimed equilibrium plus the kernel proof shipped by
/// the inventor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PureNashCertificate {
    /// The advised strategy profile.
    pub profile: StrategyProfile,
    /// Proof of `IsNash(profile)` (or `IsMaxNash` for maximality claims).
    pub proof: Proof,
}

impl PureNashCertificate {
    /// Verifies the certificate against a game using the trusted kernel.
    ///
    /// # Errors
    ///
    /// Propagates the kernel's [`ProofError`] if the proof is invalid, and
    /// rejects proofs whose conclusion is about a different profile.
    pub fn verify(&self, game: &StrategicGame) -> Result<CheckedProp, ProofError> {
        use crate::kernel::Prop;
        let theorem = check(game, &self.proof)?;
        let about_this_profile = matches!(
            theorem.prop(),
            Prop::IsNash(p) | Prop::IsMaxNash(p) | Prop::IsMinNash(p) if p == &self.profile
        );
        if !about_this_profile {
            return Err(ProofError::SubProofMismatch {
                expected: Prop::IsNash(self.profile.clone()),
                actual: theorem.prop().clone(),
            });
        }
        Ok(theorem)
    }
}

/// Builds an `IsNash` proof for a profile the inventor believes to be an
/// equilibrium. (The kernel will catch it if the belief is wrong.)
pub fn prove_is_nash(profile: StrategyProfile) -> Proof {
    Proof::NashIntro { profile }
}

/// Builds a `NotNash` refutation by searching for an improving deviation.
///
/// Returns `None` if the profile actually is an equilibrium.
pub fn prove_not_nash(game: &StrategicGame, profile: &StrategyProfile) -> Option<Proof> {
    let (agent, strategy) = game.improving_deviation(profile)?;
    Some(Proof::NashRefute {
        profile: profile.clone(),
        agent,
        strategy,
    })
}

/// Builds the complete Fig. 2-style maximality proof for `candidate`:
/// a Nash sub-proof plus a verdict for *every* profile of the game.
///
/// This is the expensive inventor-side step (`Θ(|A|)` classification work on
/// top of the equilibrium search already done); the returned proof checks in
/// `O(|A|)` cheap steps.
///
/// Returns `None` if `candidate` is not an equilibrium or not maximal.
pub fn prove_max_nash(game: &StrategicGame, candidate: &StrategyProfile) -> Option<Proof> {
    prove_extremal(game, candidate, true)
}

/// Dual of [`prove_max_nash`] for minimal equilibria (footnote 1).
pub fn prove_min_nash(game: &StrategicGame, candidate: &StrategyProfile) -> Option<Proof> {
    prove_extremal(game, candidate, false)
}

fn prove_extremal(game: &StrategicGame, candidate: &StrategyProfile, max: bool) -> Option<Proof> {
    if !game.is_pure_nash(candidate) {
        return None;
    }
    let mut classification = Vec::with_capacity(game.num_profiles());
    for other in game.profiles() {
        if let Some((agent, strategy)) = game.improving_deviation(&other) {
            classification.push(ProfileVerdict::NotNash { agent, strategy });
            continue;
        }
        // `other` is an equilibrium; find a non-domination witness.
        let le_holds = if max {
            game.profile_le(&other, candidate)
        } else {
            game.profile_le(candidate, &other)
        };
        if le_holds {
            classification.push(ProfileVerdict::NotStrictlyBetter(
                NotAboveWitness::LeCandidate,
            ));
            continue;
        }
        // Find an agent strictly preferring the required side.
        let witness = (0..game.num_agents()).find(|&agent| {
            if max {
                game.payoff(agent, candidate) > game.payoff(agent, &other)
            } else {
                game.payoff(agent, &other) > game.payoff(agent, candidate)
            }
        });
        match witness {
            Some(agent) => classification.push(ProfileVerdict::NotStrictlyBetter(
                NotAboveWitness::PrefersCandidate { agent },
            )),
            // No witness: `other` strictly dominates (is dominated by) the
            // candidate — the candidate is not maximal (minimal).
            None => return None,
        }
    }
    let nash = Box::new(Proof::NashIntro {
        profile: candidate.clone(),
    });
    Some(if max {
        Proof::MaxNashIntro {
            profile: candidate.clone(),
            nash,
            classification,
        }
    } else {
        Proof::MinNashIntro {
            profile: candidate.clone(),
            nash,
            classification,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Prop;
    use ra_games::named::{coordination_game, prisoners_dilemma, stag_hunt};
    use ra_games::GameGenerator;

    #[test]
    fn honest_nash_certificate_verifies() {
        let game = prisoners_dilemma().to_strategic();
        let cert = PureNashCertificate {
            profile: vec![1, 1].into(),
            proof: prove_is_nash(vec![1, 1].into()),
        };
        let theorem = cert.verify(&game).unwrap();
        assert_eq!(theorem.prop(), &Prop::IsNash(vec![1, 1].into()));
    }

    #[test]
    fn dishonest_nash_certificate_rejected() {
        let game = prisoners_dilemma().to_strategic();
        let cert = PureNashCertificate {
            profile: vec![0, 0].into(),
            proof: prove_is_nash(vec![0, 0].into()),
        };
        assert!(cert.verify(&game).is_err());
    }

    #[test]
    fn mismatched_profile_rejected() {
        let game = prisoners_dilemma().to_strategic();
        // Proof proves (1,1) but the certificate advises (0,0).
        let cert = PureNashCertificate {
            profile: vec![0, 0].into(),
            proof: prove_is_nash(vec![1, 1].into()),
        };
        assert!(matches!(
            cert.verify(&game),
            Err(ProofError::SubProofMismatch { .. })
        ));
    }

    #[test]
    fn refutations_generated_and_checked() {
        let game = prisoners_dilemma().to_strategic();
        let proof = prove_not_nash(&game, &vec![0, 0].into()).unwrap();
        assert!(check_ok(&game, &proof));
        assert!(prove_not_nash(&game, &vec![1, 1].into()).is_none());
    }

    fn check_ok(game: &ra_games::StrategicGame, proof: &Proof) -> bool {
        crate::kernel::check(game, proof).is_ok()
    }

    #[test]
    fn max_proofs_for_known_games() {
        let game = coordination_game(3);
        let proof = prove_max_nash(&game, &vec![2, 2].into()).unwrap();
        assert!(check_ok(&game, &proof));
        assert!(prove_max_nash(&game, &vec![0, 0].into()).is_none());
        let min_proof = prove_min_nash(&game, &vec![0, 0].into()).unwrap();
        assert!(check_ok(&game, &min_proof));
        assert!(prove_min_nash(&game, &vec![2, 2].into()).is_none());
    }

    #[test]
    fn stag_hunt_maximal() {
        let game = stag_hunt(3);
        let proof = prove_max_nash(&game, &vec![1, 1, 1].into()).unwrap();
        let theorem = crate::kernel::check(&game, &proof).unwrap();
        assert_eq!(theorem.prop(), &Prop::IsMaxNash(vec![1, 1, 1].into()));
        // Proof classification covers all 8 profiles.
        assert_eq!(proof.size(), 1 + 1 + 8);
    }

    #[test]
    fn generated_proofs_always_check_on_random_games() {
        for seed in 0..60 {
            let game = GameGenerator::seeded(seed).strategic(vec![3, 3], -6..=6);
            for profile in game.profiles() {
                if game.is_pure_nash(&profile) {
                    assert!(
                        check_ok(&game, &prove_is_nash(profile.clone())),
                        "seed {seed}"
                    );
                    if game.is_maximal_nash(&profile) {
                        let p = prove_max_nash(&game, &profile).expect("maximal provable");
                        assert!(check_ok(&game, &p), "seed {seed}");
                    } else {
                        assert!(prove_max_nash(&game, &profile).is_none(), "seed {seed}");
                    }
                } else {
                    let p = prove_not_nash(&game, &profile).expect("refutable");
                    assert!(check_ok(&game, &p), "seed {seed}");
                }
            }
        }
    }
}
