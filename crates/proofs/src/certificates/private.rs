//! The P2 private interactive proof (§4, Fig. 4, Remarks 2–3).
//!
//! Unlike P1, the prover sends each agent only *its own* support and
//! probabilities plus the two equilibrium values λ₁, λ₂. The opponent's
//! support is never shipped; instead the agent probes it through a
//! membership oracle, one random index pair at a time:
//!
//! * both indices in the opponent support ⇒ their expected payoffs (against
//!   the agent's own, known, mixed strategy) must both equal λ_opp;
//! * one in, one out ⇒ the in-index must hit λ_opp and the out-index must
//!   not exceed it;
//! * both out ⇒ inconclusive (but a violation `λ(j) > λ_opp` still rejects).
//!
//! Each oracle answer leaks exactly one bit about the opponent — the
//! zero-knowledge-flavoured privacy guarantee of Remark 2, measured by the
//! [`Transcript`]. Expected `O(n)` query pairs reach a conclusive test;
//! constant for supports of size `θ(n)` (Remark 3).

use std::collections::HashSet;
use std::fmt;

use rand::Rng;

use ra_exact::Rational;
use ra_games::{BimatrixGame, MixedStrategy};

use crate::transcript::{Disclosure, Transcript};

/// What the P2 prover sends to one agent: its own equilibrium data and the
/// equilibrium values, nothing about the opponent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct P2Advice {
    /// The agent's own mixed strategy at the claimed equilibrium.
    pub own_strategy: MixedStrategy,
    /// The agent's own equilibrium payoff (λ₁ for the row agent).
    pub lambda_own: Rational,
    /// The opponent's equilibrium payoff (λ₂ for the row agent).
    pub lambda_opp: Rational,
}

/// The membership oracle the prover answers queries through.
///
/// Honest provers answer from the true equilibrium support; dishonest ones
/// can answer anything — the verifier's job is to catch them.
pub trait SupportOracle {
    /// Is pure strategy `index` in the opponent's support?
    fn is_in_opponent_support(&mut self, index: usize) -> bool;
}

/// Honest oracle backed by the true support set.
#[derive(Clone, Debug)]
pub struct HonestOracle {
    support: HashSet<usize>,
}

impl HonestOracle {
    /// Creates an oracle for the given true support.
    pub fn new(support: impl IntoIterator<Item = usize>) -> HonestOracle {
        HonestOracle {
            support: support.into_iter().collect(),
        }
    }
}

impl SupportOracle for HonestOracle {
    fn is_in_opponent_support(&mut self, index: usize) -> bool {
        self.support.contains(&index)
    }
}

/// An adversarial oracle that lies about a chosen set of indices — used in
/// soundness tests and fault-injection experiments.
#[derive(Clone, Debug)]
pub struct LyingOracle {
    truth: HashSet<usize>,
    lies_about: HashSet<usize>,
}

impl LyingOracle {
    /// Oracle that inverts the truthful answer for every index in
    /// `lies_about`.
    pub fn new(
        truth: impl IntoIterator<Item = usize>,
        lies_about: impl IntoIterator<Item = usize>,
    ) -> LyingOracle {
        LyingOracle {
            truth: truth.into_iter().collect(),
            lies_about: lies_about.into_iter().collect(),
        }
    }
}

impl SupportOracle for LyingOracle {
    fn is_in_opponent_support(&mut self, index: usize) -> bool {
        self.truth.contains(&index) ^ self.lies_about.contains(&index)
    }
}

/// Verifier configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct P2Config {
    /// Stop after this many *conclusive* pair tests (Remark 3's constant
    /// `k`).
    pub required_conclusive: u64,
    /// Hard budget on individual oracle queries.
    pub max_queries: u64,
}

impl Default for P2Config {
    fn default() -> P2Config {
        P2Config {
            required_conclusive: 3,
            max_queries: 10_000,
        }
    }
}

/// Reasons the P2 verifier rejects.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum P2Rejection {
    /// The shipped own-strategy is not a probability distribution of the
    /// right dimension.
    MalformedOwnStrategy {
        /// Description.
        reason: String,
    },
    /// An index claimed to be in the opponent support does not earn
    /// exactly λ_opp against the agent's own strategy.
    InSupportPayoffMismatch {
        /// The queried index.
        index: usize,
        /// Its actual expected payoff.
        actual: Rational,
    },
    /// An index claimed to be outside the support earns *more* than λ_opp —
    /// impossible at an equilibrium.
    OutsideSupportExceeds {
        /// The queried index.
        index: usize,
        /// Its actual expected payoff.
        actual: Rational,
    },
}

impl fmt::Display for P2Rejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            P2Rejection::MalformedOwnStrategy { reason } => {
                write!(f, "own strategy malformed: {reason}")
            }
            P2Rejection::InSupportPayoffMismatch { index, actual } => write!(
                f,
                "claimed-in-support index {index} earns {actual}, not the claimed λ"
            ),
            P2Rejection::OutsideSupportExceeds { index, actual } => write!(
                f,
                "claimed-out-of-support index {index} earns {actual} above the claimed λ"
            ),
        }
    }
}

/// Outcome of a P2 verification run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum P2Outcome {
    /// Enough conclusive tests passed.
    Accepted {
        /// Number of conclusive pair tests performed.
        conclusive_tests: u64,
        /// Full communication record.
        transcript: Transcript,
    },
    /// A test failed; the advice (or the oracle) is dishonest.
    Rejected {
        /// Why.
        reason: P2Rejection,
        /// Full communication record.
        transcript: Transcript,
    },
    /// The query budget ran out before enough conclusive tests (can only
    /// happen with tiny budgets or tiny supports).
    Undecided {
        /// Conclusive tests completed before the budget ran out.
        conclusive_tests: u64,
        /// Full communication record.
        transcript: Transcript,
    },
}

impl P2Outcome {
    /// Returns `true` for [`P2Outcome::Accepted`].
    pub fn is_accepted(&self) -> bool {
        matches!(self, P2Outcome::Accepted { .. })
    }

    /// The transcript, whatever the outcome.
    pub fn transcript(&self) -> &Transcript {
        match self {
            P2Outcome::Accepted { transcript, .. }
            | P2Outcome::Rejected { transcript, .. }
            | P2Outcome::Undecided { transcript, .. } => transcript,
        }
    }
}

/// Runs the P2 verifier for the **row agent** of `game`.
///
/// To verify as the column agent, call with
/// [`BimatrixGame::swap_roles`]`()` and the column agent's advice.
///
/// # Examples
///
/// ```
/// use ra_games::named::matching_pennies;
/// use ra_games::MixedStrategy;
/// use ra_proofs::{verify_private_advice, HonestOracle, P2Advice, P2Config};
/// use ra_exact::rat;
/// use rand::SeedableRng;
///
/// let advice = P2Advice {
///     own_strategy: MixedStrategy::uniform(2),
///     lambda_own: rat(0, 1),
///     lambda_opp: rat(0, 1),
/// };
/// let mut oracle = HonestOracle::new([0, 1]);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let outcome = verify_private_advice(
///     &matching_pennies(), &advice, &mut oracle, &mut rng, &P2Config::default(),
/// );
/// assert!(outcome.is_accepted());
/// ```
pub fn verify_private_advice(
    game: &BimatrixGame,
    advice: &P2Advice,
    oracle: &mut dyn SupportOracle,
    rng: &mut dyn rand::RngCore,
    config: &P2Config,
) -> P2Outcome {
    let mut transcript = Transcript::new();
    let n = game.rows();
    let m = game.cols();
    // Prover → agent: own support/probabilities and the two λ values.
    transcript.prover_message(n as u64, Disclosure::OwnData, "own support mask (S1)");
    transcript.prover_message(64, Disclosure::OwnData, "own probabilities");
    transcript.prover_message(64, Disclosure::EquilibriumValue, "λ1, λ2");

    // Local well-formedness of the shipped own data.
    if advice.own_strategy.len() != n {
        return P2Outcome::Rejected {
            reason: P2Rejection::MalformedOwnStrategy {
                reason: format!(
                    "strategy has {} entries, game has {n} rows",
                    advice.own_strategy.len()
                ),
            },
            transcript,
        };
    }

    // Interactive phase: random index pairs through the membership oracle.
    let lambda_opp = &advice.lambda_opp;
    let mut conclusive = 0u64;
    let mut queries = 0u64;
    while conclusive < config.required_conclusive {
        if queries + 2 > config.max_queries {
            return P2Outcome::Undecided {
                conclusive_tests: conclusive,
                transcript,
            };
        }
        let j1 = rng.random_range(0..m);
        let j2 = rng.random_range(0..m);
        for &j in &[j1, j2] {
            transcript.query(j, m);
        }
        let in1 = oracle.is_in_opponent_support(j1);
        let in2 = oracle.is_in_opponent_support(j2);
        transcript.answer(in1);
        transcript.answer(in2);
        queries += 2;
        // Expected payoff of the opponent's pure strategy j against the
        // agent's own (known) mixed strategy — computable locally.
        let payoff = |j: usize| game.col_payoff_against(&advice.own_strategy, j);
        for (&j, &inside) in [j1, j2].iter().zip([in1, in2].iter()) {
            let actual = payoff(j);
            if inside && &actual != lambda_opp {
                return P2Outcome::Rejected {
                    reason: P2Rejection::InSupportPayoffMismatch { index: j, actual },
                    transcript,
                };
            }
            if !inside && &actual > lambda_opp {
                return P2Outcome::Rejected {
                    reason: P2Rejection::OutsideSupportExceeds { index: j, actual },
                    transcript,
                };
            }
        }
        // Fig. 4's case analysis: conclusive iff at least one index was in.
        if in1 || in2 {
            conclusive += 1;
        }
    }
    P2Outcome::Accepted {
        conclusive_tests: conclusive,
        transcript,
    }
}

/// The honest prover's advice construction for the row agent, from a full
/// equilibrium (used by `ra-authority`'s honest inventor).
pub fn honest_row_advice(game: &BimatrixGame, profile: &ra_games::MixedProfile) -> P2Advice {
    P2Advice {
        own_strategy: profile.row.clone(),
        lambda_own: game.expected_row_payoff(&profile.row, &profile.col),
        lambda_opp: game.expected_col_payoff(&profile.row, &profile.col),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use ra_exact::rat;
    use ra_games::named::{battle_of_the_sexes, matching_pennies};
    use ra_games::{GameGenerator, MixedProfile};
    use ra_solvers::find_one_equilibrium;

    fn run(
        game: &BimatrixGame,
        advice: &P2Advice,
        oracle: &mut dyn SupportOracle,
        seed: u64,
    ) -> P2Outcome {
        let mut rng = StdRng::seed_from_u64(seed);
        verify_private_advice(game, advice, oracle, &mut rng, &P2Config::default())
    }

    #[test]
    fn honest_advice_accepted() {
        let game = matching_pennies();
        let profile = MixedProfile {
            row: MixedStrategy::uniform(2),
            col: MixedStrategy::uniform(2),
        };
        let advice = honest_row_advice(&game, &profile);
        let mut oracle = HonestOracle::new(profile.col.support());
        assert!(run(&game, &advice, &mut oracle, 1).is_accepted());
    }

    #[test]
    fn wrong_lambda_rejected() {
        let game = matching_pennies();
        let profile = MixedProfile {
            row: MixedStrategy::uniform(2),
            col: MixedStrategy::uniform(2),
        };
        let mut advice = honest_row_advice(&game, &profile);
        advice.lambda_opp = rat(1, 2); // lie
        let mut oracle = HonestOracle::new(profile.col.support());
        let outcome = run(&game, &advice, &mut oracle, 2);
        assert!(matches!(
            outcome,
            P2Outcome::Rejected {
                reason: P2Rejection::InSupportPayoffMismatch { .. },
                ..
            }
        ));
    }

    /// A 2×3 game whose unique mixed equilibrium leaves column 2 strictly
    /// outside the support (its payoff to the column agent is −1 < λ₂).
    fn game_with_dominated_column() -> (BimatrixGame, MixedProfile) {
        let game =
            BimatrixGame::from_i64_tables(&[&[2, 0, 0], &[0, 1, 0]], &[&[1, 0, -1], &[0, 2, -1]]);
        let profile = MixedProfile {
            row: MixedStrategy::try_new(vec![rat(2, 3), rat(1, 3)]).unwrap(),
            col: MixedStrategy::try_new(vec![rat(1, 3), rat(2, 3), rat(0, 1)]).unwrap(),
        };
        assert!(game.is_nash(&profile));
        (game, profile)
    }

    #[test]
    fn false_membership_lies_caught_whp() {
        // The oracle falsely claims the dominated column 2 is in the
        // support; whenever the verifier samples it, the payoff −1 ≠ λ₂
        // exposes the lie.
        let (game, profile) = game_with_dominated_column();
        let advice = honest_row_advice(&game, &profile);
        let mut rejections = 0;
        for seed in 0..50 {
            let mut oracle = LyingOracle::new(profile.col.support(), [2usize]);
            if let P2Outcome::Rejected {
                reason: P2Rejection::InSupportPayoffMismatch { index: 2, .. },
                ..
            } = run(&game, &advice, &mut oracle, seed)
            {
                rejections += 1;
            }
        }
        // Each conclusive pair misses column 2 with probability (2/3)²;
        // three pairs miss it with ≈ 9% probability.
        assert!(
            rejections >= 35,
            "false membership caught in {rejections}/50 runs"
        );
    }

    #[test]
    fn denial_lies_only_lose_information() {
        // Denying membership of a support column is *not* detectable by the
        // payoff test: at the equilibrium that column earns exactly λ₂ and
        // the out-of-support condition is `≤ λ₂` (Fig. 4's boundary case).
        // The lie costs the prover conclusive tests but cannot make honest
        // advice rejected.
        let (game, profile) = game_with_dominated_column();
        let advice = honest_row_advice(&game, &profile);
        for seed in 0..20 {
            let mut oracle = LyingOracle::new(profile.col.support(), [0usize]);
            let outcome = run(&game, &advice, &mut oracle, seed);
            assert!(
                !matches!(outcome, P2Outcome::Rejected { .. }),
                "denial lies must not reject honest advice (seed {seed})"
            );
        }
    }

    #[test]
    fn wrong_own_strategy_dimension_rejected() {
        let game = matching_pennies();
        let advice = P2Advice {
            own_strategy: MixedStrategy::uniform(3),
            lambda_own: rat(0, 1),
            lambda_opp: rat(0, 1),
        };
        let mut oracle = HonestOracle::new([0, 1]);
        assert!(matches!(
            run(&game, &advice, &mut oracle, 3),
            P2Outcome::Rejected {
                reason: P2Rejection::MalformedOwnStrategy { .. },
                ..
            }
        ));
    }

    #[test]
    fn tiny_budget_is_undecided() {
        let game = matching_pennies();
        let profile = MixedProfile {
            row: MixedStrategy::uniform(2),
            col: MixedStrategy::uniform(2),
        };
        let advice = honest_row_advice(&game, &profile);
        let mut oracle = HonestOracle::new(profile.col.support());
        let mut rng = StdRng::seed_from_u64(9);
        let outcome = verify_private_advice(
            &game,
            &advice,
            &mut oracle,
            &mut rng,
            &P2Config {
                required_conclusive: 5,
                max_queries: 2,
            },
        );
        assert!(matches!(outcome, P2Outcome::Undecided { .. }));
    }

    #[test]
    fn privacy_ledger_counts_only_answer_bits() {
        let game = matching_pennies();
        let profile = MixedProfile {
            row: MixedStrategy::uniform(2),
            col: MixedStrategy::uniform(2),
        };
        let advice = honest_row_advice(&game, &profile);
        let mut oracle = HonestOracle::new(profile.col.support());
        let outcome = run(&game, &advice, &mut oracle, 11);
        let transcript = outcome.transcript();
        // Opponent information = one bit per oracle answer, nothing else.
        assert_eq!(
            transcript.opponent_bits_disclosed(),
            transcript.num_queries()
        );
        // Compare against P1 on the same game: P1 ships the whole opposing
        // support mask (m bits) — for larger games P2's disclosure stays at
        // the answers only. (Both = 2 queries here; the point is the
        // *composition*, asserted above.)
    }

    #[test]
    fn column_agent_verifies_via_swapped_roles() {
        let game = battle_of_the_sexes();
        let profile = MixedProfile {
            row: MixedStrategy::try_new(vec![rat(2, 3), rat(1, 3)]).unwrap(),
            col: MixedStrategy::try_new(vec![rat(1, 3), rat(2, 3)]).unwrap(),
        };
        let swapped = game.swap_roles();
        let col_view = MixedProfile {
            row: profile.col.clone(),
            col: profile.row.clone(),
        };
        let advice = honest_row_advice(&swapped, &col_view);
        let mut oracle = HonestOracle::new(col_view.col.support());
        assert!(run(&swapped, &advice, &mut oracle, 5).is_accepted());
    }

    #[test]
    fn random_games_honest_end_to_end() {
        let mut accepted = 0;
        for seed in 0..30 {
            let game = GameGenerator::seeded(seed).bimatrix(4, 4, -9..=9);
            let Some(eq) = find_one_equilibrium(&game) else {
                continue;
            };
            let advice = honest_row_advice(&game, &eq.profile);
            let mut oracle = HonestOracle::new(eq.col_support.clone());
            if run(&game, &advice, &mut oracle, seed).is_accepted() {
                accepted += 1;
            }
        }
        assert!(accepted >= 25, "honest P2 accepted on {accepted}/~30 games");
    }
}
