//! Property-based soundness and completeness tests for every certificate
//! family.
//!
//! * **Completeness**: honestly generated certificates always verify.
//! * **Soundness**: randomly corrupted certificates are always rejected
//!   (or, when the corruption happens to produce another true statement,
//!   the verified conclusion is still true — acceptance never lies).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use ra_exact::{rat, Rational};
use ra_games::{GameGenerator, MixedProfile, MixedStrategy, StrategyProfile};
use ra_proofs::kernel::{check, Proof, Prop};
use ra_proofs::{
    honest_online_advice, honest_row_advice, prove_is_nash, prove_max_nash, prove_not_nash,
    verify_online_advice, verify_participation_certificate, verify_private_advice,
    verify_support_certificate, HonestOracle, P2Config, ParticipationCertificate,
    PureNashCertificate, SupportCertificate,
};
use ra_solvers::{
    enumerate_equilibria, solve_participation_equilibrium, EnumerationOptions, EquilibriumRoot,
    ParticipationParams,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// §3 completeness + soundness for `IsNash` claims on random games.
    #[test]
    fn pure_nash_certificates_exact(seed in 0u64..2000) {
        let game = GameGenerator::seeded(seed).strategic(vec![3, 3], -8..=8);
        for profile in game.profiles() {
            let cert = PureNashCertificate {
                profile: profile.clone(),
                proof: prove_is_nash(profile.clone()),
            };
            prop_assert_eq!(cert.verify(&game).is_ok(), game.is_pure_nash(&profile));
        }
    }

    /// §3 maximality proofs: prover succeeds exactly on maximal equilibria,
    /// and a maximality proof replayed for a *different* profile fails.
    #[test]
    fn max_nash_certificates_exact(seed in 0u64..500) {
        let game = GameGenerator::seeded(seed).strategic(vec![2, 2, 2], -5..=5);
        let equilibria = game.pure_nash_equilibria();
        for profile in game.profiles() {
            match prove_max_nash(&game, &profile) {
                Some(proof) => {
                    prop_assert!(game.is_maximal_nash(&profile));
                    let theorem = check(&game, &proof).expect("honest proof checks");
                    prop_assert_eq!(theorem.prop(), &Prop::IsMaxNash(profile.clone()));
                }
                None => prop_assert!(!game.is_maximal_nash(&profile)),
            }
        }
        // Splice a valid proof onto a different profile: must be rejected.
        if let (Some(maximal), Some(other)) = (
            equilibria.iter().find(|e| game.is_maximal_nash(e)),
            game.profiles().find(|p| !game.is_maximal_nash(p)),
        ) {
            let proof = prove_max_nash(&game, maximal).expect("provable");
            let spliced = PureNashCertificate { profile: other, proof };
            prop_assert!(spliced.verify(&game).is_err());
        }
    }

    /// §3 refutations: sound and complete on random games.
    #[test]
    fn refutations_exact(seed in 0u64..2000) {
        let game = GameGenerator::seeded(seed).strategic(vec![2, 4], -6..=6);
        for profile in game.profiles() {
            match prove_not_nash(&game, &profile) {
                Some(proof) => {
                    prop_assert!(!game.is_pure_nash(&profile));
                    prop_assert!(check(&game, &proof).is_ok());
                }
                None => prop_assert!(game.is_pure_nash(&profile)),
            }
        }
    }

    /// Corrupted refutation witnesses never pass.
    #[test]
    fn corrupted_refutations_rejected(seed in 0u64..1000, agent in 0usize..2, strat in 0usize..4) {
        let game = GameGenerator::seeded(seed).strategic(vec![4, 4], -6..=6);
        for profile in game.pure_nash_equilibria() {
            let forged = Proof::NashRefute { profile: profile.clone(), agent, strategy: strat };
            prop_assert!(check(&game, &forged).is_err(),
                "an equilibrium cannot be refuted (seed {})", seed);
        }
    }

    /// P1 completeness on solver output + soundness under support
    /// corruption: any accepted certificate reconstructs a genuine Nash
    /// equilibrium, corrupted or not.
    #[test]
    fn p1_sound_under_corruption(seed in 0u64..800, flip in 0usize..6) {
        let game = GameGenerator::seeded(seed).bimatrix(3, 3, -9..=9);
        let (eqs, _) = enumerate_equilibria(&game, &EnumerationOptions::default());
        prop_assume!(!eqs.is_empty());
        let eq = &eqs[0];
        let mut cert = SupportCertificate {
            row_support: eq.row_support.clone(),
            col_support: eq.col_support.clone(),
        };
        // Flip one strategy's membership in one of the supports.
        let (support, idx) = if flip < 3 {
            (&mut cert.row_support, flip)
        } else {
            (&mut cert.col_support, flip - 3)
        };
        match support.iter().position(|&s| s == idx) {
            Some(pos) => {
                support.remove(pos);
            }
            None => {
                support.push(idx);
                support.sort_unstable();
            }
        }
        if support.is_empty() {
            // Emptied support: must be rejected as malformed.
            prop_assert!(verify_support_certificate(&game, &cert).is_err());
        } else if let Ok(verified) = verify_support_certificate(&game, &cert) {
            // The corrupted support accidentally described another
            // equilibrium — acceptance must still be *true*.
            prop_assert!(game.is_nash(&verified.profile));
        }
    }

    /// P2 completeness: honest advice from any solver equilibrium accepted.
    #[test]
    fn p2_completeness(seed in 0u64..300) {
        let game = GameGenerator::seeded(seed).bimatrix(3, 3, -9..=9);
        let (eqs, _) = enumerate_equilibria(&game, &EnumerationOptions::default());
        prop_assume!(!eqs.is_empty());
        let eq = &eqs[0];
        let advice = honest_row_advice(&game, &eq.profile);
        let mut oracle = HonestOracle::new(eq.col_support.clone());
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
        let outcome = verify_private_advice(&game, &advice, &mut oracle, &mut rng, &P2Config::default());
        prop_assert!(outcome.is_accepted());
    }

    /// P2 soundness: advice whose λ_opp is perturbed is rejected whenever
    /// the verifier gets a conclusive sample.
    #[test]
    fn p2_rejects_wrong_lambda(seed in 0u64..300, delta_num in 1i64..5) {
        let game = GameGenerator::seeded(seed).bimatrix(3, 3, -9..=9);
        let (eqs, _) = enumerate_equilibria(&game, &EnumerationOptions::default());
        prop_assume!(!eqs.is_empty());
        let eq = &eqs[0];
        let mut advice = honest_row_advice(&game, &eq.profile);
        advice.lambda_opp = &advice.lambda_opp + &rat(delta_num, 7);
        let mut oracle = HonestOracle::new(eq.col_support.clone());
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1234);
        let outcome = verify_private_advice(&game, &advice, &mut oracle, &mut rng, &P2Config::default());
        prop_assert!(!outcome.is_accepted(), "perturbed λ must never be accepted");
    }

    /// §5 certificates: solver output verifies; perturbed exact roots are
    /// rejected.
    #[test]
    fn participation_sound(n in 3u64..8, v_num in 3i64..30, c_num in 1i64..29, noise in 1i64..100) {
        prop_assume!(c_num < v_num);
        let params = ParticipationParams::new(n, 2, Rational::from(v_num), Rational::from(c_num)).unwrap();
        let tol = rat(1, 1 << 22);
        let Ok(roots) = solve_participation_equilibrium(&params, &tol) else {
            return Ok(());
        };
        for root in roots {
            let cert = ParticipationCertificate { params: params.clone(), root: root.clone() };
            prop_assert!(verify_participation_certificate(&cert, &tol).is_ok());
            if let EquilibriumRoot::Exact(p) = &root {
                let perturbed = ParticipationCertificate {
                    params: params.clone(),
                    root: EquilibriumRoot::Exact(p + &rat(noise, 100_000)),
                };
                prop_assert!(verify_participation_certificate(&perturbed, &tol).is_err());
            }
        }
    }

    /// §6 advice: honest construction always verifies; rerouting the
    /// suggestion to a different link is rejected (either as a mismatch or,
    /// if the assignment is edited consistently, as a non-equilibrium)
    /// unless the links genuinely tie.
    #[test]
    fn online_advice_sound(
        loads in prop::collection::vec(0i64..50, 2..6),
        own in 1i64..40,
        future in 0i64..20,
        agents in 0usize..5,
    ) {
        let current: Vec<Rational> = loads.iter().map(|&l| Rational::from(l)).collect();
        let cert = honest_online_advice(
            &current,
            &Rational::from(own),
            &Rational::from(future),
            agents,
        );
        let verified = verify_online_advice(&cert).expect("honest advice verifies");
        prop_assert_eq!(verified.link, cert.suggested_link);
        // Tamper: point the suggestion elsewhere without editing the
        // assignment — always caught.
        let mut tampered = cert.clone();
        tampered.suggested_link = (cert.suggested_link + 1) % current.len();
        prop_assert!(verify_online_advice(&tampered).is_err());
    }
}

/// Spliced P2 advice across games: honest advice for game A fed to the
/// verifier of game B must not be accepted (unless coincidentally valid).
#[test]
fn p2_advice_not_transferable() {
    let game_a = GameGenerator::seeded(1).bimatrix(3, 3, -9..=9);
    let game_b = GameGenerator::seeded(2).bimatrix(3, 3, -9..=9);
    let (eqs, _) = enumerate_equilibria(&game_a, &EnumerationOptions::default());
    let eq = &eqs[0];
    let advice = honest_row_advice(&game_a, &eq.profile);
    let mut rejected = 0;
    for seed in 0..20 {
        let mut oracle = HonestOracle::new(eq.col_support.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        let outcome = verify_private_advice(
            &game_b,
            &advice,
            &mut oracle,
            &mut rng,
            &P2Config::default(),
        );
        if !outcome.is_accepted() {
            rejected += 1;
        }
    }
    assert!(
        rejected >= 15,
        "cross-game advice rejected in {rejected}/20 runs"
    );
}

/// Kernel fingerprints stop cross-game replay of §3 theorems.
#[test]
fn theorems_bound_to_games() {
    let game_a = GameGenerator::seeded(11).strategic(vec![2, 2], -5..=5);
    let game_b = GameGenerator::seeded(12).strategic(vec![2, 2], -5..=5);
    for profile in game_a.pure_nash_equilibria() {
        let theorem = check(&game_a, &prove_is_nash(profile)).unwrap();
        assert!(theorem.applies_to(&game_a));
        assert!(!theorem.applies_to(&game_b));
    }
}

/// The paper's worked §5 numbers as a cross-crate integration check.
#[test]
fn paper_section5_numbers() {
    let params = ParticipationParams::paper_example();
    let roots = solve_participation_equilibrium(&params, &rat(1, 1 << 26)).unwrap();
    assert_eq!(roots[0], EquilibriumRoot::Exact(rat(1, 4)));
    let cert = ParticipationCertificate {
        params,
        root: roots[0].clone(),
    };
    let verified = verify_participation_certificate(&cert, &rat(1, 1024)).unwrap();
    // Expected gain v/16 with v = 8.
    assert_eq!(verified.expected_gain, rat(1, 2));
}

/// Fig. 5 / Remark 2: the row agent's P2 view is consistent with a
/// continuum of column strategies — verify several and confirm none is
/// distinguished by the advice.
#[test]
fn fig5_remark2_ambiguity() {
    let game = ra_games::named::fig5_game();
    let advices: Vec<_> = [
        (rat(1, 1), rat(0, 1)),
        (rat(3, 4), rat(1, 4)),
        (rat(1, 2), rat(1, 2)),
    ]
    .into_iter()
    .map(|(qc, qd)| {
        let profile = MixedProfile {
            row: MixedStrategy::pure(2, 0),
            col: MixedStrategy::try_new(vec![qc, qd]).unwrap(),
        };
        assert!(game.is_nash(&profile));
        honest_row_advice(&game, &profile)
    })
    .collect();
    // All equilibria in the continuum induce the *identical* row-agent
    // advice — the row agent cannot tell them apart (Remark 2).
    assert!(advices.windows(2).all(|w| w[0] == w[1]));
}

/// Pure profiles: P1 certificates and §3 kernel proofs agree on every
/// 2-agent pure equilibrium.
#[test]
fn p1_and_kernel_agree_on_pure_profiles() {
    for seed in 0..40u64 {
        let game = GameGenerator::seeded(seed).bimatrix(3, 3, -7..=7);
        let strategic = game.to_strategic();
        for i in 0..3 {
            for j in 0..3 {
                let cert = SupportCertificate {
                    row_support: vec![i],
                    col_support: vec![j],
                };
                let p1_ok = verify_support_certificate(&game, &cert).is_ok();
                let profile = StrategyProfile::new(vec![i, j]);
                let kernel_ok = check(&strategic, &prove_is_nash(profile.clone())).is_ok();
                assert_eq!(
                    p1_ok, kernel_ok,
                    "seed {seed}, profile {profile}: P1 and kernel disagree"
                );
            }
        }
    }
}
