//! # ra-exact — exact arithmetic substrate
//!
//! Arbitrary-precision integers, exact rationals, dense linear algebra,
//! polynomials and binomial combinatorics over ℚ.
//!
//! This crate exists because the rationality-authority verifiers (the
//! `ra-proofs` consumers) must be *sound*: accepting a certificate is a
//! mathematical statement, so no floating-point rounding may occur on the
//! verification path. Everything an inventor claims — mixed strategy
//! probabilities, equilibrium payoffs λ, participation probabilities — is
//! expressed and re-checked in exact rational arithmetic.
//!
//! ## Quick tour
//!
//! ```
//! use ra_exact::{rat, Matrix, solve_linear_system};
//!
//! // Indifference system for a 2-support mixed equilibrium.
//! let a = Matrix::from_rows(vec![
//!     vec![rat(1, 1), rat(3, 1)],
//!     vec![rat(1, 1), rat(1, 1)],
//! ]);
//! let x = solve_linear_system(&a, &[rat(2, 1), rat(1, 1)])
//!     .unique()
//!     .unwrap();
//! assert_eq!(x, vec![rat(1, 2), rat(1, 2)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bigint;
mod binomial;
mod linalg;
mod lp;
mod polynomial;
mod rational;

pub use bigint::{BigInt, ParseExactError, Sign};
pub use binomial::{
    binomial, binomial_pmf, binomial_tail_at_least, binomial_tail_at_most, factorial,
};
pub use linalg::{solve_linear_system, LinearSolution, Matrix};
pub use lp::{maximize, LpError, LpResult};
pub use polynomial::{bisect, BisectError, BisectionResult, Polynomial};
pub use rational::{rat, Rational};
