//! Exact rational numbers.
//!
//! [`Rational`] is the scalar type of every verifier in this workspace:
//! payoffs, mixed-strategy probabilities and equilibrium values are all
//! represented exactly, so a certificate check never accepts a false claim
//! due to rounding. Values are kept normalized (reduced, positive
//! denominator), making equality structural.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

use crate::bigint::{BigInt, ParseExactError, Sign};

/// An exact rational number `num / den` with `den > 0` and `gcd(num, den) = 1`.
///
/// # Examples
///
/// ```
/// use ra_exact::Rational;
///
/// let third = Rational::new(1, 3);
/// let sum = &third + &third + &third;
/// assert_eq!(sum, Rational::one());
/// assert_eq!("3/8".parse::<Rational>().unwrap(), Rational::new(3, 8));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rational {
    num: BigInt,
    den: BigInt,
}

impl Rational {
    /// Creates `num / den` from machine integers.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i64, den: i64) -> Rational {
        Rational::from_bigints(BigInt::from(num), BigInt::from(den))
    }

    /// Creates `num / den` from big integers, normalizing sign and factors.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn from_bigints(num: BigInt, den: BigInt) -> Rational {
        assert!(!den.is_zero(), "rational with zero denominator");
        if num.is_zero() {
            return Rational {
                num: BigInt::zero(),
                den: BigInt::one(),
            };
        }
        let g = num.gcd(&den);
        let mut num = &num / &g;
        let mut den = &den / &g;
        if den.is_negative() {
            num = -num;
            den = -den;
        }
        Rational { num, den }
    }

    /// The rational `0`.
    pub fn zero() -> Rational {
        Rational {
            num: BigInt::zero(),
            den: BigInt::one(),
        }
    }

    /// The rational `1`.
    pub fn one() -> Rational {
        Rational {
            num: BigInt::one(),
            den: BigInt::one(),
        }
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Returns `true` if the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Returns `true` if the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// Returns the sign of the value.
    pub fn sign(&self) -> Sign {
        self.num.sign()
    }

    /// The (reduced) numerator.
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// The (reduced, strictly positive) denominator.
    pub fn denom(&self) -> &BigInt {
        &self.den
    }

    /// Returns `true` if the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == BigInt::one()
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        if self.is_negative() {
            -self
        } else {
            self.clone()
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(&self) -> Rational {
        assert!(!self.is_zero(), "reciprocal of zero");
        if self.num.is_negative() {
            Rational {
                num: -&self.den,
                den: -&self.num,
            }
        } else {
            Rational {
                num: self.den.clone(),
                den: self.num.clone(),
            }
        }
    }

    /// Raises to an integer power (negative exponents invert).
    ///
    /// # Panics
    ///
    /// Panics if the value is zero and `exp < 0`.
    pub fn pow(&self, exp: i32) -> Rational {
        if exp >= 0 {
            Rational {
                num: self.num.pow(exp as u32),
                den: self.den.pow(exp as u32),
            }
        } else {
            self.recip().pow(-exp)
        }
    }

    /// Approximate `f64` value.
    pub fn to_f64(&self) -> f64 {
        // Scale so that both parts stay in f64 range for huge operands.
        let nb = self.num.bits() as i64;
        let db = self.den.bits() as i64;
        if nb < 900 && db < 900 {
            return self.num.to_f64() / self.den.to_f64();
        }
        let shift = (nb.max(db) - 512).max(0) as u32;
        let n = (self.num.abs().shl(0) / BigInt::from(2u8).pow(shift)).to_f64();
        let d = (self.den.shl(0) / BigInt::from(2u8).pow(shift)).to_f64();
        let v = n / d;
        if self.is_negative() {
            -v
        } else {
            v
        }
    }

    /// Exact conversion from an `f64` (every finite `f64` is rational).
    ///
    /// Returns `None` for NaN or infinities.
    pub fn from_f64(v: f64) -> Option<Rational> {
        if !v.is_finite() {
            return None;
        }
        if v == 0.0 {
            return Some(Rational::zero());
        }
        let bits = v.to_bits();
        let sign = if bits >> 63 == 1 { -1i64 } else { 1 };
        let exponent = ((bits >> 52) & 0x7ff) as i64;
        let mantissa = if exponent == 0 {
            bits & 0xf_ffff_ffff_ffff // subnormal
        } else {
            (bits & 0xf_ffff_ffff_ffff) | (1 << 52)
        };
        let exp2 = exponent.max(1) - 1075;
        let m = BigInt::from(sign) * BigInt::from(mantissa);
        Some(if exp2 >= 0 {
            Rational::from_bigints(m.shl(exp2 as u32), BigInt::one())
        } else {
            Rational::from_bigints(m, BigInt::from(2u8).pow((-exp2) as u32))
        })
    }

    /// Rounds toward negative infinity to an integer.
    pub fn floor(&self) -> BigInt {
        let (q, r) = self.num.div_rem(&self.den);
        if r.is_negative() {
            q - BigInt::one()
        } else {
            q
        }
    }

    /// Minimum of two rationals.
    pub fn min(self, other: Rational) -> Rational {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Maximum of two rationals.
    pub fn max(self, other: Rational) -> Rational {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Default for Rational {
    fn default() -> Rational {
        Rational::zero()
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Rational {
        Rational {
            num: BigInt::from(v),
            den: BigInt::one(),
        }
    }
}

impl From<i32> for Rational {
    fn from(v: i32) -> Rational {
        Rational::from(v as i64)
    }
}

impl From<u32> for Rational {
    fn from(v: u32) -> Rational {
        Rational::from(v as i64)
    }
}

impl From<usize> for Rational {
    fn from(v: usize) -> Rational {
        Rational {
            num: BigInt::from(v),
            den: BigInt::one(),
        }
    }
}

impl From<BigInt> for Rational {
    fn from(v: BigInt) -> Rational {
        Rational {
            num: v,
            den: BigInt::one(),
        }
    }
}

impl Add for &Rational {
    type Output = Rational;
    fn add(self, rhs: &Rational) -> Rational {
        Rational::from_bigints(
            &(&self.num * &rhs.den) + &(&rhs.num * &self.den),
            &self.den * &rhs.den,
        )
    }
}

impl Sub for &Rational {
    type Output = Rational;
    fn sub(self, rhs: &Rational) -> Rational {
        Rational::from_bigints(
            &(&self.num * &rhs.den) - &(&rhs.num * &self.den),
            &self.den * &rhs.den,
        )
    }
}

impl Mul for &Rational {
    type Output = Rational;
    fn mul(self, rhs: &Rational) -> Rational {
        Rational::from_bigints(&self.num * &rhs.num, &self.den * &rhs.den)
    }
}

impl Div for &Rational {
    type Output = Rational;
    fn div(self, rhs: &Rational) -> Rational {
        assert!(!rhs.is_zero(), "division by zero Rational");
        Rational::from_bigints(&self.num * &rhs.den, &self.den * &rhs.num)
    }
}

impl Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -&self.num,
            den: self.den.clone(),
        }
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

macro_rules! forward_rat_ops {
    ($($trait:ident::$method:ident),*) => {$(
        impl $trait for Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational {
                $trait::$method(&self, &rhs)
            }
        }
        impl $trait<&Rational> for Rational {
            type Output = Rational;
            fn $method(self, rhs: &Rational) -> Rational {
                $trait::$method(&self, rhs)
            }
        }
        impl $trait<Rational> for &Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational {
                $trait::$method(self, &rhs)
            }
        }
    )*};
}

forward_rat_ops!(Add::add, Sub::sub, Mul::mul, Div::div);

impl AddAssign<&Rational> for Rational {
    fn add_assign(&mut self, rhs: &Rational) {
        *self = &*self + rhs;
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = &*self + &rhs;
    }
}

impl SubAssign<&Rational> for Rational {
    fn sub_assign(&mut self, rhs: &Rational) {
        *self = &*self - rhs;
    }
}

impl MulAssign<&Rational> for Rational {
    fn mul_assign(&mut self, rhs: &Rational) {
        *self = &*self * rhs;
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Rational) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Rational) -> Ordering {
        // Denominators are positive, so cross-multiplication preserves order.
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_integer() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rational({self})")
    }
}

impl FromStr for Rational {
    type Err = ParseExactError;

    /// Parses `"a"`, `"a/b"`, or decimal `"a.b"` forms.
    fn from_str(s: &str) -> Result<Rational, ParseExactError> {
        if let Some((n, d)) = s.split_once('/') {
            let num: BigInt = n.trim().parse()?;
            let den: BigInt = d.trim().parse()?;
            if den.is_zero() {
                return Err(ParseExactError {
                    message: "zero denominator",
                });
            }
            return Ok(Rational::from_bigints(num, den));
        }
        if let Some((int_part, frac_part)) = s.split_once('.') {
            let negative = int_part.trim_start().starts_with('-');
            let int: BigInt = if int_part.is_empty() || int_part == "-" {
                BigInt::zero()
            } else {
                int_part.parse()?
            };
            if frac_part.is_empty() || !frac_part.bytes().all(|b| b.is_ascii_digit()) {
                return Err(ParseExactError {
                    message: "invalid decimal fraction",
                });
            }
            let frac: BigInt = frac_part.parse()?;
            let scale = BigInt::from(10u8).pow(frac_part.len() as u32);
            let signed_frac = if negative { -frac } else { frac };
            let num = &(&int * &scale) + &signed_frac;
            return Ok(Rational::from_bigints(num, scale));
        }
        Ok(Rational::from(s.parse::<BigInt>()?))
    }
}

/// Convenience constructor: `rat(3, 8)` is `3/8`.
///
/// # Panics
///
/// Panics if `den == 0`.
///
/// # Examples
///
/// ```
/// use ra_exact::rat;
/// assert_eq!(rat(6, 16), rat(3, 8));
/// ```
pub fn rat(num: i64, den: i64) -> Rational {
    Rational::new(num, den)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(rat(6, 16), rat(3, 8));
        assert_eq!(rat(-6, -16), rat(3, 8));
        assert_eq!(rat(6, -16), rat(-3, 8));
        assert_eq!(rat(0, -5), Rational::zero());
        assert!(rat(0, 1).denom() == &crate::BigInt::one());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = rat(1, 0);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(rat(1, 2) + rat(1, 3), rat(5, 6));
        assert_eq!(rat(1, 2) - rat(1, 3), rat(1, 6));
        assert_eq!(rat(2, 3) * rat(3, 4), rat(1, 2));
        assert_eq!(rat(2, 3) / rat(4, 3), rat(1, 2));
        assert_eq!(-rat(2, 3), rat(-2, 3));
        assert_eq!(rat(1, 3).recip(), rat(3, 1));
        assert_eq!(rat(-1, 3).recip(), rat(-3, 1));
    }

    #[test]
    fn ordering() {
        assert!(rat(1, 3) < rat(1, 2));
        assert!(rat(-1, 2) < rat(-1, 3));
        assert!(rat(7, 7) == Rational::one());
        assert_eq!(rat(1, 3).max(rat(1, 2)), rat(1, 2));
        assert_eq!(rat(1, 3).min(rat(-1, 2)), rat(-1, 2));
    }

    #[test]
    fn powers() {
        assert_eq!(rat(3, 4).pow(2), rat(9, 16));
        assert_eq!(rat(3, 4).pow(0), Rational::one());
        assert_eq!(rat(3, 4).pow(-1), rat(4, 3));
        assert_eq!(rat(-1, 2).pow(3), rat(-1, 8));
    }

    #[test]
    fn parsing() {
        assert_eq!("3/8".parse::<Rational>().unwrap(), rat(3, 8));
        assert_eq!("-3/8".parse::<Rational>().unwrap(), rat(-3, 8));
        assert_eq!("3/-8".parse::<Rational>().unwrap(), rat(-3, 8));
        assert_eq!("42".parse::<Rational>().unwrap(), rat(42, 1));
        assert_eq!("0.25".parse::<Rational>().unwrap(), rat(1, 4));
        assert_eq!("-0.25".parse::<Rational>().unwrap(), rat(-1, 4));
        assert_eq!("1.5".parse::<Rational>().unwrap(), rat(3, 2));
        assert!("1/0".parse::<Rational>().is_err());
        assert!("a/b".parse::<Rational>().is_err());
        assert!("1.x".parse::<Rational>().is_err());
    }

    #[test]
    fn f64_round_trips() {
        for v in [0.0, 0.5, -0.25, 1.0 / 3.0, 1234.5678, -1e-8] {
            let r = Rational::from_f64(v).unwrap();
            assert_eq!(r.to_f64(), v, "exact back-conversion for {v}");
        }
        assert_eq!(Rational::from_f64(0.5).unwrap(), rat(1, 2));
        assert!(Rational::from_f64(f64::NAN).is_none());
        assert!(Rational::from_f64(f64::INFINITY).is_none());
    }

    #[test]
    fn floor_behaviour() {
        assert_eq!(rat(7, 2).floor(), crate::BigInt::from(3));
        assert_eq!(rat(-7, 2).floor(), crate::BigInt::from(-4));
        assert_eq!(rat(4, 2).floor(), crate::BigInt::from(2));
    }

    #[test]
    fn paper_worked_number() {
        // §5: c/v = 3/8, n = 3 ⇒ p = 1/4 solves c = v(n-1)p(1-p)^{n-2}.
        let p = rat(1, 4);
        let lhs = rat(3, 8);
        let rhs = Rational::from(2) * &p * (Rational::one() - &p);
        assert_eq!(lhs, rhs);
    }
}
