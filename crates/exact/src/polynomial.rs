//! Univariate polynomials over [`Rational`] and exact bisection.
//!
//! The participation game of §5 defines its symmetric equilibrium as the root
//! of a polynomial equation in the participation probability `p`
//! (`c = v·(n−1)·p·(1−p)^{n−2}` for `k = 2`). The *inventor* isolates the
//! root; the *verifier* merely evaluates the polynomial at the advised `p`,
//! which is where the compute/verify asymmetry of the paper comes from.

use std::fmt;

use crate::rational::Rational;

/// A univariate polynomial with rational coefficients, `coeffs[i]` being the
/// coefficient of `x^i`.
///
/// # Examples
///
/// ```
/// use ra_exact::{Polynomial, rat};
///
/// // 2x^2 - 3x + 1
/// let p = Polynomial::new(vec![rat(1, 1), rat(-3, 1), rat(2, 1)]);
/// assert_eq!(p.eval(&rat(1, 1)), rat(0, 1));
/// assert_eq!(p.eval(&rat(1, 2)), rat(0, 1));
/// assert_eq!(p.degree(), Some(2));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Polynomial {
    coeffs: Vec<Rational>,
}

impl Polynomial {
    /// Creates a polynomial from coefficients (constant term first); trailing
    /// zero coefficients are trimmed.
    pub fn new(mut coeffs: Vec<Rational>) -> Polynomial {
        while coeffs.last().is_some_and(Rational::is_zero) {
            coeffs.pop();
        }
        Polynomial { coeffs }
    }

    /// The zero polynomial.
    pub fn zero() -> Polynomial {
        Polynomial { coeffs: Vec::new() }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: Rational) -> Polynomial {
        Polynomial::new(vec![c])
    }

    /// Degree, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// Coefficient of `x^i` (zero beyond the degree).
    pub fn coeff(&self, i: usize) -> Rational {
        self.coeffs.get(i).cloned().unwrap_or_else(Rational::zero)
    }

    /// Evaluates at `x` by Horner's rule.
    pub fn eval(&self, x: &Rational) -> Rational {
        let mut acc = Rational::zero();
        for c in self.coeffs.iter().rev() {
            acc = &(&acc * x) + c;
        }
        acc
    }

    /// Formal derivative.
    pub fn derivative(&self) -> Polynomial {
        if self.coeffs.len() <= 1 {
            return Polynomial::zero();
        }
        Polynomial::new(
            self.coeffs
                .iter()
                .enumerate()
                .skip(1)
                .map(|(i, c)| Rational::from(i) * c)
                .collect(),
        )
    }

    /// Polynomial addition.
    pub fn add(&self, rhs: &Polynomial) -> Polynomial {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        Polynomial::new((0..n).map(|i| self.coeff(i) + rhs.coeff(i)).collect())
    }

    /// Polynomial subtraction.
    pub fn sub(&self, rhs: &Polynomial) -> Polynomial {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        Polynomial::new((0..n).map(|i| self.coeff(i) - rhs.coeff(i)).collect())
    }

    /// Polynomial multiplication.
    pub fn mul(&self, rhs: &Polynomial) -> Polynomial {
        if self.coeffs.is_empty() || rhs.coeffs.is_empty() {
            return Polynomial::zero();
        }
        let mut out = vec![Rational::zero(); self.coeffs.len() + rhs.coeffs.len() - 1];
        for (i, a) in self.coeffs.iter().enumerate() {
            for (j, b) in rhs.coeffs.iter().enumerate() {
                out[i + j] += &(a * b);
            }
        }
        Polynomial::new(out)
    }

    /// Scales by a rational constant.
    pub fn scale(&self, k: &Rational) -> Polynomial {
        Polynomial::new(self.coeffs.iter().map(|c| c * k).collect())
    }

    /// `(1 - x)^n`, a recurring factor in the participation-game equations.
    pub fn one_minus_x_pow(n: u32) -> Polynomial {
        let base = Polynomial::new(vec![Rational::one(), Rational::from(-1)]);
        let mut acc = Polynomial::constant(Rational::one());
        for _ in 0..n {
            acc = acc.mul(&base);
        }
        acc
    }
}

impl fmt::Debug for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Polynomial(")?;
        if self.coeffs.is_empty() {
            write!(f, "0")?;
        }
        for (i, c) in self.coeffs.iter().enumerate().rev() {
            if c.is_zero() {
                continue;
            }
            if i < self.coeffs.len() - 1 {
                write!(f, " + ")?;
            }
            match i {
                0 => write!(f, "{c}")?,
                1 => write!(f, "({c})x")?,
                _ => write!(f, "({c})x^{i}")?,
            }
        }
        write!(f, ")")
    }
}

/// Result of an exact bisection search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BisectionResult {
    /// Lower bound of the bracketing interval.
    pub lo: Rational,
    /// Upper bound of the bracketing interval.
    pub hi: Rational,
    /// Number of bisection iterations performed.
    pub iterations: u32,
}

impl BisectionResult {
    /// Interval midpoint — the advised root approximation.
    pub fn midpoint(&self) -> Rational {
        (&self.lo + &self.hi) * crate::rat(1, 2)
    }

    /// Interval width.
    pub fn width(&self) -> Rational {
        &self.hi - &self.lo
    }
}

/// Errors from [`bisect`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BisectError {
    /// `f(lo)` and `f(hi)` do not have opposite signs.
    NoSignChange,
    /// The requested interval is empty or reversed.
    EmptyInterval,
}

impl fmt::Display for BisectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BisectError::NoSignChange => {
                write!(f, "bisection requires a sign change over the interval")
            }
            BisectError::EmptyInterval => write!(f, "bisection interval is empty"),
        }
    }
}

impl std::error::Error for BisectError {}

/// Exact bisection: narrows a sign-changing interval of `f` until its width
/// is at most `tolerance`.
///
/// All arithmetic is rational, so the returned bracket is a *certificate*:
/// anyone can re-evaluate `f` at `lo` and `hi` and confirm the sign change.
///
/// # Errors
///
/// Returns [`BisectError::NoSignChange`] if `f(lo)·f(hi) > 0`, and
/// [`BisectError::EmptyInterval`] if `lo >= hi`.
///
/// # Examples
///
/// ```
/// use ra_exact::{bisect, rat, Rational};
///
/// // Root of x^2 - 2 in [1, 2]: narrows toward sqrt(2).
/// let f = |x: &Rational| x * x - Rational::from(2);
/// let res = bisect(f, rat(1, 1), rat(2, 1), &rat(1, 1024)).unwrap();
/// assert!(res.width() <= rat(1, 1024));
/// ```
pub fn bisect(
    f: impl Fn(&Rational) -> Rational,
    mut lo: Rational,
    mut hi: Rational,
    tolerance: &Rational,
) -> Result<BisectionResult, BisectError> {
    if lo >= hi {
        return Err(BisectError::EmptyInterval);
    }
    let mut f_lo = f(&lo);
    let f_hi = f(&hi);
    if f_lo.is_zero() {
        return Ok(BisectionResult {
            hi: lo.clone(),
            lo,
            iterations: 0,
        });
    }
    if f_hi.is_zero() {
        return Ok(BisectionResult {
            lo: hi.clone(),
            hi,
            iterations: 0,
        });
    }
    if f_lo.is_negative() == f_hi.is_negative() {
        return Err(BisectError::NoSignChange);
    }
    let half = crate::rat(1, 2);
    let mut iterations = 0;
    while &(&hi - &lo) > tolerance {
        let mid = (&lo + &hi) * &half;
        let f_mid = f(&mid);
        iterations += 1;
        if f_mid.is_zero() {
            return Ok(BisectionResult {
                lo: mid.clone(),
                hi: mid,
                iterations,
            });
        }
        if f_mid.is_negative() == f_lo.is_negative() {
            lo = mid;
            f_lo = f_mid;
        } else {
            hi = mid;
        }
    }
    Ok(BisectionResult { lo, hi, iterations })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::rat;

    #[test]
    fn eval_and_derivative() {
        // p(x) = x^3 - 2x + 5
        let p = Polynomial::new(vec![rat(5, 1), rat(-2, 1), rat(0, 1), rat(1, 1)]);
        assert_eq!(p.eval(&rat(2, 1)), rat(9, 1));
        assert_eq!(
            p.derivative(),
            Polynomial::new(vec![rat(-2, 1), rat(0, 1), rat(3, 1)])
        );
        assert_eq!(Polynomial::zero().derivative(), Polynomial::zero());
        assert_eq!(p.degree(), Some(3));
        assert_eq!(Polynomial::zero().degree(), None);
    }

    #[test]
    fn trimming() {
        let p = Polynomial::new(vec![rat(1, 1), rat(0, 1), rat(0, 1)]);
        assert_eq!(p.degree(), Some(0));
        assert_eq!(Polynomial::new(vec![rat(0, 1)]), Polynomial::zero());
    }

    #[test]
    fn ring_operations() {
        let p = Polynomial::new(vec![rat(1, 1), rat(1, 1)]); // 1 + x
        let q = Polynomial::new(vec![rat(-1, 1), rat(1, 1)]); // -1 + x
        assert_eq!(
            p.mul(&q),
            Polynomial::new(vec![rat(-1, 1), rat(0, 1), rat(1, 1)])
        );
        assert_eq!(p.add(&q), Polynomial::new(vec![rat(0, 1), rat(2, 1)]));
        assert_eq!(p.sub(&p), Polynomial::zero());
        assert_eq!(
            p.scale(&rat(3, 1)),
            Polynomial::new(vec![rat(3, 1), rat(3, 1)])
        );
    }

    #[test]
    fn one_minus_x_pow_expansion() {
        // (1-x)^2 = 1 - 2x + x^2
        assert_eq!(
            Polynomial::one_minus_x_pow(2),
            Polynomial::new(vec![rat(1, 1), rat(-2, 1), rat(1, 1)])
        );
        assert_eq!(
            Polynomial::one_minus_x_pow(0),
            Polynomial::constant(rat(1, 1))
        );
    }

    #[test]
    fn bisect_finds_participation_equilibrium() {
        // §5 worked example: v(n-1)p(1-p)^{n-2} - c with v=1, c=3/8, n=3.
        // Smallest root is exactly 1/4.
        let f = |p: &Rational| Rational::from(2) * p * (Rational::one() - p) - rat(3, 8);
        let res = bisect(f, rat(0, 1), rat(1, 2), &rat(1, 1 << 20)).unwrap();
        let mid = res.midpoint();
        assert!((mid - rat(1, 4)).abs() < rat(1, 1 << 19));
    }

    #[test]
    fn bisect_exact_hit() {
        let f = |x: &Rational| x - &rat(1, 2);
        let res = bisect(f, rat(0, 1), rat(1, 1), &rat(1, 1024)).unwrap();
        assert_eq!(res.lo, rat(1, 2));
        assert_eq!(res.hi, rat(1, 2));
    }

    #[test]
    fn bisect_errors() {
        let f = |x: &Rational| x.clone();
        assert_eq!(
            bisect(f, rat(1, 1), rat(2, 1), &rat(1, 2)),
            Err(BisectError::NoSignChange)
        );
        assert_eq!(
            bisect(f, rat(2, 1), rat(1, 1), &rat(1, 2)),
            Err(BisectError::EmptyInterval)
        );
    }
}
