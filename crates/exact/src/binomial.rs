//! Exact binomial combinatorics.
//!
//! The general-`k` participation game (§5, Eq. (5)) verifies an indifference
//! condition between binomial tail probabilities: with `n − 1` other firms
//! each participating independently with probability `p`, the verifier needs
//! `Pr[at least k participate]` *exactly*. These helpers compute binomial
//! coefficients and tails over [`Rational`] so the check is sound.

use crate::bigint::BigInt;
use crate::rational::Rational;

/// Binomial coefficient `C(n, k)` as a [`BigInt`].
///
/// Returns zero when `k > n`.
///
/// # Examples
///
/// ```
/// use ra_exact::{binomial, BigInt};
///
/// assert_eq!(binomial(5, 2), BigInt::from(10));
/// assert_eq!(binomial(4, 5), BigInt::from(0));
/// assert_eq!(binomial(0, 0), BigInt::from(1));
/// ```
pub fn binomial(n: u64, k: u64) -> BigInt {
    if k > n {
        return BigInt::zero();
    }
    let k = k.min(n - k);
    let mut acc = BigInt::one();
    for i in 0..k {
        acc = &acc * &BigInt::from(n - i);
        acc = &acc / &BigInt::from(i + 1);
    }
    acc
}

/// Probability mass `Pr[X = k]` for `X ~ Binomial(n, p)`, exactly.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
pub fn binomial_pmf(n: u64, k: u64, p: &Rational) -> Rational {
    assert!(
        !p.is_negative() && p <= &Rational::one(),
        "probability must lie in [0, 1]"
    );
    if k > n {
        return Rational::zero();
    }
    let q = Rational::one() - p;
    Rational::from(binomial(n, k)) * p.pow(k as i32) * q.pow((n - k) as i32)
}

/// Upper tail `Pr[X >= k]` for `X ~ Binomial(n, p)`, exactly.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use ra_exact::{binomial_tail_at_least, rat, Rational};
///
/// // Two fair coins: Pr[at least one head] = 3/4.
/// assert_eq!(binomial_tail_at_least(2, 1, &rat(1, 2)), rat(3, 4));
/// ```
pub fn binomial_tail_at_least(n: u64, k: u64, p: &Rational) -> Rational {
    if k == 0 {
        return Rational::one();
    }
    if k > n {
        return Rational::zero();
    }
    // Sum the smaller side for speed, then complement if needed.
    if k <= n / 2 {
        let mut below = Rational::zero();
        for j in 0..k {
            below += binomial_pmf(n, j, p);
        }
        Rational::one() - below
    } else {
        let mut acc = Rational::zero();
        for j in k..=n {
            acc += binomial_pmf(n, j, p);
        }
        acc
    }
}

/// Lower tail `Pr[X <= k]` for `X ~ Binomial(n, p)`, exactly.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
pub fn binomial_tail_at_most(n: u64, k: u64, p: &Rational) -> Rational {
    Rational::one() - binomial_tail_at_least(n, k + 1, p)
}

/// Factorial `n!` as a [`BigInt`].
pub fn factorial(n: u64) -> BigInt {
    let mut acc = BigInt::one();
    for i in 2..=n {
        acc = &acc * &BigInt::from(i);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::rat;

    #[test]
    fn pascal_identity() {
        for n in 1..20u64 {
            for k in 1..n {
                assert_eq!(
                    binomial(n, k),
                    &binomial(n - 1, k - 1) + &binomial(n - 1, k),
                    "C({n},{k})"
                );
            }
        }
    }

    #[test]
    fn binomial_edge_cases() {
        assert_eq!(binomial(10, 0), BigInt::one());
        assert_eq!(binomial(10, 10), BigInt::one());
        assert_eq!(binomial(10, 11), BigInt::zero());
        assert_eq!(binomial(52, 5), BigInt::from(2_598_960u64));
        // A value beyond u64: C(100, 50).
        let c: BigInt = "100891344545564193334812497256".parse().unwrap();
        assert_eq!(binomial(100, 50), c);
    }

    #[test]
    fn pmf_sums_to_one() {
        for n in [0u64, 1, 5, 9] {
            let p = rat(3, 7);
            let total: Rational = (0..=n)
                .map(|k| binomial_pmf(n, k, &p))
                .fold(Rational::zero(), |a, b| a + b);
            assert_eq!(total, Rational::one(), "n = {n}");
        }
    }

    #[test]
    fn tails_are_consistent() {
        let n = 8;
        let p = rat(1, 3);
        for k in 0..=n {
            let ge = binomial_tail_at_least(n, k, &p);
            let le = binomial_tail_at_most(n, k, &p);
            // Pr[X >= k] + Pr[X <= k] = 1 + Pr[X = k]
            assert_eq!(&ge + &le, Rational::one() + binomial_pmf(n, k, &p), "k={k}");
        }
        assert_eq!(binomial_tail_at_least(n, 0, &p), Rational::one());
        assert_eq!(binomial_tail_at_least(n, n + 1, &p), Rational::zero());
    }

    #[test]
    fn participation_game_probabilities() {
        // §5, k = 2, n = 3, p = 1/4: with two other firms,
        // C = Pr[at least 2 others participate] = p^2 = 1/16,
        // and the expected gain v·C matches the paper's v/16 once the
        // indifference condition holds.
        let p = rat(1, 4);
        assert_eq!(binomial_tail_at_least(2, 2, &p), rat(1, 16));
        // A = Pr[at least 1 other participates] = 1 - (3/4)^2 = 7/16.
        assert_eq!(binomial_tail_at_least(2, 1, &p), rat(7, 16));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn pmf_rejects_bad_probability() {
        let _ = binomial_pmf(3, 1, &rat(9, 8));
    }

    #[test]
    fn factorials() {
        assert_eq!(factorial(0), BigInt::one());
        assert_eq!(factorial(5), BigInt::from(120));
        assert_eq!(factorial(20), BigInt::from(2_432_902_008_176_640_000u64));
    }
}
