//! Arbitrary-precision signed integers.
//!
//! The rationality-authority verifiers must be *sound*: a certificate check
//! may not accept a false claim because of floating-point round-off. All
//! verifier-side linear algebra therefore runs over exact rationals, which in
//! turn need unbounded integers. No big-integer crate is available in the
//! approved dependency set, so this module implements one from scratch:
//! sign-magnitude representation with little-endian `u64` limbs, schoolbook
//! multiplication and Knuth Algorithm D division (sufficient for the limb
//! counts produced by Gaussian elimination on game-sized systems).

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Rem, Sub, SubAssign};
use std::str::FromStr;

/// Sign of a [`BigInt`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Strictly negative.
    Minus,
    /// Zero.
    Zero,
    /// Strictly positive.
    Plus,
}

impl Sign {
    fn flip(self) -> Sign {
        match self {
            Sign::Minus => Sign::Plus,
            Sign::Zero => Sign::Zero,
            Sign::Plus => Sign::Minus,
        }
    }
}

/// An arbitrary-precision signed integer.
///
/// Invariants: `mag` has no trailing zero limbs, and `sign == Sign::Zero`
/// if and only if `mag` is empty.
///
/// # Examples
///
/// ```
/// use ra_exact::BigInt;
///
/// let a = BigInt::from(1_000_000_007_i64);
/// let b = &a * &a;
/// assert_eq!(b.to_string(), "1000000014000000049");
/// assert_eq!(&b % &a, BigInt::from(0));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    /// Little-endian base-2^64 limbs; empty iff the value is zero.
    mag: Vec<u64>,
}

impl BigInt {
    /// The integer `0`.
    pub fn zero() -> BigInt {
        BigInt {
            sign: Sign::Zero,
            mag: Vec::new(),
        }
    }

    /// The integer `1`.
    pub fn one() -> BigInt {
        BigInt {
            sign: Sign::Plus,
            mag: vec![1],
        }
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// Returns `true` if the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Minus
    }

    /// Returns `true` if the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Plus
    }

    /// Returns the sign of the value.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// Returns the absolute value.
    pub fn abs(&self) -> BigInt {
        BigInt {
            sign: if self.sign == Sign::Zero {
                Sign::Zero
            } else {
                Sign::Plus
            },
            mag: self.mag.clone(),
        }
    }

    /// The magnitude as a `u64` when it fits in a single limb
    /// (`Some(0)` for zero); `None` for larger values. Lets callers on
    /// hot paths (e.g. wire encoders) take a machine-word shortcut
    /// without giving up arbitrary precision in the general case.
    pub fn magnitude_u64(&self) -> Option<u64> {
        match *self.mag.as_slice() {
            [] => Some(0),
            [limb] => Some(limb),
            _ => None,
        }
    }

    /// Number of bits in the magnitude (`0` for zero).
    pub fn bits(&self) -> u64 {
        match self.mag.last() {
            None => 0,
            Some(&hi) => (self.mag.len() as u64 - 1) * 64 + (64 - hi.leading_zeros() as u64),
        }
    }

    fn from_mag(sign: Sign, mut mag: Vec<u64>) -> BigInt {
        while mag.last() == Some(&0) {
            mag.pop();
        }
        if mag.is_empty() {
            BigInt::zero()
        } else {
            debug_assert_ne!(sign, Sign::Zero);
            BigInt { sign, mag }
        }
    }

    /// Converts to `f64`, losing precision for large magnitudes.
    pub fn to_f64(&self) -> f64 {
        let mut acc = 0.0_f64;
        for &limb in self.mag.iter().rev() {
            acc = acc * 1.8446744073709552e19 + limb as f64;
        }
        if self.sign == Sign::Minus {
            -acc
        } else {
            acc
        }
    }

    /// Converts to `i64` if it fits.
    pub fn to_i64(&self) -> Option<i64> {
        match self.mag.len() {
            0 => Some(0),
            1 => {
                let v = self.mag[0];
                match self.sign {
                    Sign::Plus if v <= i64::MAX as u64 => Some(v as i64),
                    Sign::Minus if v <= 1 << 63 => Some((v as i128).wrapping_neg() as i64),
                    _ => None,
                }
            }
            _ => None,
        }
    }

    /// Converts to `u64` if it fits and is non-negative.
    pub fn to_u64(&self) -> Option<u64> {
        match (self.sign, self.mag.len()) {
            (Sign::Zero, _) => Some(0),
            (Sign::Plus, 1) => Some(self.mag[0]),
            _ => None,
        }
    }

    /// Greatest common divisor of the absolute values.
    ///
    /// `gcd(0, 0)` is `0`.
    pub fn gcd(&self, other: &BigInt) -> BigInt {
        let mut a = self.abs();
        let mut b = other.abs();
        while !b.is_zero() {
            let r = &a % &b;
            a = b;
            b = r.abs();
        }
        a
    }

    /// Raises the value to a non-negative integer power.
    pub fn pow(&self, mut exp: u32) -> BigInt {
        let mut base = self.clone();
        let mut acc = BigInt::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            exp >>= 1;
            if exp > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// Shifts the magnitude left by `bits` (multiplies by 2^bits, keeping sign).
    pub fn shl(&self, bits: u32) -> BigInt {
        if self.is_zero() || bits == 0 {
            if bits == 0 {
                return self.clone();
            }
            return self.clone();
        }
        let limb_shift = (bits / 64) as usize;
        let bit_shift = bits % 64;
        let mut mag = vec![0u64; limb_shift];
        if bit_shift == 0 {
            mag.extend_from_slice(&self.mag);
        } else {
            let mut carry = 0u64;
            for &limb in &self.mag {
                mag.push((limb << bit_shift) | carry);
                carry = limb >> (64 - bit_shift);
            }
            if carry != 0 {
                mag.push(carry);
            }
        }
        BigInt::from_mag(self.sign, mag)
    }

    /// Divides by `other`, returning `(quotient, remainder)` with the
    /// remainder taking the sign of `self` (truncated division, like `i64`).
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn div_rem(&self, other: &BigInt) -> (BigInt, BigInt) {
        assert!(!other.is_zero(), "division by zero BigInt");
        if self.is_zero() {
            return (BigInt::zero(), BigInt::zero());
        }
        let (q_mag, r_mag) = mag_div_rem(&self.mag, &other.mag);
        let q_sign = if q_mag.iter().all(|&l| l == 0) {
            Sign::Zero
        } else if self.sign == other.sign {
            Sign::Plus
        } else {
            Sign::Minus
        };
        let r_sign = self.sign;
        (
            BigInt::from_mag(q_sign, q_mag),
            BigInt::from_mag(r_sign, r_mag),
        )
    }
}

impl Default for BigInt {
    fn default() -> BigInt {
        BigInt::zero()
    }
}

macro_rules! impl_from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for BigInt {
            fn from(v: $t) -> BigInt {
                let vv = v as i128;
                match vv.cmp(&0) {
                    Ordering::Equal => BigInt::zero(),
                    Ordering::Greater => BigInt::from_mag(Sign::Plus, u128_limbs(vv as u128)),
                    Ordering::Less => {
                        BigInt::from_mag(Sign::Minus, u128_limbs(vv.unsigned_abs()))
                    }
                }
            }
        }
    )*};
}

macro_rules! impl_from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for BigInt {
            fn from(v: $t) -> BigInt {
                if v == 0 {
                    BigInt::zero()
                } else {
                    BigInt::from_mag(Sign::Plus, u128_limbs(v as u128))
                }
            }
        }
    )*};
}

impl_from_signed!(i8, i16, i32, i64, i128, isize);
impl_from_unsigned!(u8, u16, u32, u64, u128, usize);

fn u128_limbs(v: u128) -> Vec<u64> {
    let lo = v as u64;
    let hi = (v >> 64) as u64;
    if hi == 0 {
        vec![lo]
    } else {
        vec![lo, hi]
    }
}

// ---- magnitude arithmetic -------------------------------------------------

fn mag_cmp(a: &[u64], b: &[u64]) -> Ordering {
    if a.len() != b.len() {
        return a.len().cmp(&b.len());
    }
    for (x, y) in a.iter().rev().zip(b.iter().rev()) {
        match x.cmp(y) {
            Ordering::Equal => continue,
            ord => return ord,
        }
    }
    Ordering::Equal
}

fn mag_add(a: &[u64], b: &[u64]) -> Vec<u64> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry = 0u64;
    for i in 0..long.len() {
        let rhs = if i < short.len() { short[i] } else { 0 };
        let (s1, c1) = long[i].overflowing_add(rhs);
        let (s2, c2) = s1.overflowing_add(carry);
        out.push(s2);
        carry = (c1 as u64) + (c2 as u64);
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

/// Requires `a >= b`.
fn mag_sub(a: &[u64], b: &[u64]) -> Vec<u64> {
    debug_assert!(mag_cmp(a, b) != Ordering::Less);
    let mut out = Vec::with_capacity(a.len());
    let mut borrow = 0u64;
    for i in 0..a.len() {
        let rhs = if i < b.len() { b[i] } else { 0 };
        let (d1, b1) = a[i].overflowing_sub(rhs);
        let (d2, b2) = d1.overflowing_sub(borrow);
        out.push(d2);
        borrow = (b1 as u64) + (b2 as u64);
    }
    debug_assert_eq!(borrow, 0);
    while out.last() == Some(&0) {
        out.pop();
    }
    out
}

fn mag_mul(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &bj) in b.iter().enumerate() {
            let t = out[i + j] as u128 + ai as u128 * bj as u128 + carry;
            out[i + j] = t as u64;
            carry = t >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let t = out[k] as u128 + carry;
            out[k] = t as u64;
            carry = t >> 64;
            k += 1;
        }
    }
    while out.last() == Some(&0) {
        out.pop();
    }
    out
}

/// Long division of magnitudes: returns `(quotient, remainder)`.
fn mag_div_rem(a: &[u64], b: &[u64]) -> (Vec<u64>, Vec<u64>) {
    debug_assert!(!b.is_empty());
    match mag_cmp(a, b) {
        Ordering::Less => return (Vec::new(), a.to_vec()),
        Ordering::Equal => return (vec![1], Vec::new()),
        Ordering::Greater => {}
    }
    if b.len() == 1 {
        let (q, r) = mag_div_rem_limb(a, b[0]);
        return (q, if r == 0 { Vec::new() } else { vec![r] });
    }
    knuth_d(a, b)
}

fn mag_div_rem_limb(a: &[u64], d: u64) -> (Vec<u64>, u64) {
    let mut q = vec![0u64; a.len()];
    let mut rem = 0u128;
    for i in (0..a.len()).rev() {
        let cur = (rem << 64) | a[i] as u128;
        q[i] = (cur / d as u128) as u64;
        rem = cur % d as u128;
    }
    while q.last() == Some(&0) {
        q.pop();
    }
    (q, rem as u64)
}

/// Knuth TAOCP vol. 2, Algorithm 4.3.1 D, base 2^64.
fn knuth_d(a: &[u64], b: &[u64]) -> (Vec<u64>, Vec<u64>) {
    let n = b.len();
    let m = a.len() - n;
    // D1: normalize so the divisor's top limb has its high bit set.
    let shift = b[n - 1].leading_zeros();
    let bn = shl_limbs(b, shift);
    let mut an = shl_limbs(a, shift);
    an.resize(a.len() + 1, 0); // extra high limb u[m+n]
    let mut q = vec![0u64; m + 1];
    let b_top = bn[n - 1];
    let b_second = bn[n - 2];
    // D2..D7: loop over quotient digits.
    for j in (0..=m).rev() {
        // D3: estimate q̂ from the top two dividend limbs.
        let top = ((an[j + n] as u128) << 64) | an[j + n - 1] as u128;
        let mut q_hat = top / b_top as u128;
        let mut r_hat = top % b_top as u128;
        while q_hat >= 1 << 64 || q_hat * b_second as u128 > ((r_hat << 64) | an[j + n - 2] as u128)
        {
            q_hat -= 1;
            r_hat += b_top as u128;
            if r_hat >= 1 << 64 {
                break;
            }
        }
        // D4: multiply and subtract.
        let mut borrow = 0i128;
        let mut carry = 0u128;
        for i in 0..n {
            let p = q_hat * bn[i] as u128 + carry;
            carry = p >> 64;
            let sub = (an[j + i] as i128) - (p as u64 as i128) + borrow;
            an[j + i] = sub as u64;
            borrow = sub >> 64;
        }
        let sub = (an[j + n] as i128) - (carry as i128) + borrow;
        an[j + n] = sub as u64;
        // D5/D6: if we subtracted too much, add back.
        if sub < 0 {
            q_hat -= 1;
            let mut carry = 0u64;
            for i in 0..n {
                let (s1, c1) = an[j + i].overflowing_add(bn[i]);
                let (s2, c2) = s1.overflowing_add(carry);
                an[j + i] = s2;
                carry = (c1 as u64) + (c2 as u64);
            }
            an[j + n] = an[j + n].wrapping_add(carry);
        }
        q[j] = q_hat as u64;
    }
    // D8: denormalize the remainder.
    let mut r = shr_limbs(&an[..n], shift);
    while q.last() == Some(&0) {
        q.pop();
    }
    while r.last() == Some(&0) {
        r.pop();
    }
    (q, r)
}

fn shl_limbs(a: &[u64], shift: u32) -> Vec<u64> {
    if shift == 0 {
        return a.to_vec();
    }
    let mut out = Vec::with_capacity(a.len() + 1);
    let mut carry = 0u64;
    for &limb in a {
        out.push((limb << shift) | carry);
        carry = limb >> (64 - shift);
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

fn shr_limbs(a: &[u64], shift: u32) -> Vec<u64> {
    if shift == 0 {
        return a.to_vec();
    }
    let mut out = vec![0u64; a.len()];
    let mut carry = 0u64;
    for i in (0..a.len()).rev() {
        out[i] = (a[i] >> shift) | carry;
        carry = a[i] << (64 - shift);
    }
    while out.last() == Some(&0) {
        out.pop();
    }
    out
}

// ---- operator impls --------------------------------------------------------

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &BigInt) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &BigInt) -> Ordering {
        let rank = |s: Sign| match s {
            Sign::Minus => 0u8,
            Sign::Zero => 1,
            Sign::Plus => 2,
        };
        match rank(self.sign).cmp(&rank(other.sign)) {
            Ordering::Equal => match self.sign {
                Sign::Zero => Ordering::Equal,
                Sign::Plus => mag_cmp(&self.mag, &other.mag),
                Sign::Minus => mag_cmp(&other.mag, &self.mag),
            },
            ord => ord,
        }
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        BigInt {
            sign: self.sign.flip(),
            mag: self.mag.clone(),
        }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(mut self) -> BigInt {
        self.sign = self.sign.flip();
        self
    }
}

impl Add for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        match (self.sign, rhs.sign) {
            (Sign::Zero, _) => rhs.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => BigInt::from_mag(a, mag_add(&self.mag, &rhs.mag)),
            _ => match mag_cmp(&self.mag, &rhs.mag) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => BigInt::from_mag(self.sign, mag_sub(&self.mag, &rhs.mag)),
                Ordering::Less => BigInt::from_mag(rhs.sign, mag_sub(&rhs.mag, &self.mag)),
            },
        }
    }
}

impl Sub for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        self + &(-rhs)
    }
}

impl Mul for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        let sign = match (self.sign, rhs.sign) {
            (Sign::Zero, _) | (_, Sign::Zero) => return BigInt::zero(),
            (a, b) if a == b => Sign::Plus,
            _ => Sign::Minus,
        };
        BigInt::from_mag(sign, mag_mul(&self.mag, &rhs.mag))
    }
}

impl Div for &BigInt {
    type Output = BigInt;
    fn div(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).0
    }
}

impl Rem for &BigInt {
    type Output = BigInt;
    fn rem(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).1
    }
}

macro_rules! forward_value_ops {
    ($($trait:ident::$method:ident),*) => {$(
        impl $trait for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                $trait::$method(&self, &rhs)
            }
        }
        impl $trait<&BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: &BigInt) -> BigInt {
                $trait::$method(&self, rhs)
            }
        }
        impl $trait<BigInt> for &BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                $trait::$method(self, &rhs)
            }
        }
    )*};
}

forward_value_ops!(Add::add, Sub::sub, Mul::mul, Div::div, Rem::rem);

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, rhs: &BigInt) {
        *self = &*self + rhs;
    }
}

impl SubAssign<&BigInt> for BigInt {
    fn sub_assign(&mut self, rhs: &BigInt) {
        *self = &*self - rhs;
    }
}

impl MulAssign<&BigInt> for BigInt {
    fn mul_assign(&mut self, rhs: &BigInt) {
        *self = &*self * rhs;
    }
}

// ---- formatting and parsing -------------------------------------------------

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        let mut digits = Vec::new();
        let mut mag = self.mag.clone();
        while !mag.is_empty() {
            let (q, r) = mag_div_rem_limb(&mag, 10_000_000_000_000_000_000);
            if q.is_empty() {
                digits.push(format!("{r}"));
            } else {
                digits.push(format!("{r:019}"));
            }
            mag = q;
        }
        let body: String = digits.into_iter().rev().collect();
        if self.sign == Sign::Minus {
            write!(f, "-{body}")
        } else {
            f.write_str(&body)
        }
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

/// Error returned when parsing a [`BigInt`] or
/// [`Rational`](crate::Rational) from a string fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseExactError {
    pub(crate) message: &'static str,
}

impl fmt::Display for ParseExactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseExactError {}

impl FromStr for BigInt {
    type Err = ParseExactError;

    fn from_str(s: &str) -> Result<BigInt, ParseExactError> {
        let (neg, body) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s.strip_prefix('+').unwrap_or(s)),
        };
        if body.is_empty() {
            return Err(ParseExactError {
                message: "empty integer literal",
            });
        }
        let mut acc = BigInt::zero();
        let ten_pow = BigInt::from(10_000_000_000_000_000_000_u64);
        for chunk in chunks_of_19(body) {
            if !chunk.bytes().all(|b| b.is_ascii_digit()) {
                return Err(ParseExactError {
                    message: "invalid digit in integer literal",
                });
            }
            let v: u64 = chunk.parse().map_err(|_| ParseExactError {
                message: "invalid digit in integer literal",
            })?;
            let scale = BigInt::from(10u64).pow(chunk.len() as u32);
            acc = if chunk.len() == 19 {
                &acc * &ten_pow
            } else {
                &acc * &scale
            };
            acc = &acc + &BigInt::from(v);
        }
        Ok(if neg { -acc } else { acc })
    }
}

/// Splits decimal text into chunks of at most 19 digits, first chunk shortest.
fn chunks_of_19(s: &str) -> impl Iterator<Item = &str> {
    let first = s.len() % 19;
    let head = if first == 0 { None } else { Some(&s[..first]) };
    head.into_iter()
        .chain(s.as_bytes()[first..].chunks(19).map(|c| {
            // SAFETY-free: input was validated as ASCII digits by the caller loop.
            std::str::from_utf8(c).unwrap_or("")
        }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bi(v: i128) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn zero_and_one() {
        assert!(BigInt::zero().is_zero());
        assert_eq!(BigInt::zero(), bi(0));
        assert_eq!(BigInt::one(), bi(1));
        assert_eq!(BigInt::default(), BigInt::zero());
    }

    #[test]
    fn small_arithmetic_matches_i128() {
        let cases = [
            (0i128, 0i128),
            (1, -1),
            (-5, 7),
            (123456789, 987654321),
            (i64::MAX as i128, i64::MAX as i128),
            (-(1i128 << 100), 1i128 << 90),
        ];
        for &(a, b) in &cases {
            assert_eq!(bi(a) + bi(b), bi(a + b), "add {a} {b}");
            assert_eq!(bi(a) - bi(b), bi(a - b), "sub {a} {b}");
            if let Some(p) = a.checked_mul(b) {
                assert_eq!(bi(a) * bi(b), bi(p), "mul {a} {b}");
            }
            if b != 0 {
                assert_eq!(bi(a) / bi(b), bi(a / b), "div {a} {b}");
                assert_eq!(bi(a) % bi(b), bi(a % b), "rem {a} {b}");
            }
        }
    }

    #[test]
    fn ordering_is_total() {
        let vals = [-100i128, -1, 0, 1, 99, 1 << 70];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(bi(a).cmp(&bi(b)), a.cmp(&b), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn display_round_trips() {
        for s in [
            "0",
            "1",
            "-1",
            "18446744073709551616",
            "-340282366920938463463374607431768211456",
            "99999999999999999999999999999999999999999999",
        ] {
            let v: BigInt = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<BigInt>().is_err());
        assert!("-".parse::<BigInt>().is_err());
        assert!("12a3".parse::<BigInt>().is_err());
        assert!("1 2".parse::<BigInt>().is_err());
    }

    #[test]
    fn large_mul_div_round_trip() {
        let a: BigInt = "123456789012345678901234567890123456789".parse().unwrap();
        let b: BigInt = "987654321098765432109876543210".parse().unwrap();
        let p = &a * &b;
        assert_eq!(&p / &a, b);
        assert_eq!(&p / &b, a);
        assert!((&p % &a).is_zero());
        let (q, r) = p.div_rem(&(&b + &BigInt::one()));
        assert_eq!(&q * &(&b + &BigInt::one()) + &r, p);
    }

    #[test]
    fn knuth_d_add_back_case() {
        // Constructed so the q̂ estimate needs the rare D6 correction path:
        // dividend top limbs equal divisor top limbs.
        let b = BigInt::from_mag(Sign::Plus, vec![0, 0, 1, u64::MAX >> 1]);
        let a = &(&b * &BigInt::from(u64::MAX)) - &BigInt::one();
        let (q, r) = a.div_rem(&b);
        assert_eq!(&(&q * &b) + &r, a);
        assert!(r < b);
        assert!(!r.is_negative());
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(bi(12).gcd(&bi(18)), bi(6));
        assert_eq!(bi(-12).gcd(&bi(18)), bi(6));
        assert_eq!(bi(0).gcd(&bi(5)), bi(5));
        assert_eq!(bi(0).gcd(&bi(0)), bi(0));
        let a = bi(2).pow(120);
        let b = bi(2).pow(90) * bi(3);
        assert_eq!(a.gcd(&b), bi(2).pow(90));
    }

    #[test]
    fn pow_and_bits() {
        assert_eq!(bi(2).pow(0), bi(1));
        assert_eq!(bi(2).pow(64), bi(1i128 << 64));
        assert_eq!(bi(2).pow(64).bits(), 65);
        assert_eq!(BigInt::zero().bits(), 0);
        assert_eq!(bi(3).pow(40), bi(3i128.pow(40)));
    }

    #[test]
    fn shl_matches_mul_by_power_of_two() {
        let v: BigInt = "123456789123456789123456789".parse().unwrap();
        for bits in [0u32, 1, 13, 64, 65, 130] {
            assert_eq!(v.shl(bits), &v * &bi(2).pow(bits));
        }
        assert_eq!((-&v).shl(3), -(v.shl(3)));
    }

    #[test]
    fn truncated_division_signs() {
        assert_eq!(bi(7).div_rem(&bi(2)), (bi(3), bi(1)));
        assert_eq!(bi(-7).div_rem(&bi(2)), (bi(-3), bi(-1)));
        assert_eq!(bi(7).div_rem(&bi(-2)), (bi(-3), bi(1)));
        assert_eq!(bi(-7).div_rem(&bi(-2)), (bi(3), bi(-1)));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = bi(1).div_rem(&bi(0));
    }

    #[test]
    fn conversions() {
        assert_eq!(bi(42).to_i64(), Some(42));
        assert_eq!(bi(-42).to_i64(), Some(-42));
        assert_eq!(bi(i64::MIN as i128).to_i64(), Some(i64::MIN));
        assert_eq!((bi(i64::MAX as i128) + bi(1)).to_i64(), None);
        assert_eq!(bi(7).to_u64(), Some(7));
        assert_eq!(bi(-7).to_u64(), None);
        assert!((bi(1i128 << 80).to_f64() - (1i128 << 80) as f64).abs() < 1e10);
    }

    #[test]
    fn display_round_trip() {
        // No serializer dependency offline; the canonical interchange form
        // is the Display string.
        let v: BigInt = "-123456789012345678901234567890".parse().unwrap();
        assert_eq!(v.to_string().parse::<BigInt>().unwrap(), v);
    }
}
