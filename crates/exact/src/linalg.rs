//! Exact dense linear algebra over [`Rational`].
//!
//! The P1 verifier of the paper (§4, Lemma 1) must solve the indifference
//! linear system induced by the claimed equilibrium supports. Solving it
//! exactly over ℚ removes the usual floating-point caveat from the
//! verification step: acceptance is a proof, not an approximation.

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::rational::Rational;

/// A dense matrix of [`Rational`] entries in row-major order.
///
/// # Examples
///
/// ```
/// use ra_exact::{Matrix, rat};
///
/// let m = Matrix::from_rows(vec![
///     vec![rat(1, 1), rat(2, 1)],
///     vec![rat(3, 1), rat(4, 1)],
/// ]);
/// assert_eq!(m.determinant(), rat(-2, 1));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Rational>,
}

impl Matrix {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![Rational::zero(); rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Rational::one();
        }
        m
    }

    /// Builds a matrix from rows.
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths.
    pub fn from_rows(rows: Vec<Vec<Rational>>) -> Matrix {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        assert!(rows.iter().all(|row| row.len() == c), "ragged matrix rows");
        Matrix {
            rows: r,
            cols: c,
            data: rows.into_iter().flatten().collect(),
        }
    }

    /// Builds a matrix by evaluating `f(row, col)`.
    pub fn from_fn(
        rows: usize,
        cols: usize,
        mut f: impl FnMut(usize, usize) -> Rational,
    ) -> Matrix {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)].clone())
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[Rational]) -> Vec<Rational> {
        assert_eq!(v.len(), self.cols, "dimension mismatch in mul_vec");
        (0..self.rows)
            .map(|i| {
                let mut acc = Rational::zero();
                for j in 0..self.cols {
                    acc += &(&self[(i, j)] * &v[j]);
                }
                acc
            })
            .collect()
    }

    /// Matrix product.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn mul_mat(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch in mul_mat");
        Matrix::from_fn(self.rows, rhs.cols, |i, j| {
            let mut acc = Rational::zero();
            for k in 0..self.cols {
                acc += &(&self[(i, k)] * &rhs[(k, j)]);
            }
            acc
        })
    }

    /// Determinant by fraction-preserving Gaussian elimination.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn determinant(&self) -> Rational {
        assert_eq!(self.rows, self.cols, "determinant of non-square matrix");
        let mut m = self.clone();
        let n = m.rows;
        let mut det = Rational::one();
        for col in 0..n {
            let pivot = match (col..n).find(|&r| !m[(r, col)].is_zero()) {
                Some(p) => p,
                None => return Rational::zero(),
            };
            if pivot != col {
                m.swap_rows(pivot, col);
                det = -det;
            }
            let p = m[(col, col)].clone();
            det = &det * &p;
            for r in col + 1..n {
                let factor = &m[(r, col)] / &p;
                if factor.is_zero() {
                    continue;
                }
                for c in col..n {
                    let sub = &factor * &m[(col, c)];
                    let cur = m[(r, c)].clone();
                    m[(r, c)] = &cur - &sub;
                }
            }
        }
        det
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(a * self.cols + c, b * self.cols + c);
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = Rational;
    fn index(&self, (r, c): (usize, usize)) -> &Rational {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Rational {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

/// Outcome of solving a linear system `A x = b` exactly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LinearSolution {
    /// Exactly one solution.
    Unique(Vec<Rational>),
    /// Infinitely many solutions; one particular solution is given together
    /// with the system's rank.
    Underdetermined {
        /// A particular solution (free variables set to zero).
        particular: Vec<Rational>,
        /// Rank of the coefficient matrix.
        rank: usize,
    },
    /// No solution exists.
    Inconsistent,
}

impl LinearSolution {
    /// Returns the unique solution if there is one.
    pub fn unique(self) -> Option<Vec<Rational>> {
        match self {
            LinearSolution::Unique(x) => Some(x),
            _ => None,
        }
    }

    /// Returns any solution (unique or particular) if the system is solvable.
    pub fn any_solution(self) -> Option<Vec<Rational>> {
        match self {
            LinearSolution::Unique(x) => Some(x),
            LinearSolution::Underdetermined { particular, .. } => Some(particular),
            LinearSolution::Inconsistent => None,
        }
    }
}

/// Solves `A x = b` over the rationals via Gauss–Jordan elimination.
///
/// Works for any shape of `A` (over- and under-determined systems included).
///
/// # Panics
///
/// Panics if `b.len() != a.rows()`.
///
/// # Examples
///
/// ```
/// use ra_exact::{solve_linear_system, LinearSolution, Matrix, rat};
///
/// let a = Matrix::from_rows(vec![
///     vec![rat(2, 1), rat(1, 1)],
///     vec![rat(1, 1), rat(-1, 1)],
/// ]);
/// let sol = solve_linear_system(&a, &[rat(3, 1), rat(0, 1)]);
/// assert_eq!(sol, LinearSolution::Unique(vec![rat(1, 1), rat(1, 1)]));
/// ```
pub fn solve_linear_system(a: &Matrix, b: &[Rational]) -> LinearSolution {
    assert_eq!(b.len(), a.rows(), "rhs length must equal row count");
    let rows = a.rows();
    let cols = a.cols();
    // Augmented matrix [A | b].
    let mut m = Matrix::from_fn(rows, cols + 1, |i, j| {
        if j < cols {
            a[(i, j)].clone()
        } else {
            b[i].clone()
        }
    });
    let mut pivot_cols = Vec::new();
    let mut row = 0;
    for col in 0..cols {
        let pivot = match (row..rows).find(|&r| !m[(r, col)].is_zero()) {
            Some(p) => p,
            None => continue,
        };
        m.swap_rows(pivot, row);
        let p = m[(row, col)].clone();
        for c in col..=cols {
            let cur = m[(row, c)].clone();
            m[(row, c)] = &cur / &p;
        }
        for r in 0..rows {
            if r == row || m[(r, col)].is_zero() {
                continue;
            }
            let factor = m[(r, col)].clone();
            for c in col..=cols {
                let sub = &factor * &m[(row, c)];
                let cur = m[(r, c)].clone();
                m[(r, c)] = &cur - &sub;
            }
        }
        pivot_cols.push(col);
        row += 1;
        if row == rows {
            break;
        }
    }
    let rank = pivot_cols.len();
    // Inconsistent if any zero row has non-zero rhs.
    for r in rank..rows {
        if !m[(r, cols)].is_zero() {
            return LinearSolution::Inconsistent;
        }
    }
    let mut x = vec![Rational::zero(); cols];
    for (r, &c) in pivot_cols.iter().enumerate() {
        x[c] = m[(r, cols)].clone();
    }
    if rank == cols {
        LinearSolution::Unique(x)
    } else {
        LinearSolution::Underdetermined {
            particular: x,
            rank,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::rat;

    fn r(v: i64) -> Rational {
        Rational::from(v)
    }

    #[test]
    fn identity_and_mul() {
        let i3 = Matrix::identity(3);
        let m = Matrix::from_fn(3, 3, |i, j| r((i * 3 + j) as i64));
        assert_eq!(i3.mul_mat(&m), m);
        assert_eq!(m.mul_mat(&i3), m);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn mul_vec_matches_by_hand() {
        let m = Matrix::from_rows(vec![vec![r(1), r(2)], vec![r(3), r(4)]]);
        assert_eq!(m.mul_vec(&[r(5), r(6)]), vec![r(17), r(39)]);
    }

    #[test]
    fn determinant_cases() {
        assert_eq!(Matrix::identity(4).determinant(), r(1));
        let m = Matrix::from_rows(vec![vec![r(1), r(2)], vec![r(2), r(4)]]);
        assert_eq!(m.determinant(), r(0));
        let m = Matrix::from_rows(vec![
            vec![r(2), r(0), r(1)],
            vec![r(1), r(1), r(0)],
            vec![r(0), r(3), r(1)],
        ]);
        // det = 2*(1*1-0*3) - 0 + 1*(1*3-1*0) = 2 + 3 = 5
        assert_eq!(m.determinant(), r(5));
    }

    #[test]
    fn unique_solution() {
        let a = Matrix::from_rows(vec![
            vec![r(1), r(1), r(1)],
            vec![r(0), r(2), r(5)],
            vec![r(2), r(5), r(-1)],
        ]);
        let b = [r(6), r(-4), r(27)];
        let x = solve_linear_system(&a, &b).unique().expect("unique");
        assert_eq!(a.mul_vec(&x), b.to_vec());
        assert_eq!(x, vec![r(5), r(3), r(-2)]);
    }

    #[test]
    fn inconsistent_system() {
        let a = Matrix::from_rows(vec![vec![r(1), r(1)], vec![r(2), r(2)]]);
        assert_eq!(
            solve_linear_system(&a, &[r(1), r(3)]),
            LinearSolution::Inconsistent
        );
    }

    #[test]
    fn underdetermined_system() {
        let a = Matrix::from_rows(vec![vec![r(1), r(1)], vec![r(2), r(2)]]);
        match solve_linear_system(&a, &[r(1), r(2)]) {
            LinearSolution::Underdetermined { particular, rank } => {
                assert_eq!(rank, 1);
                assert_eq!(a.mul_vec(&particular), vec![r(1), r(2)]);
            }
            other => panic!("expected underdetermined, got {other:?}"),
        }
    }

    #[test]
    fn overdetermined_consistent() {
        // Three equations, two unknowns, consistent.
        let a = Matrix::from_rows(vec![vec![r(1), r(0)], vec![r(0), r(1)], vec![r(1), r(1)]]);
        let sol = solve_linear_system(&a, &[r(2), r(3), r(5)]);
        assert_eq!(sol, LinearSolution::Unique(vec![r(2), r(3)]));
    }

    #[test]
    fn fractional_pivots() {
        let a = Matrix::from_rows(vec![
            vec![rat(1, 2), rat(1, 3)],
            vec![rat(1, 4), rat(-1, 6)],
        ]);
        let b = [rat(5, 6), rat(1, 12)];
        let x = solve_linear_system(&a, &b).unique().expect("unique");
        assert_eq!(a.mul_vec(&x), b.to_vec());
    }

    #[test]
    #[should_panic(expected = "rhs length")]
    fn mismatched_rhs_panics() {
        let a = Matrix::identity(2);
        let _ = solve_linear_system(&a, &[r(1)]);
    }
}
