//! Exact linear programming (simplex with Bland's rule).
//!
//! Lemma 1 states the P1 verifier runs in "LP(n, m)" time; this module
//! makes that literal: a simplex solver over exact rationals, used by
//! `ra-solvers` for zero-sum game values and available to verifiers that
//! need full LP power (the paper's "general purpose verification
//! procedures"). Bland's pivoting rule guarantees termination despite
//! degeneracy — important because game-derived LPs tie constantly.

use crate::linalg::Matrix;
use crate::rational::Rational;

/// Result of solving a standard-form LP.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LpResult {
    /// An optimal solution exists.
    Optimal {
        /// The maximizing assignment.
        x: Vec<Rational>,
        /// The optimal objective value.
        value: Rational,
    },
    /// The objective is unbounded above on the feasible region.
    Unbounded,
}

/// Errors from [`maximize`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LpError {
    /// Dimensions of objective/constraints/rhs disagree.
    DimensionMismatch {
        /// Description of the mismatch.
        detail: String,
    },
    /// Some right-hand side is negative (the slack basis would be
    /// infeasible; this solver is single-phase by design — callers shift
    /// their problems, as the zero-sum reduction does).
    NegativeRhs {
        /// Index of the offending constraint.
        row: usize,
    },
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::DimensionMismatch { detail } => write!(f, "dimension mismatch: {detail}"),
            LpError::NegativeRhs { row } => {
                write!(
                    f,
                    "negative rhs in constraint {row}: shift the problem first"
                )
            }
        }
    }
}

impl std::error::Error for LpError {}

/// Maximizes `objective · x` subject to `constraints · x ≤ rhs`, `x ≥ 0`,
/// with `rhs ≥ 0` (so the all-slack basis is feasible — single-phase).
///
/// Exact arithmetic throughout; Bland's rule prevents cycling, so
/// termination is guaranteed.
///
/// # Errors
///
/// See [`LpError`].
///
/// # Examples
///
/// ```
/// use ra_exact::{maximize, rat, LpResult, Matrix};
///
/// // max x + y  s.t.  x + 2y ≤ 4, 3x + y ≤ 6.
/// let a = Matrix::from_rows(vec![
///     vec![rat(1, 1), rat(2, 1)],
///     vec![rat(3, 1), rat(1, 1)],
/// ]);
/// let LpResult::Optimal { value, .. } =
///     maximize(&[rat(1, 1), rat(1, 1)], &a, &[rat(4, 1), rat(6, 1)]).unwrap()
/// else { panic!() };
/// assert_eq!(value, rat(14, 5)); // x = 8/5, y = 6/5
/// ```
pub fn maximize(
    objective: &[Rational],
    constraints: &Matrix,
    rhs: &[Rational],
) -> Result<LpResult, LpError> {
    let n = objective.len();
    let m = constraints.rows();
    if constraints.cols() != n {
        return Err(LpError::DimensionMismatch {
            detail: format!(
                "{} objective vars vs {} constraint columns",
                n,
                constraints.cols()
            ),
        });
    }
    if rhs.len() != m {
        return Err(LpError::DimensionMismatch {
            detail: format!("{m} constraints vs {} rhs entries", rhs.len()),
        });
    }
    if let Some(row) = rhs.iter().position(Rational::is_negative) {
        return Err(LpError::NegativeRhs { row });
    }

    // Tableau: m rows × (n structural + m slack + 1 rhs) columns, plus an
    // objective row holding the negated reduced costs.
    let cols = n + m + 1;
    let mut tab: Vec<Vec<Rational>> = (0..m)
        .map(|r| {
            let mut row = Vec::with_capacity(cols);
            for c in 0..n {
                row.push(constraints[(r, c)].clone());
            }
            for s in 0..m {
                row.push(if s == r {
                    Rational::one()
                } else {
                    Rational::zero()
                });
            }
            row.push(rhs[r].clone());
            row
        })
        .collect();
    // Objective row: z − c·x = 0 ⇒ coefficients −c_j for structural vars.
    let mut zrow: Vec<Rational> = (0..cols)
        .map(|c| {
            if c < n {
                -&objective[c]
            } else {
                Rational::zero()
            }
        })
        .collect();
    let mut basis: Vec<usize> = (n..n + m).collect();

    loop {
        // Bland: entering = lowest-index column with negative reduced cost.
        let Some(entering) = (0..n + m).find(|&c| zrow[c].is_negative()) else {
            // Optimal: read off structural variable values.
            let mut x = vec![Rational::zero(); n];
            for (r, &b) in basis.iter().enumerate() {
                if b < n {
                    x[b] = tab[r][cols - 1].clone();
                }
            }
            let value = zrow[cols - 1].clone();
            return Ok(LpResult::Optimal { x, value });
        };
        // Ratio test; Bland: among minimal ratios pick the lowest basis var.
        let mut pivot_row: Option<usize> = None;
        for r in 0..m {
            if !tab[r][entering].is_positive() {
                continue;
            }
            let better = match pivot_row {
                None => true,
                Some(p) => {
                    let lhs = &tab[r][cols - 1] * &tab[p][entering];
                    let rhs_v = &tab[p][cols - 1] * &tab[r][entering];
                    lhs < rhs_v || (lhs == rhs_v && basis[r] < basis[p])
                }
            };
            if better {
                pivot_row = Some(r);
            }
        }
        let Some(pr) = pivot_row else {
            return Ok(LpResult::Unbounded);
        };
        // Pivot.
        let pivot_val = tab[pr][entering].clone();
        for cell in tab[pr].iter_mut() {
            let v = cell.clone();
            *cell = &v / &pivot_val;
        }
        let pivot_row_vals = tab[pr].clone();
        for (r, row) in tab.iter_mut().enumerate() {
            if r == pr || row[entering].is_zero() {
                continue;
            }
            let factor = row[entering].clone();
            for (c, cell) in row.iter_mut().enumerate() {
                let sub = &factor * &pivot_row_vals[c];
                let cur = cell.clone();
                *cell = &cur - &sub;
            }
        }
        if !zrow[entering].is_zero() {
            let factor = zrow[entering].clone();
            for (c, cell) in zrow.iter_mut().enumerate() {
                let sub = &factor * &pivot_row_vals[c];
                let cur = cell.clone();
                *cell = &cur - &sub;
            }
        }
        basis[pr] = entering;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::rat;

    fn r(v: i64) -> Rational {
        Rational::from(v)
    }

    #[test]
    fn textbook_lp() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → x=2, y=6, z=36.
        let a = Matrix::from_rows(vec![vec![r(1), r(0)], vec![r(0), r(2)], vec![r(3), r(2)]]);
        let LpResult::Optimal { x, value } =
            maximize(&[r(3), r(5)], &a, &[r(4), r(12), r(18)]).unwrap()
        else {
            panic!("expected optimal");
        };
        assert_eq!(value, r(36));
        assert_eq!(x, vec![r(2), r(6)]);
    }

    #[test]
    fn fractional_optimum() {
        let a = Matrix::from_rows(vec![vec![r(1), r(2)], vec![r(3), r(1)]]);
        let LpResult::Optimal { x, value } = maximize(&[r(1), r(1)], &a, &[r(4), r(6)]).unwrap()
        else {
            panic!()
        };
        assert_eq!(x, vec![rat(8, 5), rat(6, 5)]);
        assert_eq!(value, rat(14, 5));
    }

    #[test]
    fn unbounded_detected() {
        // max x with only y constrained.
        let a = Matrix::from_rows(vec![vec![r(0), r(1)]]);
        assert_eq!(
            maximize(&[r(1), r(0)], &a, &[r(5)]).unwrap(),
            LpResult::Unbounded
        );
    }

    #[test]
    fn zero_objective() {
        let a = Matrix::from_rows(vec![vec![r(1)]]);
        let LpResult::Optimal { value, .. } = maximize(&[r(0)], &a, &[r(3)]).unwrap() else {
            panic!()
        };
        assert_eq!(value, r(0));
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Multiple redundant/tying constraints — Bland must not cycle.
        let a = Matrix::from_rows(vec![
            vec![r(1), r(1)],
            vec![r(1), r(1)],
            vec![r(2), r(2)],
            vec![r(1), r(0)],
        ]);
        let LpResult::Optimal { value, .. } =
            maximize(&[r(1), r(1)], &a, &[r(2), r(2), r(4), r(2)]).unwrap()
        else {
            panic!()
        };
        assert_eq!(value, r(2));
    }

    #[test]
    fn errors() {
        let a = Matrix::from_rows(vec![vec![r(1)]]);
        assert!(matches!(
            maximize(&[r(1), r(2)], &a, &[r(1)]),
            Err(LpError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            maximize(&[r(1)], &a, &[r(-1)]),
            Err(LpError::NegativeRhs { row: 0 })
        ));
        assert!(matches!(
            maximize(&[r(1)], &a, &[]),
            Err(LpError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn solution_is_feasible_and_optimal_on_random_instances() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..30 {
            let n = rng.random_range(1..4);
            let m = rng.random_range(1..4);
            let a = Matrix::from_fn(m, n, |_, _| r(rng.random_range(0..6)));
            let b: Vec<Rational> = (0..m).map(|_| r(rng.random_range(0..10))).collect();
            let c: Vec<Rational> = (0..n).map(|_| r(rng.random_range(0..5))).collect();
            match maximize(&c, &a, &b) {
                Ok(LpResult::Optimal { x, value }) => {
                    // Feasibility.
                    let ax = a.mul_vec(&x);
                    for (lhs, rhs) in ax.iter().zip(&b) {
                        assert!(lhs <= rhs);
                    }
                    assert!(x.iter().all(|v| !v.is_negative()));
                    // Objective consistency.
                    let dot: Rational = c
                        .iter()
                        .zip(&x)
                        .map(|(ci, xi)| ci * xi)
                        .fold(Rational::zero(), |acc, t| acc + t);
                    assert_eq!(dot, value);
                }
                Ok(LpResult::Unbounded) => {
                    // Only possible if some objective direction is
                    // unconstrained; accept.
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
    }
}
