//! Property-based tests for the exact arithmetic substrate.
//!
//! These check the algebraic laws that every downstream verifier silently
//! relies on: ring/field axioms, division round-trips, gcd invariants, and
//! that Gaussian elimination really solves what it claims to solve.

use proptest::prelude::*;
use ra_exact::{
    binomial, binomial_pmf, binomial_tail_at_least, solve_linear_system, BigInt, LinearSolution,
    Matrix, Polynomial, Rational,
};

fn arb_bigint() -> impl Strategy<Value = BigInt> {
    any::<i128>().prop_map(BigInt::from)
}

/// BigInts wide enough to exercise multi-limb code paths.
fn arb_wide_bigint() -> impl Strategy<Value = BigInt> {
    (any::<i128>(), any::<u128>(), 0u32..200).prop_map(|(a, b, sh)| {
        let base = BigInt::from(a) * BigInt::from(b) + BigInt::from(a);
        base.shl(sh)
    })
}

fn arb_rational() -> impl Strategy<Value = Rational> {
    (any::<i64>(), 1i64..=i64::MAX).prop_map(|(n, d)| Rational::new(n, d))
}

fn arb_small_rational() -> impl Strategy<Value = Rational> {
    (-1000i64..=1000, 1i64..=50).prop_map(|(n, d)| Rational::new(n, d))
}

proptest! {
    #[test]
    fn bigint_add_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let sum = BigInt::from(a) + BigInt::from(b);
        prop_assert_eq!(sum, BigInt::from(a as i128 + b as i128));
    }

    #[test]
    fn bigint_mul_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let prod = BigInt::from(a) * BigInt::from(b);
        prop_assert_eq!(prod, BigInt::from(a as i128 * b as i128));
    }

    #[test]
    fn bigint_add_commutes(a in arb_wide_bigint(), b in arb_wide_bigint()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn bigint_mul_commutes(a in arb_wide_bigint(), b in arb_wide_bigint()) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn bigint_distributes(a in arb_bigint(), b in arb_bigint(), c in arb_bigint()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn bigint_div_rem_round_trip(a in arb_wide_bigint(), b in arb_wide_bigint()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert_eq!(&(&q * &b) + &r, a.clone());
        prop_assert!(r.abs() < b.abs());
        // Remainder sign follows the dividend (truncated division).
        if !r.is_zero() {
            prop_assert_eq!(r.is_negative(), a.is_negative());
        }
    }

    #[test]
    fn bigint_display_parse_round_trip(a in arb_wide_bigint()) {
        let s = a.to_string();
        prop_assert_eq!(s.parse::<BigInt>().unwrap(), a);
    }

    #[test]
    fn bigint_gcd_divides_both(a in arb_bigint(), b in arb_bigint()) {
        let g = a.gcd(&b);
        if !g.is_zero() {
            prop_assert!((&a % &g).is_zero());
            prop_assert!((&b % &g).is_zero());
        } else {
            prop_assert!(a.is_zero() && b.is_zero());
        }
    }

    #[test]
    fn bigint_ordering_respects_addition(a in arb_bigint(), b in arb_bigint(), c in arb_bigint()) {
        prop_assert_eq!((&a + &c).cmp(&(&b + &c)), a.cmp(&b));
    }

    #[test]
    fn rational_field_laws(a in arb_rational(), b in arb_rational(), c in arb_rational()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        prop_assert_eq!(&a - &a, Rational::zero());
        if !a.is_zero() {
            prop_assert_eq!(&a * &a.recip(), Rational::one());
        }
    }

    #[test]
    fn rational_is_normalized(n in any::<i64>(), d in 1i64..=i64::MAX) {
        let r = Rational::new(n, d);
        prop_assert!(r.denom().is_positive());
        prop_assert_eq!(r.numer().gcd(r.denom()), BigInt::one().gcd(&BigInt::zero()).max(BigInt::one()));
    }

    #[test]
    fn rational_ordering_matches_f64(a in arb_small_rational(), b in arb_small_rational()) {
        // Small rationals are exactly representable comparisons in f64 terms
        // only approximately; use a tolerance-free check via cross products.
        let lhs = a.to_f64();
        let rhs = b.to_f64();
        if (lhs - rhs).abs() > 1e-9 {
            prop_assert_eq!(a < b, lhs < rhs);
        }
    }

    #[test]
    fn rational_from_f64_exact(v in -1.0e12f64..1.0e12) {
        let r = Rational::from_f64(v).unwrap();
        prop_assert_eq!(r.to_f64(), v);
    }

    #[test]
    fn polynomial_eval_is_ring_hom(
        ca in prop::collection::vec(-50i64..=50, 0..6),
        cb in prop::collection::vec(-50i64..=50, 0..6),
        x in -20i64..=20,
    ) {
        let pa = Polynomial::new(ca.iter().map(|&c| Rational::from(c)).collect());
        let pb = Polynomial::new(cb.iter().map(|&c| Rational::from(c)).collect());
        let x = Rational::from(x);
        prop_assert_eq!(pa.add(&pb).eval(&x), pa.eval(&x) + pb.eval(&x));
        prop_assert_eq!(pa.mul(&pb).eval(&x), pa.eval(&x) * pb.eval(&x));
    }

    #[test]
    fn linear_solver_recovers_planted_solution(
        entries in prop::collection::vec(-9i64..=9, 9),
        sol in prop::collection::vec(-9i64..=9, 3),
    ) {
        let a = Matrix::from_fn(3, 3, |i, j| Rational::from(entries[i * 3 + j]));
        let x: Vec<Rational> = sol.iter().map(|&v| Rational::from(v)).collect();
        let b = a.mul_vec(&x);
        // Whatever the solver returns must satisfy the system; if the matrix
        // is nonsingular it must be exactly the planted solution.
        match solve_linear_system(&a, &b) {
            LinearSolution::Unique(y) => {
                prop_assert_eq!(a.mul_vec(&y).clone(), b.clone());
                prop_assert!(!a.determinant().is_zero());
                prop_assert_eq!(y, x);
            }
            LinearSolution::Underdetermined { particular, .. } => {
                prop_assert_eq!(a.mul_vec(&particular), b);
                prop_assert!(a.determinant().is_zero());
            }
            LinearSolution::Inconsistent => {
                // b was constructed in the column space, so this is impossible.
                prop_assert!(false, "planted system reported inconsistent");
            }
        }
    }

    #[test]
    fn determinant_is_multiplicative(
        ea in prop::collection::vec(-5i64..=5, 4),
        eb in prop::collection::vec(-5i64..=5, 4),
    ) {
        let a = Matrix::from_fn(2, 2, |i, j| Rational::from(ea[i * 2 + j]));
        let b = Matrix::from_fn(2, 2, |i, j| Rational::from(eb[i * 2 + j]));
        prop_assert_eq!(a.mul_mat(&b).determinant(), a.determinant() * b.determinant());
    }

    #[test]
    fn binomial_symmetry(n in 0u64..40, k in 0u64..40) {
        if k <= n {
            prop_assert_eq!(binomial(n, k), binomial(n, n - k));
        } else {
            prop_assert!(binomial(n, k).is_zero());
        }
    }

    #[test]
    fn binomial_tail_is_monotone(n in 1u64..20, num in 0i64..=100) {
        let p = Rational::new(num, 100);
        let mut prev = Rational::one();
        for k in 0..=n {
            let t = binomial_tail_at_least(n, k, &p);
            prop_assert!(t <= prev, "tail must be non-increasing in k");
            prev = t;
        }
    }

    #[test]
    fn binomial_pmf_nonnegative(n in 0u64..15, k in 0u64..20, num in 0i64..=100) {
        let p = Rational::new(num, 100);
        prop_assert!(!binomial_pmf(n, k, &p).is_negative());
    }
}
