//! The sharded, multi-bus session engine.
//!
//! The paper's Fig. 1 infrastructure is a *service*: many agents consult
//! the rationality authority concurrently, and Lemma 1's point is that
//! verification is cheap enough to run at scale. [`ShardedAuthority`]
//! turns the single-bus [`RationalityAuthority`] into that service: it
//! owns N independent shards — each with its own [`Bus`],
//! inventor handle, verifier panel and reputation backend — routes agents
//! to shards by a deterministic hash of their id, and fans batches of
//! consultations across shards over a persistent, shard-pinned worker
//! pool (`pool.rs`): one long-lived thread per shard, spun up lazily on
//! the first multi-shard chunk and reused across chunks and across
//! [`ShardedAuthority::consult_batch`] calls, so epoch-chunked batches no
//! longer pay a spawn/join per chunk. Builds with
//! `--no-default-features` (dropping the `parallel` feature) fall back to
//! inline single-threaded execution with identical outcomes.
//!
//! Determinism is preserved by construction: a shard processes its
//! consultations strictly in request order under one lock — and under one
//! pinned worker — so [`ShardedAuthority::consult_batch`] produces
//! exactly the outcomes of the equivalent sequence of routed
//! [`ShardedAuthority::consult`] calls, regardless of how the workers
//! interleave across shards.
//!
//! The reputation plane is selected by [`ReputationPolicy`]:
//! [`ReputationPolicy::Isolated`] keeps the pre-refactor behaviour (one
//! private [`LocalReputation`] per shard), while
//! [`ReputationPolicy::Gossip`] and [`ReputationPolicy::Adaptive`] wire
//! every shard to a [`GossipReputation`] backend over a shared, *bus
//! carried* [`GossipPlane`]: every epoch merge travels the dedicated
//! inter-shard bus as framed [`Gossip`](crate::Message::Gossip) sends, so
//! [`ShardedAuthority::shard_stats`] reports control-plane bytes next to
//! consultation bytes and Lemma 1 accounting covers its own coordination
//! traffic. Epoch boundaries fall at exact multiples of the epoch length
//! in the engine-wide consultation stream — batches are chunked at those
//! same multiples — so batch and sequential execution still reach
//! identical outcomes (and identical byte counts), and the consult hot
//! path never takes a cross-shard lock (the merge is amortized off-path).
//! Vote weighting and reputation decay are orthogonal knobs on
//! [`ReputationConfig`].
//!
//! Inside a shard, each consult runs the lock-free hot path documented in
//! `docs/ARCHITECTURE.md` ("Consult hot path"): frame lengths are
//! measured in a recycled thread-local scratch, verdict fan-out ships
//! over [`Bus::send_batch`] in one accounting critical section each way,
//! and trust checks read one immutable
//! [`ReputationSnapshot`](crate::ReputationSnapshot) per consult, so a
//! gossip merge on another shard never contends with a consult in
//! flight.
//!
//! [`Bus`]: crate::Bus
//! [`LocalReputation`]: crate::LocalReputation

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::bus::Bus;
use crate::cache::{CacheStats, CertCache, CertCacheConfig};
use crate::inventor::{GameSpec, Inventor, InventorBehavior};
#[cfg(feature = "parallel")]
use crate::pool::ShardPool;
use crate::reputation::{
    GossipPlane, GossipReputation, LocalReputation, ReputationDecay, VoteRule,
};
use crate::session::{ConsultResult, RationalityAuthority, ResilienceConfig, SessionOutcome};
use crate::transport::Transport;
use crate::verifier::VerifierBehavior;
use crate::wire;

/// How verifier reputation is scoped across the shards of a
/// [`ShardedAuthority`].
///
/// # Examples
///
/// ```
/// use ra_authority::ReputationPolicy;
///
/// // Fully independent score tables per shard:
/// let isolated = ReputationPolicy::Isolated;
/// // Merge every 32 consultations, engine-wide:
/// let gossip = ReputationPolicy::Gossip { every: 32 };
/// // Same cadence, but check every 8 consultations whether 4+ dissenting
/// // votes have piled up since the last merge, and if so sync early:
/// let adaptive = ReputationPolicy::Adaptive { every: 32, check_every: 8, burst: 4 };
/// assert_ne!(isolated, gossip);
/// assert_ne!(gossip, adaptive);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReputationPolicy {
    /// Every shard keeps a fully independent score table: a verifier voted
    /// out on one shard keeps serving agents pinned to the others.
    #[default]
    Isolated,
    /// Shards gossip PN-counter deltas through a shared, bus-carried
    /// [`GossipPlane`]: all shards publish and then pull the merged state
    /// every `every` consultations (engine-wide), so exclusion anywhere
    /// becomes exclusion everywhere within one epoch.
    Gossip {
        /// Epoch length in consultations; must be positive.
        every: usize,
    },
    /// Like [`ReputationPolicy::Gossip`], but reactive to misbehaviour:
    /// at every `check_every` consultations the engine looks at how many
    /// dissenting votes accumulated since the last merge, and syncs early
    /// if they reach `burst`. A flood of dissent (a verifier going rogue)
    /// propagates in roughly `check_every` consultations instead of
    /// waiting out the full epoch, while quiet traffic pays only the
    /// `every`-cadence merges. Trigger points are fixed engine-wide
    /// stream positions, so batch/sequential determinism is preserved.
    Adaptive {
        /// Maximum epoch length in consultations; must be positive and a
        /// multiple of `check_every`.
        every: usize,
        /// How often (in consultations) the dissent counter is examined;
        /// must be positive.
        check_every: usize,
        /// Dissenting votes since the last merge that trigger an early
        /// sync; must be positive.
        burst: u64,
    },
}

impl ReputationPolicy {
    /// The gossip cadence `(every, check_every, burst)` of this policy,
    /// or `None` under [`ReputationPolicy::Isolated`]. Plain gossip is
    /// adaptive gossip that never checks between epochs.
    fn cadence(self) -> Option<(u64, u64, Option<u64>)> {
        match self {
            ReputationPolicy::Isolated => None,
            ReputationPolicy::Gossip { every } => {
                assert!(every > 0, "gossip epoch must be positive");
                Some((every as u64, every as u64, None))
            }
            ReputationPolicy::Adaptive {
                every,
                check_every,
                burst,
            } => {
                assert!(every > 0, "gossip epoch must be positive");
                assert!(check_every > 0, "adaptive check interval must be positive");
                assert!(
                    every % check_every == 0,
                    "adaptive epoch must be a multiple of the check interval"
                );
                assert!(burst > 0, "adaptive dissent burst must be positive");
                Some((every as u64, check_every as u64, Some(burst)))
            }
        }
    }
}

/// The full reputation-plane configuration of a [`ShardedAuthority`]:
/// scope ([`ReputationPolicy`]), vote rule ([`VoteRule`]) and decay
/// ([`ReputationDecay`]).
///
/// `Default` is the classic plane: isolated shards, one-verifier-one-vote,
/// no decay.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReputationConfig {
    /// How reputation is scoped across shards.
    pub policy: ReputationPolicy,
    /// How one round of verdicts is pooled.
    pub vote_rule: VoteRule,
    /// How past observations fade (requires a gossip policy — decay
    /// generations advance at engine-wide epoch boundaries).
    pub decay: ReputationDecay,
}

impl From<ReputationPolicy> for ReputationConfig {
    fn from(policy: ReputationPolicy) -> ReputationConfig {
        ReputationConfig {
            policy,
            ..ReputationConfig::default()
        }
    }
}

/// Aggregated bus accounting across every shard, collected with a single
/// lock acquisition per shard — consultation traffic and, under a gossip
/// policy, the control-plane traffic of the inter-shard gossip bus.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Total wire bytes across every shard's bus (consultation plane).
    pub total_bytes: usize,
    /// Retransmit wire bytes across every shard's bus — the resilient
    /// protocol's retry traffic, already included in `total_bytes` (zero
    /// when resilience is off). `total_bytes - retransmit_bytes` is the
    /// engine-wide goodput figure Lemma 1 tables cite.
    pub retransmit_bytes: usize,
    /// Total messages across every shard's bus (consultation plane).
    pub message_count: usize,
    /// Per-shard wire-byte totals (index = shard).
    pub shard_bytes: Vec<usize>,
    /// Delivered wire bytes on the inter-shard gossip bus (zero under
    /// [`ReputationPolicy::Isolated`]). Undelivered frames — dropped by
    /// fault injection or failed sends — are excluded, so this is the
    /// control-plane figure Lemma 1 tables can cite directly.
    pub gossip_bytes: usize,
    /// Messages attempted on the inter-shard gossip bus.
    pub gossip_messages: usize,
    /// Certificate-cache counters (all zero when the engine was built
    /// without a cache — see
    /// [`ShardedAuthority::with_cert_cache`]).
    pub cache: CacheStats,
    /// Frame-pool misses observed engine-wide: the calling thread's
    /// thread-local count plus every pool worker's (see
    /// [`crate::wire::frame_pool_misses`]). A warmed steady state holds
    /// this constant across batches — the zero-allocation claim of the
    /// consult hot path, observable at the engine level. Execution-shape
    /// *dependent* (worker threads warm their scratch independently of a
    /// sequential run), unlike every byte counter above.
    pub frame_pool_misses: u64,
}

/// The gossip wiring of an engine under a gossip [`ReputationPolicy`]:
/// the shared bus-carried plane, one backend handle per shard, and the
/// engine-wide counters that place epoch boundaries and adaptive
/// triggers.
struct GossipController {
    every: u64,
    check_every: u64,
    burst: Option<u64>,
    consultations: AtomicU64,
    dissents: AtomicU64,
    plane: Arc<GossipPlane>,
    backends: Vec<Arc<GossipReputation>>,
}

impl GossipController {
    /// Advances the engine-wide consultation counter by `count` (noting
    /// `new_dissents` dissenting votes) and runs `sync` if the advance
    /// crossed an epoch boundary, or a check boundary with the dissent
    /// burst threshold met. Crossing is detected from the interval the
    /// `fetch_add` itself returned — never from a separately loaded value
    /// — so concurrent callers may each sync, but a boundary can never
    /// fall through the cracks between two interleaved advances. Returns
    /// the new generation if the advance completed a full epoch (the
    /// caller then advances every backend's decay generation).
    fn note_consultations(
        &self,
        count: u64,
        new_dissents: u64,
        sync: impl FnOnce(),
    ) -> Option<u64> {
        if count == 0 {
            return None;
        }
        let before = self.consultations.fetch_add(count, Ordering::SeqCst);
        let after = before + count;
        if new_dissents > 0 {
            self.dissents.fetch_add(new_dissents, Ordering::SeqCst);
        }
        let crossed_epoch = after / self.every > before / self.every;
        let crossed_check = after / self.check_every > before / self.check_every;
        let burst_hit = self
            .burst
            .is_some_and(|b| self.dissents.load(Ordering::SeqCst) >= b);
        if crossed_epoch || (crossed_check && burst_hit) {
            sync();
            self.dissents.store(0, Ordering::SeqCst);
        }
        crossed_epoch.then(|| after / self.every)
    }
}

/// A multi-bus rationality-authority service.
///
/// Each shard is a full single-bus [`RationalityAuthority`]; shard `s`
/// gets inventor identity `Inventor(s)` and a fresh verifier panel with
/// the configured behaviours. Agents are pinned to shards by
/// [`ShardedAuthority::shard_of`], so repeat consultations from the same
/// agent always hit the same bus. Whether they also hit the same
/// reputation *scope* is the [`ReputationPolicy`]'s call.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use ra_authority::{GameSpec, InventorBehavior, ShardedAuthority, VerifierBehavior};
/// use ra_games::named::prisoners_dilemma;
///
/// let engine = ShardedAuthority::new(
///     4,
///     InventorBehavior::Honest,
///     &[VerifierBehavior::Honest; 3],
/// );
/// let spec = Arc::new(GameSpec::Strategic(prisoners_dilemma().to_strategic()));
/// let requests: Vec<(u64, Arc<GameSpec>)> = (0..16).map(|a| (a, Arc::clone(&spec))).collect();
/// let outcomes = engine.consult_batch(&requests);
/// assert_eq!(outcomes.len(), 16);
/// assert!(outcomes.iter().all(|o| o.adopted));
/// ```
///
/// With gossip, exclusion propagates engine-wide and the merge traffic is
/// byte-accounted on a dedicated inter-shard bus:
///
/// ```
/// use std::sync::Arc;
/// use ra_authority::{
///     GameSpec, InventorBehavior, ReputationPolicy, ShardedAuthority, VerifierBehavior,
/// };
/// use ra_games::named::prisoners_dilemma;
///
/// let engine = ShardedAuthority::with_policy(
///     4,
///     InventorBehavior::Honest,
///     &[VerifierBehavior::Honest; 3],
///     ReputationPolicy::Gossip { every: 8 },
/// );
/// let spec = Arc::new(GameSpec::Strategic(prisoners_dilemma().to_strategic()));
/// let requests: Vec<(u64, Arc<GameSpec>)> = (0..16).map(|a| (a, Arc::clone(&spec))).collect();
/// engine.consult_batch(&requests);
/// let stats = engine.shard_stats();
/// assert!(stats.gossip_bytes > 0, "epoch merges are real framed sends");
/// ```
///
/// Weighted votes and decay are configured through [`ReputationConfig`]:
///
/// ```
/// use ra_authority::{
///     InventorBehavior, ReputationConfig, ReputationDecay, ReputationPolicy,
///     ShardedAuthority, VerifierBehavior, VoteRule,
/// };
///
/// let engine = ShardedAuthority::with_config(
///     2,
///     InventorBehavior::Honest,
///     &[VerifierBehavior::Honest; 3],
///     ReputationConfig {
///         policy: ReputationPolicy::Adaptive { every: 32, check_every: 8, burst: 4 },
///         vote_rule: VoteRule::Weighted,
///         decay: ReputationDecay::HalfLife { retention: 6 },
///     },
/// );
/// assert_eq!(engine.reputation_config().vote_rule, VoteRule::Weighted);
/// ```
pub struct ShardedAuthority {
    shards: Arc<Vec<Mutex<RationalityAuthority>>>,
    config: ReputationConfig,
    gossip: Option<GossipController>,
    /// The shared content-addressed certificate cache, when enabled: one
    /// instance attached to every shard's driver, so a game solved on one
    /// shard is a hit on all of them.
    cert_cache: Option<Arc<CertCache>>,
    /// The persistent shard-pinned worker pool (see `pool.rs`): threads
    /// spin up lazily on the first multi-shard chunk and are reused until
    /// the engine drops.
    #[cfg(feature = "parallel")]
    pool: ShardPool,
}

/// Which internal network a [`ShardedAuthority::with_transports`] factory
/// is being asked to produce: the engine calls the factory once per site,
/// so distinct sites can get distinct fault configurations (say, a lossy
/// gossip hub under perfect session buses).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransportSite {
    /// The per-shard session bus of shard `s` (Fig. 1 traffic).
    Shard(usize),
    /// The inter-shard gossip hub's bus (control-plane traffic).
    GossipHub,
}

impl ShardedAuthority {
    /// Builds an engine with `shards` independent shards under
    /// [`ReputationPolicy::Isolated`], each serving the given inventor
    /// behaviour through its own verifier panel.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(
        shards: usize,
        inventor_behavior: InventorBehavior,
        verifier_behaviors: &[VerifierBehavior],
    ) -> ShardedAuthority {
        ShardedAuthority::with_config(
            shards,
            inventor_behavior,
            verifier_behaviors,
            ReputationConfig::default(),
        )
    }

    /// Builds an engine with an explicit [`ReputationPolicy`] (default
    /// vote rule and no decay).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or the policy parameters are invalid
    /// (see [`ShardedAuthority::with_config`]).
    pub fn with_policy(
        shards: usize,
        inventor_behavior: InventorBehavior,
        verifier_behaviors: &[VerifierBehavior],
        policy: ReputationPolicy,
    ) -> ShardedAuthority {
        ShardedAuthority::with_config(shards, inventor_behavior, verifier_behaviors, policy.into())
    }

    /// Builds an engine with a full [`ReputationConfig`] and no
    /// certificate cache — consultations always run the full Fig. 1
    /// protocol, exactly the pre-cache behavior.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero; if a gossip epoch, check interval or
    /// burst is zero; if an adaptive epoch is not a multiple of its check
    /// interval; or if decay is requested under
    /// [`ReputationPolicy::Isolated`] (decay generations advance at
    /// gossip epoch boundaries, which isolated engines do not have).
    pub fn with_config(
        shards: usize,
        inventor_behavior: InventorBehavior,
        verifier_behaviors: &[VerifierBehavior],
        config: ReputationConfig,
    ) -> ShardedAuthority {
        ShardedAuthority::with_cert_cache(
            shards,
            inventor_behavior,
            verifier_behaviors,
            config,
            CertCacheConfig::default(),
        )
    }

    /// Builds an engine with a full [`ReputationConfig`] *and* a
    /// certificate-cache configuration. With `cache.enabled` one shared
    /// [`CertCache`] is attached to every shard, so a game memoized by any
    /// shard is a digest hit on all of them; disabled (the
    /// [`CertCacheConfig::default`]) this is exactly
    /// [`ShardedAuthority::with_config`].
    ///
    /// # Examples
    ///
    /// ```
    /// use ra_authority::{
    ///     CertCacheConfig, GameSpec, InventorBehavior, ReputationConfig,
    ///     ShardedAuthority, VerifierBehavior,
    /// };
    /// use ra_games::named::prisoners_dilemma;
    ///
    /// let engine = ShardedAuthority::with_cert_cache(
    ///     4,
    ///     InventorBehavior::Honest,
    ///     &[VerifierBehavior::Honest; 3],
    ///     ReputationConfig::default(),
    ///     CertCacheConfig::trust(1024),
    /// );
    /// let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
    /// for agent in 0..16u64 {
    ///     engine.consult(agent, &spec);
    /// }
    /// let stats = engine.cache_stats();
    /// assert_eq!(stats.misses, 1, "one shard solved the game once");
    /// assert_eq!(stats.hits, 15, "everyone else hit the shared cache");
    /// ```
    ///
    /// # Panics
    ///
    /// As [`ShardedAuthority::with_config`], plus if `cache.enabled` with
    /// zero capacity.
    pub fn with_cert_cache(
        shards: usize,
        inventor_behavior: InventorBehavior,
        verifier_behaviors: &[VerifierBehavior],
        config: ReputationConfig,
        cache: CertCacheConfig,
    ) -> ShardedAuthority {
        ShardedAuthority::with_transports(
            shards,
            inventor_behavior,
            verifier_behaviors,
            config,
            cache,
            &|_| Arc::new(Bus::new()),
        )
    }

    /// The most general constructor: like
    /// [`ShardedAuthority::with_cert_cache`], but every internal network —
    /// each shard's session bus and the inter-shard gossip hub — is
    /// produced by `transport_for`, keyed by [`TransportSite`]. Passing
    /// `&|_| Arc::new(Bus::new())` reproduces the default engine exactly;
    /// passing [`crate::SimNet`]s puts the whole engine, control plane
    /// included, under simulated loss, latency and partitions.
    ///
    /// # Panics
    ///
    /// As [`ShardedAuthority::with_config`], plus if `cache.enabled` with
    /// zero capacity.
    pub fn with_transports(
        shards: usize,
        inventor_behavior: InventorBehavior,
        verifier_behaviors: &[VerifierBehavior],
        config: ReputationConfig,
        cache: CertCacheConfig,
        transport_for: &dyn Fn(TransportSite) -> Arc<dyn Transport>,
    ) -> ShardedAuthority {
        assert!(shards > 0, "at least one shard");
        let cert_cache = cache.enabled.then(|| Arc::new(CertCache::new(cache)));
        let gossip = config.policy.cadence().map(|(every, check_every, burst)| {
            let plane = Arc::new(GossipPlane::over_transport_with(
                config.decay,
                transport_for(TransportSite::GossipHub),
            ));
            GossipController {
                every,
                check_every,
                burst,
                consultations: AtomicU64::new(0),
                dissents: AtomicU64::new(0),
                plane: plane.clone(),
                backends: (0..shards)
                    .map(|s| {
                        Arc::new(GossipReputation::with_config(
                            s as u64,
                            plane.clone(),
                            config.vote_rule,
                            config.decay,
                        ))
                    })
                    .collect(),
            }
        });
        assert!(
            gossip.is_some() || config.decay == ReputationDecay::None,
            "reputation decay requires a gossip policy (epochs are its clock)"
        );
        let shards: Arc<Vec<Mutex<RationalityAuthority>>> = Arc::new(
            (0..shards)
                .map(|s| {
                    let inventor = Inventor::new(s as u64, inventor_behavior);
                    let backend: Arc<dyn crate::ReputationBackend> = match &gossip {
                        None => Arc::new(LocalReputation::with_rule(config.vote_rule)),
                        Some(g) => g.backends[s].clone(),
                    };
                    let mut authority = RationalityAuthority::with_transport(
                        inventor,
                        verifier_behaviors,
                        backend,
                        transport_for(TransportSite::Shard(s)),
                    );
                    if let Some(c) = &cert_cache {
                        authority.set_cert_cache(Arc::clone(c));
                    }
                    Mutex::new(authority)
                })
                .collect(),
        );
        ShardedAuthority {
            #[cfg(feature = "parallel")]
            pool: ShardPool::new(Arc::clone(&shards)),
            shards,
            config,
            gossip,
            cert_cache,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The reputation policy this engine was built with.
    pub fn reputation_policy(&self) -> ReputationPolicy {
        self.config.policy
    }

    /// The full reputation configuration this engine was built with.
    pub fn reputation_config(&self) -> ReputationConfig {
        self.config
    }

    /// The inter-shard gossip bus (byte accounting and fault injection
    /// for the control plane), or `None` under
    /// [`ReputationPolicy::Isolated`].
    pub fn gossip_bus(&self) -> Option<&dyn Transport> {
        self.gossip.as_ref().and_then(|g| g.plane.gossip_bus())
    }

    /// The shared certificate cache, or `None` when the engine was built
    /// without one (every constructor except
    /// [`ShardedAuthority::with_cert_cache`] with an enabled config).
    pub fn cert_cache(&self) -> Option<&Arc<CertCache>> {
        self.cert_cache.as_ref()
    }

    /// Snapshot of the shared certificate cache's counters — all zero
    /// when the engine has no cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cert_cache
            .as_ref()
            .map_or_else(CacheStats::default, |c| c.stats())
    }

    /// Frame-pool misses observed engine-wide: the calling thread's
    /// thread-local count (inline consults and single-shard chunks run
    /// here) plus every pool worker's published count. Constant across
    /// warmed batches — the observable form of the hot path's
    /// zero-allocation claim.
    pub fn frame_pool_misses(&self) -> u64 {
        #[cfg(feature = "parallel")]
        let pool = self.pool.frame_pool_misses();
        #[cfg(not(feature = "parallel"))]
        let pool = 0;
        wire::frame_pool_misses() + pool
    }

    /// The shard serving `agent_id`: a deterministic (SplitMix64) hash of
    /// the agent id, so routing is stable across processes and runs.
    pub fn shard_of(&self, agent_id: u64) -> usize {
        let mut state = agent_id;
        (rand::splitmix64(&mut state) % self.shards.len() as u64) as usize
    }

    /// Runs one consultation, routed to the agent's shard. Under gossip,
    /// crossing an epoch boundary (or an adaptive dissent-burst trigger)
    /// runs [`ShardedAuthority::sync_reputation`] after the consultation
    /// completes — off the hot path, which itself only takes the shard's
    /// own locks.
    pub fn consult(&self, agent_id: u64, spec: &GameSpec) -> SessionOutcome {
        let outcome = self.shards[self.shard_of(agent_id)]
            .lock()
            .expect("shard lock poisoned")
            .consult(agent_id, spec);
        self.note_consultations(1, dissent_votes(&outcome));
        outcome
    }

    /// [`ShardedAuthority::consult`] with typed failure: resilient
    /// sessions whose deadline budget starves return
    /// [`crate::ConsultError::Deadline`] instead of panicking. Failed
    /// consultations still advance the engine-wide gossip counters (they
    /// consumed a stream slot) but contribute no dissents — no verdict
    /// was pooled.
    pub fn try_consult(&self, agent_id: u64, spec: &GameSpec) -> ConsultResult {
        let result = self.shards[self.shard_of(agent_id)]
            .lock()
            .expect("shard lock poisoned")
            .try_consult(agent_id, spec);
        let dissents = result.as_ref().map(dissent_votes).unwrap_or(0);
        self.note_consultations(1, dissents);
        result
    }

    /// Attaches (or with `None` removes) a resilience budget on every
    /// shard. Each shard's jitter stream is reseeded by mixing the
    /// config's seed with the shard index, so retry timing is
    /// decorrelated across shards yet fully determined by the one seed —
    /// batch and sequential runs stay equal with resilience on, because
    /// each shard consumes its own stream in request order either way.
    ///
    /// # Panics
    ///
    /// Panics if the config violates its invariants.
    pub fn set_resilience(&self, config: Option<ResilienceConfig>) {
        for (index, shard) in self.shards.iter().enumerate() {
            let per_shard = config.map(|mut cfg| {
                let mut state = cfg.seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                cfg.seed = rand::splitmix64(&mut state);
                cfg
            });
            shard
                .lock()
                .expect("shard lock poisoned")
                .set_resilience(per_shard);
        }
    }

    /// Fans a batch of consultations across the shards over the
    /// persistent worker pool — one long-lived thread pinned per shard,
    /// spun up lazily on the first multi-shard chunk and reused across
    /// chunks and across calls; a batch that routes to a single shard
    /// runs inline on the calling thread instead, as does everything when
    /// the `parallel` feature is disabled.
    ///
    /// Outcomes are returned in request order, and each equals what the
    /// same sequence of [`ShardedAuthority::consult`] calls would have
    /// produced: a shard handles its share of the batch sequentially, in
    /// request order, so worker interleaving cannot change any outcome.
    /// Under gossip the batch is additionally chunked at the engine-wide
    /// stream positions where sequential calls would evaluate a merge —
    /// epoch multiples, plus check-interval multiples under
    /// [`ReputationPolicy::Adaptive`] — with a full publish/pull merge
    /// between chunks when triggered, so the equality (including gossip
    /// byte accounting) holds under every policy.
    ///
    /// Requests carry `Arc<GameSpec>` so fanning a spec out to a worker
    /// bumps a reference count instead of deep-cloning payoff tables.
    pub fn consult_batch(&self, requests: &[(u64, Arc<GameSpec>)]) -> Vec<SessionOutcome> {
        self.try_consult_batch(requests)
            .into_iter()
            .map(|result| match result {
                Ok(outcome) => outcome,
                Err(e) => panic!(
                    "resilient consultation failed ({e}); use try_consult_batch to handle errors"
                ),
            })
            .collect()
    }

    /// [`ShardedAuthority::consult_batch`] with typed failure per
    /// request: a resilient session whose budget starves yields
    /// [`crate::ConsultError::Deadline`] at its slot without disturbing
    /// the rest of the batch. Determinism is unchanged — errors occupy
    /// their request slots, and each shard's jitter stream advances in
    /// request order exactly as sequential [`ShardedAuthority::try_consult`]
    /// calls would.
    pub fn try_consult_batch(&self, requests: &[(u64, Arc<GameSpec>)]) -> Vec<ConsultResult> {
        let mut results: Vec<Option<ConsultResult>> = Vec::new();
        results.resize_with(requests.len(), || None);
        match &self.gossip {
            None => self.run_chunk(requests, 0, requests.len(), &mut results),
            Some(g) => {
                let mut start = 0;
                while start < requests.len() {
                    let done = g.consultations.load(Ordering::SeqCst);
                    let room = (g.check_every - done % g.check_every) as usize;
                    let end = requests.len().min(start + room);
                    self.run_chunk(requests, start, end, &mut results);
                    let dissents = results[start..end]
                        .iter()
                        .flatten()
                        .filter_map(|r| r.as_ref().ok())
                        .map(dissent_votes)
                        .sum::<u64>();
                    self.note_consultations((end - start) as u64, dissents);
                    start = end;
                }
            }
        }
        results
            .into_iter()
            .map(|o| o.expect("every request was routed to a shard"))
            .collect()
    }

    /// Advances the engine-wide consultation/dissent counters and, when a
    /// boundary was crossed, merges and advances decay generations.
    /// Generations exist purely as the decay clock, so without decay they
    /// are never advanced — keeping every gossip payload a single
    /// generation deep instead of growing by one per epoch forever.
    fn note_consultations(&self, count: u64, dissents: u64) {
        if let Some(g) = &self.gossip {
            let new_generation = g.note_consultations(count, dissents, || self.sync_reputation());
            if let Some(generation) = new_generation {
                if self.config.decay != ReputationDecay::None {
                    for backend in &g.backends {
                        backend.advance_generation(generation);
                    }
                }
            }
        }
    }

    /// Processes `requests[start..end]`, writing each outcome at its
    /// request index. A chunk that hits several shards is dispatched to
    /// the persistent worker pool (one pinned worker per shard, reused
    /// across chunks and batches); a chunk that routes to a single shard
    /// runs inline on the calling thread, borrowing the specs directly —
    /// no spec clone, no pool wake-up. Without the `parallel` feature
    /// every chunk takes the inline path.
    fn run_chunk(
        &self,
        requests: &[(u64, Arc<GameSpec>)],
        start: usize,
        end: usize,
        results: &mut [Option<ConsultResult>],
    ) {
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (offset, &(agent_id, _)) in requests[start..end].iter().enumerate() {
            by_shard[self.shard_of(agent_id)].push(start + offset);
        }
        let non_empty = by_shard.iter().filter(|ix| !ix.is_empty()).count();
        if non_empty > 1 && self.fan_out(requests, &by_shard, results) {
            return;
        }
        for (shard, indices) in self.shards.iter().zip(&by_shard) {
            if indices.is_empty() {
                continue;
            }
            let mut shard = shard.lock().expect("shard lock poisoned");
            for &i in indices {
                let (agent_id, spec) = &requests[i];
                results[i] = Some(shard.try_consult(*agent_id, spec.as_ref()));
            }
        }
    }

    /// Dispatches one multi-shard chunk to the pinned worker pool. Jobs
    /// own their payloads (one `Arc` bump per request — never a deep spec
    /// clone), which is what keeps the long-lived workers free of
    /// borrowed data. Returns `true` when the chunk was handled.
    #[cfg(feature = "parallel")]
    fn fan_out(
        &self,
        requests: &[(u64, Arc<GameSpec>)],
        by_shard: &[Vec<usize>],
        results: &mut [Option<ConsultResult>],
    ) -> bool {
        let chunk = by_shard
            .iter()
            .enumerate()
            .filter(|(_, indices)| !indices.is_empty())
            .map(|(shard, indices)| {
                let owned = indices
                    .iter()
                    .map(|&i| {
                        let (agent_id, spec) = &requests[i];
                        (i, *agent_id, Arc::clone(spec))
                    })
                    .collect();
                (shard, owned)
            })
            .collect();
        self.pool.run(chunk, results);
        true
    }

    /// Single-threaded builds (`--no-default-features`) have no pool:
    /// every chunk falls through to the inline path.
    #[cfg(not(feature = "parallel"))]
    fn fan_out(
        &self,
        _requests: &[(u64, Arc<GameSpec>)],
        _by_shard: &[Vec<usize>],
        _results: &mut [Option<ConsultResult>],
    ) -> bool {
        false
    }

    /// Forces one full gossip epoch merge: every shard publishes its
    /// PN-counter slice to the plane (a framed send on the inter-shard
    /// bus), then every shard pulls the merged state back (another framed
    /// send), so all shards converge on the join of everything observed
    /// so far. A no-op under [`ReputationPolicy::Isolated`].
    pub fn sync_reputation(&self) {
        if let Some(g) = &self.gossip {
            for backend in &g.backends {
                backend.push();
            }
            for backend in &g.backends {
                backend.pull();
            }
        }
    }

    /// Runs a closure against one shard's [`RationalityAuthority`] (for
    /// per-shard inspection: bus accounting, fault injection, reputation).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn with_shard<R>(&self, shard: usize, f: impl FnOnce(&RationalityAuthority) -> R) -> R {
        assert!(shard < self.shards.len(), "shard index out of range");
        f(&self.shards[shard].lock().expect("shard lock poisoned"))
    }

    /// Collects the bus accounting of every shard — plus the inter-shard
    /// gossip bus, when the policy has one — in one pass, locking each
    /// shard exactly once.
    pub fn shard_stats(&self) -> ShardStats {
        let mut stats = ShardStats {
            shard_bytes: Vec::with_capacity(self.shards.len()),
            ..ShardStats::default()
        };
        for shard in self.shards.iter() {
            let shard = shard.lock().expect("shard lock poisoned");
            let bytes = shard.bus().total_bytes();
            stats.total_bytes += bytes;
            stats.retransmit_bytes += shard.bus().retransmit_bytes();
            stats.message_count += shard.bus().message_count();
            stats.shard_bytes.push(bytes);
        }
        if let Some(bus) = self.gossip_bus() {
            stats.gossip_bytes = bus.delivered_bytes();
            stats.gossip_messages = bus.message_count();
        }
        stats.cache = self.cache_stats();
        stats.frame_pool_misses = self.frame_pool_misses();
        stats
    }

    /// Total wire bytes across every shard's bus (consultation plane).
    pub fn total_bytes(&self) -> usize {
        self.shard_stats().total_bytes
    }

    /// Total messages across every shard's bus (consultation plane).
    pub fn message_count(&self) -> usize {
        self.shard_stats().message_count
    }

    /// Per-shard wire-byte totals (index = shard).
    pub fn shard_bytes(&self) -> Vec<usize> {
        self.shard_stats().shard_bytes
    }
}

/// Dissenting votes in one outcome (0 when no verdict was pooled). A
/// cached outcome replays the *cold* session's majority for the caller's
/// benefit, but no verifier actually voted — counting those dissents
/// again would re-fire adaptive gossip triggers on pure cache hits.
fn dissent_votes(outcome: &SessionOutcome) -> u64 {
    if outcome.cached {
        return 0;
    }
    outcome
        .majority
        .as_ref()
        .map_or(0, |m| m.dissenters.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::Party;
    use ra_games::named::{battle_of_the_sexes, prisoners_dilemma};

    fn mixed_specs() -> Vec<GameSpec> {
        vec![
            GameSpec::Strategic(prisoners_dilemma().to_strategic()),
            GameSpec::Bimatrix(battle_of_the_sexes()),
        ]
    }

    fn batch(n: u64) -> Vec<(u64, Arc<GameSpec>)> {
        let specs: Vec<Arc<GameSpec>> = mixed_specs().into_iter().map(Arc::new).collect();
        (0..n)
            .map(|a| (a, Arc::clone(&specs[(a % specs.len() as u64) as usize])))
            .collect()
    }

    /// Strips the execution-shape-*dependent* `frame_pool_misses` gauge so
    /// the remaining (shape-independent) counters can be compared between
    /// a batched and a sequential run: pool workers warm their own
    /// thread-local scratch, which a sequential run never pays.
    fn comparable(mut stats: ShardStats) -> ShardStats {
        stats.frame_pool_misses = 0;
        stats
    }

    /// The saboteur panel: two honest verifiers and one `AlwaysReject`, so
    /// reputation actually evolves during determinism comparisons.
    fn saboteur_panel() -> [VerifierBehavior; 3] {
        [
            VerifierBehavior::Honest,
            VerifierBehavior::Honest,
            VerifierBehavior::AlwaysReject,
        ]
    }

    #[test]
    fn resilient_batch_matches_sequential_over_lossy_simnet() {
        use crate::session::ResilienceConfig;
        use crate::simnet::{LinkProfile, SimNet, SimNetConfig};
        // Seed-deterministic resilience: two engines with identical
        // transport seeds and the same resilience seed must agree —
        // batched against sequential — on every outcome, every retry
        // count and every ledger figure, even at 20% per-link loss.
        let requests = batch(32);
        let factory = |site: TransportSite| -> Arc<dyn Transport> {
            let salt = match site {
                TransportSite::Shard(s) => s as u64,
                TransportSite::GossipHub => u64::MAX,
            };
            Arc::new(SimNet::new(SimNetConfig {
                seed: 0xC0FFEE ^ salt,
                default_link: LinkProfile::lossy(0.2),
                ..SimNetConfig::default()
            }))
        };
        let config = ReputationConfig::from(ReputationPolicy::Gossip { every: 8 });
        let build = || {
            let engine = ShardedAuthority::with_transports(
                4,
                InventorBehavior::Honest,
                &saboteur_panel(),
                config,
                CertCacheConfig::default(),
                &factory,
            );
            engine.set_resilience(Some(ResilienceConfig::default()));
            engine
        };
        let batched = build();
        let sequential = build();
        let from_batch = batched.try_consult_batch(&requests);
        let from_seq: Vec<ConsultResult> = requests
            .iter()
            .map(|(agent, spec)| sequential.try_consult(*agent, spec.as_ref()))
            .collect();
        assert_eq!(from_batch.len(), from_seq.len());
        for (b, s) in from_batch.iter().zip(&from_seq) {
            match (b, s) {
                (Ok(b), Ok(s)) => {
                    assert_eq!(b.adopted, s.adopted);
                    assert_eq!(b.majority, s.majority);
                    assert_eq!(b.session_bytes, s.session_bytes);
                    assert_eq!(b.attempts, s.attempts);
                    assert_eq!(b.panel, s.panel);
                }
                (Err(b), Err(s)) => assert_eq!(b, s),
                other => panic!("batch/sequential divergence: {other:?}"),
            }
        }
        let batched_stats = comparable(batched.shard_stats());
        assert_eq!(batched_stats, comparable(sequential.shard_stats()));
        assert!(
            batched_stats.retransmit_bytes > 0,
            "20% loss across 32 consults must force retransmits"
        );
        assert!(batched_stats.retransmit_bytes < batched_stats.total_bytes);
    }

    #[test]
    fn resilience_off_batch_stats_are_unchanged() {
        // The default engine never pays for the resilience layer: stats
        // report zero retransmit bytes and the determinism suite's
        // equalities keep holding (they run elsewhere in this module).
        let engine = ShardedAuthority::new(4, InventorBehavior::Honest, &saboteur_panel());
        let _ = engine.consult_batch(&batch(16));
        let stats = engine.shard_stats();
        assert_eq!(stats.retransmit_bytes, 0);
        assert!(stats.total_bytes > 0);
    }

    fn assert_batch_matches_sequential(config: ReputationConfig, n: u64) {
        let requests = batch(n);
        let batched =
            ShardedAuthority::with_config(4, InventorBehavior::Honest, &saboteur_panel(), config);
        let sequential =
            ShardedAuthority::with_config(4, InventorBehavior::Honest, &saboteur_panel(), config);
        let batch_outcomes = batched.consult_batch(&requests);
        let seq_outcomes: Vec<SessionOutcome> = requests
            .iter()
            .map(|(agent, spec)| sequential.consult(*agent, spec.as_ref()))
            .collect();
        assert_eq!(batch_outcomes.len(), seq_outcomes.len());
        for (b, s) in batch_outcomes.iter().zip(&seq_outcomes) {
            assert_eq!(b.adopted, s.adopted, "{config:?}");
            assert_eq!(b.majority, s.majority, "{config:?}");
            assert_eq!(b.session_bytes, s.session_bytes, "{config:?}");
        }
        assert_eq!(batched.shard_bytes(), sequential.shard_bytes());
        assert_eq!(
            comparable(batched.shard_stats()),
            comparable(sequential.shard_stats()),
            "gossip byte accounting must be execution-shape independent"
        );
    }

    #[test]
    fn routing_is_total_and_stable() {
        let engine =
            ShardedAuthority::new(4, InventorBehavior::Honest, &[VerifierBehavior::Honest; 3]);
        let twin =
            ShardedAuthority::new(4, InventorBehavior::Honest, &[VerifierBehavior::Honest; 3]);
        let mut hit = [false; 4];
        for agent in 0..256u64 {
            let s = engine.shard_of(agent);
            assert!(s < 4);
            assert_eq!(s, twin.shard_of(agent), "routing is instance-independent");
            hit[s] = true;
        }
        assert!(hit.iter().all(|&h| h), "256 agents reach every shard");
    }

    #[test]
    fn routing_stream_is_pinned() {
        // The exact routes produced by the inlined SplitMix64 hash before
        // it was deduplicated into `rand::splitmix64`. Any drift here
        // re-homes agents (and their per-shard game-id streams) across a
        // version bump, so these constants must never change.
        let four =
            ShardedAuthority::new(4, InventorBehavior::Honest, &[VerifierBehavior::Honest; 3]);
        let eight =
            ShardedAuthority::new(8, InventorBehavior::Honest, &[VerifierBehavior::Honest; 3]);
        let route4: Vec<usize> = (0..16u64).map(|a| four.shard_of(a)).collect();
        let route8: Vec<usize> = (0..16u64).map(|a| eight.shard_of(a)).collect();
        assert_eq!(route4, [3, 1, 2, 1, 2, 2, 0, 3, 2, 0, 2, 1, 3, 3, 2, 1]);
        assert_eq!(route8, [7, 1, 6, 5, 2, 2, 0, 7, 6, 4, 2, 5, 3, 7, 6, 5]);
    }

    #[test]
    fn repeat_consultations_stay_on_one_shard() {
        let engine =
            ShardedAuthority::new(4, InventorBehavior::Honest, &[VerifierBehavior::Honest; 3]);
        let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
        let agent = 42u64;
        let home = engine.shard_of(agent);
        for _ in 0..3 {
            assert!(engine.consult(agent, &spec).adopted);
        }
        for s in 0..engine.shard_count() {
            let messages = engine.with_shard(s, |a| a.bus().message_count());
            if s == home {
                assert!(messages > 0);
            } else {
                assert_eq!(messages, 0, "other shards saw no traffic");
            }
        }
    }

    #[test]
    fn batch_matches_sequential_routed_calls() {
        assert_batch_matches_sequential(ReputationConfig::default(), 64);
    }

    #[test]
    fn gossip_batch_matches_sequential_routed_calls() {
        // Epoch shorter than the batch, so merges happen mid-stream in
        // both executions.
        assert_batch_matches_sequential(ReputationPolicy::Gossip { every: 16 }.into(), 64);
    }

    #[test]
    fn weighted_gossip_batch_matches_sequential() {
        assert_batch_matches_sequential(
            ReputationConfig {
                policy: ReputationPolicy::Gossip { every: 16 },
                vote_rule: VoteRule::Weighted,
                decay: ReputationDecay::None,
            },
            64,
        );
    }

    #[test]
    fn decaying_gossip_batch_matches_sequential() {
        // Epoch 8 over 64 consultations: several generations advance (and
        // prune) mid-stream in both executions.
        assert_batch_matches_sequential(
            ReputationConfig {
                policy: ReputationPolicy::Gossip { every: 8 },
                vote_rule: VoteRule::Simple,
                decay: ReputationDecay::HalfLife { retention: 3 },
            },
            64,
        );
    }

    #[test]
    fn adaptive_batch_matches_sequential() {
        // With a saboteur in the panel every consultation dissents, so
        // adaptive triggers fire at check boundaries throughout.
        assert_batch_matches_sequential(
            ReputationConfig {
                policy: ReputationPolicy::Adaptive {
                    every: 32,
                    check_every: 4,
                    burst: 2,
                },
                vote_rule: VoteRule::Weighted,
                decay: ReputationDecay::HalfLife { retention: 4 },
            },
            64,
        );
    }

    /// Pool-reuse determinism: the worker threads persist across
    /// `consult_batch` calls, and two consecutive batches must equal one
    /// concatenated sequential run — outcomes, majorities and every byte
    /// counter, including control-plane gossip bytes.
    fn assert_split_batches_match_one_sequential_stream(config: ReputationConfig) {
        let requests = batch(64);
        let (first, second) = requests.split_at(24);
        let batched =
            ShardedAuthority::with_config(4, InventorBehavior::Honest, &saboteur_panel(), config);
        let mut batch_outcomes = batched.consult_batch(first);
        batch_outcomes.extend(batched.consult_batch(second));
        let sequential =
            ShardedAuthority::with_config(4, InventorBehavior::Honest, &saboteur_panel(), config);
        let seq_outcomes: Vec<SessionOutcome> = requests
            .iter()
            .map(|(agent, spec)| sequential.consult(*agent, spec.as_ref()))
            .collect();
        assert_eq!(batch_outcomes.len(), seq_outcomes.len());
        for (b, s) in batch_outcomes.iter().zip(&seq_outcomes) {
            assert_eq!(b.adopted, s.adopted, "{config:?}");
            assert_eq!(b.majority, s.majority, "{config:?}");
            assert_eq!(b.session_bytes, s.session_bytes, "{config:?}");
        }
        assert_eq!(
            comparable(batched.shard_stats()),
            comparable(sequential.shard_stats()),
            "{config:?}: pool reuse across batches leaked into accounting"
        );
    }

    #[test]
    fn pool_reuse_matches_sequential_under_gossip() {
        // The 24-consultation split lands mid-epoch, so the second batch
        // resumes both the pool workers and the epoch chunking state.
        assert_split_batches_match_one_sequential_stream(
            ReputationPolicy::Gossip { every: 16 }.into(),
        );
    }

    #[test]
    fn pool_reuse_matches_sequential_under_adaptive() {
        assert_split_batches_match_one_sequential_stream(ReputationConfig {
            policy: ReputationPolicy::Adaptive {
                every: 32,
                check_every: 4,
                burst: 2,
            },
            vote_rule: VoteRule::Weighted,
            decay: ReputationDecay::HalfLife { retention: 4 },
        });
    }

    #[test]
    fn up_to_date_shards_pull_zero_bytes() {
        // Versioned pulls: once a sync has brought every shard up to date,
        // re-syncing ships the (unchanged) push slices but not one byte of
        // pull payload — the hub answers watermarked pulls with nothing,
        // instead of re-framing a snapshot that scales with retained state.
        let engine = ShardedAuthority::with_policy(
            4,
            InventorBehavior::Honest,
            &saboteur_panel(),
            ReputationPolicy::Gossip { every: 16 },
        );
        engine.consult_batch(&batch(48));
        // One sync to flush observations recorded after the last epoch
        // boundary; every shard is now up to date.
        engine.sync_reputation();
        let bus = engine.gossip_bus().expect("gossip engine has a bus");
        let pull_bytes = |bus: &dyn Transport| {
            (0..4)
                .map(|s| bus.bytes_between(crate::reputation::GOSSIP_HUB, Party::Shard(s)))
                .sum::<usize>()
        };
        let (pulls_before, messages_before) = (pull_bytes(bus), bus.message_count());
        engine.sync_reputation();
        assert_eq!(
            pull_bytes(bus),
            pulls_before,
            "idle pulls must ship zero bytes"
        );
        assert_eq!(
            bus.message_count(),
            messages_before + 4,
            "an idle sync costs exactly the four push frames"
        );
    }

    #[test]
    fn pull_payload_is_bounded_by_unseen_updates() {
        // A shard that just pulled re-pulls after ONE new observation
        // lands on a peer: the second delta must be far smaller than the
        // first full catch-up, instead of scaling with the total state.
        let engine = ShardedAuthority::with_policy(
            4,
            InventorBehavior::Honest,
            &[VerifierBehavior::Honest; 3],
            ReputationPolicy::Gossip { every: 8 },
        );
        engine.consult_batch(&batch(64));
        engine.sync_reputation();
        let bus = engine.gossip_bus().expect("gossip engine has a bus");
        let shard0_pulls =
            |bus: &dyn Transport| bus.bytes_between(crate::reputation::GOSSIP_HUB, Party::Shard(0));
        // One consultation on a foreign shard, then shard 0 re-syncs.
        let away = (0..1000u64)
            .find(|&a| engine.shard_of(a) != 0)
            .expect("an agent homed elsewhere");
        let full_catch_up = shard0_pulls(bus);
        assert!(full_catch_up > 0, "the batch produced real pull traffic");
        engine.consult(away, &spec_for_tests());
        engine.sync_reputation();
        let incremental = shard0_pulls(bus) - full_catch_up;
        assert!(incremental > 0, "the new observation must be shipped");
        assert!(
            incremental * 4 < full_catch_up,
            "one-observation delta ({incremental}B) should be a fraction of \
             the full catch-up ({full_catch_up}B)"
        );
    }

    fn spec_for_tests() -> GameSpec {
        GameSpec::Strategic(prisoners_dilemma().to_strategic())
    }

    #[test]
    fn gossip_bytes_accounted_under_gossip_and_zero_under_isolated() {
        let requests = batch(48);
        let isolated =
            ShardedAuthority::new(4, InventorBehavior::Honest, &[VerifierBehavior::Honest; 3]);
        isolated.consult_batch(&requests);
        let stats = isolated.shard_stats();
        assert_eq!(stats.gossip_bytes, 0);
        assert_eq!(stats.gossip_messages, 0);
        assert!(isolated.gossip_bus().is_none());

        let gossip = ShardedAuthority::with_policy(
            4,
            InventorBehavior::Honest,
            &[VerifierBehavior::Honest; 3],
            ReputationPolicy::Gossip { every: 16 },
        );
        gossip.consult_batch(&requests);
        let stats = gossip.shard_stats();
        assert!(stats.gossip_bytes > 0, "48 consultations cross 3 epochs");
        // 4 shards × (1 push + 1 pull) per sync.
        assert_eq!(stats.gossip_messages % 8, 0);
        let bus = gossip.gossip_bus().expect("gossip engine has a bus");
        assert_eq!(stats.gossip_bytes, bus.delivered_bytes());
        assert_eq!(
            bus.delivered_bytes(),
            bus.total_bytes(),
            "no faults: all frames delivered"
        );
    }

    #[test]
    fn undelivered_gossip_frames_excluded_from_stats() {
        // Regression for the PR 2 failed-send accounting change: frames
        // dropped on the gossip bus are counted as attempts but excluded
        // from the Lemma 1 `gossip_bytes` figure.
        let engine = ShardedAuthority::with_policy(
            2,
            InventorBehavior::Honest,
            &saboteur_panel(),
            ReputationPolicy::Gossip { every: 4 },
        );
        let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
        // One epoch of clean traffic registers every shard endpoint.
        for agent in 0..4u64 {
            engine.consult(agent, &spec);
        }
        let clean = engine.shard_stats();
        assert!(clean.gossip_bytes > 0);
        // Cut shard 0's uplink; further pushes are attempted, accounted,
        // and dropped.
        let bus = engine.gossip_bus().unwrap();
        bus.drop_link(Party::Shard(0), crate::reputation::GOSSIP_HUB);
        for agent in 4..12u64 {
            engine.consult(agent, &spec);
        }
        let faulty = engine.shard_stats();
        let bus = engine.gossip_bus().unwrap();
        assert!(
            bus.total_bytes() > bus.delivered_bytes(),
            "dropped frames were attempted"
        );
        assert_eq!(
            faulty.gossip_bytes,
            bus.delivered_bytes(),
            "stats cite delivered bytes only"
        );
    }

    #[test]
    fn adaptive_dissent_burst_syncs_before_the_epoch() {
        // Same saboteur traffic, one engine on a long fixed epoch and one
        // adaptive engine with the same epoch but a tight burst trigger:
        // the adaptive engine must propagate the exclusion engine-wide in
        // far fewer consultations.
        let consultations_to_global_exclusion = |policy| {
            let engine = ShardedAuthority::with_policy(
                4,
                InventorBehavior::Honest,
                &saboteur_panel(),
                policy,
            );
            let saboteur = Party::Verifier(2);
            let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
            for consultations in 1..=512u64 {
                engine.consult(consultations - 1, &spec);
                let excluded_everywhere = (0..engine.shard_count())
                    .all(|s| engine.with_shard(s, |a| !a.reputation().is_trusted(saboteur)));
                if excluded_everywhere {
                    return consultations;
                }
            }
            panic!("saboteur never excluded engine-wide");
        };
        let fixed = consultations_to_global_exclusion(ReputationPolicy::Gossip { every: 128 });
        let adaptive = consultations_to_global_exclusion(ReputationPolicy::Adaptive {
            every: 128,
            check_every: 4,
            burst: 2,
        });
        assert!(
            adaptive < fixed,
            "adaptive ({adaptive}) must beat the fixed epoch ({fixed})"
        );
        assert!(adaptive <= 48, "burst trigger fires within a few checks");
    }

    #[test]
    fn decay_forgives_an_excluded_verifier_after_enough_epochs() {
        // The saboteur is excluded, then behaves like everyone else (it is
        // no longer consulted, so it stops dissenting); after `retention`
        // epochs its old dissents decay away and it is trusted again.
        let engine = ShardedAuthority::with_config(
            1,
            InventorBehavior::Honest,
            &saboteur_panel(),
            ReputationConfig {
                policy: ReputationPolicy::Gossip { every: 8 },
                vote_rule: VoteRule::Simple,
                decay: ReputationDecay::HalfLife { retention: 3 },
            },
        );
        let saboteur = Party::Verifier(2);
        let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
        let mut agent = 0u64;
        // Drive the saboteur out.
        while engine.with_shard(0, |a| a.reputation().is_trusted(saboteur)) {
            engine.consult(agent, &spec);
            agent += 1;
            assert!(agent < 64, "saboteur never excluded");
        }
        // Keep consulting: generations advance every 8 consultations and
        // the frozen dissents halve away until the verifier re-enters.
        let excluded_at = agent;
        while !engine.with_shard(0, |a| a.reputation().is_trusted(saboteur)) {
            engine.consult(agent, &spec);
            agent += 1;
            assert!(agent < excluded_at + 64, "decay never forgave the saboteur");
        }
        // Without decay the exclusion would have been permanent (the
        // saboteur is not consulted, so nothing can raise its score).
        let permanent = ShardedAuthority::with_policy(
            1,
            InventorBehavior::Honest,
            &saboteur_panel(),
            ReputationPolicy::Gossip { every: 8 },
        );
        for a in 0..agent {
            permanent.consult(a, &spec);
        }
        assert!(
            permanent.with_shard(0, |a| !a.reputation().is_trusted(saboteur)),
            "non-decaying engine keeps the exclusion"
        );
    }

    #[test]
    fn corrupt_inventor_rejected_on_every_shard() {
        let engine =
            ShardedAuthority::new(4, InventorBehavior::Corrupt, &[VerifierBehavior::Honest; 3]);
        for outcome in engine.consult_batch(&batch(16)) {
            assert!(!outcome.adopted);
            assert!(outcome.advice.is_some(), "advice was given but rejected");
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let engine =
            ShardedAuthority::new(2, InventorBehavior::Honest, &[VerifierBehavior::Honest]);
        assert!(engine.consult_batch(&[]).is_empty());
        assert_eq!(engine.total_bytes(), 0);
        assert_eq!(engine.message_count(), 0);
    }

    #[test]
    fn single_shard_batch_runs_inline() {
        // All agents pinned to one shard: the batch must still complete
        // (through the inline path) with the same outcomes as routed
        // sequential calls.
        let engine =
            ShardedAuthority::new(4, InventorBehavior::Honest, &[VerifierBehavior::Honest; 3]);
        let spec = Arc::new(GameSpec::Strategic(prisoners_dilemma().to_strategic()));
        let pinned: Vec<(u64, Arc<GameSpec>)> = (0..1000u64)
            .filter(|&a| engine.shard_of(a) == engine.shard_of(0))
            .take(8)
            .map(|a| (a, Arc::clone(&spec)))
            .collect();
        assert_eq!(pinned.len(), 8, "enough agents share shard 0's home");
        let outcomes = engine.consult_batch(&pinned);
        assert!(outcomes.iter().all(|o| o.adopted));
        let home = engine.shard_of(0);
        for (s, &bytes) in engine.shard_bytes().iter().enumerate() {
            assert_eq!(s != home, bytes == 0);
        }
    }

    #[test]
    fn shard_stats_matches_legacy_accessors() {
        let engine =
            ShardedAuthority::new(4, InventorBehavior::Honest, &[VerifierBehavior::Honest; 3]);
        engine.consult_batch(&batch(32));
        let stats = engine.shard_stats();
        assert_eq!(stats.total_bytes, engine.total_bytes());
        assert_eq!(stats.message_count, engine.message_count());
        assert_eq!(stats.shard_bytes, engine.shard_bytes());
        assert_eq!(stats.total_bytes, stats.shard_bytes.iter().sum::<usize>());
        assert!(stats.total_bytes > 0);
    }

    #[test]
    fn gossip_spreads_exclusion_at_epoch_boundaries() {
        // Saboteur dissents on every shard; under gossip its global score
        // drains by the *sum* of per-shard dissents, and a sync makes the
        // exclusion visible even on shards that saw few dissents.
        let engine = ShardedAuthority::with_policy(
            4,
            InventorBehavior::Honest,
            &saboteur_panel(),
            ReputationPolicy::Gossip { every: 4 },
        );
        let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
        let saboteur = Party::Verifier(2);
        let mut consultations = 0u64;
        for agent in 0.. {
            engine.consult(agent, &spec);
            consultations += 1;
            let excluded_everywhere = (0..engine.shard_count())
                .all(|s| engine.with_shard(s, |a| !a.reputation().is_trusted(saboteur)));
            if excluded_everywhere {
                break;
            }
            assert!(consultations < 100, "gossip never excluded the saboteur");
        }
        // 10 dissents drain the initial score; epoch lag adds at most one
        // epoch (4) plus the consultations spread across shards.
        assert!(
            consultations <= 16,
            "global exclusion took {consultations} consultations"
        );
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        ShardedAuthority::new(0, InventorBehavior::Honest, &[VerifierBehavior::Honest]);
    }

    #[test]
    #[should_panic(expected = "gossip epoch must be positive")]
    fn zero_gossip_epoch_rejected() {
        ShardedAuthority::with_policy(
            2,
            InventorBehavior::Honest,
            &[VerifierBehavior::Honest],
            ReputationPolicy::Gossip { every: 0 },
        );
    }

    #[test]
    #[should_panic(expected = "multiple of the check interval")]
    fn misaligned_adaptive_policy_rejected() {
        ShardedAuthority::with_policy(
            2,
            InventorBehavior::Honest,
            &[VerifierBehavior::Honest],
            ReputationPolicy::Adaptive {
                every: 10,
                check_every: 4,
                burst: 1,
            },
        );
    }

    #[test]
    #[should_panic(expected = "decay requires a gossip policy")]
    fn decay_under_isolated_rejected() {
        ShardedAuthority::with_config(
            2,
            InventorBehavior::Honest,
            &[VerifierBehavior::Honest],
            ReputationConfig {
                policy: ReputationPolicy::Isolated,
                vote_rule: VoteRule::Simple,
                decay: ReputationDecay::HalfLife { retention: 2 },
            },
        );
    }

    #[test]
    #[should_panic(expected = "shard index out of range")]
    fn with_shard_rejects_out_of_range_index() {
        let engine =
            ShardedAuthority::new(2, InventorBehavior::Honest, &[VerifierBehavior::Honest]);
        engine.with_shard(2, |_| ());
    }

    fn cached_engine(cache: CertCacheConfig) -> ShardedAuthority {
        ShardedAuthority::with_cert_cache(
            4,
            InventorBehavior::Honest,
            &[VerifierBehavior::Honest; 3],
            ReputationConfig::default(),
            cache,
        )
    }

    #[test]
    fn shared_cache_serves_hits_across_shards_for_zero_bytes() {
        let engine = cached_engine(CertCacheConfig::trust(1024));
        let spec = spec_for_tests();
        // Sequential consults so the miss/hit split is exact: the first
        // consult (whichever shard it routes to) populates the shared
        // cache, and every later consult hits it — including on shards
        // that never solved the game themselves.
        let outcomes: Vec<SessionOutcome> = (0..16u64).map(|a| engine.consult(a, &spec)).collect();
        assert!(!outcomes[0].cached, "first consult runs the protocol");
        assert!(
            outcomes[1..]
                .iter()
                .all(|o| o.cached && o.session_bytes == 0),
            "hits are cross-shard and ship zero session bytes"
        );
        let stats = engine.shard_stats();
        assert_eq!(stats.cache.hits, 15);
        assert_eq!(stats.cache.misses, 1);
        assert_eq!(stats.cache.evictions, 0);
        // Byte delta: the cached engine's entire bus traffic is the one
        // cold session — identical to a plain engine running it once.
        let plain =
            ShardedAuthority::new(4, InventorBehavior::Honest, &[VerifierBehavior::Honest; 3]);
        plain.consult(0, &spec);
        assert_eq!(
            stats.total_bytes,
            plain.total_bytes(),
            "15 hits added zero wire bytes"
        );
    }

    #[test]
    fn replay_cache_hits_match_cold_consult_outcomes() {
        let replay = cached_engine(CertCacheConfig::replay(1024));
        let plain =
            ShardedAuthority::new(4, InventorBehavior::Honest, &[VerifierBehavior::Honest; 3]);
        for spec in mixed_specs() {
            for agent in 0..4u64 {
                let cold = plain.consult(agent, &spec);
                let warm = replay.consult(agent, &spec);
                assert_eq!(warm.adopted, cold.adopted);
                assert_eq!(warm.advice, cold.advice);
                assert_eq!(warm.majority, cold.majority);
                assert_eq!(warm.advice_bytes, cold.advice_bytes);
            }
        }
        let stats = replay.cache_stats();
        assert_eq!(stats.misses, 2, "one cold solve per distinct spec");
        assert_eq!(stats.hits, 6);
        assert_eq!(stats.replay_failures, 0, "honest kernel replays agree");
    }

    #[test]
    fn disabled_cache_is_bit_for_bit_the_plain_engine() {
        // The off-switch regression: a disabled cache config must leave
        // outcomes, Lemma 1 byte accounting and batch==sequential
        // determinism exactly as the cacheless constructors produce them.
        let requests = batch(64);
        let config: ReputationConfig = ReputationPolicy::Gossip { every: 16 }.into();
        let plain =
            ShardedAuthority::with_config(4, InventorBehavior::Honest, &saboteur_panel(), config);
        let disabled = ShardedAuthority::with_cert_cache(
            4,
            InventorBehavior::Honest,
            &saboteur_panel(),
            config,
            CertCacheConfig::default(),
        );
        assert!(disabled.cert_cache().is_none(), "disabled means no cache");
        let plain_outcomes = plain.consult_batch(&requests);
        let disabled_outcomes = disabled.consult_batch(&requests);
        for (p, d) in plain_outcomes.iter().zip(&disabled_outcomes) {
            assert_eq!(p.adopted, d.adopted);
            assert_eq!(p.advice, d.advice);
            assert_eq!(p.majority, d.majority);
            assert_eq!(p.session_bytes, d.session_bytes);
            assert!(!d.cached, "nothing is ever served from a disabled cache");
        }
        assert_eq!(
            comparable(plain.shard_stats()),
            comparable(disabled.shard_stats()),
            "byte accounting must be identical with the cache disabled"
        );
        assert_eq!(disabled.cache_stats(), CacheStats::default());
    }

    #[test]
    fn cached_outcomes_contribute_no_dissents() {
        // A hit replays the cold session's majority — dissenters included
        // — but no verifier actually voted, so the adaptive gossip dissent
        // counter must not move.
        let engine = ShardedAuthority::with_cert_cache(
            2,
            InventorBehavior::Honest,
            &saboteur_panel(),
            ReputationConfig::default(),
            CertCacheConfig::trust(64),
        );
        let spec = spec_for_tests();
        let cold = engine.consult(0, &spec);
        assert_eq!(dissent_votes(&cold), 1, "the saboteur dissented");
        let warm = engine.consult(1, &spec);
        assert!(warm.cached);
        assert!(
            warm.majority
                .as_ref()
                .is_some_and(|m| !m.dissenters.is_empty()),
            "the replayed majority still names the cold dissenter"
        );
        assert_eq!(dissent_votes(&warm), 0, "but a hit is not a new vote");
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn frame_pool_misses_reach_a_steady_state_across_batches() {
        let engine =
            ShardedAuthority::new(4, InventorBehavior::Honest, &[VerifierBehavior::Honest; 3]);
        let requests = batch(32);
        engine.consult_batch(&requests);
        let warmed = engine.frame_pool_misses();
        assert!(warmed > 0, "first batch grows each worker's scratch");
        engine.consult_batch(&requests);
        assert_eq!(
            engine.frame_pool_misses(),
            warmed,
            "a warmed identical batch allocates no new frame capacity"
        );
        assert_eq!(engine.shard_stats().frame_pool_misses, warmed);
    }
}
