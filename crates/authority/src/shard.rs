//! The sharded, multi-bus session engine.
//!
//! The paper's Fig. 1 infrastructure is a *service*: many agents consult
//! the rationality authority concurrently, and Lemma 1's point is that
//! verification is cheap enough to run at scale. [`ShardedAuthority`]
//! turns the single-bus [`RationalityAuthority`] into that service: it
//! owns N independent shards — each with its own [`Bus`],
//! inventor handle, verifier panel and reputation store — routes agents
//! to shards by a deterministic hash of their id, and fans batches of
//! consultations across shards with scoped worker threads.
//!
//! Determinism is preserved by construction: a shard processes its
//! consultations strictly in request order under one lock, so
//! [`ShardedAuthority::consult_batch`] produces exactly the outcomes of
//! the equivalent sequence of routed [`ShardedAuthority::consult`] calls,
//! regardless of how the workers interleave across shards.
//!
//! [`Bus`]: crate::Bus

use std::sync::Mutex;

use crate::inventor::{GameSpec, Inventor, InventorBehavior};
use crate::session::{RationalityAuthority, SessionOutcome};
use crate::verifier::VerifierBehavior;

/// A multi-bus rationality-authority service.
///
/// Each shard is a full single-bus [`RationalityAuthority`]; shard `s`
/// gets inventor identity `Inventor(s)` and a fresh verifier panel with
/// the configured behaviours. Agents are pinned to shards by
/// [`ShardedAuthority::shard_of`], so repeat consultations from the same
/// agent always hit the same bus and reputation store.
///
/// # Examples
///
/// ```
/// use ra_authority::{GameSpec, InventorBehavior, ShardedAuthority, VerifierBehavior};
/// use ra_games::named::prisoners_dilemma;
///
/// let engine = ShardedAuthority::new(
///     4,
///     InventorBehavior::Honest,
///     &[VerifierBehavior::Honest; 3],
/// );
/// let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
/// let requests: Vec<(u64, GameSpec)> = (0..16).map(|a| (a, spec.clone())).collect();
/// let outcomes = engine.consult_batch(&requests);
/// assert_eq!(outcomes.len(), 16);
/// assert!(outcomes.iter().all(|o| o.adopted));
/// ```
pub struct ShardedAuthority {
    shards: Vec<Mutex<RationalityAuthority>>,
}

impl ShardedAuthority {
    /// Builds an engine with `shards` independent shards, each serving the
    /// given inventor behaviour through its own verifier panel.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(
        shards: usize,
        inventor_behavior: InventorBehavior,
        verifier_behaviors: &[VerifierBehavior],
    ) -> ShardedAuthority {
        assert!(shards > 0, "at least one shard");
        ShardedAuthority {
            shards: (0..shards)
                .map(|s| {
                    Mutex::new(RationalityAuthority::new(
                        Inventor::new(s as u64, inventor_behavior),
                        verifier_behaviors,
                    ))
                })
                .collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard serving `agent_id`: a deterministic (SplitMix64) hash of
    /// the agent id, so routing is stable across processes and runs.
    pub fn shard_of(&self, agent_id: u64) -> usize {
        let mut z = agent_id.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z % self.shards.len() as u64) as usize
    }

    /// Runs one consultation, routed to the agent's shard.
    pub fn consult(&self, agent_id: u64, spec: &GameSpec) -> SessionOutcome {
        self.shards[self.shard_of(agent_id)]
            .lock()
            .expect("shard lock poisoned")
            .consult(agent_id, spec)
    }

    /// Fans a batch of consultations across the shards with one scoped
    /// worker thread per non-empty shard.
    ///
    /// Outcomes are returned in request order, and each equals what the
    /// same sequence of [`ShardedAuthority::consult`] calls would have
    /// produced: a shard handles its share of the batch sequentially, in
    /// request order, so worker interleaving cannot change any outcome.
    pub fn consult_batch(&self, requests: &[(u64, GameSpec)]) -> Vec<SessionOutcome> {
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, &(agent_id, _)) in requests.iter().enumerate() {
            by_shard[self.shard_of(agent_id)].push(i);
        }
        let mut results: Vec<Option<SessionOutcome>> = Vec::new();
        results.resize_with(requests.len(), || None);
        std::thread::scope(|scope| {
            let mut workers = Vec::new();
            for (shard, indices) in self.shards.iter().zip(&by_shard) {
                if indices.is_empty() {
                    continue;
                }
                workers.push(scope.spawn(move || {
                    let mut shard = shard.lock().expect("shard lock poisoned");
                    indices
                        .iter()
                        .map(|&i| {
                            let (agent_id, spec) = &requests[i];
                            (i, shard.consult(*agent_id, spec))
                        })
                        .collect::<Vec<_>>()
                }));
            }
            for worker in workers {
                for (i, outcome) in worker.join().expect("shard worker panicked") {
                    results[i] = Some(outcome);
                }
            }
        });
        results
            .into_iter()
            .map(|o| o.expect("every request was routed to a shard"))
            .collect()
    }

    /// Runs a closure against one shard's [`RationalityAuthority`] (for
    /// per-shard inspection: bus accounting, fault injection, reputation).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn with_shard<R>(&self, shard: usize, f: impl FnOnce(&RationalityAuthority) -> R) -> R {
        f(&self.shards[shard].lock().expect("shard lock poisoned"))
    }

    /// Total wire bytes across every shard's bus.
    pub fn total_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard lock poisoned").bus().total_bytes())
            .sum()
    }

    /// Total messages across every shard's bus.
    pub fn message_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard lock poisoned").bus().message_count())
            .sum()
    }

    /// Per-shard wire-byte totals (index = shard).
    pub fn shard_bytes(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard lock poisoned").bus().total_bytes())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ra_games::named::{battle_of_the_sexes, prisoners_dilemma};

    fn mixed_specs() -> Vec<GameSpec> {
        vec![
            GameSpec::Strategic(prisoners_dilemma().to_strategic()),
            GameSpec::Bimatrix(battle_of_the_sexes()),
        ]
    }

    fn batch(n: u64) -> Vec<(u64, GameSpec)> {
        let specs = mixed_specs();
        (0..n)
            .map(|a| (a, specs[(a % specs.len() as u64) as usize].clone()))
            .collect()
    }

    #[test]
    fn routing_is_total_and_stable() {
        let engine =
            ShardedAuthority::new(4, InventorBehavior::Honest, &[VerifierBehavior::Honest; 3]);
        let twin =
            ShardedAuthority::new(4, InventorBehavior::Honest, &[VerifierBehavior::Honest; 3]);
        let mut hit = [false; 4];
        for agent in 0..256u64 {
            let s = engine.shard_of(agent);
            assert!(s < 4);
            assert_eq!(s, twin.shard_of(agent), "routing is instance-independent");
            hit[s] = true;
        }
        assert!(hit.iter().all(|&h| h), "256 agents reach every shard");
    }

    #[test]
    fn repeat_consultations_stay_on_one_shard() {
        let engine =
            ShardedAuthority::new(4, InventorBehavior::Honest, &[VerifierBehavior::Honest; 3]);
        let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
        let agent = 42u64;
        let home = engine.shard_of(agent);
        for _ in 0..3 {
            assert!(engine.consult(agent, &spec).adopted);
        }
        for s in 0..engine.shard_count() {
            let messages = engine.with_shard(s, |a| a.bus().message_count());
            if s == home {
                assert!(messages > 0);
            } else {
                assert_eq!(messages, 0, "other shards saw no traffic");
            }
        }
    }

    #[test]
    fn batch_matches_sequential_routed_calls() {
        let panel = [
            VerifierBehavior::Honest,
            VerifierBehavior::Honest,
            VerifierBehavior::AlwaysReject,
        ];
        let requests = batch(64);
        let batched = ShardedAuthority::new(4, InventorBehavior::Honest, &panel);
        let sequential = ShardedAuthority::new(4, InventorBehavior::Honest, &panel);
        let batch_outcomes = batched.consult_batch(&requests);
        let seq_outcomes: Vec<SessionOutcome> = requests
            .iter()
            .map(|(agent, spec)| sequential.consult(*agent, spec))
            .collect();
        assert_eq!(batch_outcomes.len(), seq_outcomes.len());
        for (b, s) in batch_outcomes.iter().zip(&seq_outcomes) {
            assert_eq!(b.adopted, s.adopted);
            assert_eq!(b.majority, s.majority);
            assert_eq!(b.session_bytes, s.session_bytes);
        }
        assert_eq!(batched.total_bytes(), sequential.total_bytes());
        assert_eq!(batched.shard_bytes(), sequential.shard_bytes());
    }

    #[test]
    fn corrupt_inventor_rejected_on_every_shard() {
        let engine =
            ShardedAuthority::new(4, InventorBehavior::Corrupt, &[VerifierBehavior::Honest; 3]);
        for outcome in engine.consult_batch(&batch(16)) {
            assert!(!outcome.adopted);
            assert!(outcome.advice.is_some(), "advice was given but rejected");
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let engine =
            ShardedAuthority::new(2, InventorBehavior::Honest, &[VerifierBehavior::Honest]);
        assert!(engine.consult_batch(&[]).is_empty());
        assert_eq!(engine.total_bytes(), 0);
        assert_eq!(engine.message_count(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        ShardedAuthority::new(0, InventorBehavior::Honest, &[VerifierBehavior::Honest]);
    }
}
