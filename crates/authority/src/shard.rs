//! The sharded, multi-bus session engine.
//!
//! The paper's Fig. 1 infrastructure is a *service*: many agents consult
//! the rationality authority concurrently, and Lemma 1's point is that
//! verification is cheap enough to run at scale. [`ShardedAuthority`]
//! turns the single-bus [`RationalityAuthority`] into that service: it
//! owns N independent shards — each with its own [`Bus`],
//! inventor handle, verifier panel and reputation backend — routes agents
//! to shards by a deterministic hash of their id, and fans batches of
//! consultations across shards with scoped worker threads.
//!
//! Determinism is preserved by construction: a shard processes its
//! consultations strictly in request order under one lock, so
//! [`ShardedAuthority::consult_batch`] produces exactly the outcomes of
//! the equivalent sequence of routed [`ShardedAuthority::consult`] calls,
//! regardless of how the workers interleave across shards.
//!
//! The reputation plane is selected by [`ReputationPolicy`]:
//! [`ReputationPolicy::Isolated`] keeps the pre-refactor behaviour (one
//! private [`LocalReputation`] per shard), while
//! [`ReputationPolicy::Gossip`] wires every shard to one
//! [`GossipReputation`] backend over a shared [`GossipPlane`], merging
//! PN-counter deltas every `every` consultations. Epoch boundaries fall at
//! exact multiples of `every` in the engine-wide consultation stream —
//! batches are chunked at those same multiples — so batch and sequential
//! execution still reach identical outcomes, and the consult hot path
//! never takes a cross-shard lock (the merge is amortized off-path).
//!
//! [`Bus`]: crate::Bus
//! [`LocalReputation`]: crate::LocalReputation

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::inventor::{GameSpec, Inventor, InventorBehavior};
use crate::reputation::{GossipPlane, GossipReputation};
use crate::session::{RationalityAuthority, SessionOutcome};
use crate::verifier::VerifierBehavior;

/// How verifier reputation is scoped across the shards of a
/// [`ShardedAuthority`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReputationPolicy {
    /// Every shard keeps a fully independent score table: a verifier voted
    /// out on one shard keeps serving agents pinned to the others.
    Isolated,
    /// Shards gossip PN-counter deltas through a shared [`GossipPlane`]:
    /// all shards publish and then pull the merged state every `every`
    /// consultations (engine-wide), so exclusion anywhere becomes
    /// exclusion everywhere within one epoch.
    Gossip {
        /// Epoch length in consultations; must be positive.
        every: usize,
    },
}

/// Aggregated bus accounting across every shard, collected with a single
/// lock acquisition per shard.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Total wire bytes across every shard's bus.
    pub total_bytes: usize,
    /// Total messages across every shard's bus.
    pub message_count: usize,
    /// Per-shard wire-byte totals (index = shard).
    pub shard_bytes: Vec<usize>,
}

/// The gossip wiring of an engine under [`ReputationPolicy::Gossip`]: the
/// shared plane, one backend handle per shard, and the engine-wide
/// consultation counter that places epoch boundaries.
struct GossipController {
    every: u64,
    consultations: AtomicU64,
    backends: Vec<Arc<GossipReputation>>,
}

impl GossipController {
    /// Advances the engine-wide consultation counter by `count` and runs
    /// `sync` if the advance crossed an epoch boundary. Crossing is
    /// detected from the interval the `fetch_add` itself returned — never
    /// from a separately loaded value — so concurrent callers may each
    /// sync, but a boundary can never fall through the cracks between two
    /// interleaved advances.
    fn note_consultations(&self, count: u64, sync: impl FnOnce()) {
        if count == 0 {
            return;
        }
        let before = self.consultations.fetch_add(count, Ordering::SeqCst);
        if (before + count) / self.every > before / self.every {
            sync();
        }
    }
}

/// A multi-bus rationality-authority service.
///
/// Each shard is a full single-bus [`RationalityAuthority`]; shard `s`
/// gets inventor identity `Inventor(s)` and a fresh verifier panel with
/// the configured behaviours. Agents are pinned to shards by
/// [`ShardedAuthority::shard_of`], so repeat consultations from the same
/// agent always hit the same bus. Whether they also hit the same
/// reputation *scope* is the [`ReputationPolicy`]'s call.
///
/// # Examples
///
/// ```
/// use ra_authority::{GameSpec, InventorBehavior, ShardedAuthority, VerifierBehavior};
/// use ra_games::named::prisoners_dilemma;
///
/// let engine = ShardedAuthority::new(
///     4,
///     InventorBehavior::Honest,
///     &[VerifierBehavior::Honest; 3],
/// );
/// let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
/// let requests: Vec<(u64, GameSpec)> = (0..16).map(|a| (a, spec.clone())).collect();
/// let outcomes = engine.consult_batch(&requests);
/// assert_eq!(outcomes.len(), 16);
/// assert!(outcomes.iter().all(|o| o.adopted));
/// ```
///
/// With gossip, exclusion propagates engine-wide:
///
/// ```
/// use ra_authority::{
///     InventorBehavior, ReputationPolicy, ShardedAuthority, VerifierBehavior,
/// };
///
/// let engine = ShardedAuthority::with_policy(
///     4,
///     InventorBehavior::Honest,
///     &[VerifierBehavior::Honest, VerifierBehavior::AlwaysReject],
///     ReputationPolicy::Gossip { every: 32 },
/// );
/// assert_eq!(engine.reputation_policy(), ReputationPolicy::Gossip { every: 32 });
/// ```
pub struct ShardedAuthority {
    shards: Vec<Mutex<RationalityAuthority>>,
    policy: ReputationPolicy,
    gossip: Option<GossipController>,
}

impl ShardedAuthority {
    /// Builds an engine with `shards` independent shards under
    /// [`ReputationPolicy::Isolated`], each serving the given inventor
    /// behaviour through its own verifier panel.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(
        shards: usize,
        inventor_behavior: InventorBehavior,
        verifier_behaviors: &[VerifierBehavior],
    ) -> ShardedAuthority {
        ShardedAuthority::with_policy(
            shards,
            inventor_behavior,
            verifier_behaviors,
            ReputationPolicy::Isolated,
        )
    }

    /// Builds an engine with an explicit [`ReputationPolicy`].
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero, or if the policy is
    /// [`ReputationPolicy::Gossip`] with a zero epoch.
    pub fn with_policy(
        shards: usize,
        inventor_behavior: InventorBehavior,
        verifier_behaviors: &[VerifierBehavior],
        policy: ReputationPolicy,
    ) -> ShardedAuthority {
        assert!(shards > 0, "at least one shard");
        let gossip = match policy {
            ReputationPolicy::Isolated => None,
            ReputationPolicy::Gossip { every } => {
                assert!(every > 0, "gossip epoch must be positive");
                let plane = Arc::new(GossipPlane::new());
                Some(GossipController {
                    every: every as u64,
                    consultations: AtomicU64::new(0),
                    backends: (0..shards)
                        .map(|s| Arc::new(GossipReputation::new(s, plane.clone())))
                        .collect(),
                })
            }
        };
        let shards = (0..shards)
            .map(|s| {
                let inventor = Inventor::new(s as u64, inventor_behavior);
                let authority = match &gossip {
                    None => RationalityAuthority::new(inventor, verifier_behaviors),
                    Some(g) => RationalityAuthority::with_reputation(
                        inventor,
                        verifier_behaviors,
                        g.backends[s].clone(),
                    ),
                };
                Mutex::new(authority)
            })
            .collect();
        ShardedAuthority {
            shards,
            policy,
            gossip,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The reputation policy this engine was built with.
    pub fn reputation_policy(&self) -> ReputationPolicy {
        self.policy
    }

    /// The shard serving `agent_id`: a deterministic (SplitMix64) hash of
    /// the agent id, so routing is stable across processes and runs.
    pub fn shard_of(&self, agent_id: u64) -> usize {
        let mut z = agent_id.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z % self.shards.len() as u64) as usize
    }

    /// Runs one consultation, routed to the agent's shard. Under gossip,
    /// crossing an epoch boundary triggers [`ShardedAuthority::sync_reputation`]
    /// after the consultation completes — off the hot path, which itself
    /// only takes the shard's own locks.
    pub fn consult(&self, agent_id: u64, spec: &GameSpec) -> SessionOutcome {
        let outcome = self.shards[self.shard_of(agent_id)]
            .lock()
            .expect("shard lock poisoned")
            .consult(agent_id, spec);
        if let Some(g) = &self.gossip {
            g.note_consultations(1, || self.sync_reputation());
        }
        outcome
    }

    /// Fans a batch of consultations across the shards with one scoped
    /// worker thread per non-empty shard; a batch that routes to a single
    /// shard runs inline on the calling thread instead.
    ///
    /// Outcomes are returned in request order, and each equals what the
    /// same sequence of [`ShardedAuthority::consult`] calls would have
    /// produced: a shard handles its share of the batch sequentially, in
    /// request order, so worker interleaving cannot change any outcome.
    /// Under gossip the batch is additionally chunked at epoch boundaries
    /// — the same engine-wide multiples of `every` that sequential calls
    /// sync at — with a full publish/pull merge between chunks, so the
    /// equality holds under [`ReputationPolicy::Gossip`] too.
    pub fn consult_batch(&self, requests: &[(u64, GameSpec)]) -> Vec<SessionOutcome> {
        let mut results: Vec<Option<SessionOutcome>> = Vec::new();
        results.resize_with(requests.len(), || None);
        match &self.gossip {
            None => self.run_chunk(requests, 0, requests.len(), &mut results),
            Some(g) => {
                let mut start = 0;
                while start < requests.len() {
                    let done = g.consultations.load(Ordering::SeqCst);
                    let room = (g.every - done % g.every) as usize;
                    let end = requests.len().min(start + room);
                    self.run_chunk(requests, start, end, &mut results);
                    g.note_consultations((end - start) as u64, || self.sync_reputation());
                    start = end;
                }
            }
        }
        results
            .into_iter()
            .map(|o| o.expect("every request was routed to a shard"))
            .collect()
    }

    /// Processes `requests[start..end]`, writing each outcome at its
    /// request index. Spawns one scoped worker per non-empty shard, except
    /// when only one shard is hit — then the chunk runs inline to spare
    /// the thread overhead on small or skewed batches.
    fn run_chunk(
        &self,
        requests: &[(u64, GameSpec)],
        start: usize,
        end: usize,
        results: &mut [Option<SessionOutcome>],
    ) {
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (offset, &(agent_id, _)) in requests[start..end].iter().enumerate() {
            by_shard[self.shard_of(agent_id)].push(start + offset);
        }
        let consult_shard = |shard: &Mutex<RationalityAuthority>, indices: &[usize]| {
            let mut shard = shard.lock().expect("shard lock poisoned");
            indices
                .iter()
                .map(|&i| {
                    let (agent_id, spec) = &requests[i];
                    (i, shard.consult(*agent_id, spec))
                })
                .collect::<Vec<_>>()
        };
        let non_empty = by_shard.iter().filter(|ix| !ix.is_empty()).count();
        if non_empty <= 1 {
            for (shard, indices) in self.shards.iter().zip(&by_shard) {
                if indices.is_empty() {
                    continue;
                }
                for (i, outcome) in consult_shard(shard, indices) {
                    results[i] = Some(outcome);
                }
            }
            return;
        }
        std::thread::scope(|scope| {
            let mut workers = Vec::new();
            for (shard, indices) in self.shards.iter().zip(&by_shard) {
                if indices.is_empty() {
                    continue;
                }
                workers.push(scope.spawn(|| consult_shard(shard, indices)));
            }
            for worker in workers {
                for (i, outcome) in worker.join().expect("shard worker panicked") {
                    results[i] = Some(outcome);
                }
            }
        });
    }

    /// Forces one full gossip epoch merge: every shard publishes its
    /// PN-counter state to the plane, then every shard pulls the merged
    /// state back, so all shards converge on the join of everything
    /// observed so far. A no-op under [`ReputationPolicy::Isolated`].
    pub fn sync_reputation(&self) {
        if let Some(g) = &self.gossip {
            for backend in &g.backends {
                backend.push();
            }
            for backend in &g.backends {
                backend.pull();
            }
        }
    }

    /// Runs a closure against one shard's [`RationalityAuthority`] (for
    /// per-shard inspection: bus accounting, fault injection, reputation).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn with_shard<R>(&self, shard: usize, f: impl FnOnce(&RationalityAuthority) -> R) -> R {
        assert!(shard < self.shards.len(), "shard index out of range");
        f(&self.shards[shard].lock().expect("shard lock poisoned"))
    }

    /// Collects the bus accounting of every shard in one pass, locking
    /// each shard exactly once.
    pub fn shard_stats(&self) -> ShardStats {
        let mut stats = ShardStats {
            shard_bytes: Vec::with_capacity(self.shards.len()),
            ..ShardStats::default()
        };
        for shard in &self.shards {
            let shard = shard.lock().expect("shard lock poisoned");
            let bytes = shard.bus().total_bytes();
            stats.total_bytes += bytes;
            stats.message_count += shard.bus().message_count();
            stats.shard_bytes.push(bytes);
        }
        stats
    }

    /// Total wire bytes across every shard's bus.
    pub fn total_bytes(&self) -> usize {
        self.shard_stats().total_bytes
    }

    /// Total messages across every shard's bus.
    pub fn message_count(&self) -> usize {
        self.shard_stats().message_count
    }

    /// Per-shard wire-byte totals (index = shard).
    pub fn shard_bytes(&self) -> Vec<usize> {
        self.shard_stats().shard_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::Party;
    use ra_games::named::{battle_of_the_sexes, prisoners_dilemma};

    fn mixed_specs() -> Vec<GameSpec> {
        vec![
            GameSpec::Strategic(prisoners_dilemma().to_strategic()),
            GameSpec::Bimatrix(battle_of_the_sexes()),
        ]
    }

    fn batch(n: u64) -> Vec<(u64, GameSpec)> {
        let specs = mixed_specs();
        (0..n)
            .map(|a| (a, specs[(a % specs.len() as u64) as usize].clone()))
            .collect()
    }

    #[test]
    fn routing_is_total_and_stable() {
        let engine =
            ShardedAuthority::new(4, InventorBehavior::Honest, &[VerifierBehavior::Honest; 3]);
        let twin =
            ShardedAuthority::new(4, InventorBehavior::Honest, &[VerifierBehavior::Honest; 3]);
        let mut hit = [false; 4];
        for agent in 0..256u64 {
            let s = engine.shard_of(agent);
            assert!(s < 4);
            assert_eq!(s, twin.shard_of(agent), "routing is instance-independent");
            hit[s] = true;
        }
        assert!(hit.iter().all(|&h| h), "256 agents reach every shard");
    }

    #[test]
    fn repeat_consultations_stay_on_one_shard() {
        let engine =
            ShardedAuthority::new(4, InventorBehavior::Honest, &[VerifierBehavior::Honest; 3]);
        let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
        let agent = 42u64;
        let home = engine.shard_of(agent);
        for _ in 0..3 {
            assert!(engine.consult(agent, &spec).adopted);
        }
        for s in 0..engine.shard_count() {
            let messages = engine.with_shard(s, |a| a.bus().message_count());
            if s == home {
                assert!(messages > 0);
            } else {
                assert_eq!(messages, 0, "other shards saw no traffic");
            }
        }
    }

    #[test]
    fn batch_matches_sequential_routed_calls() {
        let panel = [
            VerifierBehavior::Honest,
            VerifierBehavior::Honest,
            VerifierBehavior::AlwaysReject,
        ];
        let requests = batch(64);
        let batched = ShardedAuthority::new(4, InventorBehavior::Honest, &panel);
        let sequential = ShardedAuthority::new(4, InventorBehavior::Honest, &panel);
        let batch_outcomes = batched.consult_batch(&requests);
        let seq_outcomes: Vec<SessionOutcome> = requests
            .iter()
            .map(|(agent, spec)| sequential.consult(*agent, spec))
            .collect();
        assert_eq!(batch_outcomes.len(), seq_outcomes.len());
        for (b, s) in batch_outcomes.iter().zip(&seq_outcomes) {
            assert_eq!(b.adopted, s.adopted);
            assert_eq!(b.majority, s.majority);
            assert_eq!(b.session_bytes, s.session_bytes);
        }
        assert_eq!(batched.total_bytes(), sequential.total_bytes());
        assert_eq!(batched.shard_bytes(), sequential.shard_bytes());
    }

    #[test]
    fn gossip_batch_matches_sequential_routed_calls() {
        // Same determinism property with an epoch shorter than the batch,
        // so merges happen mid-stream in both executions.
        let panel = [
            VerifierBehavior::Honest,
            VerifierBehavior::Honest,
            VerifierBehavior::AlwaysReject,
        ];
        let policy = ReputationPolicy::Gossip { every: 16 };
        let requests = batch(64);
        let batched = ShardedAuthority::with_policy(4, InventorBehavior::Honest, &panel, policy);
        let sequential = ShardedAuthority::with_policy(4, InventorBehavior::Honest, &panel, policy);
        let batch_outcomes = batched.consult_batch(&requests);
        let seq_outcomes: Vec<SessionOutcome> = requests
            .iter()
            .map(|(agent, spec)| sequential.consult(*agent, spec))
            .collect();
        for (b, s) in batch_outcomes.iter().zip(&seq_outcomes) {
            assert_eq!(b.adopted, s.adopted);
            assert_eq!(b.majority, s.majority);
            assert_eq!(b.session_bytes, s.session_bytes);
        }
        assert_eq!(batched.shard_bytes(), sequential.shard_bytes());
    }

    #[test]
    fn corrupt_inventor_rejected_on_every_shard() {
        let engine =
            ShardedAuthority::new(4, InventorBehavior::Corrupt, &[VerifierBehavior::Honest; 3]);
        for outcome in engine.consult_batch(&batch(16)) {
            assert!(!outcome.adopted);
            assert!(outcome.advice.is_some(), "advice was given but rejected");
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let engine =
            ShardedAuthority::new(2, InventorBehavior::Honest, &[VerifierBehavior::Honest]);
        assert!(engine.consult_batch(&[]).is_empty());
        assert_eq!(engine.total_bytes(), 0);
        assert_eq!(engine.message_count(), 0);
    }

    #[test]
    fn single_shard_batch_runs_inline() {
        // All agents pinned to one shard: the batch must still complete
        // (through the inline path) with the same outcomes as routed
        // sequential calls.
        let engine =
            ShardedAuthority::new(4, InventorBehavior::Honest, &[VerifierBehavior::Honest; 3]);
        let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
        let pinned: Vec<(u64, GameSpec)> = (0..1000u64)
            .filter(|&a| engine.shard_of(a) == engine.shard_of(0))
            .take(8)
            .map(|a| (a, spec.clone()))
            .collect();
        assert_eq!(pinned.len(), 8, "enough agents share shard 0's home");
        let outcomes = engine.consult_batch(&pinned);
        assert!(outcomes.iter().all(|o| o.adopted));
        let home = engine.shard_of(0);
        for (s, &bytes) in engine.shard_bytes().iter().enumerate() {
            assert_eq!(s != home, bytes == 0);
        }
    }

    #[test]
    fn shard_stats_matches_legacy_accessors() {
        let engine =
            ShardedAuthority::new(4, InventorBehavior::Honest, &[VerifierBehavior::Honest; 3]);
        engine.consult_batch(&batch(32));
        let stats = engine.shard_stats();
        assert_eq!(stats.total_bytes, engine.total_bytes());
        assert_eq!(stats.message_count, engine.message_count());
        assert_eq!(stats.shard_bytes, engine.shard_bytes());
        assert_eq!(stats.total_bytes, stats.shard_bytes.iter().sum::<usize>());
        assert!(stats.total_bytes > 0);
    }

    #[test]
    fn gossip_spreads_exclusion_at_epoch_boundaries() {
        // Saboteur dissents on every shard; under gossip its global score
        // drains by the *sum* of per-shard dissents, and a sync makes the
        // exclusion visible even on shards that saw few dissents.
        let panel = [
            VerifierBehavior::Honest,
            VerifierBehavior::Honest,
            VerifierBehavior::AlwaysReject,
        ];
        let engine = ShardedAuthority::with_policy(
            4,
            InventorBehavior::Honest,
            &panel,
            ReputationPolicy::Gossip { every: 4 },
        );
        let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
        let saboteur = Party::Verifier(2);
        let mut consultations = 0u64;
        for agent in 0.. {
            engine.consult(agent, &spec);
            consultations += 1;
            let excluded_everywhere = (0..engine.shard_count())
                .all(|s| engine.with_shard(s, |a| !a.reputation().is_trusted(saboteur)));
            if excluded_everywhere {
                break;
            }
            assert!(consultations < 100, "gossip never excluded the saboteur");
        }
        // 10 dissents drain the initial score; epoch lag adds at most one
        // epoch (4) plus the consultations spread across shards.
        assert!(
            consultations <= 16,
            "global exclusion took {consultations} consultations"
        );
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        ShardedAuthority::new(0, InventorBehavior::Honest, &[VerifierBehavior::Honest]);
    }

    #[test]
    #[should_panic(expected = "gossip epoch must be positive")]
    fn zero_gossip_epoch_rejected() {
        ShardedAuthority::with_policy(
            2,
            InventorBehavior::Honest,
            &[VerifierBehavior::Honest],
            ReputationPolicy::Gossip { every: 0 },
        );
    }

    #[test]
    #[should_panic(expected = "shard index out of range")]
    fn with_shard_rejects_out_of_range_index() {
        let engine =
            ShardedAuthority::new(2, InventorBehavior::Honest, &[VerifierBehavior::Honest]);
        engine.with_shard(2, |_| ());
    }
}
