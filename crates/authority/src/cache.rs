//! Content-addressed certificate cache: memoized consultations keyed by
//! the SHA-256 of a game spec's canonical wire encoding.
//!
//! At scale, game specs repeat heavily, yet every consultation re-runs the
//! solver and the full Fig. 1 verifier-panel protocol from scratch. This
//! module is the proof-carrying-architecture split: the session engine is
//! fast but untrusted, its results carry replayable certificates, and the
//! `ra-proofs` kernel is the small trusted checker. A cache hit therefore
//! skips the expensive solve/panel path and — under [`CacheMode::Replay`] —
//! replays only the cheap kernel check against the stored advice, or — under
//! [`CacheMode::Trust`] — returns the exact digest hit directly.
//!
//! The cache is a sharded LRU: the digest's first byte picks a shard, each
//! shard is an independent mutex around a bounded slab-backed LRU list, so
//! concurrent consultations from different engine shards rarely contend on
//! the same lock. Counters ([`CacheStats`]) are atomics read without taking
//! any shard lock.
//!
//! Disabled (the default — see [`CertCacheConfig`]), nothing changes: the
//! session layer never computes a digest, Lemma 1 byte accounting and
//! batch==sequential determinism are bit-for-bit the pre-cache behavior.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::crypto::{sha256_wire, Digest};
use crate::inventor::GameSpec;
use crate::messages::{Advice, Party};
use crate::reputation::MajorityOutcome;

/// SHA-256 of the spec's canonical wire encoding — the cache key.
///
/// Runs over the recycled thread-local frame scratch
/// ([`crate::wire::with_frame_scratch`]), so the steady-state digest
/// allocates no buffer. Equal specs digest equally because the
/// [`crate::wire::Wire`] encoding of [`GameSpec`] is canonical.
pub fn spec_digest(spec: &GameSpec) -> Digest {
    sha256_wire(spec)
}

/// What to do with a cache hit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CacheMode {
    /// Re-run the `ra-proofs` kernel check on the stored advice and serve
    /// the hit only if the kernel's verdict matches the one recorded at
    /// insert time; on mismatch, fall back to the full protocol. This is
    /// the proof-carrying default: hits stay as trustworthy as the kernel.
    #[default]
    Replay,
    /// Serve the exact digest hit directly, skipping even the kernel
    /// check. Fastest; appropriate when the cache itself is trusted.
    Trust,
}

/// Configuration for the certificate cache.
///
/// `Default` is **disabled**: the engine behaves exactly as without a
/// cache (same bytes on the bus, same reputation trajectory), which keeps
/// batch==sequential determinism and the Lemma 1 accounting tests
/// bit-for-bit intact.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CertCacheConfig {
    /// Whether consultations consult the cache at all.
    pub enabled: bool,
    /// Total entry budget across all cache shards (must be nonzero when
    /// enabled; rounded up to a per-shard bound, so the effective total
    /// can slightly exceed it).
    pub capacity: usize,
    /// Hit semantics: replay the kernel check or trust the digest.
    pub mode: CacheMode,
}

impl Default for CertCacheConfig {
    fn default() -> CertCacheConfig {
        CertCacheConfig {
            enabled: false,
            capacity: 1024,
            mode: CacheMode::Replay,
        }
    }
}

impl CertCacheConfig {
    /// An enabled cache in [`CacheMode::Replay`] with the given capacity.
    pub fn replay(capacity: usize) -> CertCacheConfig {
        CertCacheConfig {
            enabled: true,
            capacity,
            mode: CacheMode::Replay,
        }
    }

    /// An enabled cache in [`CacheMode::Trust`] with the given capacity.
    pub fn trust(capacity: usize) -> CertCacheConfig {
        CertCacheConfig {
            enabled: true,
            capacity,
            mode: CacheMode::Trust,
        }
    }
}

/// Cache counters, exported through
/// [`crate::shard::ShardStats`] / `ShardedAuthority::cache_stats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that fell through to the full protocol.
    pub misses: u64,
    /// Entries evicted by per-shard LRU pressure.
    pub evictions: u64,
    /// Replay-mode hits whose fresh kernel verdict contradicted the stored
    /// one (the hit is discarded and the full protocol re-runs).
    pub replay_failures: u64,
    /// Replay-mode hits discarded because the trusted verifier panel
    /// changed since the entry was cached (also counted under `misses`:
    /// the full protocol re-runs and re-primes the entry).
    pub stale: u64,
}

/// The memoized result of one full consultation, replayable on hits.
#[derive(Clone, Debug)]
pub(crate) struct CachedConsultation {
    /// The advice (with its embedded proof/certificate) the inventor gave.
    pub advice: Advice,
    /// The `ra-proofs` kernel's own verdict on that advice, computed once
    /// at insert time; replay hits must reproduce it exactly.
    pub kernel_accepts: bool,
    /// The verifier panel's pooled outcome.
    pub majority: Option<MajorityOutcome>,
    /// Whether the agent adopted the advice.
    pub adopted: bool,
    /// Certificate payload size (Lemma 1's "bits communicated").
    pub advice_bytes: usize,
    /// Per-verifier verdicts as reported in the cold session.
    pub verdict_details: Vec<(Party, bool, String)>,
    /// The [`crate::ReputationSnapshot::panel_version`] the entry was
    /// minted under. Replay-mode lookups compare it against the current
    /// panel and treat a mismatch as a miss, so advice vouched for by a
    /// since-excluded (or since-readmitted) panel is never served warm.
    pub panel_version: u64,
}

const NIL: usize = usize::MAX;

/// One slab slot: a key/value pair threaded onto the shard's LRU list.
struct Slot {
    key: Digest,
    value: Arc<CachedConsultation>,
    prev: usize,
    next: usize,
}

/// A bounded LRU over a slab: `map` finds slots by digest, `head` is the
/// most recently used, `tail` the eviction candidate. Slots are recycled
/// through `free`, so a warmed shard performs no slab allocation.
struct LruShard {
    map: HashMap<Digest, usize>,
    slots: Vec<Slot>,
    head: usize,
    tail: usize,
    free: Vec<usize>,
    capacity: usize,
}

impl LruShard {
    fn new(capacity: usize) -> LruShard {
        LruShard {
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
            capacity,
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        match prev {
            NIL => self.head = next,
            p => self.slots[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].prev = prev,
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        match self.head {
            NIL => self.tail = idx,
            h => self.slots[h].prev = idx,
        }
        self.head = idx;
    }

    fn touch(&mut self, idx: usize) {
        if self.head != idx {
            self.unlink(idx);
            self.push_front(idx);
        }
    }

    fn lookup(&mut self, key: &Digest) -> Option<Arc<CachedConsultation>> {
        let idx = *self.map.get(key)?;
        self.touch(idx);
        Some(Arc::clone(&self.slots[idx].value))
    }

    /// Inserts (or refreshes) an entry; returns `true` if an older entry
    /// was evicted to make room.
    fn insert(&mut self, key: Digest, value: Arc<CachedConsultation>) -> bool {
        if let Some(&idx) = self.map.get(&key) {
            self.slots[idx].value = value;
            self.touch(idx);
            return false;
        }
        let mut evicted = false;
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL, "nonzero capacity implies a tail");
            self.unlink(victim);
            self.map.remove(&self.slots[victim].key);
            self.free.push(victim);
            evicted = true;
        }
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slots[idx].key = key;
                self.slots[idx].value = value;
                idx
            }
            None => {
                self.slots.push(Slot {
                    key,
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.push_front(idx);
        self.map.insert(key, idx);
        evicted
    }
}

/// The sharded content-addressed certificate cache.
///
/// One instance is shared (via `Arc`) by every engine shard's
/// [`crate::session::SessionDriver`], so a game solved on one shard is a
/// hit on all of them.
pub struct CertCache {
    mode: CacheMode,
    shards: Vec<Mutex<LruShard>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    replay_failures: AtomicU64,
    stale: AtomicU64,
}

impl std::fmt::Debug for CertCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CertCache")
            .field("mode", &self.mode)
            .field("shards", &self.shards.len())
            .field("len", &self.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl CertCache {
    /// Number of cache shards when the capacity allows it (small caches
    /// collapse to one shard so the capacity bound stays meaningful).
    const SHARDS: usize = 16;

    /// Builds a cache from `config` (the `enabled` flag is the caller's
    /// concern — constructing one always yields a usable cache).
    ///
    /// # Panics
    ///
    /// Panics if `config.capacity` is zero.
    pub fn new(config: CertCacheConfig) -> CertCache {
        assert!(
            config.capacity > 0,
            "certificate cache capacity must be nonzero"
        );
        let shards = if config.capacity >= Self::SHARDS {
            Self::SHARDS
        } else {
            1
        };
        let per_shard = config.capacity.div_ceil(shards);
        CertCache {
            mode: config.mode,
            shards: (0..shards)
                .map(|_| Mutex::new(LruShard::new(per_shard)))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            replay_failures: AtomicU64::new(0),
            stale: AtomicU64::new(0),
        }
    }

    /// The configured hit semantics.
    pub fn mode(&self) -> CacheMode {
        self.mode
    }

    /// Entries currently cached, summed across shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard lock").map.len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the counters (atomic reads; no shard lock taken).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            replay_failures: self.replay_failures.load(Ordering::Relaxed),
            stale: self.stale.load(Ordering::Relaxed),
        }
    }

    /// The digest prefix picks the shard.
    fn shard_of(&self, digest: &Digest) -> &Mutex<LruShard> {
        &self.shards[digest[0] as usize % self.shards.len()]
    }

    /// Looks up a digest. `current_panel` is the caller's current
    /// [`crate::ReputationSnapshot::panel_version`] when hits must be
    /// panel-checked (`Replay` mode): a hit minted under a different
    /// panel is treated as a miss (counted under both `stale` and
    /// `misses`), so the full protocol re-runs and re-primes the entry
    /// under the current panel. Pass `None` to skip the check (`Trust`
    /// mode serves the digest hit unconditionally).
    pub(crate) fn lookup(
        &self,
        digest: &Digest,
        current_panel: Option<u64>,
    ) -> Option<Arc<CachedConsultation>> {
        let hit = self
            .shard_of(digest)
            .lock()
            .expect("cache shard lock")
            .lookup(digest);
        let hit = match (hit, current_panel) {
            (Some(entry), Some(panel)) if entry.panel_version != panel => {
                self.stale.fetch_add(1, Ordering::Relaxed);
                None
            }
            (hit, _) => hit,
        };
        match &hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    pub(crate) fn insert(&self, digest: Digest, entry: CachedConsultation) {
        let evicted = self
            .shard_of(&digest)
            .lock()
            .expect("cache shard lock")
            .insert(digest, Arc::new(entry));
        if evicted {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a replay-mode hit whose fresh kernel verdict contradicted
    /// the stored one (the session layer falls back to the full protocol).
    pub(crate) fn note_replay_failure(&self) {
        self.replay_failures.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ra_games::named::prisoners_dilemma;

    fn entry(tag: u64) -> CachedConsultation {
        CachedConsultation {
            advice: Advice::Dominant {
                agent: tag as usize,
                strategy: 0,
                strict: true,
            },
            kernel_accepts: true,
            majority: None,
            adopted: true,
            advice_bytes: 3,
            verdict_details: Vec::new(),
            panel_version: 0,
        }
    }

    fn digest(tag: u8) -> Digest {
        // Distinct first bytes target distinct cache shards on demand.
        let mut d = [0u8; 32];
        d[0] = tag;
        d[1] = tag.wrapping_mul(37);
        d
    }

    #[test]
    fn digest_is_stable_and_spec_sensitive() {
        let pd = GameSpec::Strategic(prisoners_dilemma().to_strategic());
        assert_eq!(spec_digest(&pd), spec_digest(&pd.clone()));
        let other = GameSpec::ParallelLinks {
            current_loads: vec![ra_exact::rat(1, 2)],
            own_load: ra_exact::rat(1, 1),
            expected_future_load: ra_exact::rat(1, 1),
            expected_future_agents: 1,
        };
        assert_ne!(spec_digest(&pd), spec_digest(&other));
    }

    #[test]
    fn hit_miss_counters_track_lookups() {
        let cache = CertCache::new(CertCacheConfig::replay(8));
        assert!(cache.lookup(&digest(1), None).is_none());
        cache.insert(digest(1), entry(1));
        assert!(cache.lookup(&digest(1), None).is_some());
        assert!(cache.lookup(&digest(2), None).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 2));
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn lru_evicts_least_recently_used_per_shard() {
        // Capacity 3 < 16 collapses to a single shard with capacity 3.
        let cache = CertCache::new(CertCacheConfig::trust(3));
        for tag in 0..3 {
            cache.insert(digest(tag), entry(tag as u64));
        }
        // Touch 0 so 1 becomes the LRU victim.
        assert!(cache.lookup(&digest(0), None).is_some());
        cache.insert(digest(3), entry(3));
        assert_eq!(cache.stats().evictions, 1);
        assert!(
            cache.lookup(&digest(1), None).is_none(),
            "LRU entry evicted"
        );
        assert!(cache.lookup(&digest(0), None).is_some());
        assert!(cache.lookup(&digest(2), None).is_some());
        assert!(cache.lookup(&digest(3), None).is_some());
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let cache = CertCache::new(CertCacheConfig::trust(2));
        cache.insert(digest(1), entry(1));
        cache.insert(digest(1), entry(100));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evictions, 0);
        let hit = cache.lookup(&digest(1), None).expect("refreshed entry");
        assert_eq!(
            hit.advice,
            Advice::Dominant {
                agent: 100,
                strategy: 0,
                strict: true
            }
        );
    }

    #[test]
    fn slab_slots_are_recycled_under_churn() {
        let cache = CertCache::new(CertCacheConfig::trust(2));
        for round in 0..20u8 {
            cache.insert(digest(round), entry(round as u64));
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 18);
        // The slab never outgrows the capacity despite 20 inserts.
        let shard = cache.shards[0].lock().unwrap();
        assert!(shard.slots.len() <= 2, "slab grew to {}", shard.slots.len());
    }

    #[test]
    fn large_caches_spread_over_shards() {
        let cache = CertCache::new(CertCacheConfig::replay(64));
        assert_eq!(cache.shards.len(), CertCache::SHARDS);
        for tag in 0..CertCache::SHARDS as u8 {
            cache.insert(digest(tag), entry(tag as u64));
        }
        let occupied = cache
            .shards
            .iter()
            .filter(|s| !s.lock().unwrap().map.is_empty())
            .count();
        assert_eq!(occupied, CertCache::SHARDS, "digest prefix spreads shards");
        assert_eq!(cache.len(), CertCache::SHARDS);
    }

    #[test]
    fn panel_mismatch_is_a_miss_when_guarded() {
        let cache = CertCache::new(CertCacheConfig::replay(8));
        // The entry is minted under panel 0; unguarded (Trust-mode)
        // lookups serve the hit regardless.
        cache.insert(digest(1), entry(1));
        assert!(cache.lookup(&digest(1), None).is_some());
        // Guarded lookup under the same panel: a hit.
        assert!(cache.lookup(&digest(1), Some(0)).is_some());
        // Guarded lookup under a newer panel: stale, counted as a miss.
        assert!(cache.lookup(&digest(1), Some(1)).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.stale), (2, 1, 1));
        // Re-priming under the new panel makes it hit again.
        let mut fresh = entry(1);
        fresh.panel_version = 1;
        cache.insert(digest(1), fresh);
        assert!(cache.lookup(&digest(1), Some(1)).is_some());
    }

    #[test]
    #[should_panic(expected = "capacity must be nonzero")]
    fn zero_capacity_rejected() {
        CertCache::new(CertCacheConfig::replay(0));
    }
}
