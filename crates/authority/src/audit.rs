//! Signed statistics stream and audit trail (§6 footnote 3).
//!
//! "The system can require the inventor to publish the average loads with
//! its signature at each round … then the inventor is kept responsible when
//! found cheating." The [`StatisticsLedger`] is a hash-chained, signed
//! sequence of statistics records: appending is cheap, tampering with any
//! historical record (or re-ordering) breaks the chain, and every record is
//! attributable to the inventor's key.

use ra_exact::Rational;

use crate::crypto::{sha256, Digest, Signature, SigningKey};

/// One signed statistics record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatisticsRecord {
    /// Round number (strictly increasing).
    pub round: u64,
    /// The published statistic (e.g. average observed load, link loads).
    pub values: Vec<Rational>,
    /// Hash of the previous record (zeros for the first).
    pub prev_hash: Digest,
    /// The inventor's signature over (round, values, prev_hash).
    pub signature: Signature,
}

impl StatisticsRecord {
    fn message_bytes(round: u64, values: &[Rational], prev_hash: &Digest) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&round.to_be_bytes());
        for v in values {
            bytes.extend_from_slice(v.to_string().as_bytes());
            bytes.push(b'|');
        }
        bytes.extend_from_slice(prev_hash);
        bytes
    }

    /// Hash of this record (chains into the next).
    pub fn hash(&self) -> Digest {
        let mut bytes = Self::message_bytes(self.round, &self.values, &self.prev_hash);
        bytes.extend_from_slice(&self.signature.0);
        sha256(&bytes)
    }
}

/// A hash-chained ledger of signed statistics.
#[derive(Clone, Debug, Default)]
pub struct StatisticsLedger {
    records: Vec<StatisticsRecord>,
}

/// Audit failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AuditError {
    /// A signature does not verify under the inventor's key.
    BadSignature {
        /// Index of the offending record.
        index: usize,
    },
    /// A record's `prev_hash` does not match its predecessor.
    BrokenChain {
        /// Index of the offending record.
        index: usize,
    },
    /// Rounds are not strictly increasing.
    NonMonotoneRounds {
        /// Index of the offending record.
        index: usize,
    },
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditError::BadSignature { index } => write!(f, "record {index}: bad signature"),
            AuditError::BrokenChain { index } => write!(f, "record {index}: hash chain broken"),
            AuditError::NonMonotoneRounds { index } => {
                write!(f, "record {index}: round numbers not increasing")
            }
        }
    }
}

impl std::error::Error for AuditError {}

impl StatisticsLedger {
    /// Creates an empty ledger.
    pub fn new() -> StatisticsLedger {
        StatisticsLedger::default()
    }

    /// Appends a signed record for `round` with the given statistics.
    ///
    /// # Panics
    ///
    /// Panics if `round` does not exceed the last recorded round.
    pub fn publish(&mut self, key: &SigningKey, round: u64, values: Vec<Rational>) {
        if let Some(last) = self.records.last() {
            assert!(round > last.round, "rounds must strictly increase");
        }
        let prev_hash = self
            .records
            .last()
            .map_or([0u8; 32], StatisticsRecord::hash);
        let message = StatisticsRecord::message_bytes(round, &values, &prev_hash);
        let signature = key.sign(&message);
        self.records.push(StatisticsRecord {
            round,
            values,
            prev_hash,
            signature,
        });
    }

    /// The records, oldest first.
    pub fn records(&self) -> &[StatisticsRecord] {
        &self.records
    }

    /// Full audit: every signature verifies under `key`, the hash chain is
    /// intact, and rounds strictly increase.
    ///
    /// # Errors
    ///
    /// The first [`AuditError`] found.
    pub fn audit(&self, key: &SigningKey) -> Result<(), AuditError> {
        let mut prev_hash = [0u8; 32];
        let mut prev_round: Option<u64> = None;
        for (index, record) in self.records.iter().enumerate() {
            if record.prev_hash != prev_hash {
                return Err(AuditError::BrokenChain { index });
            }
            if prev_round.is_some_and(|r| record.round <= r) {
                return Err(AuditError::NonMonotoneRounds { index });
            }
            let message =
                StatisticsRecord::message_bytes(record.round, &record.values, &record.prev_hash);
            if !key.verify(&message, &record.signature) {
                return Err(AuditError::BadSignature { index });
            }
            prev_hash = record.hash();
            prev_round = Some(record.round);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ra_exact::rat;

    fn sample_ledger(key: &SigningKey) -> StatisticsLedger {
        let mut ledger = StatisticsLedger::new();
        ledger.publish(key, 1, vec![rat(500, 1), rat(3, 2)]);
        ledger.publish(key, 2, vec![rat(503, 1), rat(5, 2)]);
        ledger.publish(key, 3, vec![rat(498, 1), rat(7, 2)]);
        ledger
    }

    #[test]
    fn honest_ledger_audits_clean() {
        let key = SigningKey::derive("inventor-0");
        let ledger = sample_ledger(&key);
        assert!(ledger.audit(&key).is_ok());
        assert_eq!(ledger.records().len(), 3);
    }

    #[test]
    fn tampered_value_detected() {
        let key = SigningKey::derive("inventor-0");
        let mut ledger = sample_ledger(&key);
        ledger.records[1].values[0] = rat(999, 1);
        // Either the signature breaks (record 1) or the chain (record 2) —
        // the signature is checked against the tampered message first.
        assert_eq!(
            ledger.audit(&key),
            Err(AuditError::BadSignature { index: 1 })
        );
    }

    #[test]
    fn truncation_from_middle_detected() {
        let key = SigningKey::derive("inventor-0");
        let mut ledger = sample_ledger(&key);
        ledger.records.remove(1);
        assert_eq!(
            ledger.audit(&key),
            Err(AuditError::BrokenChain { index: 1 })
        );
    }

    #[test]
    fn wrong_key_detected() {
        let key = SigningKey::derive("inventor-0");
        let ledger = sample_ledger(&key);
        let other = SigningKey::derive("impostor");
        assert_eq!(
            ledger.audit(&other),
            Err(AuditError::BadSignature { index: 0 })
        );
    }

    #[test]
    fn reordering_detected() {
        let key = SigningKey::derive("inventor-0");
        let mut ledger = sample_ledger(&key);
        ledger.records.swap(1, 2);
        assert!(ledger.audit(&key).is_err());
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn non_monotone_publish_panics() {
        let key = SigningKey::derive("inventor-0");
        let mut ledger = sample_ledger(&key);
        ledger.publish(&key, 3, vec![]);
    }
}
