//! # ra-authority — the rationality authority infrastructure
//!
//! The distributed-system layer of the paper (Fig. 1): separation of
//! **inventors** (untrusted advice producers), **agents** (advice
//! consumers) and **verifiers** (trusted-by-reputation procedure
//! providers), wired together over a byte-accounted message bus.
//!
//! * [`Transport`] / [`Bus`] / [`SimNet`] / [`Message`] / [`Wire`] — the
//!   pluggable network boundary with exact wire encodings (Lemma 1's bits
//!   are measured, not asserted): [`Bus`] is the canonical perfect
//!   backend, [`SimNet`] a deterministic seeded lossy network (per-link
//!   latency windows, drop probabilities, scripted partition/heal
//!   schedules on a virtual clock) that is byte-identical to the bus when
//!   configured lossless;
//! * [`Inventor`] / [`VerifierService`] — honest and faulty behaviours for
//!   every case study of the paper;
//! * [`ReputationBackend`] — the pluggable reputation plane: majority
//!   voting (simple or stake-weighted, [`VoteRule`]) and reputation
//!   updates ("the reputation of the verifiers can be updated according
//!   to the majority of their results"), with a process-local
//!   [`LocalReputation`] backend and a cross-shard [`GossipReputation`]
//!   backend that merges CRDT PN-counter deltas
//!   ([`DecayingPnCounterMap`], generation-indexed so scores can decay —
//!   [`ReputationDecay`]) through a [`GossipPlane`] at epoch boundaries —
//!   over a dedicated, byte-accounted inter-shard bus
//!   ([`GossipPlane::over_bus`]) when driven by the sharded engine;
//! * [`StatisticsLedger`] — the signed, hash-chained statistics stream of
//!   §6 footnote 3;
//! * [`SessionDriver`] / [`RationalityAuthority`] — the per-consultation
//!   protocol and the single-bus end-to-end sessions built on it;
//! * [`CertCache`] — the content-addressed certificate cache: a
//!   consultation is memoized under the SHA-256 digest of its game spec's
//!   canonical wire encoding ([`spec_digest`]) in a sharded LRU, and a
//!   later consultation of the same spec is served from the cache — after
//!   re-running the trusted checker ([`kernel_check`]) under
//!   [`CacheMode::Replay`], or directly under [`CacheMode::Trust`].
//!   Off by default ([`CertCacheConfig`]); enable it per engine with
//!   [`ShardedAuthority::with_cert_cache`];
//! * [`ShardedAuthority`] — the sharded multi-bus session engine: routed
//!   single consultations and batched fan-out across shards over a
//!   persistent, shard-pinned worker pool (gated by the default-on
//!   `parallel` cargo feature; `--no-default-features` builds run batches
//!   inline, single-threaded, with identical outcomes), with the
//!   reputation scope chosen per engine via [`ReputationPolicy`] —
//!   cross-shard gossip pulls are incremental, watermarked by a
//!   [`VersionVector`] per shard;
//! * [`sha256`] / [`SigningKey`] / [`Commitment`] — the from-scratch crypto
//!   substrate (an offline stand-in for real signatures; the workspace
//!   builds without registry access, see `docs/ARCHITECTURE.md`).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod audit;
mod bus;
mod cache;
mod crypto;
mod inventor;
mod messages;
#[cfg(feature = "parallel")]
mod pool;
mod private_session;
mod reputation;
mod session;
mod shard;
mod simnet;
mod transport;
mod verifier;
mod wire;

pub use audit::{AuditError, StatisticsLedger, StatisticsRecord};
pub use bus::Bus;
pub use cache::{spec_digest, CacheMode, CacheStats, CertCache, CertCacheConfig};
pub use crypto::{
    hmac_sha256, sha256, sha256_wire, to_hex, Commitment, Digest, Signature, SigningKey,
};
pub use inventor::{GameSpec, Inventor, InventorBehavior};
pub use messages::{Advice, Message, Party};
pub use private_session::{run_p2_session, P2Prover, P2SessionOutcome};
pub use reputation::{
    DecayingPnCounterMap, GossipPlane, GossipReputation, LocalReputation, MajorityOutcome,
    PnCounter, ReputationBackend, ReputationDecay, ReputationSnapshot, ReputationStore,
    VersionVector, VoteRule, EXCLUSION_THRESHOLD, GOSSIP_HUB, INITIAL_SCORE,
};
pub use session::{
    BackoffConfig, ConsultError, ConsultResult, ConsultStage, PanelOutcome, RationalityAuthority,
    ResilienceConfig, SessionDriver, SessionOutcome,
};
pub use shard::{ReputationConfig, ReputationPolicy, ShardStats, ShardedAuthority, TransportSite};
pub use simnet::{LinkProfile, NetEvent, SimNet, SimNetConfig};
pub use transport::{BusError, DeliveryRecord, Endpoint, Transport};
pub use verifier::{kernel_check, VerifierBehavior, VerifierService};
pub use wire::{
    frame_pool_misses, get_varint, put_varint, with_frame_scratch, Wire, WireBytes, WireError,
};
