//! The persistent shard worker pool behind
//! [`ShardedAuthority::consult_batch`](crate::ShardedAuthority::consult_batch).
//!
//! The previous fan-out spawned a fresh `std::thread::scope` worker per
//! non-empty shard for *every* chunk of a batch. Under a gossip policy a
//! batch is chunked at engine-wide epoch (and adaptive check) boundaries,
//! so a 512-consultation batch on an epoch of 32 paid the spawn/join cost
//! sixteen times over — the dominant term in the ~0.65× gossip/isolated
//! throughput ratio at 8 shards. This module replaces that with the
//! classic work-pinned pool of the rayon lineage, kept entirely safe
//! (the crate forbids `unsafe`):
//!
//! * one long-lived worker thread per shard, **pinned** to that shard, so
//!   a shard's consultations are always processed by the same thread in
//!   FIFO job order — order-preserving per-shard processing, and with it
//!   batch == sequential determinism, holds by construction;
//! * workers are spun up lazily on the first multi-shard chunk and then
//!   reused across chunks *and* across `consult_batch` calls; they park
//!   on an [`mpsc`](std::sync::mpsc) channel between jobs;
//! * jobs own their payloads (`(slot, agent, spec)` triples — one spec
//!   clone per request per batch, amortized against a full consultation's
//!   proving and verification work), so no borrowed data ever crosses a
//!   thread boundary;
//! * the dispatcher blocks until every job of the chunk has replied, so a
//!   chunk is still a barrier: gossip merges between chunks observe
//!   exactly the engine state a sequential run would.
//!
//! Dropping the pool closes the job channels and joins every worker, so
//! engine teardown never leaks threads.
//!
//! Because each worker is a long-lived thread, the wire layer's
//! thread-local frame scratch (`wire::with_frame_scratch`) warms once per
//! worker and then serves every subsequent consult on that shard without
//! touching the allocator — the pool is what turns the pooled-buffer path
//! into a true steady state.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;

use crate::inventor::GameSpec;
use crate::session::{RationalityAuthority, SessionOutcome};

/// The work routed to one shard for one chunk: `(result slot, agent id,
/// spec)` triples in request order.
pub(crate) type ShardRequests = Vec<(usize, u64, GameSpec)>;

/// One unit of work for a pinned worker, with the reply channel of the
/// dispatching chunk.
struct ShardJob {
    requests: ShardRequests,
    reply: Sender<Vec<(usize, SessionOutcome)>>,
}

/// A parked worker: its job queue and its thread handle (joined on drop).
struct Worker {
    jobs: Sender<ShardJob>,
    handle: JoinHandle<()>,
}

/// The persistent, shard-pinned worker pool of one
/// [`ShardedAuthority`](crate::ShardedAuthority).
pub(crate) struct ShardPool {
    shards: Arc<Vec<Mutex<RationalityAuthority>>>,
    workers: OnceLock<Vec<Worker>>,
}

impl ShardPool {
    /// Creates an empty pool over the engine's shard table. No thread is
    /// spawned until the first multi-shard chunk arrives.
    pub(crate) fn new(shards: Arc<Vec<Mutex<RationalityAuthority>>>) -> ShardPool {
        ShardPool {
            shards,
            workers: OnceLock::new(),
        }
    }

    /// The workers, spun up on first use: one per shard, pinned.
    fn workers(&self) -> &[Worker] {
        self.workers.get_or_init(|| {
            (0..self.shards.len())
                .map(|index| {
                    let (jobs, queue) = channel::<ShardJob>();
                    let shards = Arc::clone(&self.shards);
                    let handle = std::thread::Builder::new()
                        .name(format!("ra-shard-{index}"))
                        .spawn(move || worker_loop(&shards[index], queue))
                        .expect("spawn shard worker");
                    Worker { jobs, handle }
                })
                .collect()
        })
    }

    /// Dispatches one chunk — `(shard, requests)` pairs — to the pinned
    /// workers and blocks until every outcome has been written into
    /// `results` at its request slot.
    ///
    /// # Panics
    ///
    /// Panics if a worker died (a consultation panicked on its thread) —
    /// the same surfacing the scoped fan-out's `join` gave.
    pub(crate) fn run(
        &self,
        chunk: Vec<(usize, ShardRequests)>,
        results: &mut [Option<SessionOutcome>],
    ) {
        let workers = self.workers();
        let (reply, done) = channel();
        let mut pending = 0usize;
        for (shard, requests) in chunk {
            if requests.is_empty() {
                continue;
            }
            workers[shard]
                .jobs
                .send(ShardJob {
                    requests,
                    reply: reply.clone(),
                })
                .expect("shard worker exited");
            pending += 1;
        }
        drop(reply);
        for _ in 0..pending {
            let outcomes = done.recv().expect("shard worker panicked");
            for (slot, outcome) in outcomes {
                results[slot] = Some(outcome);
            }
        }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        if let Some(workers) = self.workers.take() {
            // Close every job queue first so all workers see the
            // disconnect and park out of their loops, then join.
            let (queues, handles): (Vec<_>, Vec<_>) = workers
                .into_iter()
                .map(|worker| (worker.jobs, worker.handle))
                .unzip();
            drop(queues);
            for handle in handles {
                let _ = handle.join();
            }
        }
    }
}

/// A pinned worker's life: park on the queue, serve each job's requests in
/// order under the shard lock, reply, repeat — until the pool drops the
/// queue.
fn worker_loop(shard: &Mutex<RationalityAuthority>, queue: Receiver<ShardJob>) {
    while let Ok(ShardJob { requests, reply }) = queue.recv() {
        let outcomes = {
            let mut shard = shard.lock().expect("shard lock poisoned");
            requests
                .into_iter()
                .map(|(slot, agent, spec)| (slot, shard.consult(agent, &spec)))
                .collect()
        };
        // The dispatcher only hangs up early if it panicked; the worker
        // just parks for the next job either way.
        let _ = reply.send(outcomes);
    }
}
