//! The persistent shard worker pool behind
//! [`ShardedAuthority::consult_batch`](crate::ShardedAuthority::consult_batch).
//!
//! The previous fan-out spawned a fresh `std::thread::scope` worker per
//! non-empty shard for *every* chunk of a batch. Under a gossip policy a
//! batch is chunked at engine-wide epoch (and adaptive check) boundaries,
//! so a 512-consultation batch on an epoch of 32 paid the spawn/join cost
//! sixteen times over — the dominant term in the ~0.65× gossip/isolated
//! throughput ratio at 8 shards. This module replaces that with the
//! classic work-pinned pool of the rayon lineage, kept entirely safe
//! (the crate forbids `unsafe`):
//!
//! * one long-lived worker thread per shard, **pinned** to that shard, so
//!   a shard's consultations are always processed by the same thread in
//!   FIFO job order — order-preserving per-shard processing, and with it
//!   batch == sequential determinism, holds by construction;
//! * workers are spun up lazily on the first multi-shard chunk and then
//!   reused across chunks *and* across `consult_batch` calls; they park
//!   on an [`mpsc`](std::sync::mpsc) channel between jobs;
//! * jobs own their payloads (`(slot, agent, Arc<spec>)` triples — the
//!   spec is shared by reference count, so routing a request to a worker
//!   never deep-clones a game), and no borrowed data ever crosses a
//!   thread boundary;
//! * the dispatcher blocks until every job of the chunk has replied, so a
//!   chunk is still a barrier: gossip merges between chunks observe
//!   exactly the engine state a sequential run would.
//!
//! Dropping the pool closes the job channels and joins every worker, so
//! engine teardown never leaks threads.
//!
//! Because each worker is a long-lived thread, the wire layer's
//! thread-local frame scratch (`wire::with_frame_scratch`) warms once per
//! worker and then serves every subsequent consult on that shard without
//! touching the allocator — the pool is what turns the pooled-buffer path
//! into a true steady state.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;

use crate::inventor::GameSpec;
use crate::session::{ConsultResult, RationalityAuthority};
use crate::wire;

/// The work routed to one shard for one chunk: `(result slot, agent id,
/// spec)` triples in request order. Specs are `Arc`-shared with the
/// caller's batch — routing never clones a game.
pub(crate) type ShardRequests = Vec<(usize, u64, Arc<GameSpec>)>;

/// One unit of work for a pinned worker, with the reply channel of the
/// dispatching chunk.
struct ShardJob {
    requests: ShardRequests,
    reply: Sender<Vec<(usize, ConsultResult)>>,
}

/// A parked worker: its job queue, its thread handle (joined on drop),
/// and a mirror of its thread-local frame-pool miss count (published
/// after every job so the engine can aggregate worker allocation
/// behavior without cross-thread state in the wire layer).
struct Worker {
    jobs: Sender<ShardJob>,
    handle: JoinHandle<()>,
    frame_pool_misses: Arc<AtomicU64>,
}

/// The persistent, shard-pinned worker pool of one
/// [`ShardedAuthority`](crate::ShardedAuthority).
pub(crate) struct ShardPool {
    shards: Arc<Vec<Mutex<RationalityAuthority>>>,
    workers: OnceLock<Vec<Worker>>,
}

impl ShardPool {
    /// Creates an empty pool over the engine's shard table. No thread is
    /// spawned until the first multi-shard chunk arrives.
    pub(crate) fn new(shards: Arc<Vec<Mutex<RationalityAuthority>>>) -> ShardPool {
        ShardPool {
            shards,
            workers: OnceLock::new(),
        }
    }

    /// The workers, spun up on first use: one per shard, pinned.
    fn workers(&self) -> &[Worker] {
        self.workers.get_or_init(|| {
            (0..self.shards.len())
                .map(|index| {
                    let (jobs, queue) = channel::<ShardJob>();
                    let shards = Arc::clone(&self.shards);
                    let frame_pool_misses = Arc::new(AtomicU64::new(0));
                    let published_misses = Arc::clone(&frame_pool_misses);
                    let handle = std::thread::Builder::new()
                        .name(format!("ra-shard-{index}"))
                        .spawn(move || worker_loop(&shards[index], queue, &published_misses))
                        .expect("spawn shard worker");
                    Worker {
                        jobs,
                        handle,
                        frame_pool_misses,
                    }
                })
                .collect()
        })
    }

    /// Sum of every spawned worker's thread-local frame-pool miss count
    /// (zero before the first multi-shard chunk spawns the workers). Each
    /// worker republishes its count after every job, so between chunks
    /// this is exact.
    pub(crate) fn frame_pool_misses(&self) -> u64 {
        self.workers.get().map_or(0, |workers| {
            workers
                .iter()
                .map(|w| w.frame_pool_misses.load(Ordering::Relaxed))
                .sum()
        })
    }

    /// Dispatches one chunk — `(shard, requests)` pairs — to the pinned
    /// workers and blocks until every outcome has been written into
    /// `results` at its request slot.
    ///
    /// # Panics
    ///
    /// Panics if a worker died (a consultation panicked on its thread) —
    /// the same surfacing the scoped fan-out's `join` gave.
    pub(crate) fn run(
        &self,
        chunk: Vec<(usize, ShardRequests)>,
        results: &mut [Option<ConsultResult>],
    ) {
        let workers = self.workers();
        let (reply, done) = channel();
        let mut pending = 0usize;
        for (shard, requests) in chunk {
            if requests.is_empty() {
                continue;
            }
            workers[shard]
                .jobs
                .send(ShardJob {
                    requests,
                    reply: reply.clone(),
                })
                .expect("shard worker exited");
            pending += 1;
        }
        drop(reply);
        for _ in 0..pending {
            let outcomes = done.recv().expect("shard worker panicked");
            for (slot, outcome) in outcomes {
                results[slot] = Some(outcome);
            }
        }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        if let Some(workers) = self.workers.take() {
            // Close every job queue first so all workers see the
            // disconnect and park out of their loops, then join.
            let (queues, handles): (Vec<_>, Vec<_>) = workers
                .into_iter()
                .map(|worker| (worker.jobs, worker.handle))
                .unzip();
            drop(queues);
            for handle in handles {
                let _ = handle.join();
            }
        }
    }
}

/// A pinned worker's life: park on the queue, serve each job's requests in
/// order under the shard lock, reply, repeat — until the pool drops the
/// queue. After each job the worker mirrors its thread-local frame-pool
/// miss count into `misses` for the engine-level aggregate.
fn worker_loop(shard: &Mutex<RationalityAuthority>, queue: Receiver<ShardJob>, misses: &AtomicU64) {
    while let Ok(ShardJob { requests, reply }) = queue.recv() {
        let outcomes = {
            let mut shard = shard.lock().expect("shard lock poisoned");
            requests
                .into_iter()
                .map(|(slot, agent, spec)| (slot, shard.try_consult(agent, spec.as_ref())))
                .collect()
        };
        misses.store(wire::frame_pool_misses(), Ordering::Relaxed);
        // The dispatcher only hangs up early if it panicked; the worker
        // just parks for the next job either way.
        let _ = reply.send(outcomes);
    }
}
