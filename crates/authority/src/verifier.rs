//! Verification services.
//!
//! Verifiers are "trustable service providers that profit from selling
//! general purpose verification procedures" — their procedures, not their
//! goodwill, are what agents rely on. The honest service dispatches each
//! advice payload to the matching certificate verifier from `ra-proofs`;
//! the faulty behaviours model broken or malicious verifiers for the
//! reputation experiments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ra_exact::rat;
use ra_proofs::{
    verify_online_advice, verify_participation_certificate, verify_support_certificate,
};

use crate::inventor::GameSpec;
use crate::messages::{Advice, Party};

/// How a verifier behaves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VerifierBehavior {
    /// Runs the genuine verification procedures.
    Honest,
    /// Rubber-stamps everything (a bought verifier).
    AlwaysAccept,
    /// Rejects everything (a saboteur).
    AlwaysReject,
    /// Accepts randomly with the given per-mille probability (a flaky
    /// implementation); seeded per verifier for determinism.
    Random {
        /// Acceptance probability in per-mille (0..=1000).
        accept_per_mille: u32,
    },
}

/// A verification service instance.
#[derive(Clone, Debug)]
pub struct VerifierService {
    /// Protocol identity.
    pub id: Party,
    /// Behaviour under test.
    pub behavior: VerifierBehavior,
}

impl VerifierService {
    /// Creates a verifier with the given identity number and behaviour.
    pub fn new(id: u64, behavior: VerifierBehavior) -> VerifierService {
        VerifierService {
            id: Party::Verifier(id),
            behavior,
        }
    }

    /// Checks `advice` for `spec`; returns `(accepted, detail)`.
    pub fn verify(&self, spec: &GameSpec, advice: &Advice) -> (bool, String) {
        match self.behavior {
            VerifierBehavior::AlwaysAccept => (true, "rubber-stamped".to_owned()),
            VerifierBehavior::AlwaysReject => (false, "refused on principle".to_owned()),
            VerifierBehavior::Random { accept_per_mille } => {
                // Deterministic per (verifier, advice) so repeated queries
                // are consistent.
                let fingerprint = format!("{:?}{:?}", self.id, advice);
                let seed = fingerprint
                    .bytes()
                    .fold(0u64, |acc, b| acc.wrapping_mul(131).wrapping_add(b as u64));
                let mut rng = StdRng::seed_from_u64(seed);
                let accepted = rng.random_range(0..1000) < accept_per_mille;
                (accepted, "flaky verdict".to_owned())
            }
            VerifierBehavior::Honest => kernel_check(spec, advice),
        }
    }
}

/// The genuine verification dispatch: each (game, advice) combination runs
/// the matching certificate checker from `ra-proofs`; mismatched
/// combinations are rejected outright. Returns `(accepted, detail)`.
///
/// This is the trusted-checker boundary of the proof-carrying split: an
/// honest verifier runs exactly this, and the certificate cache replays it
/// on [`CacheMode::Replay`](crate::cache::CacheMode::Replay) hits — the
/// expensive solve/panel path is skipped, the cheap kernel check is not.
/// It is deterministic in `(spec, advice)`.
pub fn kernel_check(spec: &GameSpec, advice: &Advice) -> (bool, String) {
    match (spec, advice) {
        (GameSpec::Strategic(game), Advice::PureNash(cert)) => match cert.verify(game) {
            Ok(theorem) => (
                true,
                format!(
                    "kernel verified {} ({} lookups)",
                    theorem.prop(),
                    theorem.cost().utility_lookups
                ),
            ),
            Err(e) => (false, format!("kernel rejected proof: {e}")),
        },
        (GameSpec::Bimatrix(game), Advice::Support(cert)) => {
            match verify_support_certificate(game, cert) {
                Ok(verified) => (
                    true,
                    format!(
                        "P1 verified, λ1 = {}, λ2 = {}",
                        verified.lambda1, verified.lambda2
                    ),
                ),
                Err(e) => (false, format!("P1 rejected: {e}")),
            }
        }
        (GameSpec::Participation(params), Advice::Participation(cert)) => {
            if &cert.params != params {
                return (false, "certificate for different parameters".to_owned());
            }
            match verify_participation_certificate(cert, &rat(1, 1 << 20)) {
                Ok(verified) => (
                    true,
                    format!("Eq.(5) verified, expected gain {}", verified.expected_gain),
                ),
                Err(e) => (false, format!("participation advice rejected: {e}")),
            }
        }
        (
            GameSpec::ParallelLinks {
                current_loads,
                own_load,
                ..
            },
            Advice::Online(cert),
        ) => {
            // The certificate must match the published statistics the agent
            // observed (they are signed — see audit.rs).
            if &cert.current_loads != current_loads || &cert.own_load != own_load {
                return (
                    false,
                    "certificate statistics differ from published ones".to_owned(),
                );
            }
            match verify_online_advice(cert) {
                Ok(verified) => (
                    true,
                    format!(
                        "equilibrium assignment verified; take link {} (predicted delay {})",
                        verified.link, verified.predicted_own_delay
                    ),
                ),
                Err(e) => (false, format!("online advice rejected: {e}")),
            }
        }
        _ => (false, "advice type does not match the game".to_owned()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inventor::{Inventor, InventorBehavior};
    use ra_games::named::prisoners_dilemma;
    use ra_solvers::ParticipationParams;

    fn specs() -> Vec<GameSpec> {
        vec![
            GameSpec::Strategic(prisoners_dilemma().to_strategic()),
            GameSpec::Bimatrix(ra_games::named::battle_of_the_sexes()),
            GameSpec::Participation(ParticipationParams::paper_example()),
            GameSpec::ParallelLinks {
                current_loads: vec![rat(3, 1), rat(1, 1)],
                own_load: rat(2, 1),
                expected_future_load: rat(3, 2),
                expected_future_agents: 3,
            },
        ]
    }

    #[test]
    fn honest_verifier_accepts_honest_advice_everywhere() {
        let inventor = Inventor::new(0, InventorBehavior::Honest);
        let verifier = VerifierService::new(0, VerifierBehavior::Honest);
        for spec in specs() {
            let advice = inventor.advise(&spec).expect("honest advice exists");
            let (accepted, detail) = verifier.verify(&spec, &advice);
            assert!(accepted, "{detail}");
        }
    }

    #[test]
    fn honest_verifier_rejects_corrupt_advice_everywhere() {
        let inventor = Inventor::new(0, InventorBehavior::Corrupt);
        let verifier = VerifierService::new(0, VerifierBehavior::Honest);
        for spec in specs() {
            let advice = inventor.advise(&spec).expect("corrupt advice exists");
            let (accepted, detail) = verifier.verify(&spec, &advice);
            assert!(!accepted, "corruption must be caught, got: {detail}");
        }
    }

    #[test]
    fn mismatched_advice_type_rejected() {
        let verifier = VerifierService::new(0, VerifierBehavior::Honest);
        let inventor = Inventor::new(0, InventorBehavior::Honest);
        let bimatrix_spec = GameSpec::Bimatrix(ra_games::named::battle_of_the_sexes());
        let advice = inventor.advise(&bimatrix_spec).unwrap();
        let wrong_spec = GameSpec::Participation(ParticipationParams::paper_example());
        let (accepted, _) = verifier.verify(&wrong_spec, &advice);
        assert!(!accepted);
    }

    #[test]
    fn broken_behaviors() {
        let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
        let advice = Inventor::new(0, InventorBehavior::Corrupt)
            .advise(&spec)
            .unwrap();
        let (a, _) = VerifierService::new(1, VerifierBehavior::AlwaysAccept).verify(&spec, &advice);
        assert!(a, "bought verifier rubber-stamps garbage");
        let honest_advice = Inventor::new(0, InventorBehavior::Honest)
            .advise(&spec)
            .unwrap();
        let (r, _) =
            VerifierService::new(2, VerifierBehavior::AlwaysReject).verify(&spec, &honest_advice);
        assert!(!r);
    }

    #[test]
    fn random_verifier_is_deterministic_per_advice() {
        let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
        let advice = Inventor::new(0, InventorBehavior::Honest)
            .advise(&spec)
            .unwrap();
        let flaky = VerifierService::new(
            3,
            VerifierBehavior::Random {
                accept_per_mille: 500,
            },
        );
        let first = flaky.verify(&spec, &advice);
        let second = flaky.verify(&spec, &advice);
        assert_eq!(first, second);
    }
}
