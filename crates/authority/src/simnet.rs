//! The simulated lossy network — a deterministic [`Transport`] backend.
//!
//! [`SimNet`] puts a fault-injectable, latency-shaped network under the
//! unchanged Fig. 1 protocol: per-link latency windows and drop
//! probabilities ([`LinkProfile`]), scripted partition/heal schedules
//! ([`NetEvent`]), and a **virtual clock** in abstract ticks. Sends do
//! not advance the clock; a frame with sampled latency `d` is queued to
//! land at `now + d`, and [`Transport::settle`] (or
//! [`SimNet::advance_to`]) flushes due frames in `(deliver_at, send
//! order)` order, advancing `now`. Two frames on links with overlapping
//! latency windows can therefore arrive in either order — the reordering
//! window is the jitter interval itself.
//!
//! Everything is **seeded and deterministic**: loss and latency are
//! sampled from one SplitMix64 stream (the shared [`rand::splitmix64`]
//! step) in send order under the state lock, so the same seed and the
//! same traffic always produce the same deliveries, the same ledger and
//! the same virtual timestamps.
//!
//! **Byte identity with [`Bus`](crate::Bus):** under the default
//! [`LinkProfile`] (zero latency, zero loss) a send samples *nothing* —
//! the RNG is untouched — and delivers synchronously through exactly the
//! accounting path the bus uses (the shared striped
//! [`Ledger`](crate::transport) — same records, same totals, same
//! per-pair sums, and even the same `Disconnected` detection). The
//! equivalence proptest in `tests/proptests.rs` replays arbitrary
//! adversarial traffic over both backends and asserts field equality.
//!
//! Accounting happens at **send time**: a frame lost to sampling or a
//! partition is accounted undelivered immediately (the sender paid for
//! the bytes; Lemma 1's `delivered_bytes` excludes them), and a
//! latency-delayed frame is accounted delivered when it is queued — its
//! destination channel is captured at send time, so a party that
//! re-registers or disconnects mid-flight still receives nothing on its
//! *new* endpoint while the ledger keeps the optimistic delivered mark
//! (the simulation's one divergence from an infinitely observant wire,
//! and only reachable with non-zero latency).

use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::mpsc::{channel, Sender};
use std::sync::Mutex;

use crate::messages::{Message, Party};
use crate::transport::{BusError, DeliveryRecord, Endpoint, Ledger, StripeGuard, Transport};
use crate::wire::Wire;

/// The latency/loss shape of one directed link (or of every link, as
/// [`SimNetConfig::default_link`]).
///
/// Latency is a uniform window `[latency_min, latency_max]` in virtual
/// ticks; `latency_max > latency_min` creates jitter, which is also the
/// reordering window. `drop_prob` is sampled per frame, and a frame that
/// survives loss is *duplicated* with probability
/// `duplicate_probability` (the other half of at-least-once delivery:
/// the copy shares the original's sampled delay and is accounted as its
/// own delivered record). The default is the perfect link: zero ticks,
/// zero loss, zero duplication — and, deliberately, zero RNG draws, so a
/// fully-default `SimNet` is byte-identical to a `Bus`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkProfile {
    /// Minimum one-way latency in virtual ticks.
    pub latency_min: u64,
    /// Maximum one-way latency in virtual ticks (inclusive).
    pub latency_max: u64,
    /// Per-frame loss probability in `[0, 1]`.
    pub drop_prob: f64,
    /// Probability in `[0, 1]` that a surviving frame is delivered twice.
    pub duplicate_probability: f64,
}

impl Default for LinkProfile {
    fn default() -> LinkProfile {
        LinkProfile {
            latency_min: 0,
            latency_max: 0,
            drop_prob: 0.0,
            duplicate_probability: 0.0,
        }
    }
}

impl LinkProfile {
    /// The perfect link: zero latency, zero loss (the default).
    pub fn lossless() -> LinkProfile {
        LinkProfile::default()
    }

    /// A link with a uniform latency window and no loss.
    pub fn with_latency(min: u64, max: u64) -> LinkProfile {
        LinkProfile {
            latency_min: min,
            latency_max: max,
            ..LinkProfile::default()
        }
    }

    /// A zero-latency link that loses each frame with probability `p`.
    pub fn lossy(p: f64) -> LinkProfile {
        LinkProfile {
            drop_prob: p,
            ..LinkProfile::default()
        }
    }

    /// A zero-latency, zero-loss link that duplicates each frame with
    /// probability `p` — at-least-once delivery without the losses, for
    /// pinning that receiver-side dedup makes duplicated traffic
    /// outcome-identical to lossless traffic.
    pub fn duplicating(p: f64) -> LinkProfile {
        LinkProfile {
            duplicate_probability: p,
            ..LinkProfile::default()
        }
    }

    /// Validates the profile's invariants.
    fn check(&self) {
        assert!(
            self.latency_min <= self.latency_max,
            "latency window inverted: [{}, {}]",
            self.latency_min,
            self.latency_max
        );
        assert!(
            (0.0..=1.0).contains(&self.drop_prob),
            "drop probability {} outside [0, 1]",
            self.drop_prob
        );
        assert!(
            (0.0..=1.0).contains(&self.duplicate_probability),
            "duplicate probability {} outside [0, 1]",
            self.duplicate_probability
        );
    }
}

/// One entry of a scripted fault schedule, applied when the virtual clock
/// first reaches `at` (during a [`Transport::settle`] or
/// [`SimNet::advance_to`] — sends themselves never advance the clock).
#[derive(Clone, Debug)]
pub enum NetEvent {
    /// Partition the network: every frame between a party on `left` and a
    /// party on `right` (either direction) is dropped until healed.
    Split {
        /// Virtual tick at which the partition starts.
        at: u64,
        /// One side of the cut.
        left: Vec<Party>,
        /// The other side.
        right: Vec<Party>,
    },
    /// Heal every active partition and drop rule.
    Heal {
        /// Virtual tick at which the network heals.
        at: u64,
    },
}

impl NetEvent {
    /// The virtual tick this event fires at.
    fn at(&self) -> u64 {
        match self {
            NetEvent::Split { at, .. } | NetEvent::Heal { at } => *at,
        }
    }
}

/// Construction parameters for a [`SimNet`].
#[derive(Clone, Debug, Default)]
pub struct SimNetConfig {
    /// Seed of the deterministic loss/latency stream.
    pub seed: u64,
    /// Profile of every link without an explicit override.
    pub default_link: LinkProfile,
    /// Per-link overrides, directed: `(from, to, profile)`.
    pub links: Vec<(Party, Party, LinkProfile)>,
    /// Scripted partition/heal events, applied as the clock crosses their
    /// timestamps (any order; sorted at construction).
    pub schedule: Vec<NetEvent>,
}

/// A frame in flight: delivery channel captured at send time, ordered by
/// `(deliver_at, seq)` so the pending queue pops in virtual-time order
/// with send order breaking ties.
#[derive(Debug)]
struct PendingFrame {
    deliver_at: u64,
    seq: u64,
    from: Party,
    tx: Sender<(Party, Message)>,
    message: Message,
}

impl PartialEq for PendingFrame {
    fn eq(&self, other: &PendingFrame) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}

impl Eq for PendingFrame {}

impl PartialOrd for PendingFrame {
    fn partial_cmp(&self, other: &PendingFrame) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PendingFrame {
    /// Reversed comparison: `BinaryHeap` is a max-heap, so the earliest
    /// `(deliver_at, seq)` must compare greatest.
    fn cmp(&self, other: &PendingFrame) -> std::cmp::Ordering {
        (other.deliver_at, other.seq).cmp(&(self.deliver_at, self.seq))
    }
}

/// Everything mutable behind the one state lock: routing, fault state,
/// the in-flight queue, the clock and the RNG. One lock keeps the sampled
/// stream strictly in send order, which is what makes runs replayable.
#[derive(Debug)]
struct SimState {
    endpoints: HashMap<Party, Sender<(Party, Message)>>,
    drop_rules: HashSet<(Party, Party)>,
    partitions: Vec<(HashSet<Party>, HashSet<Party>)>,
    links: HashMap<(Party, Party), LinkProfile>,
    pending: BinaryHeap<PendingFrame>,
    now: u64,
    rng: u64,
    frame_seq: u64,
    /// Sorted by [`NetEvent::at`]; `next_event` indexes the first not yet
    /// applied.
    schedule: Vec<NetEvent>,
    next_event: usize,
}

impl SimState {
    /// Whether an active partition separates `from` and `to`.
    fn partitioned(&self, from: Party, to: Party) -> bool {
        self.partitions.iter().any(|(left, right)| {
            (left.contains(&from) && right.contains(&to))
                || (right.contains(&from) && left.contains(&to))
        })
    }

    /// The effective profile of the `from → to` link.
    fn link(&self, from: Party, to: Party, default: LinkProfile) -> LinkProfile {
        self.links.get(&(from, to)).copied().unwrap_or(default)
    }

    /// A uniform draw from `[0, 1)`, same mapping as the rand shim's
    /// `random_bool`.
    fn random_unit(&mut self) -> f64 {
        (rand::splitmix64(&mut self.rng) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform draw from `[0, n)` for `n > 0`.
    fn random_below(&mut self, n: u64) -> u64 {
        rand::splitmix64(&mut self.rng) % n
    }

    /// Delivers every pending frame due at or before `target`, advances
    /// the clock to `target`, and applies schedule events the clock
    /// crossed. Delivery failures (receiver dropped mid-flight) are
    /// swallowed: the frame was accounted at send time.
    fn run_until(&mut self, target: u64) {
        while self
            .pending
            .peek()
            .is_some_and(|frame| frame.deliver_at <= target)
        {
            let frame = self.pending.pop().expect("peeked");
            let _ = frame.tx.send((frame.from, frame.message));
        }
        self.now = self.now.max(target);
        while self.next_event < self.schedule.len()
            && self.schedule[self.next_event].at() <= self.now
        {
            match self.schedule[self.next_event].clone() {
                NetEvent::Split { left, right, .. } => {
                    self.partitions
                        .push((left.into_iter().collect(), right.into_iter().collect()));
                }
                NetEvent::Heal { .. } => {
                    self.partitions.clear();
                    self.drop_rules.clear();
                }
            }
            self.next_event += 1;
        }
    }
}

/// The deterministic simulated network.
///
/// # Examples
///
/// A lossless `SimNet` behaves exactly like a [`Bus`](crate::Bus):
///
/// ```
/// use ra_authority::{Message, Party, SimNet, Transport};
///
/// let net = SimNet::lossless(42);
/// let a = Party::Agent(1);
/// let b = Party::Agent(2);
/// net.register(a);
/// let ep = net.register(b);
/// net.send(a, b, Message::AdviceRequest { game_id: 1 }).unwrap();
/// // Zero latency: already delivered, settle is a formality.
/// assert!(ep.try_recv().is_some());
/// assert_eq!(net.total_bytes(), net.delivered_bytes());
/// ```
///
/// With latency, frames are in flight until the clock advances:
///
/// ```
/// use ra_authority::{LinkProfile, Message, Party, SimNet, SimNetConfig, Transport};
///
/// let net = SimNet::new(SimNetConfig {
///     seed: 7,
///     default_link: LinkProfile::with_latency(100, 250),
///     ..SimNetConfig::default()
/// });
/// let a = Party::Agent(1);
/// let b = Party::Agent(2);
/// net.register(a);
/// let ep = net.register(b);
/// net.send(a, b, Message::AdviceRequest { game_id: 1 }).unwrap();
/// assert!(ep.try_recv().is_none(), "still in flight");
/// net.settle();
/// assert!(ep.try_recv().is_some());
/// assert!((100..=250).contains(&net.now()), "clock advanced by one RTT leg");
/// ```
#[derive(Debug)]
pub struct SimNet {
    default_link: LinkProfile,
    state: Mutex<SimState>,
    ledger: Ledger,
}

impl SimNet {
    /// Builds a network from `config`.
    ///
    /// # Panics
    ///
    /// Panics if any [`LinkProfile`] has an inverted latency window or a
    /// loss probability outside `[0, 1]`.
    pub fn new(config: SimNetConfig) -> SimNet {
        config.default_link.check();
        let mut links = HashMap::new();
        for (from, to, profile) in config.links {
            profile.check();
            links.insert((from, to), profile);
        }
        let mut schedule = config.schedule;
        schedule.sort_by_key(NetEvent::at);
        SimNet {
            default_link: config.default_link,
            state: Mutex::new(SimState {
                endpoints: HashMap::new(),
                drop_rules: HashSet::new(),
                partitions: Vec::new(),
                links,
                pending: BinaryHeap::new(),
                now: 0,
                rng: config.seed,
                frame_seq: 0,
                schedule,
                next_event: 0,
            }),
            ledger: Ledger::default(),
        }
    }

    /// A perfect network: zero latency, zero loss, no schedule — sends
    /// never touch the RNG, so this is byte-identical to a
    /// [`Bus`](crate::Bus) (the seed only matters if lossy links are
    /// added later).
    pub fn lossless(seed: u64) -> SimNet {
        SimNet::new(SimNetConfig {
            seed,
            ..SimNetConfig::default()
        })
    }

    /// The current virtual time in ticks.
    pub fn now(&self) -> u64 {
        self.state.lock().expect("simnet lock poisoned").now
    }

    /// Number of frames sent but not yet delivered.
    pub fn in_flight(&self) -> usize {
        self.state
            .lock()
            .expect("simnet lock poisoned")
            .pending
            .len()
    }

    /// Advances the virtual clock to `tick` (if ahead of it), delivering
    /// every frame due on the way and applying schedule events the clock
    /// crosses.
    pub fn advance_to(&self, tick: u64) {
        self.state
            .lock()
            .expect("simnet lock poisoned")
            .run_until(tick);
    }

    /// Manually partitions the network: frames between `left` and `right`
    /// (either direction) drop until [`SimNet::heal_partitions`] or a
    /// trait-level [`Transport::heal`].
    pub fn split(&self, left: &[Party], right: &[Party]) {
        self.state
            .lock()
            .expect("simnet lock poisoned")
            .partitions
            .push((
                left.iter().copied().collect(),
                right.iter().copied().collect(),
            ));
    }

    /// Removes every active partition (drop rules stay).
    pub fn heal_partitions(&self) {
        self.state
            .lock()
            .expect("simnet lock poisoned")
            .partitions
            .clear();
    }

    /// Overrides the profile of the directed `from → to` link.
    ///
    /// # Panics
    ///
    /// Panics if the profile is invalid (see [`SimNet::new`]).
    pub fn set_link(&self, from: Party, to: Party, profile: LinkProfile) {
        profile.check();
        self.state
            .lock()
            .expect("simnet lock poisoned")
            .links
            .insert((from, to), profile);
    }

    /// Registers a party; returns its receiving endpoint. Re-registering
    /// replaces the old endpoint (frames already in flight keep the
    /// channel they captured at send time).
    pub fn register(&self, party: Party) -> Endpoint {
        let (tx, rx) = channel();
        self.state
            .lock()
            .expect("simnet lock poisoned")
            .endpoints
            .insert(party, tx);
        Endpoint {
            party,
            receiver: rx,
        }
    }

    /// Removes `party`'s registration (see [`Transport::disconnect`]).
    pub fn disconnect(&self, party: Party) {
        self.state
            .lock()
            .expect("simnet lock poisoned")
            .endpoints
            .remove(&party);
    }

    /// Sends one message (see [`Transport::send`]): loss, partition and
    /// latency are decided here, at send time, from the seeded stream.
    pub fn send(&self, from: Party, to: Party, message: Message) -> Result<(), BusError> {
        let mut state = self.state.lock().expect("simnet lock poisoned");
        let mut held = None;
        let result = self.transmit(&mut state, &mut held, from, to, message);
        drop(held);
        result
    }

    /// Sends a batch (see [`Transport::send_batch`]): one state lock, one
    /// cached ledger stripe across same-stripe senders — byte-identical
    /// to N sequential sends, exactly like the bus.
    pub fn send_batch(&self, batch: &mut Vec<(Party, Party, Message)>) -> Result<(), BusError> {
        if batch.is_empty() {
            return Ok(());
        }
        let mut state = self.state.lock().expect("simnet lock poisoned");
        let mut held = None;
        let mut first_error = Ok(());
        for (from, to, message) in batch.drain(..) {
            let result = self.transmit(&mut state, &mut held, from, to, message);
            if first_error.is_ok() {
                first_error = result;
            }
        }
        drop(held);
        first_error
    }

    /// The one send path: decides fate (unknown / blocked / lost /
    /// immediate / in-flight, possibly duplicated), accounts it, and
    /// samples the RNG only when the link actually has loss, jitter or
    /// duplication — a perfect link leaves the stream untouched.
    fn transmit<'a>(
        &'a self,
        state: &mut SimState,
        held: &mut StripeGuard<'a>,
        from: Party,
        to: Party,
        message: Message,
    ) -> Result<(), BusError> {
        let bytes = message.encoded_len();
        let retransmit = message.is_retransmit();
        // Unknown destination short-circuits before any accounting,
        // mirroring `Bus::send`.
        if state.drop_rules.contains(&(from, to)) || state.partitioned(from, to) {
            self.ledger
                .account_cached(held, from, to, bytes, false, retransmit);
            return Ok(());
        }
        let Some(tx) = state.endpoints.get(&to).cloned() else {
            return Err(BusError::UnknownParty(to));
        };
        let profile = state.link(from, to, self.default_link);
        if profile.drop_prob > 0.0 && state.random_unit() < profile.drop_prob {
            self.ledger
                .account_cached(held, from, to, bytes, false, retransmit);
            return Ok(());
        }
        let delay = if profile.latency_max > profile.latency_min {
            profile.latency_min + state.random_below(profile.latency_max - profile.latency_min + 1)
        } else {
            profile.latency_min
        };
        // At-least-once duplication, decided after loss so only surviving
        // frames can double up; the copy shares the sampled delay.
        let duplicate = profile.duplicate_probability > 0.0
            && state.random_unit() < profile.duplicate_probability;
        let dup_payload = duplicate.then(|| (message.clone(), tx.clone()));
        if delay == 0 {
            // Immediate delivery: the exact Bus path, including the
            // Disconnected probe through the live channel.
            let result = tx
                .send((from, message))
                .map_err(|_| BusError::Disconnected(to));
            self.ledger
                .account_cached(held, from, to, bytes, result.is_ok(), retransmit);
            if let Some((copy, dup_tx)) = dup_payload {
                let dup_ok = dup_tx.send((from, copy)).is_ok();
                self.ledger
                    .account_cached(held, from, to, bytes, dup_ok, retransmit);
            }
            return result;
        }
        state.frame_seq += 1;
        let frame = PendingFrame {
            deliver_at: state.now + delay,
            seq: state.frame_seq,
            from,
            tx,
            message,
        };
        state.pending.push(frame);
        // Accounted delivered at send time (see the module docs): loss was
        // already decided above, so the frame will land at settle.
        self.ledger
            .account_cached(held, from, to, bytes, true, retransmit);
        if let Some((copy, dup_tx)) = dup_payload {
            state.frame_seq += 1;
            state.pending.push(PendingFrame {
                deliver_at: state.now + delay,
                seq: state.frame_seq,
                from,
                tx: dup_tx,
                message: copy,
            });
            self.ledger
                .account_cached(held, from, to, bytes, true, retransmit);
        }
        Ok(())
    }

    /// Delivers everything in flight (see [`Transport::settle`]): the
    /// clock jumps to the latest pending delivery time, so per-phase
    /// virtual elapsed time is the *max* of the fan-out's latencies.
    pub fn settle(&self) {
        let mut state = self.state.lock().expect("simnet lock poisoned");
        let target = state
            .pending
            .iter()
            .map(|frame| frame.deliver_at)
            .max()
            .unwrap_or(state.now)
            .max(state.now);
        state.run_until(target);
    }
}

impl Transport for SimNet {
    fn register(&self, party: Party) -> Endpoint {
        SimNet::register(self, party)
    }

    fn disconnect(&self, party: Party) {
        SimNet::disconnect(self, party);
    }

    fn send(&self, from: Party, to: Party, message: Message) -> Result<(), BusError> {
        SimNet::send(self, from, to, message)
    }

    fn send_batch(&self, batch: &mut Vec<(Party, Party, Message)>) -> Result<(), BusError> {
        SimNet::send_batch(self, batch)
    }

    fn drop_link(&self, from: Party, to: Party) {
        self.state
            .lock()
            .expect("simnet lock poisoned")
            .drop_rules
            .insert((from, to));
    }

    fn heal(&self) {
        let mut state = self.state.lock().expect("simnet lock poisoned");
        state.drop_rules.clear();
        state.partitions.clear();
    }

    fn settle(&self) {
        SimNet::settle(self);
    }

    fn total_bytes(&self) -> usize {
        self.ledger.total_bytes()
    }

    fn delivered_bytes(&self) -> usize {
        self.ledger.delivered_bytes()
    }

    fn bytes_between(&self, from: Party, to: Party) -> usize {
        self.ledger.bytes_between(from, to)
    }

    fn delivery_log(&self) -> Vec<DeliveryRecord> {
        self.ledger.delivery_log()
    }

    fn message_count(&self) -> usize {
        self.ledger.message_count()
    }

    fn retransmit_bytes(&self) -> usize {
        self.ledger.retransmit_bytes()
    }

    fn goodput_bytes(&self) -> usize {
        self.ledger.total_bytes() - self.ledger.retransmit_bytes()
    }

    fn now(&self) -> u64 {
        SimNet::now(self)
    }

    fn advance(&self, ticks: u64) {
        let target = SimNet::now(self).saturating_add(ticks);
        SimNet::advance_to(self, target);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(game_id: u64) -> Message {
        Message::AdviceRequest { game_id }
    }

    #[test]
    fn lossless_simnet_is_rng_free_and_synchronous() {
        let net = SimNet::lossless(123);
        let a = Party::Agent(1);
        let b = Party::Agent(2);
        net.register(a);
        let ep = net.register(b);
        for g in 0..10 {
            net.send(a, b, msg(g)).unwrap();
        }
        // Delivered without any settle, like the bus.
        assert_eq!(ep.drain().len(), 10);
        assert_eq!(net.in_flight(), 0);
        assert_eq!(net.now(), 0, "zero-latency sends never move the clock");
        // The RNG stream was never touched.
        assert_eq!(
            net.state.lock().unwrap().rng,
            123,
            "perfect links sample nothing"
        );
        assert_eq!(net.total_bytes(), net.delivered_bytes());
    }

    #[test]
    fn latency_holds_frames_until_settle() {
        let net = SimNet::new(SimNetConfig {
            seed: 1,
            default_link: LinkProfile::with_latency(10, 10),
            ..SimNetConfig::default()
        });
        let a = Party::Agent(1);
        let b = Party::Agent(2);
        net.register(a);
        let ep = net.register(b);
        net.send(a, b, msg(1)).unwrap();
        net.send(a, b, msg(2)).unwrap();
        assert_eq!(net.in_flight(), 2);
        assert!(ep.try_recv().is_none());
        // Fixed latency: no sampling, the clock lands exactly on 10.
        net.settle();
        assert_eq!(net.now(), 10);
        let got = ep.drain();
        assert_eq!(
            got.iter().map(|(_, m)| m.clone()).collect::<Vec<_>>(),
            vec![msg(1), msg(2)],
            "equal delivery times preserve send order"
        );
        // Accounted as delivered at send time.
        assert_eq!(net.delivered_bytes(), net.total_bytes());
    }

    #[test]
    fn jitter_can_reorder_across_links() {
        // a→c slow, b→c fast: b's later frame overtakes a's.
        let c = Party::Verifier(0);
        let a = Party::Agent(1);
        let b = Party::Agent(2);
        let net = SimNet::new(SimNetConfig {
            seed: 5,
            links: vec![
                (a, c, LinkProfile::with_latency(100, 100)),
                (b, c, LinkProfile::with_latency(1, 1)),
            ],
            ..SimNetConfig::default()
        });
        net.register(a);
        net.register(b);
        let ep = net.register(c);
        net.send(a, c, msg(1)).unwrap();
        net.send(b, c, msg(2)).unwrap();
        net.settle();
        let got: Vec<Party> = ep.drain().into_iter().map(|(from, _)| from).collect();
        assert_eq!(got, vec![b, a], "the fast link's frame arrives first");
        assert_eq!(net.now(), 100);
    }

    #[test]
    fn loss_is_sampled_and_accounted_undelivered() {
        let net = SimNet::new(SimNetConfig {
            seed: 99,
            default_link: LinkProfile::lossy(0.5),
            ..SimNetConfig::default()
        });
        let a = Party::Agent(1);
        let b = Party::Agent(2);
        net.register(a);
        let ep = net.register(b);
        let sends = 400u64;
        for g in 0..sends {
            net.send(a, b, msg(g)).unwrap();
        }
        net.settle();
        let arrived = ep.drain().len();
        assert!(
            (120..=280).contains(&arrived),
            "~half of {sends} frames should land, got {arrived}"
        );
        assert!(net.delivered_bytes() < net.total_bytes());
        let log = net.delivery_log();
        assert_eq!(log.len(), sends as usize);
        assert_eq!(log.iter().filter(|r| r.delivered).count(), arrived);
    }

    #[test]
    fn same_seed_same_fate() {
        let run = |seed: u64| {
            let net = SimNet::new(SimNetConfig {
                seed,
                default_link: LinkProfile {
                    latency_min: 1,
                    latency_max: 50,
                    drop_prob: 0.3,
                    duplicate_probability: 0.1,
                },
                ..SimNetConfig::default()
            });
            let a = Party::Agent(1);
            let b = Party::Agent(2);
            net.register(a);
            let ep = net.register(b);
            for g in 0..64 {
                net.send(a, b, msg(g)).unwrap();
            }
            net.settle();
            (net.delivery_log(), ep.drain(), net.now())
        };
        assert_eq!(run(7), run(7), "identical seeds replay identically");
        let (log_a, ..) = run(7);
        let (log_b, ..) = run(8);
        assert_ne!(log_a, log_b, "different seeds shuffle the fates");
    }

    #[test]
    fn duplicates_are_sampled_delivered_and_accounted() {
        let net = SimNet::new(SimNetConfig {
            seed: 21,
            default_link: LinkProfile::duplicating(0.5),
            ..SimNetConfig::default()
        });
        let a = Party::Agent(1);
        let b = Party::Agent(2);
        net.register(a);
        let ep = net.register(b);
        let sends = 200u64;
        for g in 0..sends {
            net.send(a, b, msg(g)).unwrap();
        }
        net.settle();
        let got = ep.drain();
        let arrived = got.len() as u64;
        assert!(
            (sends + 40..=sends + 160).contains(&arrived),
            "~half of {sends} frames should double up, got {arrived}"
        );
        // Every frame (original or copy) is its own delivered record, so
        // the ledger sees the duplicated traffic Lemma 1 must pay for.
        assert_eq!(net.message_count(), arrived as usize);
        assert_eq!(net.delivered_bytes(), net.total_bytes());
        // Copies are byte-identical to their originals, arrive adjacent
        // on a zero-latency link, and every original still lands exactly
        // once or twice — never zero, never three times.
        let mut counts = vec![0u64; sends as usize];
        for (from, m) in &got {
            assert_eq!(*from, a);
            let Message::AdviceRequest { game_id } = m else {
                panic!("unexpected frame {m:?}");
            };
            counts[*game_id as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 1 || c == 2));
    }

    #[test]
    fn duplicated_latency_frames_share_their_delay() {
        // Probability 1 duplication over a fixed-latency link: both
        // copies are in flight until the shared delivery tick.
        let net = SimNet::new(SimNetConfig {
            seed: 4,
            default_link: LinkProfile {
                latency_min: 10,
                latency_max: 10,
                drop_prob: 0.0,
                duplicate_probability: 1.0,
            },
            ..SimNetConfig::default()
        });
        let a = Party::Agent(1);
        let b = Party::Agent(2);
        net.register(a);
        let ep = net.register(b);
        net.send(a, b, msg(1)).unwrap();
        assert_eq!(net.in_flight(), 2, "original + copy queued");
        assert!(ep.try_recv().is_none());
        net.settle();
        assert_eq!(net.now(), 10);
        let got = ep.drain();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], got[1], "the copy is byte-identical");
    }

    #[test]
    fn scheduled_partition_blocks_and_heals() {
        let a = Party::Agent(1);
        let b = Party::Agent(2);
        let net = SimNet::new(SimNetConfig {
            seed: 0,
            schedule: vec![
                NetEvent::Split {
                    at: 100,
                    left: vec![a],
                    right: vec![b],
                },
                NetEvent::Heal { at: 200 },
            ],
            ..SimNetConfig::default()
        });
        net.register(a);
        let ep = net.register(b);
        net.send(a, b, msg(1)).unwrap();
        assert_eq!(ep.drain().len(), 1, "before the split: delivered");
        net.advance_to(100);
        net.send(a, b, msg(2)).unwrap();
        net.send(b, a, msg(3)).unwrap();
        assert!(ep.try_recv().is_none(), "partitioned: both directions cut");
        net.advance_to(200);
        net.send(a, b, msg(4)).unwrap();
        assert_eq!(ep.drain().len(), 1, "healed: delivery resumes");
        // The partitioned attempts are accounted, undelivered.
        let log = net.delivery_log();
        assert_eq!(log.len(), 4);
        assert_eq!(log.iter().filter(|r| !r.delivered).count(), 2);
    }

    #[test]
    fn manual_split_and_trait_heal() {
        let net = SimNet::lossless(0);
        let a = Party::Agent(1);
        let hub = Party::Shard(0);
        net.register(a);
        let ep = net.register(hub);
        net.split(&[a], &[hub]);
        net.send(a, hub, msg(1)).unwrap();
        assert!(ep.try_recv().is_none());
        Transport::heal(&net);
        net.send(a, hub, msg(2)).unwrap();
        assert_eq!(ep.drain().len(), 1);
    }

    #[test]
    fn unknown_party_unaccounted_and_disconnect_detected() {
        let net = SimNet::lossless(0);
        let a = Party::Agent(1);
        net.register(a);
        assert_eq!(
            net.send(a, Party::Verifier(9), msg(1)),
            Err(BusError::UnknownParty(Party::Verifier(9)))
        );
        assert_eq!(net.message_count(), 0, "unknown-party send unaccounted");
        let b = Party::Agent(2);
        let ep = net.register(b);
        drop(ep);
        assert_eq!(net.send(a, b, msg(2)), Err(BusError::Disconnected(b)));
        assert_eq!(net.message_count(), 1, "failed send accounted undelivered");
        assert_eq!(net.delivered_bytes(), 0);
    }

    #[test]
    fn settle_is_idempotent_and_advance_is_monotonic() {
        let net = SimNet::new(SimNetConfig {
            seed: 3,
            default_link: LinkProfile::with_latency(5, 5),
            ..SimNetConfig::default()
        });
        let a = Party::Agent(1);
        let b = Party::Agent(2);
        net.register(a);
        let ep = net.register(b);
        net.send(a, b, msg(1)).unwrap();
        net.settle();
        net.settle();
        assert_eq!(net.now(), 5);
        net.advance_to(3);
        assert_eq!(net.now(), 5, "the clock never runs backwards");
        assert_eq!(ep.drain().len(), 1);
    }
}
