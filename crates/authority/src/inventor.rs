//! Game inventors — honest and biased.
//!
//! The inventor is *not trusted*: it "may possibly gain revenues from the
//! game" and may misadvise. The honest implementation runs the `ra-solvers`
//! machinery and packages certificates; the dishonest variants produce the
//! specific corruptions the paper worries about, so the end-to-end tests can
//! show each one being caught by verification.

use ra_exact::{rat, Rational};
use ra_games::{BimatrixGame, StrategicGame};
use ra_proofs::{
    honest_online_advice, prove_is_nash, ParticipationCertificate, PureNashCertificate,
    SupportCertificate,
};
use ra_solvers::{
    analyze_pure_nash, find_one_equilibrium, solve_participation_equilibrium, EquilibriumRoot,
    ParticipationParams,
};

use crate::messages::{Advice, Party};

/// The game being consulted about, as the session layer sees it.
///
/// Implements [`crate::wire::Wire`] (see `messages.rs`): the canonical
/// encoding is what [`crate::cache::spec_digest`] hashes, so two specs are
/// cache-equivalent exactly when they are `==`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GameSpec {
    /// A §3 strategic-form game; advice = a pure profile with kernel proof.
    Strategic(StrategicGame),
    /// A §4 bimatrix game; advice = a P1 support certificate.
    Bimatrix(BimatrixGame),
    /// The §5 participation game; advice = the equilibrium probability.
    Participation(ParticipationParams),
    /// A §6 parallel-links arrival; advice = a link with its equilibrium
    /// assignment.
    ParallelLinks {
        /// Published link loads at arrival time.
        current_loads: Vec<Rational>,
        /// The arriving agent's load.
        own_load: Rational,
        /// Expected per-agent future load (running average).
        expected_future_load: Rational,
        /// Agents still expected.
        expected_future_agents: usize,
    },
}

/// How the inventor behaves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InventorBehavior {
    /// Computes genuine equilibria and honest certificates.
    Honest,
    /// Produces deliberately corrupted advice (wrong profile / perturbed
    /// support / perturbed probability / rerouted link).
    Corrupt,
    /// Refuses to answer (models an unavailable inventor).
    Silent,
}

/// A game inventor.
#[derive(Clone, Debug)]
pub struct Inventor {
    /// Protocol identity.
    pub id: Party,
    /// Behaviour under test.
    pub behavior: InventorBehavior,
}

impl Inventor {
    /// Creates an inventor with the given identity number and behaviour.
    pub fn new(id: u64, behavior: InventorBehavior) -> Inventor {
        Inventor {
            id: Party::Inventor(id),
            behavior,
        }
    }

    /// Produces advice for a game (or `None` if silent / no equilibrium
    /// could be produced).
    pub fn advise(&self, spec: &GameSpec) -> Option<Advice> {
        match self.behavior {
            InventorBehavior::Silent => None,
            InventorBehavior::Honest => self.advise_honestly(spec),
            InventorBehavior::Corrupt => self.advise_corruptly(spec),
        }
    }

    fn advise_honestly(&self, spec: &GameSpec) -> Option<Advice> {
        match spec {
            GameSpec::Strategic(game) => {
                let analysis = analyze_pure_nash(game);
                let profile = analysis.equilibria.into_iter().next()?;
                Some(Advice::PureNash(PureNashCertificate {
                    proof: prove_is_nash(profile.clone()),
                    profile,
                }))
            }
            GameSpec::Bimatrix(game) => {
                let eq = find_one_equilibrium(game)?;
                Some(Advice::Support(SupportCertificate {
                    row_support: eq.row_support,
                    col_support: eq.col_support,
                }))
            }
            GameSpec::Participation(params) => {
                let roots = solve_participation_equilibrium(params, &rat(1, 1 << 30)).ok()?;
                Some(Advice::Participation(ParticipationCertificate {
                    params: params.clone(),
                    root: roots.into_iter().next()?,
                }))
            }
            GameSpec::ParallelLinks {
                current_loads,
                own_load,
                expected_future_load,
                expected_future_agents,
            } => Some(Advice::Online(honest_online_advice(
                current_loads,
                own_load,
                expected_future_load,
                *expected_future_agents,
            ))),
        }
    }

    /// Corruption strategies, one per case study. Each is the "most
    /// tempting" lie: small, plausible, and profitable if undetected.
    fn advise_corruptly(&self, spec: &GameSpec) -> Option<Advice> {
        match spec {
            GameSpec::Strategic(game) => {
                // Advise a non-equilibrium profile, with a (doomed) proof.
                let profile = game.profiles().find(|p| !game.is_pure_nash(p))?;
                Some(Advice::PureNash(PureNashCertificate {
                    proof: prove_is_nash(profile.clone()),
                    profile,
                }))
            }
            GameSpec::Bimatrix(game) => {
                // Take the real equilibrium's supports and flip one column
                // membership.
                let eq = find_one_equilibrium(game)?;
                let mut col = eq.col_support.clone();
                match col.iter().position(|&j| j == 0) {
                    Some(pos) if col.len() > 1 => {
                        col.remove(pos);
                    }
                    _ => {
                        if !col.contains(&0) {
                            col.insert(0, 0);
                        } else {
                            // Single-column support containing 0: move it.
                            col = vec![1 % game.cols()];
                        }
                    }
                }
                Some(Advice::Support(SupportCertificate {
                    row_support: eq.row_support,
                    col_support: col,
                }))
            }
            GameSpec::Participation(params) => {
                // Perturb the true probability by a small amount.
                let roots = solve_participation_equilibrium(params, &rat(1, 1 << 30)).ok()?;
                let root = match roots.into_iter().next()? {
                    EquilibriumRoot::Exact(p) => EquilibriumRoot::Exact(p + rat(1, 50)),
                    EquilibriumRoot::Bracket { lo, hi } => EquilibriumRoot::Bracket {
                        lo: lo + rat(1, 50),
                        hi: hi + rat(1, 50),
                    },
                };
                Some(Advice::Participation(ParticipationCertificate {
                    params: params.clone(),
                    root,
                }))
            }
            GameSpec::ParallelLinks {
                current_loads,
                own_load,
                expected_future_load,
                expected_future_agents,
            } => {
                // Honest assignment but reroute the suggestion — steering
                // the agent onto a worse link.
                let mut cert = honest_online_advice(
                    current_loads,
                    own_load,
                    expected_future_load,
                    *expected_future_agents,
                );
                cert.suggested_link = (cert.suggested_link + 1) % current_loads.len();
                Some(Advice::Online(cert))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ra_games::named::{matching_pennies, prisoners_dilemma};

    #[test]
    fn honest_strategic_advice() {
        let inventor = Inventor::new(0, InventorBehavior::Honest);
        let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
        match inventor.advise(&spec) {
            Some(Advice::PureNash(cert)) => {
                assert_eq!(cert.profile, vec![1, 1].into());
            }
            other => panic!("unexpected advice {other:?}"),
        }
    }

    #[test]
    fn honest_declines_when_no_pure_equilibrium() {
        let inventor = Inventor::new(0, InventorBehavior::Honest);
        let spec = GameSpec::Strategic(matching_pennies().to_strategic());
        assert!(inventor.advise(&spec).is_none());
    }

    #[test]
    fn silent_inventor_says_nothing() {
        let inventor = Inventor::new(0, InventorBehavior::Silent);
        let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
        assert!(inventor.advise(&spec).is_none());
    }

    #[test]
    fn corrupt_advice_differs_from_honest() {
        let honest = Inventor::new(0, InventorBehavior::Honest);
        let corrupt = Inventor::new(1, InventorBehavior::Corrupt);
        let spec = GameSpec::Bimatrix(matching_pennies());
        let h = honest.advise(&spec).unwrap();
        let c = corrupt.advise(&spec).unwrap();
        assert_ne!(h, c);
        let spec = GameSpec::Participation(ParticipationParams::paper_example());
        assert_ne!(
            honest.advise(&spec).unwrap(),
            corrupt.advise(&spec).unwrap()
        );
    }
}
