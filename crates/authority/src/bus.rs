//! The synchronous in-memory bus — the canonical [`Transport`] backend.
//!
//! An in-process stand-in for the distributed deployment of Fig. 1:
//! parties register endpoints, messages are serialized to real bytes
//! (so Lemma 1's communication claims are measured), delivered through
//! unbounded channels, and logged. Fault injection (drop rules)
//! supports the dishonest-party experiments. Delivery is synchronous —
//! a sent frame is immediately visible to its destination endpoint —
//! so [`Transport::settle`] is a no-op here; the simulated lossy
//! alternative lives in [`crate::SimNet`].
//!
//! The steady-state send path takes no global lock. Routing state
//! (endpoints + drop rules) lives in a read-mostly [`Arc`] snapshot —
//! rebuilt on `register`/`disconnect`/`drop_link`/`heal`, cloned with one
//! short leaf lock per send, then consulted lock-free. Byte accounting
//! lives in the striped [`Ledger`](crate::transport) shared with every
//! other transport backend: running totals are atomics, and the
//! append-only delivery log plus the per-pair byte map are partitioned
//! across sender-keyed stripes so concurrent senders on different stripes
//! never contend. The accessors (`total_bytes`, `delivered_bytes`,
//! `bytes_between`, `delivery_log`, `message_count`) merge the stripes in
//! a deterministic order (a global sequence number stamped at accounting
//! time), so their results are observably identical to the old
//! single-lock ledger: on a quiescent bus every accessor is exact, and
//! under concurrency each accessor is individually consistent with some
//! linearization of the accounted sends.

use std::collections::{HashMap, HashSet};

use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};

use crate::messages::{Message, Party};
use crate::transport::{BusError, DeliveryRecord, Endpoint, Ledger, Transport};
use crate::wire::Wire;

/// The read-mostly routing snapshot: everything a send needs to decide
/// where a message goes. Rebuilt (clone + mutate + `Arc` swap) on the
/// rare topology operations; cloned out of its slot with one short leaf
/// lock per send, then read lock-free.
#[derive(Debug, Default)]
struct Routing {
    endpoints: HashMap<Party, Sender<(Party, Message)>>,
    /// Fault injection: `(from, to)` pairs whose messages are dropped.
    drop_rules: HashSet<(Party, Party)>,
}

/// The synchronous in-memory network.
///
/// # Examples
///
/// ```
/// use ra_authority::{Bus, Message, Party};
///
/// let bus = Bus::new();
/// let inventor = Party::Inventor(0);
/// let agent = Party::Agent(0);
/// bus.register(inventor);
/// let agent_ep = bus.register(agent);
/// bus.send(inventor, agent, Message::AdviceRequest { game_id: 1 }).unwrap();
/// let (from, msg) = agent_ep.try_recv().unwrap();
/// assert_eq!(from, inventor);
/// assert_eq!(msg, Message::AdviceRequest { game_id: 1 });
/// assert!(bus.total_bytes() > 0);
/// ```
#[derive(Debug, Default)]
pub struct Bus {
    /// Slot holding the current routing snapshot. The lock is held only
    /// long enough to clone the `Arc` (sends) or swap in a rebuilt
    /// snapshot (topology changes) — never across channel operations or
    /// accounting.
    routing: Mutex<Arc<Routing>>,
    /// The striped Lemma 1 ledger shared with every transport backend.
    ledger: Ledger,
}

impl Bus {
    /// Creates an empty bus.
    pub fn new() -> Bus {
        Bus::default()
    }

    /// Clones the current routing snapshot out of its slot: the only
    /// lock a steady-state send takes besides its sender's ledger stripe.
    fn routing_snapshot(&self) -> Arc<Routing> {
        Arc::clone(&self.routing.lock().expect("bus lock poisoned"))
    }

    /// Rebuilds the routing snapshot: clone the current one, apply
    /// `mutate`, swap the new `Arc` in. In-flight sends keep whatever
    /// snapshot they already cloned — stale but never torn, exactly the
    /// reputation-snapshot publication pattern.
    fn update_routing(&self, mutate: impl FnOnce(&mut Routing)) {
        let mut slot = self.routing.lock().expect("bus lock poisoned");
        let mut next = Routing {
            endpoints: slot.endpoints.clone(),
            drop_rules: slot.drop_rules.clone(),
        };
        mutate(&mut next);
        *slot = Arc::new(next);
    }

    /// Registers a party; returns its receiving endpoint. Re-registering
    /// replaces the old endpoint: the previous one stops receiving.
    pub fn register(&self, party: Party) -> Endpoint {
        let (tx, rx) = channel();
        self.update_routing(|r| {
            r.endpoints.insert(party, tx);
        });
        Endpoint {
            party,
            receiver: rx,
        }
    }

    /// Removes `party`'s registration. Later sends to it fail with
    /// [`BusError::UnknownParty`] (unaccounted, like any unknown
    /// destination) until it registers again; its existing [`Endpoint`]
    /// keeps any messages already queued. A no-op for unknown parties.
    pub fn disconnect(&self, party: Party) {
        self.update_routing(|r| {
            r.endpoints.remove(&party);
        });
    }

    /// Sends `message` from `from` to `to`, accounting its serialized size.
    ///
    /// Lock-free on the steady-state path: routing decisions read the
    /// current snapshot, and accounting touches only the sender's ledger
    /// stripe plus atomic counters.
    ///
    /// # Errors
    ///
    /// [`BusError::UnknownParty`] if `to` is not registered;
    /// [`BusError::Disconnected`] if `to`'s endpoint was dropped.
    pub fn send(&self, from: Party, to: Party, message: Message) -> Result<(), BusError> {
        let bytes = message.encoded_len();
        let retransmit = message.is_retransmit();
        let routing = self.routing_snapshot();
        let dropped = routing.drop_rules.contains(&(from, to));
        let result = if dropped {
            Ok(())
        } else {
            let tx = routing
                .endpoints
                .get(&to)
                .ok_or(BusError::UnknownParty(to))?;
            tx.send((from, message))
                .map_err(|_| BusError::Disconnected(to))
        };
        let delivered = !dropped && result.is_ok();
        self.ledger.account(from, to, bytes, delivered, retransmit);
        result
    }

    /// Sends every `(from, to, message)` in `batch` — draining it, so
    /// callers can reuse the buffer's allocation — resolving routing from
    /// one snapshot and holding each ledger stripe across runs of
    /// same-stripe senders (a verdict-request fan-out has one sender, so
    /// it locks its stripe exactly once).
    ///
    /// Accounting is byte-identical to the equivalent sequence of
    /// [`Bus::send`] calls: the same [`DeliveryRecord`]s in the same
    /// order, the same running total/delivered counters, and the same
    /// per-pair byte map. Every send is attempted (and accounted) even
    /// after an earlier one fails, which is also what a loop of individual
    /// `send` calls does; the first error is returned.
    ///
    /// # Errors
    ///
    /// [`BusError::UnknownParty`] / [`BusError::Disconnected`] for the
    /// first message in the batch that failed.
    pub fn send_batch(&self, batch: &mut Vec<(Party, Party, Message)>) -> Result<(), BusError> {
        if batch.is_empty() {
            return Ok(());
        }
        let mut first_error = Ok(());
        let routing = self.routing_snapshot();
        // The stripe guard is cached across consecutive same-stripe
        // senders; ledger stripes are leaf locks taken one at a time, so
        // this cannot deadlock against concurrent senders.
        let mut held = None;
        for (from, to, message) in batch.drain(..) {
            let bytes = message.encoded_len();
            let retransmit = message.is_retransmit();
            let dropped = routing.drop_rules.contains(&(from, to));
            let result = if dropped {
                Ok(())
            } else {
                match routing.endpoints.get(&to) {
                    None => {
                        // `send` short-circuits before any accounting on an
                        // unknown party; mirror that so the ledger stays
                        // byte-identical to N sequential sends.
                        if first_error.is_ok() {
                            first_error = Err(BusError::UnknownParty(to));
                        }
                        continue;
                    }
                    Some(tx) => tx
                        .send((from, message))
                        .map_err(|_| BusError::Disconnected(to)),
                }
            };
            let delivered = !dropped && result.is_ok();
            if first_error.is_ok() {
                if let Err(e) = result {
                    first_error = Err(e);
                }
            }
            self.ledger
                .account_cached(&mut held, from, to, bytes, delivered, retransmit);
        }
        first_error
    }

    /// Injects a drop rule: all messages `from → to` are silently dropped.
    pub fn drop_link(&self, from: Party, to: Party) {
        self.update_routing(|r| {
            r.drop_rules.insert((from, to));
        });
    }

    /// Removes all drop rules.
    pub fn heal(&self) {
        self.update_routing(|r| r.drop_rules.clear());
    }

    /// Total bytes put on the wire (delivered or not). O(1), lock-free.
    pub fn total_bytes(&self) -> usize {
        self.ledger.total_bytes()
    }

    /// Bytes of messages that actually reached their endpoint — attempts
    /// dropped by fault injection or failed sends (undelivered per
    /// [`DeliveryRecord::delivered`]) are excluded. This is the figure
    /// Lemma 1 tables should cite for *communicated* bits; `total_bytes`
    /// additionally counts wasted attempts. O(1), lock-free.
    pub fn delivered_bytes(&self) -> usize {
        self.ledger.delivered_bytes()
    }

    /// Bytes sent from `from` to `to`. O(1): per-pair sums live on the
    /// sender's stripe, so this locks exactly one stripe.
    pub fn bytes_between(&self, from: Party, to: Party) -> usize {
        self.ledger.bytes_between(from, to)
    }

    /// A copy of the full delivery log, merged across stripes back into
    /// global send order (each record carries the sequence number stamped
    /// when it was accounted, so the merge is deterministic).
    pub fn delivery_log(&self) -> Vec<DeliveryRecord> {
        self.ledger.delivery_log()
    }

    /// Number of messages sent (delivered or dropped). O(1), lock-free.
    pub fn message_count(&self) -> usize {
        self.ledger.message_count()
    }

    /// Bytes attributable to protocol retransmissions (resilient
    /// envelopes with `attempt > 0`). O(1), lock-free.
    pub fn retransmit_bytes(&self) -> usize {
        self.ledger.retransmit_bytes()
    }

    /// First-attempt protocol bytes: `total_bytes - retransmit_bytes`.
    /// O(1), lock-free.
    pub fn goodput_bytes(&self) -> usize {
        self.ledger.total_bytes() - self.ledger.retransmit_bytes()
    }
}

/// The canonical backend: every trait method delegates to the inherent
/// one, and [`Transport::settle`] is free because delivery is synchronous.
impl Transport for Bus {
    fn register(&self, party: Party) -> Endpoint {
        Bus::register(self, party)
    }

    fn disconnect(&self, party: Party) {
        Bus::disconnect(self, party);
    }

    fn send(&self, from: Party, to: Party, message: Message) -> Result<(), BusError> {
        Bus::send(self, from, to, message)
    }

    fn send_batch(&self, batch: &mut Vec<(Party, Party, Message)>) -> Result<(), BusError> {
        Bus::send_batch(self, batch)
    }

    fn drop_link(&self, from: Party, to: Party) {
        Bus::drop_link(self, from, to);
    }

    fn heal(&self) {
        Bus::heal(self);
    }

    fn settle(&self) {}

    fn total_bytes(&self) -> usize {
        Bus::total_bytes(self)
    }

    fn delivered_bytes(&self) -> usize {
        Bus::delivered_bytes(self)
    }

    fn bytes_between(&self, from: Party, to: Party) -> usize {
        Bus::bytes_between(self, from, to)
    }

    fn delivery_log(&self) -> Vec<DeliveryRecord> {
        Bus::delivery_log(self)
    }

    fn message_count(&self) -> usize {
        Bus::message_count(self)
    }

    fn retransmit_bytes(&self) -> usize {
        Bus::retransmit_bytes(self)
    }

    fn goodput_bytes(&self) -> usize {
        Bus::goodput_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_and_accounting() {
        let bus = Bus::new();
        let a = Party::Agent(1);
        let b = Party::Agent(2);
        bus.register(a);
        let ep_b = bus.register(b);
        bus.send(a, b, Message::AdviceRequest { game_id: 7 })
            .unwrap();
        bus.send(a, b, Message::AdviceRequest { game_id: 8 })
            .unwrap();
        let drained = ep_b.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(bus.message_count(), 2);
        assert_eq!(bus.total_bytes(), bus.bytes_between(a, b));
        assert!(bus.total_bytes() >= 4);
    }

    #[test]
    fn counters_agree_with_log_scan() {
        // The running aggregates must stay consistent with what a full
        // scan of the delivery log would compute (the pre-refactor
        // semantics), including dropped messages and unknown parties.
        let bus = Bus::new();
        let a = Party::Agent(1);
        let b = Party::Agent(2);
        let c = Party::Verifier(3);
        let _ep_a = bus.register(a);
        let _ep_b = bus.register(b);
        let _ep_c = bus.register(c);
        bus.drop_link(a, c);
        bus.send(a, b, Message::AdviceRequest { game_id: 1 })
            .unwrap();
        bus.send(a, c, Message::AdviceRequest { game_id: 2 })
            .unwrap();
        bus.send(b, a, Message::AdviceRequest { game_id: 3 })
            .unwrap();
        let _ = bus.send(a, Party::Agent(99), Message::AdviceRequest { game_id: 4 });
        let log = bus.delivery_log();
        assert_eq!(bus.message_count(), log.len());
        assert_eq!(
            bus.total_bytes(),
            log.iter().map(|r| r.bytes).sum::<usize>()
        );
        for (from, to) in [(a, b), (a, c), (b, a), (b, c)] {
            assert_eq!(
                bus.bytes_between(from, to),
                log.iter()
                    .filter(|r| r.from == from && r.to == to)
                    .map(|r| r.bytes)
                    .sum::<usize>()
            );
        }
    }

    #[test]
    fn delivered_bytes_excludes_drops_and_failures() {
        // PR 2 made failed sends record as undelivered; delivered_bytes
        // must exclude those and fault-injected drops, while total_bytes
        // keeps counting every attempt.
        let bus = Bus::new();
        let a = Party::Agent(1);
        let b = Party::Agent(2);
        let c = Party::Verifier(3);
        bus.register(a);
        let _ep_b = bus.register(b);
        let ep_c = bus.register(c);
        drop(ep_c);
        bus.drop_link(a, b);
        bus.send(a, b, Message::AdviceRequest { game_id: 1 })
            .unwrap(); // dropped by fault injection
        let _ = bus.send(a, c, Message::AdviceRequest { game_id: 2 }); // disconnected
        let _ = bus.send(a, Party::Agent(99), Message::AdviceRequest { game_id: 3 }); // unknown
        assert_eq!(bus.delivered_bytes(), 0);
        assert!(bus.total_bytes() > 0);
        bus.heal();
        bus.send(a, b, Message::AdviceRequest { game_id: 4 })
            .unwrap();
        let log = bus.delivery_log();
        assert_eq!(
            bus.delivered_bytes(),
            log.iter()
                .filter(|r| r.delivered)
                .map(|r| r.bytes)
                .sum::<usize>(),
            "running delivered counter matches a log scan"
        );
        assert!(bus.delivered_bytes() < bus.total_bytes());
    }

    /// The traffic mix the batch/sequential equivalence tests replay:
    /// clean deliveries, a fault-injected drop, an unknown destination and
    /// a disconnected endpoint, across several pairs.
    fn adversarial_traffic() -> Vec<(Party, Party, Message)> {
        let a = Party::Agent(1);
        let b = Party::Agent(2);
        let c = Party::Verifier(3);
        vec![
            (a, b, Message::AdviceRequest { game_id: 1 }),
            (a, c, Message::AdviceRequest { game_id: 2 }), // dropped link
            (b, a, Message::AdviceRequest { game_id: 3 }),
            (a, Party::Agent(99), Message::AdviceRequest { game_id: 4 }), // unknown
            (b, c, Message::AdviceRequest { game_id: 5 }),                // disconnected
            (a, b, Message::AdviceRequest { game_id: 6 }),
        ]
    }

    /// Builds a bus with the fixture topology for `adversarial_traffic`:
    /// a↔b live, a→c fault-dropped, c's endpoint dropped (disconnected).
    fn adversarial_bus() -> (Bus, Endpoint, Endpoint) {
        let bus = Bus::new();
        let ep_a = bus.register(Party::Agent(1));
        let ep_b = bus.register(Party::Agent(2));
        let ep_c = bus.register(Party::Verifier(3));
        drop(ep_c);
        bus.drop_link(Party::Agent(1), Party::Verifier(3));
        (bus, ep_a, ep_b)
    }

    #[test]
    fn send_batch_accounting_matches_sequential_sends() {
        // The tentpole contract: one send_batch produces byte-identical
        // DeliveryRecords, counters and per-pair sums to N sequential
        // sends of the same messages — including drop rules, unknown
        // parties and disconnected endpoints.
        let (batched, batched_a, batched_b) = adversarial_bus();
        let (sequential, seq_a, seq_b) = adversarial_bus();
        let mut batch = adversarial_traffic();
        let first_batch_error = batched.send_batch(&mut batch);
        assert!(batch.is_empty(), "the batch buffer is drained for reuse");
        let mut first_seq_error = Ok(());
        for (from, to, message) in adversarial_traffic() {
            let result = sequential.send(from, to, message);
            if first_seq_error.is_ok() {
                first_seq_error = result;
            }
        }
        assert_eq!(first_batch_error, first_seq_error);
        assert_eq!(batched.delivery_log(), sequential.delivery_log());
        assert_eq!(batched.total_bytes(), sequential.total_bytes());
        assert_eq!(batched.delivered_bytes(), sequential.delivered_bytes());
        assert_eq!(batched.message_count(), sequential.message_count());
        for from in [Party::Agent(1), Party::Agent(2)] {
            for to in [Party::Agent(1), Party::Agent(2), Party::Verifier(3)] {
                assert_eq!(
                    batched.bytes_between(from, to),
                    sequential.bytes_between(from, to),
                    "{from} -> {to}"
                );
            }
        }
        // Delivery itself matches too: the same messages reach the same
        // endpoints in the same order.
        assert_eq!(batched_a.drain(), seq_a.drain());
        assert_eq!(batched_b.drain(), seq_b.drain());
    }

    #[test]
    fn send_batch_attempts_everything_after_a_failure() {
        let (bus, _ep_a, ep_b) = adversarial_bus();
        let mut batch = vec![
            (
                Party::Agent(1),
                Party::Agent(99),
                Message::AdviceRequest { game_id: 1 },
            ),
            (
                Party::Agent(1),
                Party::Agent(2),
                Message::AdviceRequest { game_id: 2 },
            ),
        ];
        assert_eq!(
            bus.send_batch(&mut batch),
            Err(BusError::UnknownParty(Party::Agent(99))),
            "the first failure is reported"
        );
        assert_eq!(
            bus.message_count(),
            1,
            "the unknown-party send is unaccounted, exactly like `send`"
        );
        let delivered = ep_b.drain();
        assert_eq!(delivered.len(), 1, "the later message still delivered");
        assert_eq!(delivered[0].1, Message::AdviceRequest { game_id: 2 });
    }

    #[test]
    fn empty_batch_is_free() {
        let bus = Bus::new();
        assert_eq!(bus.send_batch(&mut Vec::new()), Ok(()));
        assert_eq!(bus.message_count(), 0);
        assert_eq!(bus.total_bytes(), 0);
    }

    #[test]
    fn drain_into_reuses_the_buffer() {
        let bus = Bus::new();
        let a = Party::Agent(1);
        let b = Party::Agent(2);
        bus.register(a);
        let ep_b = bus.register(b);
        let mut buf = Vec::new();
        bus.send(a, b, Message::AdviceRequest { game_id: 1 })
            .unwrap();
        bus.send(a, b, Message::AdviceRequest { game_id: 2 })
            .unwrap();
        assert_eq!(ep_b.drain_into(&mut buf), 2);
        assert_eq!(buf.len(), 2);
        // Appends without clearing: callers own the clear, which is what
        // lets one buffer live across a whole receive loop.
        bus.send(a, b, Message::AdviceRequest { game_id: 3 })
            .unwrap();
        assert_eq!(ep_b.drain_into(&mut buf), 1);
        assert_eq!(buf.len(), 3);
        let capacity = buf.capacity();
        buf.clear();
        bus.send(a, b, Message::AdviceRequest { game_id: 4 })
            .unwrap();
        assert_eq!(ep_b.drain_into(&mut buf), 1);
        assert_eq!(buf.capacity(), capacity, "no reallocation on reuse");
    }

    #[test]
    fn unknown_party_rejected() {
        let bus = Bus::new();
        let a = Party::Agent(1);
        bus.register(a);
        assert_eq!(
            bus.send(a, Party::Verifier(9), Message::AdviceRequest { game_id: 1 }),
            Err(BusError::UnknownParty(Party::Verifier(9)))
        );
    }

    #[test]
    fn disconnected_endpoint_reported() {
        let bus = Bus::new();
        let a = Party::Agent(1);
        let b = Party::Agent(2);
        bus.register(a);
        let ep_b = bus.register(b);
        drop(ep_b);
        assert_eq!(
            bus.send(a, b, Message::AdviceRequest { game_id: 1 }),
            Err(BusError::Disconnected(b))
        );
        // The failed attempt is still accounted in the audit log, and is
        // recorded as undelivered.
        assert_eq!(bus.message_count(), 1);
        assert!(bus.bytes_between(a, b) > 0);
        assert!(!bus.delivery_log()[0].delivered);
    }

    #[test]
    fn disconnect_unregisters_the_party() {
        // `disconnect` removes the registration outright: later sends see
        // UnknownParty (unaccounted), unlike a dropped Endpoint whose
        // failed sends are accounted as undelivered. Re-registering
        // restores delivery.
        let bus = Bus::new();
        let a = Party::Agent(1);
        let b = Party::Agent(2);
        bus.register(a);
        let ep_b = bus.register(b);
        bus.send(a, b, Message::AdviceRequest { game_id: 1 })
            .unwrap();
        bus.disconnect(b);
        assert_eq!(
            bus.send(a, b, Message::AdviceRequest { game_id: 2 }),
            Err(BusError::UnknownParty(b))
        );
        assert_eq!(bus.message_count(), 1, "unknown-party send unaccounted");
        // The pre-disconnect message is still queued on the old endpoint.
        assert_eq!(ep_b.drain().len(), 1);
        let ep_b2 = bus.register(b);
        bus.send(a, b, Message::AdviceRequest { game_id: 3 })
            .unwrap();
        assert_eq!(ep_b2.drain().len(), 1);
        assert_eq!(bus.message_count(), 2);
        // Disconnecting a never-registered party is a no-op.
        bus.disconnect(Party::Verifier(42));
    }

    #[test]
    fn reregistration_replaces_old_endpoint() {
        let bus = Bus::new();
        let a = Party::Agent(1);
        let b = Party::Agent(2);
        bus.register(a);
        let old_ep = bus.register(b);
        let new_ep = bus.register(b);
        bus.send(a, b, Message::AdviceRequest { game_id: 5 })
            .unwrap();
        // The replaced endpoint receives nothing; the new one receives.
        assert!(old_ep.try_recv().is_none());
        let (from, msg) = new_ep.try_recv().unwrap();
        assert_eq!(from, a);
        assert_eq!(msg, Message::AdviceRequest { game_id: 5 });
        // Dropping the *old* endpoint must not disconnect the party.
        drop(old_ep);
        bus.send(a, b, Message::AdviceRequest { game_id: 6 })
            .unwrap();
        assert!(new_ep.try_recv().is_some());
    }

    #[test]
    fn fault_injection_drops_silently() {
        let bus = Bus::new();
        let a = Party::Agent(1);
        let b = Party::Agent(2);
        bus.register(a);
        let ep_b = bus.register(b);
        bus.drop_link(a, b);
        // Duplicate rules are idempotent (set semantics) and heal() still
        // clears everything.
        bus.drop_link(a, b);
        bus.send(a, b, Message::AdviceRequest { game_id: 1 })
            .unwrap();
        assert!(ep_b.try_recv().is_none());
        let log = bus.delivery_log();
        assert_eq!(log.len(), 1);
        assert!(!log[0].delivered);
        bus.heal();
        bus.send(a, b, Message::AdviceRequest { game_id: 2 })
            .unwrap();
        assert!(ep_b.try_recv().is_some());
    }

    #[test]
    fn stress_merged_ledger_accounts_every_thread() {
        // 8 threads hammer `send` and `send_batch` against an always-live
        // hub while a flaky party is concurrently disconnected and
        // re-registered. Each thread classifies its own attempts by the
        // returned result — Ok and Disconnected are accounted (the latter
        // undelivered), UnknownParty is not — and the merged striped
        // ledger must equal the per-thread sums exactly.
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        const THREADS: u64 = 8;
        const ROUNDS: u64 = 60;
        let bus = Arc::new(Bus::new());
        let hub = Party::Verifier(0);
        let flaky = Party::Verifier(1);
        let hub_ep = bus.register(hub);
        let _flaky_ep = bus.register(flaky);

        let stop = Arc::new(AtomicBool::new(false));
        let toggler = {
            let bus = Arc::clone(&bus);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                // Keep re-registered endpoints alive so sends that land
                // between register and the next disconnect deliver; the
                // windows in between yield UnknownParty errors.
                let mut keep = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    bus.disconnect(flaky);
                    keep.push(bus.register(flaky));
                    std::thread::yield_now();
                }
                keep
            })
        };

        struct Tally {
            accounted_msgs: usize,
            accounted_bytes: usize,
            delivered_msgs: usize,
            delivered_bytes: usize,
            hub_msgs: usize,
        }
        let mut workers = Vec::new();
        for i in 0..THREADS {
            let bus = Arc::clone(&bus);
            workers.push(std::thread::spawn(move || {
                let me = Party::Agent(i);
                bus.register(me);
                let mut tally = Tally {
                    accounted_msgs: 0,
                    accounted_bytes: 0,
                    delivered_msgs: 0,
                    delivered_bytes: 0,
                    hub_msgs: 0,
                };
                let mut batch = Vec::new();
                for g in 0..ROUNDS {
                    let msg = Message::AdviceRequest { game_id: g };
                    let bytes = msg.encoded_len();
                    match g % 3 {
                        // Single sends to the hub always deliver.
                        0 => {
                            bus.send(me, hub, msg).unwrap();
                            tally.accounted_msgs += 1;
                            tally.accounted_bytes += bytes;
                            tally.delivered_msgs += 1;
                            tally.delivered_bytes += bytes;
                            tally.hub_msgs += 1;
                        }
                        // Batched fan-out to the hub: 3 frames, 1 stripe.
                        1 => {
                            batch.clear();
                            for _ in 0..3 {
                                batch.push((me, hub, msg.clone()));
                            }
                            bus.send_batch(&mut batch).unwrap();
                            tally.accounted_msgs += 3;
                            tally.accounted_bytes += 3 * bytes;
                            tally.delivered_msgs += 3;
                            tally.delivered_bytes += 3 * bytes;
                            tally.hub_msgs += 3;
                        }
                        // Sends racing the disconnect/re-register toggler:
                        // classify by result.
                        _ => match bus.send(me, flaky, msg) {
                            Ok(()) => {
                                tally.accounted_msgs += 1;
                                tally.accounted_bytes += bytes;
                                tally.delivered_msgs += 1;
                                tally.delivered_bytes += bytes;
                            }
                            Err(BusError::Disconnected(_)) => {
                                tally.accounted_msgs += 1;
                                tally.accounted_bytes += bytes;
                            }
                            Err(BusError::UnknownParty(_)) => {}
                        },
                    }
                }
                tally
            }));
        }
        let tallies: Vec<Tally> = workers.into_iter().map(|h| h.join().unwrap()).collect();
        stop.store(true, Ordering::Relaxed);
        let _keepalive = toggler.join().unwrap();

        let accounted_msgs: usize = tallies.iter().map(|t| t.accounted_msgs).sum();
        let accounted_bytes: usize = tallies.iter().map(|t| t.accounted_bytes).sum();
        let delivered_msgs: usize = tallies.iter().map(|t| t.delivered_msgs).sum();
        let delivered_bytes: usize = tallies.iter().map(|t| t.delivered_bytes).sum();
        let hub_msgs: usize = tallies.iter().map(|t| t.hub_msgs).sum();

        assert_eq!(bus.message_count(), accounted_msgs);
        assert_eq!(bus.total_bytes(), accounted_bytes);
        assert_eq!(bus.delivered_bytes(), delivered_bytes);
        let log = bus.delivery_log();
        assert_eq!(log.len(), accounted_msgs);
        assert_eq!(
            log.iter().filter(|r| r.delivered).count(),
            delivered_msgs,
            "delivery log length matches the delivered count"
        );
        assert_eq!(
            log.iter().map(|r| r.bytes).sum::<usize>(),
            accounted_bytes,
            "merged log bytes equal the sum of per-thread sent bytes"
        );
        assert_eq!(hub_ep.drain().len(), hub_msgs);
        // Per-pair sums survive the merge too.
        for i in 0..THREADS {
            let me = Party::Agent(i);
            assert_eq!(
                bus.bytes_between(me, hub),
                log.iter()
                    .filter(|r| r.from == me && r.to == hub)
                    .map(|r| r.bytes)
                    .sum::<usize>()
            );
        }
    }

    #[test]
    fn concurrent_senders() {
        use std::sync::Arc;
        let bus = Arc::new(Bus::new());
        let hub = Party::Verifier(0);
        let ep = bus.register(hub);
        let mut handles = Vec::new();
        for i in 0..8u64 {
            let bus = Arc::clone(&bus);
            handles.push(std::thread::spawn(move || {
                let me = Party::Agent(i);
                bus.register(me);
                for g in 0..50 {
                    bus.send(me, hub, Message::AdviceRequest { game_id: g })
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ep.drain().len(), 400);
        assert_eq!(bus.message_count(), 400);
    }
}
