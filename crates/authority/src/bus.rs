//! The simulated network bus.
//!
//! An in-process stand-in for the distributed deployment of Fig. 1:
//! parties register endpoints, messages are serialized to real bytes
//! (so Lemma 1's communication claims are measured), delivered through
//! unbounded channels, and logged centrally. Fault injection (drop rules)
//! supports the dishonest-party experiments.

use std::collections::HashMap;

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Mutex;

use crate::messages::{Message, Party};
use crate::wire::Wire;

/// A delivery record for the audit log and byte accounting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeliveryRecord {
    /// Sender.
    pub from: Party,
    /// Recipient.
    pub to: Party,
    /// Serialized size in bytes.
    pub bytes: usize,
    /// Whether the message was actually delivered (or dropped by fault
    /// injection).
    pub delivered: bool,
}

/// Errors from bus operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BusError {
    /// The destination party has no registered endpoint.
    UnknownParty(Party),
    /// The destination endpoint was dropped.
    Disconnected(Party),
}

impl std::fmt::Display for BusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BusError::UnknownParty(p) => write!(f, "no endpoint registered for {p}"),
            BusError::Disconnected(p) => write!(f, "endpoint for {p} disconnected"),
        }
    }
}

impl std::error::Error for BusError {}

/// A receiving endpoint handed to a registered party.
#[derive(Debug)]
pub struct Endpoint {
    /// The party this endpoint belongs to.
    pub party: Party,
    receiver: Receiver<(Party, Message)>,
}

impl Endpoint {
    /// Receives the next message if one is queued: `(sender, message)`.
    pub fn try_recv(&self) -> Option<(Party, Message)> {
        self.receiver.try_recv().ok()
    }

    /// Drains all queued messages.
    pub fn drain(&self) -> Vec<(Party, Message)> {
        let mut out = Vec::new();
        while let Some(m) = self.try_recv() {
            out.push(m);
        }
        out
    }
}

/// The simulated network.
///
/// # Examples
///
/// ```
/// use ra_authority::{Bus, Message, Party};
///
/// let bus = Bus::new();
/// let inventor = Party::Inventor(0);
/// let agent = Party::Agent(0);
/// bus.register(inventor);
/// let agent_ep = bus.register(agent);
/// bus.send(inventor, agent, Message::AdviceRequest { game_id: 1 }).unwrap();
/// let (from, msg) = agent_ep.try_recv().unwrap();
/// assert_eq!(from, inventor);
/// assert_eq!(msg, Message::AdviceRequest { game_id: 1 });
/// assert!(bus.total_bytes() > 0);
/// ```
#[derive(Default)]
pub struct Bus {
    endpoints: Mutex<HashMap<Party, Sender<(Party, Message)>>>,
    log: Mutex<Vec<DeliveryRecord>>,
    /// Fault injection: `(from, to)` pairs whose messages are dropped.
    drop_rules: Mutex<Vec<(Party, Party)>>,
}

impl Bus {
    /// Creates an empty bus.
    pub fn new() -> Bus {
        Bus::default()
    }

    /// Registers a party; returns its receiving endpoint. Re-registering
    /// replaces the old endpoint.
    pub fn register(&self, party: Party) -> Endpoint {
        let (tx, rx) = channel();
        self.endpoints
            .lock()
            .expect("bus lock poisoned")
            .insert(party, tx);
        Endpoint {
            party,
            receiver: rx,
        }
    }

    /// Sends `message` from `from` to `to`, accounting its serialized size.
    ///
    /// # Errors
    ///
    /// [`BusError::UnknownParty`] if `to` is not registered.
    pub fn send(&self, from: Party, to: Party, message: Message) -> Result<(), BusError> {
        let bytes = message.encoded_len();
        let dropped = self
            .drop_rules
            .lock()
            .expect("bus lock poisoned")
            .iter()
            .any(|&(f, t)| f == from && t == to);
        let result = if dropped {
            Ok(())
        } else {
            let endpoints = self.endpoints.lock().expect("bus lock poisoned");
            let tx = endpoints.get(&to).ok_or(BusError::UnknownParty(to))?;
            tx.send((from, message))
                .map_err(|_| BusError::Disconnected(to))
        };
        self.log
            .lock()
            .expect("bus lock poisoned")
            .push(DeliveryRecord {
                from,
                to,
                bytes,
                delivered: !dropped,
            });
        result
    }

    /// Injects a drop rule: all messages `from → to` are silently dropped.
    pub fn drop_link(&self, from: Party, to: Party) {
        self.drop_rules
            .lock()
            .expect("bus lock poisoned")
            .push((from, to));
    }

    /// Removes all drop rules.
    pub fn heal(&self) {
        self.drop_rules.lock().expect("bus lock poisoned").clear();
    }

    /// Total bytes put on the wire (delivered or not).
    pub fn total_bytes(&self) -> usize {
        self.log
            .lock()
            .expect("bus lock poisoned")
            .iter()
            .map(|r| r.bytes)
            .sum()
    }

    /// Bytes sent from `from` to `to`.
    pub fn bytes_between(&self, from: Party, to: Party) -> usize {
        self.log
            .lock()
            .expect("bus lock poisoned")
            .iter()
            .filter(|r| r.from == from && r.to == to)
            .map(|r| r.bytes)
            .sum()
    }

    /// A copy of the full delivery log.
    pub fn delivery_log(&self) -> Vec<DeliveryRecord> {
        self.log.lock().expect("bus lock poisoned").clone()
    }

    /// Number of messages sent (delivered or dropped).
    pub fn message_count(&self) -> usize {
        self.log.lock().expect("bus lock poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_and_accounting() {
        let bus = Bus::new();
        let a = Party::Agent(1);
        let b = Party::Agent(2);
        bus.register(a);
        let ep_b = bus.register(b);
        bus.send(a, b, Message::AdviceRequest { game_id: 7 })
            .unwrap();
        bus.send(a, b, Message::AdviceRequest { game_id: 8 })
            .unwrap();
        let drained = ep_b.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(bus.message_count(), 2);
        assert_eq!(bus.total_bytes(), bus.bytes_between(a, b));
        assert!(bus.total_bytes() >= 4);
    }

    #[test]
    fn unknown_party_rejected() {
        let bus = Bus::new();
        let a = Party::Agent(1);
        bus.register(a);
        assert_eq!(
            bus.send(a, Party::Verifier(9), Message::AdviceRequest { game_id: 1 }),
            Err(BusError::UnknownParty(Party::Verifier(9)))
        );
    }

    #[test]
    fn fault_injection_drops_silently() {
        let bus = Bus::new();
        let a = Party::Agent(1);
        let b = Party::Agent(2);
        bus.register(a);
        let ep_b = bus.register(b);
        bus.drop_link(a, b);
        bus.send(a, b, Message::AdviceRequest { game_id: 1 })
            .unwrap();
        assert!(ep_b.try_recv().is_none());
        let log = bus.delivery_log();
        assert_eq!(log.len(), 1);
        assert!(!log[0].delivered);
        bus.heal();
        bus.send(a, b, Message::AdviceRequest { game_id: 2 })
            .unwrap();
        assert!(ep_b.try_recv().is_some());
    }

    #[test]
    fn concurrent_senders() {
        use std::sync::Arc;
        let bus = Arc::new(Bus::new());
        let hub = Party::Verifier(0);
        let ep = bus.register(hub);
        let mut handles = Vec::new();
        for i in 0..8u64 {
            let bus = Arc::clone(&bus);
            handles.push(std::thread::spawn(move || {
                let me = Party::Agent(i);
                bus.register(me);
                for g in 0..50 {
                    bus.send(me, hub, Message::AdviceRequest { game_id: g })
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ep.drain().len(), 400);
        assert_eq!(bus.message_count(), 400);
    }
}
