//! The simulated network bus.
//!
//! An in-process stand-in for the distributed deployment of Fig. 1:
//! parties register endpoints, messages are serialized to real bytes
//! (so Lemma 1's communication claims are measured), delivered through
//! unbounded channels, and logged centrally. Fault injection (drop rules)
//! supports the dishonest-party experiments.
//!
//! Accounting queries (`total_bytes`, `message_count`, `bytes_between`)
//! are O(1): the bus maintains running counters and a per-pair byte map
//! alongside the append-only delivery log, instead of re-scanning the log
//! on every query. The full log stays available via [`Bus::delivery_log`].

use std::collections::{HashMap, HashSet};

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Mutex;

use crate::messages::{Message, Party};
use crate::wire::Wire;

/// A delivery record for the audit log and byte accounting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeliveryRecord {
    /// Sender.
    pub from: Party,
    /// Recipient.
    pub to: Party,
    /// Serialized size in bytes.
    pub bytes: usize,
    /// Whether the message was actually delivered (or dropped by fault
    /// injection).
    pub delivered: bool,
}

/// Errors from bus operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BusError {
    /// The destination party has no registered endpoint.
    UnknownParty(Party),
    /// The destination endpoint was dropped.
    Disconnected(Party),
}

impl std::fmt::Display for BusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BusError::UnknownParty(p) => write!(f, "no endpoint registered for {p}"),
            BusError::Disconnected(p) => write!(f, "endpoint for {p} disconnected"),
        }
    }
}

impl std::error::Error for BusError {}

/// A receiving endpoint handed to a registered party.
#[derive(Debug)]
pub struct Endpoint {
    /// The party this endpoint belongs to.
    pub party: Party,
    receiver: Receiver<(Party, Message)>,
}

impl Endpoint {
    /// Receives the next message if one is queued: `(sender, message)`.
    pub fn try_recv(&self) -> Option<(Party, Message)> {
        self.receiver.try_recv().ok()
    }

    /// Drains all queued messages.
    pub fn drain(&self) -> Vec<(Party, Message)> {
        let mut out = Vec::new();
        self.drain_into(&mut out);
        out
    }

    /// Drains all queued messages, appending them to `out`; returns how
    /// many were appended. Receive loops that run per consultation reuse
    /// one buffer across calls instead of allocating a fresh `Vec` per
    /// drain — the [`crate::SessionDriver`] hot path does exactly that.
    pub fn drain_into(&self, out: &mut Vec<(Party, Message)>) -> usize {
        let before = out.len();
        while let Some(m) = self.try_recv() {
            out.push(m);
        }
        out.len() - before
    }
}

/// The append-only audit log plus its running aggregates, kept consistent
/// under one lock.
#[derive(Debug, Default)]
struct Ledger {
    records: Vec<DeliveryRecord>,
    total_bytes: usize,
    delivered_bytes: usize,
    pair_bytes: HashMap<(Party, Party), usize>,
}

/// The simulated network.
///
/// # Examples
///
/// ```
/// use ra_authority::{Bus, Message, Party};
///
/// let bus = Bus::new();
/// let inventor = Party::Inventor(0);
/// let agent = Party::Agent(0);
/// bus.register(inventor);
/// let agent_ep = bus.register(agent);
/// bus.send(inventor, agent, Message::AdviceRequest { game_id: 1 }).unwrap();
/// let (from, msg) = agent_ep.try_recv().unwrap();
/// assert_eq!(from, inventor);
/// assert_eq!(msg, Message::AdviceRequest { game_id: 1 });
/// assert!(bus.total_bytes() > 0);
/// ```
#[derive(Debug, Default)]
pub struct Bus {
    endpoints: Mutex<HashMap<Party, Sender<(Party, Message)>>>,
    ledger: Mutex<Ledger>,
    /// Fault injection: `(from, to)` pairs whose messages are dropped.
    drop_rules: Mutex<HashSet<(Party, Party)>>,
}

impl Bus {
    /// Creates an empty bus.
    pub fn new() -> Bus {
        Bus::default()
    }

    /// Registers a party; returns its receiving endpoint. Re-registering
    /// replaces the old endpoint: the previous one stops receiving.
    pub fn register(&self, party: Party) -> Endpoint {
        let (tx, rx) = channel();
        self.endpoints
            .lock()
            .expect("bus lock poisoned")
            .insert(party, tx);
        Endpoint {
            party,
            receiver: rx,
        }
    }

    /// Sends `message` from `from` to `to`, accounting its serialized size.
    ///
    /// # Errors
    ///
    /// [`BusError::UnknownParty`] if `to` is not registered;
    /// [`BusError::Disconnected`] if `to`'s endpoint was dropped.
    pub fn send(&self, from: Party, to: Party, message: Message) -> Result<(), BusError> {
        let bytes = message.encoded_len();
        let dropped = self
            .drop_rules
            .lock()
            .expect("bus lock poisoned")
            .contains(&(from, to));
        let result = if dropped {
            Ok(())
        } else {
            let endpoints = self.endpoints.lock().expect("bus lock poisoned");
            let tx = endpoints.get(&to).ok_or(BusError::UnknownParty(to))?;
            tx.send((from, message))
                .map_err(|_| BusError::Disconnected(to))
        };
        let delivered = !dropped && result.is_ok();
        let mut ledger = self.ledger.lock().expect("bus lock poisoned");
        ledger.total_bytes += bytes;
        if delivered {
            ledger.delivered_bytes += bytes;
        }
        *ledger.pair_bytes.entry((from, to)).or_insert(0) += bytes;
        ledger.records.push(DeliveryRecord {
            from,
            to,
            bytes,
            delivered,
        });
        result
    }

    /// Sends every `(from, to, message)` in `batch` — draining it, so
    /// callers can reuse the buffer's allocation — taking each bus lock
    /// once per call instead of once per message.
    ///
    /// Accounting is byte-identical to the equivalent sequence of
    /// [`Bus::send`] calls: the same [`DeliveryRecord`]s in the same
    /// order, the same running total/delivered counters, and the same
    /// per-pair byte map, all updated in one critical section. Every send
    /// is attempted (and accounted) even after an earlier one fails, which
    /// is also what a loop of individual `send` calls does; the first
    /// error is returned.
    ///
    /// # Errors
    ///
    /// [`BusError::UnknownParty`] / [`BusError::Disconnected`] for the
    /// first message in the batch that failed.
    pub fn send_batch(&self, batch: &mut Vec<(Party, Party, Message)>) -> Result<(), BusError> {
        if batch.is_empty() {
            return Ok(());
        }
        let mut first_error = Ok(());
        // Lock order matches the (non-overlapping) acquisition order of
        // `send`; all three are leaf locks, so holding them together for
        // the chunk cannot deadlock.
        let drop_rules = self.drop_rules.lock().expect("bus lock poisoned");
        let endpoints = self.endpoints.lock().expect("bus lock poisoned");
        let mut ledger = self.ledger.lock().expect("bus lock poisoned");
        ledger.records.reserve(batch.len());
        for (from, to, message) in batch.drain(..) {
            let bytes = message.encoded_len();
            let dropped = drop_rules.contains(&(from, to));
            let result = if dropped {
                Ok(())
            } else {
                match endpoints.get(&to) {
                    None => {
                        // `send` short-circuits before any accounting on an
                        // unknown party; mirror that so the ledger stays
                        // byte-identical to N sequential sends.
                        if first_error.is_ok() {
                            first_error = Err(BusError::UnknownParty(to));
                        }
                        continue;
                    }
                    Some(tx) => tx
                        .send((from, message))
                        .map_err(|_| BusError::Disconnected(to)),
                }
            };
            let delivered = !dropped && result.is_ok();
            if first_error.is_ok() {
                if let Err(e) = result {
                    first_error = Err(e);
                }
            }
            ledger.total_bytes += bytes;
            if delivered {
                ledger.delivered_bytes += bytes;
            }
            *ledger.pair_bytes.entry((from, to)).or_insert(0) += bytes;
            ledger.records.push(DeliveryRecord {
                from,
                to,
                bytes,
                delivered,
            });
        }
        first_error
    }

    /// Injects a drop rule: all messages `from → to` are silently dropped.
    pub fn drop_link(&self, from: Party, to: Party) {
        self.drop_rules
            .lock()
            .expect("bus lock poisoned")
            .insert((from, to));
    }

    /// Removes all drop rules.
    pub fn heal(&self) {
        self.drop_rules.lock().expect("bus lock poisoned").clear();
    }

    /// Total bytes put on the wire (delivered or not). O(1).
    pub fn total_bytes(&self) -> usize {
        self.ledger.lock().expect("bus lock poisoned").total_bytes
    }

    /// Bytes of messages that actually reached their endpoint — attempts
    /// dropped by fault injection or failed sends (undelivered per
    /// [`DeliveryRecord::delivered`]) are excluded. This is the figure
    /// Lemma 1 tables should cite for *communicated* bits; `total_bytes`
    /// additionally counts wasted attempts. O(1).
    pub fn delivered_bytes(&self) -> usize {
        self.ledger
            .lock()
            .expect("bus lock poisoned")
            .delivered_bytes
    }

    /// Bytes sent from `from` to `to`. O(1).
    pub fn bytes_between(&self, from: Party, to: Party) -> usize {
        self.ledger
            .lock()
            .expect("bus lock poisoned")
            .pair_bytes
            .get(&(from, to))
            .copied()
            .unwrap_or(0)
    }

    /// A copy of the full delivery log.
    pub fn delivery_log(&self) -> Vec<DeliveryRecord> {
        self.ledger
            .lock()
            .expect("bus lock poisoned")
            .records
            .clone()
    }

    /// Number of messages sent (delivered or dropped). O(1).
    pub fn message_count(&self) -> usize {
        self.ledger.lock().expect("bus lock poisoned").records.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_and_accounting() {
        let bus = Bus::new();
        let a = Party::Agent(1);
        let b = Party::Agent(2);
        bus.register(a);
        let ep_b = bus.register(b);
        bus.send(a, b, Message::AdviceRequest { game_id: 7 })
            .unwrap();
        bus.send(a, b, Message::AdviceRequest { game_id: 8 })
            .unwrap();
        let drained = ep_b.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(bus.message_count(), 2);
        assert_eq!(bus.total_bytes(), bus.bytes_between(a, b));
        assert!(bus.total_bytes() >= 4);
    }

    #[test]
    fn counters_agree_with_log_scan() {
        // The running aggregates must stay consistent with what a full
        // scan of the delivery log would compute (the pre-refactor
        // semantics), including dropped messages and unknown parties.
        let bus = Bus::new();
        let a = Party::Agent(1);
        let b = Party::Agent(2);
        let c = Party::Verifier(3);
        let _ep_a = bus.register(a);
        let _ep_b = bus.register(b);
        let _ep_c = bus.register(c);
        bus.drop_link(a, c);
        bus.send(a, b, Message::AdviceRequest { game_id: 1 })
            .unwrap();
        bus.send(a, c, Message::AdviceRequest { game_id: 2 })
            .unwrap();
        bus.send(b, a, Message::AdviceRequest { game_id: 3 })
            .unwrap();
        let _ = bus.send(a, Party::Agent(99), Message::AdviceRequest { game_id: 4 });
        let log = bus.delivery_log();
        assert_eq!(bus.message_count(), log.len());
        assert_eq!(
            bus.total_bytes(),
            log.iter().map(|r| r.bytes).sum::<usize>()
        );
        for (from, to) in [(a, b), (a, c), (b, a), (b, c)] {
            assert_eq!(
                bus.bytes_between(from, to),
                log.iter()
                    .filter(|r| r.from == from && r.to == to)
                    .map(|r| r.bytes)
                    .sum::<usize>()
            );
        }
    }

    #[test]
    fn delivered_bytes_excludes_drops_and_failures() {
        // PR 2 made failed sends record as undelivered; delivered_bytes
        // must exclude those and fault-injected drops, while total_bytes
        // keeps counting every attempt.
        let bus = Bus::new();
        let a = Party::Agent(1);
        let b = Party::Agent(2);
        let c = Party::Verifier(3);
        bus.register(a);
        let _ep_b = bus.register(b);
        let ep_c = bus.register(c);
        drop(ep_c);
        bus.drop_link(a, b);
        bus.send(a, b, Message::AdviceRequest { game_id: 1 })
            .unwrap(); // dropped by fault injection
        let _ = bus.send(a, c, Message::AdviceRequest { game_id: 2 }); // disconnected
        let _ = bus.send(a, Party::Agent(99), Message::AdviceRequest { game_id: 3 }); // unknown
        assert_eq!(bus.delivered_bytes(), 0);
        assert!(bus.total_bytes() > 0);
        bus.heal();
        bus.send(a, b, Message::AdviceRequest { game_id: 4 })
            .unwrap();
        let log = bus.delivery_log();
        assert_eq!(
            bus.delivered_bytes(),
            log.iter()
                .filter(|r| r.delivered)
                .map(|r| r.bytes)
                .sum::<usize>(),
            "running delivered counter matches a log scan"
        );
        assert!(bus.delivered_bytes() < bus.total_bytes());
    }

    /// The traffic mix the batch/sequential equivalence tests replay:
    /// clean deliveries, a fault-injected drop, an unknown destination and
    /// a disconnected endpoint, across several pairs.
    fn adversarial_traffic() -> Vec<(Party, Party, Message)> {
        let a = Party::Agent(1);
        let b = Party::Agent(2);
        let c = Party::Verifier(3);
        vec![
            (a, b, Message::AdviceRequest { game_id: 1 }),
            (a, c, Message::AdviceRequest { game_id: 2 }), // dropped link
            (b, a, Message::AdviceRequest { game_id: 3 }),
            (a, Party::Agent(99), Message::AdviceRequest { game_id: 4 }), // unknown
            (b, c, Message::AdviceRequest { game_id: 5 }),                // disconnected
            (a, b, Message::AdviceRequest { game_id: 6 }),
        ]
    }

    /// Builds a bus with the fixture topology for `adversarial_traffic`:
    /// a↔b live, a→c fault-dropped, c's endpoint dropped (disconnected).
    fn adversarial_bus() -> (Bus, Endpoint, Endpoint) {
        let bus = Bus::new();
        let ep_a = bus.register(Party::Agent(1));
        let ep_b = bus.register(Party::Agent(2));
        let ep_c = bus.register(Party::Verifier(3));
        drop(ep_c);
        bus.drop_link(Party::Agent(1), Party::Verifier(3));
        (bus, ep_a, ep_b)
    }

    #[test]
    fn send_batch_accounting_matches_sequential_sends() {
        // The tentpole contract: one send_batch produces byte-identical
        // DeliveryRecords, counters and per-pair sums to N sequential
        // sends of the same messages — including drop rules, unknown
        // parties and disconnected endpoints.
        let (batched, batched_a, batched_b) = adversarial_bus();
        let (sequential, seq_a, seq_b) = adversarial_bus();
        let mut batch = adversarial_traffic();
        let first_batch_error = batched.send_batch(&mut batch);
        assert!(batch.is_empty(), "the batch buffer is drained for reuse");
        let mut first_seq_error = Ok(());
        for (from, to, message) in adversarial_traffic() {
            let result = sequential.send(from, to, message);
            if first_seq_error.is_ok() {
                first_seq_error = result;
            }
        }
        assert_eq!(first_batch_error, first_seq_error);
        assert_eq!(batched.delivery_log(), sequential.delivery_log());
        assert_eq!(batched.total_bytes(), sequential.total_bytes());
        assert_eq!(batched.delivered_bytes(), sequential.delivered_bytes());
        assert_eq!(batched.message_count(), sequential.message_count());
        for from in [Party::Agent(1), Party::Agent(2)] {
            for to in [Party::Agent(1), Party::Agent(2), Party::Verifier(3)] {
                assert_eq!(
                    batched.bytes_between(from, to),
                    sequential.bytes_between(from, to),
                    "{from} -> {to}"
                );
            }
        }
        // Delivery itself matches too: the same messages reach the same
        // endpoints in the same order.
        assert_eq!(batched_a.drain(), seq_a.drain());
        assert_eq!(batched_b.drain(), seq_b.drain());
    }

    #[test]
    fn send_batch_attempts_everything_after_a_failure() {
        let (bus, _ep_a, ep_b) = adversarial_bus();
        let mut batch = vec![
            (
                Party::Agent(1),
                Party::Agent(99),
                Message::AdviceRequest { game_id: 1 },
            ),
            (
                Party::Agent(1),
                Party::Agent(2),
                Message::AdviceRequest { game_id: 2 },
            ),
        ];
        assert_eq!(
            bus.send_batch(&mut batch),
            Err(BusError::UnknownParty(Party::Agent(99))),
            "the first failure is reported"
        );
        assert_eq!(
            bus.message_count(),
            1,
            "the unknown-party send is unaccounted, exactly like `send`"
        );
        let delivered = ep_b.drain();
        assert_eq!(delivered.len(), 1, "the later message still delivered");
        assert_eq!(delivered[0].1, Message::AdviceRequest { game_id: 2 });
    }

    #[test]
    fn empty_batch_is_free() {
        let bus = Bus::new();
        assert_eq!(bus.send_batch(&mut Vec::new()), Ok(()));
        assert_eq!(bus.message_count(), 0);
        assert_eq!(bus.total_bytes(), 0);
    }

    #[test]
    fn drain_into_reuses_the_buffer() {
        let bus = Bus::new();
        let a = Party::Agent(1);
        let b = Party::Agent(2);
        bus.register(a);
        let ep_b = bus.register(b);
        let mut buf = Vec::new();
        bus.send(a, b, Message::AdviceRequest { game_id: 1 })
            .unwrap();
        bus.send(a, b, Message::AdviceRequest { game_id: 2 })
            .unwrap();
        assert_eq!(ep_b.drain_into(&mut buf), 2);
        assert_eq!(buf.len(), 2);
        // Appends without clearing: callers own the clear, which is what
        // lets one buffer live across a whole receive loop.
        bus.send(a, b, Message::AdviceRequest { game_id: 3 })
            .unwrap();
        assert_eq!(ep_b.drain_into(&mut buf), 1);
        assert_eq!(buf.len(), 3);
        let capacity = buf.capacity();
        buf.clear();
        bus.send(a, b, Message::AdviceRequest { game_id: 4 })
            .unwrap();
        assert_eq!(ep_b.drain_into(&mut buf), 1);
        assert_eq!(buf.capacity(), capacity, "no reallocation on reuse");
    }

    #[test]
    fn unknown_party_rejected() {
        let bus = Bus::new();
        let a = Party::Agent(1);
        bus.register(a);
        assert_eq!(
            bus.send(a, Party::Verifier(9), Message::AdviceRequest { game_id: 1 }),
            Err(BusError::UnknownParty(Party::Verifier(9)))
        );
    }

    #[test]
    fn disconnected_endpoint_reported() {
        let bus = Bus::new();
        let a = Party::Agent(1);
        let b = Party::Agent(2);
        bus.register(a);
        let ep_b = bus.register(b);
        drop(ep_b);
        assert_eq!(
            bus.send(a, b, Message::AdviceRequest { game_id: 1 }),
            Err(BusError::Disconnected(b))
        );
        // The failed attempt is still accounted in the audit log, and is
        // recorded as undelivered.
        assert_eq!(bus.message_count(), 1);
        assert!(bus.bytes_between(a, b) > 0);
        assert!(!bus.delivery_log()[0].delivered);
    }

    #[test]
    fn reregistration_replaces_old_endpoint() {
        let bus = Bus::new();
        let a = Party::Agent(1);
        let b = Party::Agent(2);
        bus.register(a);
        let old_ep = bus.register(b);
        let new_ep = bus.register(b);
        bus.send(a, b, Message::AdviceRequest { game_id: 5 })
            .unwrap();
        // The replaced endpoint receives nothing; the new one receives.
        assert!(old_ep.try_recv().is_none());
        let (from, msg) = new_ep.try_recv().unwrap();
        assert_eq!(from, a);
        assert_eq!(msg, Message::AdviceRequest { game_id: 5 });
        // Dropping the *old* endpoint must not disconnect the party.
        drop(old_ep);
        bus.send(a, b, Message::AdviceRequest { game_id: 6 })
            .unwrap();
        assert!(new_ep.try_recv().is_some());
    }

    #[test]
    fn fault_injection_drops_silently() {
        let bus = Bus::new();
        let a = Party::Agent(1);
        let b = Party::Agent(2);
        bus.register(a);
        let ep_b = bus.register(b);
        bus.drop_link(a, b);
        // Duplicate rules are idempotent (set semantics) and heal() still
        // clears everything.
        bus.drop_link(a, b);
        bus.send(a, b, Message::AdviceRequest { game_id: 1 })
            .unwrap();
        assert!(ep_b.try_recv().is_none());
        let log = bus.delivery_log();
        assert_eq!(log.len(), 1);
        assert!(!log[0].delivered);
        bus.heal();
        bus.send(a, b, Message::AdviceRequest { game_id: 2 })
            .unwrap();
        assert!(ep_b.try_recv().is_some());
    }

    #[test]
    fn concurrent_senders() {
        use std::sync::Arc;
        let bus = Arc::new(Bus::new());
        let hub = Party::Verifier(0);
        let ep = bus.register(hub);
        let mut handles = Vec::new();
        for i in 0..8u64 {
            let bus = Arc::clone(&bus);
            handles.push(std::thread::spawn(move || {
                let me = Party::Agent(i);
                bus.register(me);
                for g in 0..50 {
                    bus.send(me, hub, Message::AdviceRequest { game_id: g })
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ep.drain().len(), 400);
        assert_eq!(bus.message_count(), 400);
    }
}
