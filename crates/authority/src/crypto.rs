//! Minimal cryptographic substrate: SHA-256, HMAC and commitments.
//!
//! §6 footnote 3 of the paper has the inventor "publish the average loads
//! with its signature at each round", so dishonest statistics can later be
//! blamed on it. No cryptography crate is in the approved dependency set,
//! so this module implements SHA-256 (FIPS 180-4) and HMAC (RFC 2104) from
//! scratch; signatures are simulated as HMACs under a key registered with
//! the audit authority — binding and attributable within the simulation,
//! which is all the audit trail needs.

/// Output of SHA-256: 32 bytes.
pub type Digest = [u8; 32];

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Computes SHA-256 of `data`.
///
/// # Examples
///
/// ```
/// use ra_authority::sha256;
///
/// let digest = sha256(b"abc");
/// assert_eq!(
///     hex(&digest),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
///
/// fn hex(d: &[u8]) -> String {
///     d.iter().map(|b| format!("{b:02x}")).collect()
/// }
/// ```
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = H0;
    // Padding: 0x80, zeros, 64-bit big-endian bit length.
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut padded = data.to_vec();
    padded.push(0x80);
    while padded.len() % 64 != 56 {
        padded.push(0);
    }
    padded.extend_from_slice(&bit_len.to_be_bytes());
    for chunk in padded.chunks_exact(64) {
        let mut w = [0u32; 64];
        for (i, word) in chunk.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
        h[5] = h[5].wrapping_add(f);
        h[6] = h[6].wrapping_add(g);
        h[7] = h[7].wrapping_add(hh);
    }
    let mut out = [0u8; 32];
    for (i, word) in h.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// SHA-256 of a value's canonical wire encoding, measured through the
/// thread-local frame scratch so the steady-state path allocates no
/// buffer (the scratch is recycled across calls; see
/// [`crate::wire::with_frame_scratch`]).
pub fn sha256_wire<T: crate::wire::Wire>(value: &T) -> Digest {
    crate::wire::with_frame_scratch(|buf| {
        value.encode(buf);
        sha256(buf)
    })
}

/// HMAC-SHA256 (RFC 2104).
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    const BLOCK: usize = 64;
    let mut key_block = [0u8; BLOCK];
    if key.len() > BLOCK {
        key_block[..32].copy_from_slice(&sha256(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut inner = Vec::with_capacity(BLOCK + message.len());
    let mut outer = Vec::with_capacity(BLOCK + 32);
    for &b in &key_block {
        inner.push(b ^ 0x36);
    }
    inner.extend_from_slice(message);
    let inner_digest = sha256(&inner);
    for &b in &key_block {
        outer.push(b ^ 0x5c);
    }
    outer.extend_from_slice(&inner_digest);
    sha256(&outer)
}

/// A simulated signing key (HMAC key shared with the audit authority).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SigningKey(pub [u8; 32]);

impl SigningKey {
    /// Derives a key deterministically from a seed label (simulation only).
    pub fn derive(label: &str) -> SigningKey {
        SigningKey(sha256(label.as_bytes()))
    }

    /// Signs a message.
    pub fn sign(&self, message: &[u8]) -> Signature {
        Signature(hmac_sha256(&self.0, message))
    }

    /// Verifies a signature.
    pub fn verify(&self, message: &[u8], signature: &Signature) -> bool {
        self.sign(message) == *signature
    }
}

/// A simulated signature (HMAC tag).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Signature(pub Digest);

/// A hash commitment with an explicit nonce (hiding in the random-oracle
/// sense; binding by collision resistance).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Commitment(pub Digest);

impl Commitment {
    /// Commits to `payload` under `nonce`.
    pub fn commit(payload: &[u8], nonce: &[u8; 16]) -> Commitment {
        let mut data = Vec::with_capacity(payload.len() + 16);
        data.extend_from_slice(nonce);
        data.extend_from_slice(payload);
        Commitment(sha256(&data))
    }

    /// Opens the commitment: checks `payload`/`nonce` against it.
    pub fn open(&self, payload: &[u8], nonce: &[u8; 16]) -> bool {
        Commitment::commit(payload, nonce) == *self
    }
}

/// Hex rendering of a digest (for logs and audit reports).
pub fn to_hex(digest: &Digest) -> String {
    digest.iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha256_known_vectors() {
        // FIPS 180-4 / NIST test vectors.
        assert_eq!(
            to_hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            to_hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            to_hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // One block of exactly 64 bytes exercises the length-padding path.
        let block = [0x61u8; 64];
        assert_eq!(
            to_hex(&sha256(&block)),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb"
        );
    }

    #[test]
    fn hmac_known_vectors() {
        // RFC 4231 test case 2.
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            to_hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
        // RFC 4231 test case 1.
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            to_hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn hmac_long_key_path() {
        let key = [0xaau8; 131];
        // RFC 4231 test case 6.
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            to_hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn signatures_round_trip() {
        let key = SigningKey::derive("inventor-7");
        let sig = key.sign(b"average load = 503.2 at round 17");
        assert!(key.verify(b"average load = 503.2 at round 17", &sig));
        assert!(!key.verify(b"average load = 999.9 at round 17", &sig));
        let other = SigningKey::derive("inventor-8");
        assert!(!other.verify(b"average load = 503.2 at round 17", &sig));
    }

    #[test]
    fn commitments_bind_and_open() {
        let nonce = [7u8; 16];
        let c = Commitment::commit(b"support = {1, 3}", &nonce);
        assert!(c.open(b"support = {1, 3}", &nonce));
        assert!(!c.open(b"support = {0, 3}", &nonce));
        assert!(!c.open(b"support = {1, 3}", &[8u8; 16]));
    }
}
