//! The verifier reputation plane: majority voting, pluggable backends,
//! and epoch-based cross-shard gossip.
//!
//! The paper: "We note the possibility of having several verifiers, such
//! that their majority is trusted. The reputation of the verifiers can be
//! updated according to the (majority of their) results." This module
//! implements exactly that — verdicts are pooled per query, the majority
//! decides, and each verifier's reputation moves toward or away from the
//! majority; persistently deviant verifiers fall below the exclusion
//! threshold and stop being consulted — behind a [`ReputationBackend`]
//! trait so the *scope* of a reputation score is pluggable:
//!
//! * [`LocalReputation`] — one mutex-guarded score table, the classic
//!   single-bus store (re-exported as [`ReputationStore`] for
//!   compatibility);
//! * [`GossipReputation`] — per-shard PN-counter deltas ([`PnCounterMap`],
//!   a state-based CRDT whose merge is commutative, associative and
//!   idempotent) published to a shared [`GossipPlane`] at epoch
//!   boundaries, so the consult hot path only ever touches shard-local
//!   state and exclusion still propagates engine-wide.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::messages::Party;

/// Starting reputation score for a verifier never seen before.
pub const INITIAL_SCORE: i64 = 10;
/// At or below this score a verifier is no longer consulted.
pub const EXCLUSION_THRESHOLD: i64 = 0;

/// Outcome of pooling one round of verdicts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MajorityOutcome {
    /// The majority verdict (ties resolve to `false` — reject, the safe
    /// side for advice adoption).
    pub accepted: bool,
    /// Number of verifiers voting accept.
    pub accept_votes: usize,
    /// Number of verifiers voting reject.
    pub reject_votes: usize,
    /// Verifiers that disagreed with the majority this round.
    pub dissenters: Vec<Party>,
}

/// Computes the majority verdict of one round (ties reject — the safe
/// side), shared by every backend so the vote rule cannot drift.
fn majority_of(verdicts: &[(Party, bool)]) -> MajorityOutcome {
    assert!(
        !verdicts.is_empty(),
        "pooling requires at least one verdict"
    );
    let accept_votes = verdicts.iter().filter(|&&(_, a)| a).count();
    let reject_votes = verdicts.len() - accept_votes;
    let accepted = accept_votes > reject_votes;
    let dissenters = verdicts
        .iter()
        .filter(|&&(_, vote)| vote != accepted)
        .map(|&(party, _)| party)
        .collect();
    MajorityOutcome {
        accepted,
        accept_votes,
        reject_votes,
        dissenters,
    }
}

/// A reputation backend: where verifier trust scores live and how one
/// round of verdicts updates them.
///
/// The session layer ([`crate::SessionDriver`]) is written against this
/// trait, so the same Fig. 1 protocol runs over a process-local score
/// table ([`LocalReputation`]) or a cross-shard gossiped one
/// ([`GossipReputation`]) without change. Implementations must be
/// internally synchronized (`&self` methods, `Send + Sync`).
pub trait ReputationBackend: Send + Sync {
    /// Current score of a verifier (unseen verifiers score
    /// [`INITIAL_SCORE`]).
    fn score(&self, verifier: Party) -> i64;

    /// Returns `true` if the verifier is still trusted (above
    /// [`EXCLUSION_THRESHOLD`]).
    fn is_trusted(&self, verifier: Party) -> bool {
        self.score(verifier) > EXCLUSION_THRESHOLD
    }

    /// Pools one round of verdicts `(verifier, accepted)`, updates
    /// reputations toward the majority, and returns the outcome.
    ///
    /// # Panics
    ///
    /// Panics if `verdicts` is empty.
    fn pool_verdicts(&self, verdicts: &[(Party, bool)]) -> MajorityOutcome;

    /// All verifiers this backend has seen that are currently trusted,
    /// sorted for determinism.
    fn trusted_verifiers(&self) -> Vec<Party>;
}

/// Process-local reputation bookkeeping — one mutex-guarded score table.
///
/// Scores start at [`LocalReputation::INITIAL`] and move by ±1 per pooled
/// query depending on agreement with the majority; verifiers at or below
/// [`LocalReputation::EXCLUSION_THRESHOLD`] are excluded. This is the
/// classic store the single-bus [`crate::RationalityAuthority`] always
/// used; it is also each isolated shard's backend under
/// [`crate::ReputationPolicy::Isolated`].
#[derive(Debug, Default)]
pub struct LocalReputation {
    scores: Mutex<HashMap<Party, i64>>,
}

/// Compatibility alias: the pre-refactor name of [`LocalReputation`].
pub type ReputationStore = LocalReputation;

impl LocalReputation {
    /// Starting reputation score.
    pub const INITIAL: i64 = INITIAL_SCORE;
    /// At or below this score a verifier is no longer consulted.
    pub const EXCLUSION_THRESHOLD: i64 = EXCLUSION_THRESHOLD;

    /// Creates an empty store.
    pub fn new() -> LocalReputation {
        LocalReputation::default()
    }

    /// Current score of a verifier (registering it on first touch).
    pub fn score(&self, verifier: Party) -> i64 {
        *self
            .scores
            .lock()
            .expect("reputation lock poisoned")
            .entry(verifier)
            .or_insert(Self::INITIAL)
    }

    /// Returns `true` if the verifier is still trusted (above the exclusion
    /// threshold).
    pub fn is_trusted(&self, verifier: Party) -> bool {
        self.score(verifier) > Self::EXCLUSION_THRESHOLD
    }

    /// Pools one round of verdicts `(verifier, accepted)`, updates
    /// reputations toward the majority, and returns the outcome.
    ///
    /// # Panics
    ///
    /// Panics if `verdicts` is empty.
    pub fn pool_verdicts(&self, verdicts: &[(Party, bool)]) -> MajorityOutcome {
        let outcome = majority_of(verdicts);
        let mut scores = self.scores.lock().expect("reputation lock poisoned");
        for &(verifier, vote) in verdicts {
            let entry = scores.entry(verifier).or_insert(Self::INITIAL);
            if vote == outcome.accepted {
                *entry += 1;
            } else {
                *entry -= 1;
            }
        }
        outcome
    }

    /// All verifiers currently trusted, sorted for determinism.
    pub fn trusted_verifiers(&self) -> Vec<Party> {
        let scores = self.scores.lock().expect("reputation lock poisoned");
        let mut out: Vec<Party> = scores
            .iter()
            .filter(|&(_, &s)| s > Self::EXCLUSION_THRESHOLD)
            .map(|(&p, _)| p)
            .collect();
        out.sort();
        out
    }
}

impl ReputationBackend for LocalReputation {
    fn score(&self, verifier: Party) -> i64 {
        LocalReputation::score(self, verifier)
    }

    fn pool_verdicts(&self, verdicts: &[(Party, bool)]) -> MajorityOutcome {
        LocalReputation::pool_verdicts(self, verdicts)
    }

    fn trusted_verifiers(&self) -> Vec<Party> {
        LocalReputation::trusted_verifiers(self)
    }
}

/// A PN-counter: separate grow-only increment and decrement tallies whose
/// difference is the counter's value. Merging takes the componentwise
/// maximum, which is the state-based CRDT join — commutative, associative
/// and idempotent — provided each component is only ever advanced by its
/// owning replica.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PnCounter {
    /// Times the owning replica observed the verifier agree with the
    /// majority.
    pub increments: u64,
    /// Times the owning replica observed the verifier dissent.
    pub decrements: u64,
}

impl PnCounter {
    /// The counter's value: increments minus decrements.
    pub fn value(&self) -> i64 {
        self.increments as i64 - self.decrements as i64
    }

    /// CRDT join: componentwise maximum.
    pub fn merge(&mut self, other: &PnCounter) {
        self.increments = self.increments.max(other.increments);
        self.decrements = self.decrements.max(other.decrements);
    }
}

/// A replica-sharded map of PN-counters: one [`PnCounter`] per
/// `(replica, verifier)` coordinate, where a replica is a shard of the
/// engine. Each replica advances only its own coordinates, so
/// [`PnCounterMap::merge`] (coordinatewise [`PnCounter::merge`]) is a
/// lattice join: the property tests in `tests/proptests.rs` pin down
/// commutativity, associativity and idempotence.
///
/// Slots are keyed verifier-major, because the read pattern is hot:
/// [`GossipReputation`] resolves one verifier's score on every
/// consultation, which here is a single lookup plus a sum over that
/// verifier's replicas — not a scan of the whole map.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PnCounterMap {
    slots: HashMap<Party, HashMap<usize, PnCounter>>,
}

impl PnCounterMap {
    /// Creates an empty map.
    pub fn new() -> PnCounterMap {
        PnCounterMap::default()
    }

    /// Records one observation made by `replica` about `verifier`:
    /// `agreed` advances the increment tally, dissent the decrement tally.
    pub fn record(&mut self, replica: usize, verifier: Party, agreed: bool) {
        let slot = self
            .slots
            .entry(verifier)
            .or_default()
            .entry(replica)
            .or_default();
        if agreed {
            slot.increments += 1;
        } else {
            slot.decrements += 1;
        }
    }

    /// Ensures `(replica, verifier)` has a slot without changing any tally
    /// (registration on first touch, the identity of the join).
    pub fn touch(&mut self, replica: usize, verifier: Party) {
        self.slots
            .entry(verifier)
            .or_default()
            .entry(replica)
            .or_default();
    }

    /// CRDT join: coordinatewise componentwise maximum.
    pub fn merge(&mut self, other: &PnCounterMap) {
        for (&verifier, replicas) in &other.slots {
            let own = self.slots.entry(verifier).or_default();
            for (&replica, counter) in replicas {
                own.entry(replica).or_default().merge(counter);
            }
        }
    }

    /// The verifier's global value: the sum of its counters across every
    /// replica.
    pub fn value(&self, verifier: Party) -> i64 {
        self.slots
            .get(&verifier)
            .map_or(0, |replicas| replicas.values().map(PnCounter::value).sum())
    }

    /// Every verifier with at least one slot, sorted.
    pub fn verifiers(&self) -> Vec<Party> {
        let mut out: Vec<Party> = self.slots.keys().copied().collect();
        out.sort();
        out
    }

    /// Number of `(replica, verifier)` slots.
    pub fn len(&self) -> usize {
        self.slots.values().map(HashMap::len).sum()
    }

    /// Returns `true` if no slot exists yet.
    pub fn is_empty(&self) -> bool {
        self.slots.values().all(HashMap::is_empty)
    }
}

/// The shared rendezvous of the gossip backends: the join of every state
/// published so far. Shards touch it only at epoch boundaries (publish /
/// pull), never on the consult hot path.
#[derive(Debug, Default)]
pub struct GossipPlane {
    merged: Mutex<PnCounterMap>,
}

impl GossipPlane {
    /// Creates an empty plane.
    pub fn new() -> GossipPlane {
        GossipPlane::default()
    }

    /// Joins `state` into the plane.
    pub fn publish(&self, state: &PnCounterMap) {
        self.merged
            .lock()
            .expect("gossip plane lock poisoned")
            .merge(state);
    }

    /// Joins the plane's accumulated state into `state`.
    pub fn pull_into(&self, state: &mut PnCounterMap) {
        state.merge(&self.merged.lock().expect("gossip plane lock poisoned"));
    }
}

/// A gossiping reputation backend: one per shard, all sharing a
/// [`GossipPlane`].
///
/// On the consult hot path ([`ReputationBackend::pool_verdicts`],
/// [`ReputationBackend::score`]) only this shard's own mutex is taken;
/// observations land in the shard's replica slots of a local
/// [`PnCounterMap`]. At epoch boundaries — every `gossip_every`
/// consultations when driven by [`crate::ShardedAuthority`], or on an
/// explicit [`GossipReputation::sync`] — the local state is published to
/// the plane and the plane's join is pulled back, so a verifier voted out
/// anywhere is excluded everywhere within one epoch. A verifier's score is
/// [`INITIAL_SCORE`] plus the summed counter values across all replicas
/// this shard has seen.
#[derive(Debug)]
pub struct GossipReputation {
    shard: usize,
    plane: Arc<GossipPlane>,
    local: Mutex<PnCounterMap>,
}

impl GossipReputation {
    /// Creates the backend for `shard`, wired to the shared `plane`.
    pub fn new(shard: usize, plane: Arc<GossipPlane>) -> GossipReputation {
        GossipReputation {
            shard,
            plane,
            local: Mutex::new(PnCounterMap::new()),
        }
    }

    /// The shard (replica id) this backend writes observations under.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Publishes this shard's state to the plane (first half of an epoch
    /// merge).
    pub fn push(&self) {
        let local = self.local.lock().expect("gossip local lock poisoned");
        self.plane.publish(&local);
    }

    /// Pulls the plane's join into this shard's state (second half of an
    /// epoch merge).
    pub fn pull(&self) {
        let mut local = self.local.lock().expect("gossip local lock poisoned");
        self.plane.pull_into(&mut local);
    }

    /// One-shard epoch merge: publish, then pull. Brings this shard up to
    /// date with everything published so far; for a barrier merge across
    /// all shards (everyone sees everyone), push all shards first and pull
    /// all shards second — [`crate::ShardedAuthority::sync_reputation`]
    /// does exactly that.
    pub fn sync(&self) {
        let mut local = self.local.lock().expect("gossip local lock poisoned");
        self.plane.publish(&local);
        self.plane.pull_into(&mut local);
    }
}

impl ReputationBackend for GossipReputation {
    fn score(&self, verifier: Party) -> i64 {
        let mut local = self.local.lock().expect("gossip local lock poisoned");
        local.touch(self.shard, verifier);
        INITIAL_SCORE + local.value(verifier)
    }

    fn pool_verdicts(&self, verdicts: &[(Party, bool)]) -> MajorityOutcome {
        let outcome = majority_of(verdicts);
        let mut local = self.local.lock().expect("gossip local lock poisoned");
        for &(verifier, vote) in verdicts {
            local.record(self.shard, verifier, vote == outcome.accepted);
        }
        outcome
    }

    fn trusted_verifiers(&self) -> Vec<Party> {
        let local = self.local.lock().expect("gossip local lock poisoned");
        local
            .verifiers()
            .into_iter()
            .filter(|&p| INITIAL_SCORE + local.value(p) > EXCLUSION_THRESHOLD)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u64) -> Party {
        Party::Verifier(i)
    }

    #[test]
    fn majority_decides_and_updates() {
        let store = LocalReputation::new();
        let outcome = store.pool_verdicts(&[(v(0), true), (v(1), true), (v(2), false)]);
        assert!(outcome.accepted);
        assert_eq!(outcome.accept_votes, 2);
        assert_eq!(outcome.dissenters, vec![v(2)]);
        assert_eq!(store.score(v(0)), LocalReputation::INITIAL + 1);
        assert_eq!(store.score(v(2)), LocalReputation::INITIAL - 1);
    }

    #[test]
    fn ties_reject() {
        let store = LocalReputation::new();
        let outcome = store.pool_verdicts(&[(v(0), true), (v(1), false)]);
        assert!(!outcome.accepted, "ties resolve to the safe side");
    }

    #[test]
    fn even_split_penalizes_accept_voters() {
        // A 2-2 tie rejects, so the accept voters are the dissenters and
        // lose a point while the reject voters gain one.
        let store = LocalReputation::new();
        let outcome =
            store.pool_verdicts(&[(v(0), true), (v(1), true), (v(2), false), (v(3), false)]);
        assert!(!outcome.accepted);
        assert_eq!(outcome.dissenters, vec![v(0), v(1)]);
        assert_eq!(store.score(v(0)), LocalReputation::INITIAL - 1);
        assert_eq!(store.score(v(1)), LocalReputation::INITIAL - 1);
        assert_eq!(store.score(v(2)), LocalReputation::INITIAL + 1);
        assert_eq!(store.score(v(3)), LocalReputation::INITIAL + 1);
    }

    #[test]
    fn persistent_deviants_get_excluded() {
        let store = LocalReputation::new();
        // Verifier 2 always disagrees with the honest majority.
        for _ in 0..LocalReputation::INITIAL {
            store.pool_verdicts(&[(v(0), true), (v(1), true), (v(2), false)]);
        }
        assert!(!store.is_trusted(v(2)));
        assert!(store.is_trusted(v(0)));
        assert_eq!(store.trusted_verifiers(), vec![v(0), v(1)]);
    }

    #[test]
    fn recovery_is_possible() {
        let store = LocalReputation::new();
        for _ in 0..3 {
            store.pool_verdicts(&[(v(0), true), (v(1), true), (v(2), false)]);
        }
        let before = store.score(v(2));
        for _ in 0..5 {
            store.pool_verdicts(&[(v(0), true), (v(1), true), (v(2), true)]);
        }
        assert!(store.score(v(2)) > before);
    }

    #[test]
    fn recovered_verifier_reappears_in_trusted_set() {
        let store = LocalReputation::new();
        // Drive verifier 2 to the exclusion threshold…
        for _ in 0..LocalReputation::INITIAL {
            store.pool_verdicts(&[(v(0), true), (v(1), true), (v(2), false)]);
        }
        assert_eq!(store.trusted_verifiers(), vec![v(0), v(1)]);
        // …then let it agree with the majority until it climbs back over.
        store.pool_verdicts(&[(v(0), true), (v(1), true), (v(2), true)]);
        assert!(store.is_trusted(v(2)));
        assert_eq!(store.trusted_verifiers(), vec![v(0), v(1), v(2)]);
    }

    #[test]
    #[should_panic(expected = "at least one verdict")]
    fn empty_pool_panics() {
        LocalReputation::new().pool_verdicts(&[]);
    }

    #[test]
    fn backends_agree_through_the_trait() {
        // The same verdict stream produces the same scores whether the
        // backend is local or a single-shard gossip instance.
        let local = LocalReputation::new();
        let gossip = GossipReputation::new(0, Arc::new(GossipPlane::new()));
        let rounds = [
            vec![(v(0), true), (v(1), true), (v(2), false)],
            vec![(v(0), false), (v(1), false), (v(2), false)],
            vec![(v(0), true), (v(1), false)],
        ];
        for round in &rounds {
            let a = ReputationBackend::pool_verdicts(&local, round);
            let b = gossip.pool_verdicts(round);
            assert_eq!(a, b);
        }
        for i in 0..3 {
            assert_eq!(
                ReputationBackend::score(&local, v(i)),
                gossip.score(v(i)),
                "verifier {i}"
            );
        }
        assert_eq!(
            ReputationBackend::trusted_verifiers(&local),
            gossip.trusted_verifiers()
        );
    }

    #[test]
    fn pn_counter_map_sums_across_replicas() {
        let mut map = PnCounterMap::new();
        map.record(0, v(7), false);
        map.record(1, v(7), false);
        map.record(2, v(7), true);
        assert_eq!(map.value(v(7)), -1);
        assert_eq!(map.verifiers(), vec![v(7)]);
        assert_eq!(map.len(), 3);
    }

    #[test]
    fn gossip_exclusion_crosses_shards_after_sync() {
        let plane = Arc::new(GossipPlane::new());
        let a = GossipReputation::new(0, plane.clone());
        let b = GossipReputation::new(1, plane);
        // Verifier 2 dissents INITIAL times — all observed on shard 0.
        for _ in 0..INITIAL_SCORE {
            a.pool_verdicts(&[(v(0), true), (v(1), true), (v(2), false)]);
        }
        assert!(!a.is_trusted(v(2)), "observing shard excludes immediately");
        assert!(b.is_trusted(v(2)), "peer shard has not gossiped yet");
        a.push();
        b.pull();
        assert!(!b.is_trusted(v(2)), "one epoch propagates the exclusion");
        assert_eq!(b.trusted_verifiers(), vec![v(0), v(1)]);
    }

    #[test]
    fn gossip_sync_is_idempotent() {
        let plane = Arc::new(GossipPlane::new());
        let a = GossipReputation::new(0, plane.clone());
        let b = GossipReputation::new(1, plane);
        a.pool_verdicts(&[(v(0), true), (v(1), false)]);
        b.pool_verdicts(&[(v(0), true), (v(1), true)]);
        for _ in 0..3 {
            a.sync();
            b.sync();
        }
        let score_a = a.score(v(1));
        a.sync();
        assert_eq!(a.score(v(1)), score_a, "re-syncing changes nothing");
        assert_eq!(a.score(v(0)), b.score(v(0)));
        assert_eq!(a.score(v(1)), b.score(v(1)));
    }
}
