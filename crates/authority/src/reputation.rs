//! The verifier reputation plane: majority voting, pluggable backends,
//! and epoch-based cross-shard gossip carried over the simulated [`Bus`].
//!
//! The paper: "We note the possibility of having several verifiers, such
//! that their majority is trusted. The reputation of the verifiers can be
//! updated according to the (majority of their) results." This module
//! implements exactly that — verdicts are pooled per query, the majority
//! decides, and each verifier's reputation moves toward or away from the
//! majority; persistently deviant verifiers fall below the exclusion
//! threshold and stop being consulted — behind a [`ReputationBackend`]
//! trait so the *scope* of a reputation score is pluggable:
//!
//! * [`LocalReputation`] — one mutex-guarded score table, the classic
//!   single-bus store (re-exported as [`ReputationStore`] for
//!   compatibility);
//! * [`GossipReputation`] — per-shard PN-counter deltas
//!   ([`DecayingPnCounterMap`], a state-based CRDT whose merge is
//!   commutative, associative and idempotent) published to a shared
//!   [`GossipPlane`] at epoch boundaries, so the consult hot path only
//!   ever touches shard-local state and exclusion still propagates
//!   engine-wide.
//!
//! Three refinements layer on top of the basic plane:
//!
//! * **Bus-carried gossip** — a [`GossipPlane`] built with
//!   [`GossipPlane::over_bus`] routes every epoch merge through a
//!   dedicated inter-shard [`Bus`] as real framed
//!   [`Message::Gossip`](crate::Message::Gossip) sends, so the Lemma 1
//!   byte accounting covers the control plane, not just consultations.
//! * **Weighted votes** — [`VoteRule::Weighted`] pools verdicts by the
//!   verifiers' reputation stakes instead of one-verifier-one-vote.
//! * **Decay** — [`ReputationDecay::HalfLife`] halves the contribution of
//!   each past epoch generation, so ancient dissent is eventually
//!   forgiven ([`DecayingPnCounterMap`] keeps per-generation counters
//!   exactly so this stays a max-merge CRDT — a plain PN counter can only
//!   grow).
//!
//! # Examples
//!
//! The trait is what the session layer consumes; any backend slots in:
//!
//! ```
//! use ra_authority::{LocalReputation, Party, ReputationBackend};
//!
//! let store = LocalReputation::new();
//! let outcome = store.pool_verdicts(&[
//!     (Party::Verifier(0), true),
//!     (Party::Verifier(1), true),
//!     (Party::Verifier(2), false),
//! ]);
//! assert!(outcome.accepted);
//! assert_eq!(outcome.dissenters, vec![Party::Verifier(2)]);
//! assert!(store.is_trusted(Party::Verifier(2)), "one dissent is not exclusion");
//! ```

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

use crate::bus::Bus;
use crate::messages::{Message, Party};
use crate::transport::{Endpoint, Transport};

/// Starting reputation score for a verifier never seen before.
pub const INITIAL_SCORE: i64 = 10;
/// At or below this score a verifier is no longer consulted.
pub const EXCLUSION_THRESHOLD: i64 = 0;

/// The reserved bus identity of a [`GossipPlane`]'s rendezvous endpoint on
/// the inter-shard gossip bus. Shard endpoints are `Party::Shard(s)` for
/// `s < shard_count`, so the all-ones id can never collide.
pub const GOSSIP_HUB: Party = Party::Shard(u64::MAX);

/// How one round of verdicts is pooled into a majority.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum VoteRule {
    /// One verifier, one vote — the paper's rule.
    #[default]
    Simple,
    /// Stake-weighted: each verdict counts its verifier's current
    /// reputation score (clamped to at least 1), so long-trusted
    /// verifiers outweigh newcomers and near-excluded ones.
    Weighted,
}

/// How past observations fade from a verifier's score.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReputationDecay {
    /// Observations never fade (plain PN-counter behaviour).
    #[default]
    None,
    /// Each epoch generation's contribution halves per generation of age
    /// and is dropped entirely at `retention` generations, so a verifier
    /// judged irrational long ago is not condemned forever.
    HalfLife {
        /// Generations after which an observation stops counting
        /// (must be positive).
        retention: u32,
    },
}

/// Outcome of pooling one round of verdicts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MajorityOutcome {
    /// The majority verdict (ties resolve to `false` — reject, the safe
    /// side for advice adoption).
    pub accepted: bool,
    /// Number of verifiers voting accept.
    pub accept_votes: usize,
    /// Number of verifiers voting reject.
    pub reject_votes: usize,
    /// Total stake behind accept (equals `accept_votes` under
    /// [`VoteRule::Simple`]).
    pub accept_stake: i64,
    /// Total stake behind reject (equals `reject_votes` under
    /// [`VoteRule::Simple`]).
    pub reject_stake: i64,
    /// Verifiers that disagreed with the majority this round.
    pub dissenters: Vec<Party>,
}

/// Computes the pooled verdict of one round under a stake function (ties
/// reject — the safe side), shared by every backend so the vote rule
/// cannot drift between them. [`VoteRule::Simple`] is the constant stake
/// function 1.
fn pooled_outcome(verdicts: &[(Party, bool)], stake_of: impl Fn(Party) -> i64) -> MajorityOutcome {
    assert!(
        !verdicts.is_empty(),
        "pooling requires at least one verdict"
    );
    let mut accept_votes = 0usize;
    let mut reject_votes = 0usize;
    let mut accept_stake = 0i64;
    let mut reject_stake = 0i64;
    for &(party, vote) in verdicts {
        // A consulted verifier is trusted, hence has positive score; the
        // clamp keeps hostile direct calls (pooling an already-excluded
        // verifier) from producing non-positive stakes.
        let stake = stake_of(party).max(1);
        if vote {
            accept_votes += 1;
            accept_stake += stake;
        } else {
            reject_votes += 1;
            reject_stake += stake;
        }
    }
    let accepted = accept_stake > reject_stake;
    let dissenters = verdicts
        .iter()
        .filter(|&&(_, vote)| vote != accepted)
        .map(|&(party, _)| party)
        .collect();
    MajorityOutcome {
        accepted,
        accept_votes,
        reject_votes,
        accept_stake,
        reject_stake,
        dissenters,
    }
}

/// An immutable point-in-time view of every registered verifier's score.
///
/// Backends publish a fresh snapshot (behind `Arc`) whenever scores
/// change — at the end of [`ReputationBackend::pool_verdicts`] and, for
/// [`GossipReputation`], after an epoch pull or a generation advance.
/// Readers on the consult hot path ([`crate::SessionDriver`]) grab the
/// current `Arc` with one short lock and then read trust checks off it
/// with no further synchronization, so a gossip merge running on another
/// thread can never contend with — or leak a half-merged epoch into — a
/// consult's trust decisions.
///
/// Because snapshots are published *under the backend's data lock*, a
/// snapshot always reflects a complete mutation: either all of a pooled
/// round / merged epoch, or none of it.
///
/// # Examples
///
/// ```
/// use ra_authority::{LocalReputation, Party, ReputationBackend};
///
/// let store = LocalReputation::new();
/// let before = store.snapshot();
/// store.pool_verdicts(&[(Party::Verifier(0), true), (Party::Verifier(1), true)]);
/// let after = store.snapshot();
/// // The stale snapshot is immutable: it still scores everyone as unseen.
/// assert_eq!(before.score(Party::Verifier(0)), LocalReputation::INITIAL);
/// assert_eq!(after.score(Party::Verifier(0)), LocalReputation::INITIAL + 1);
/// assert!(after.version() > before.version());
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReputationSnapshot {
    version: u64,
    panel_version: u64,
    scores: HashMap<Party, i64>,
}

impl ReputationSnapshot {
    /// Monotone publication counter: strictly increases with every
    /// republish, so readers can tell which of two snapshots is fresher.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Monotone *panel* counter: increases only when the trusted-verifier
    /// set changes between consecutive publications — an exclusion
    /// crossing [`EXCLUSION_THRESHOLD`] or a readmission — not on mere
    /// score movement within the trusted band. The certificate cache
    /// stamps entries with this, so a `Replay`-mode hit can tell when
    /// cached advice was minted under an older verification panel while
    /// ordinary honest-traffic score drift keeps hitting.
    pub fn panel_version(&self) -> u64 {
        self.panel_version
    }

    /// Score of a verifier in this view (unseen verifiers score
    /// [`INITIAL_SCORE`], matching the live backends).
    pub fn score(&self, verifier: Party) -> i64 {
        self.scores.get(&verifier).copied().unwrap_or(INITIAL_SCORE)
    }

    /// Returns `true` if the verifier is trusted in this view (above
    /// [`EXCLUSION_THRESHOLD`]).
    pub fn is_trusted(&self, verifier: Party) -> bool {
        self.score(verifier) > EXCLUSION_THRESHOLD
    }

    /// Number of verifiers registered in this view.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// Returns `true` if no verifier has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }
}

/// Whether the trusted-verifier set differs between two score maps,
/// compared over the union of their keys (a party absent from either map
/// scores [`INITIAL_SCORE`], i.e. trusted — so decay-pruned parties are
/// handled too). Drives [`ReputationSnapshot::panel_version`].
fn trusted_set_changed(old: &HashMap<Party, i64>, new: &HashMap<Party, i64>) -> bool {
    let trusted = |scores: &HashMap<Party, i64>, p: Party| {
        scores.get(&p).copied().unwrap_or(INITIAL_SCORE) > EXCLUSION_THRESHOLD
    };
    old.keys()
        .chain(new.keys())
        .any(|&p| trusted(old, p) != trusted(new, p))
}

/// A reputation backend: where verifier trust scores live and how one
/// round of verdicts updates them.
///
/// The session layer ([`crate::SessionDriver`]) is written against this
/// trait, so the same Fig. 1 protocol runs over a process-local score
/// table ([`LocalReputation`]) or a cross-shard gossiped one
/// ([`GossipReputation`]) without change. Implementations must be
/// internally synchronized (`&self` methods, `Send + Sync`).
///
/// # Examples
///
/// Both backends agree on the same verdict stream:
///
/// ```
/// use std::sync::Arc;
/// use ra_authority::{
///     GossipPlane, GossipReputation, LocalReputation, Party, ReputationBackend,
/// };
///
/// let local = LocalReputation::new();
/// let gossip = GossipReputation::new(0, Arc::new(GossipPlane::new()));
/// let round = [(Party::Verifier(0), true), (Party::Verifier(1), false)];
/// let a = ReputationBackend::pool_verdicts(&local, &round);
/// let b = gossip.pool_verdicts(&round);
/// assert_eq!(a, b);
/// assert_eq!(
///     ReputationBackend::score(&local, Party::Verifier(1)),
///     gossip.score(Party::Verifier(1)),
/// );
/// ```
pub trait ReputationBackend: Send + Sync {
    /// Current score of a verifier (unseen verifiers score
    /// [`INITIAL_SCORE`]).
    fn score(&self, verifier: Party) -> i64;

    /// Returns `true` if the verifier is still trusted (above
    /// [`EXCLUSION_THRESHOLD`]).
    fn is_trusted(&self, verifier: Party) -> bool {
        self.score(verifier) > EXCLUSION_THRESHOLD
    }

    /// Pools one round of verdicts `(verifier, accepted)`, updates
    /// reputations toward the majority, and returns the outcome.
    ///
    /// # Panics
    ///
    /// Panics if `verdicts` is empty.
    fn pool_verdicts(&self, verdicts: &[(Party, bool)]) -> MajorityOutcome;

    /// All verifiers this backend has seen that are currently trusted,
    /// sorted for determinism.
    fn trusted_verifiers(&self) -> Vec<Party>;

    /// Records an *unresponsive* observation — distinct from dissent —
    /// against each listed verifier: a resilient session closed its panel
    /// vote degraded and these members never answered within the budget.
    /// Persistent silence costs trust exactly like persistent dissent
    /// (one point per missed panel), so a dead verifier is eventually
    /// excluded and consultations stop waiting on it.
    fn report_unresponsive(&self, silent: &[Party]);

    /// The most recently published immutable score view.
    ///
    /// One short lock to clone the `Arc`; all subsequent reads off the
    /// returned snapshot are lock-free. Backends republish under their
    /// data lock at every mutation, so a snapshot never shows a
    /// half-applied round or half-merged gossip epoch.
    fn snapshot(&self) -> Arc<ReputationSnapshot>;
}

/// Process-local reputation bookkeeping — one mutex-guarded score table.
///
/// Scores start at [`LocalReputation::INITIAL`] and move by ±1 per pooled
/// query depending on agreement with the majority; verifiers at or below
/// [`LocalReputation::EXCLUSION_THRESHOLD`] are excluded. This is the
/// classic store the single-bus [`crate::RationalityAuthority`] always
/// used; it is also each isolated shard's backend under
/// [`crate::ReputationPolicy::Isolated`]. The vote rule is configurable
/// via [`LocalReputation::with_rule`].
#[derive(Debug, Default)]
pub struct LocalReputation {
    rule: VoteRule,
    scores: Mutex<HashMap<Party, i64>>,
    /// Latest immutable score view, republished under the `scores` lock
    /// at the end of every [`LocalReputation::pool_verdicts`].
    snapshot: Mutex<Arc<ReputationSnapshot>>,
}

/// Compatibility alias: the pre-refactor name of [`LocalReputation`].
pub type ReputationStore = LocalReputation;

impl LocalReputation {
    /// Starting reputation score.
    pub const INITIAL: i64 = INITIAL_SCORE;
    /// At or below this score a verifier is no longer consulted.
    pub const EXCLUSION_THRESHOLD: i64 = EXCLUSION_THRESHOLD;

    /// Creates an empty store with the [`VoteRule::Simple`] rule.
    pub fn new() -> LocalReputation {
        LocalReputation::default()
    }

    /// Creates an empty store pooling verdicts under `rule`.
    pub fn with_rule(rule: VoteRule) -> LocalReputation {
        LocalReputation {
            rule,
            scores: Mutex::new(HashMap::new()),
            snapshot: Mutex::new(Arc::new(ReputationSnapshot::default())),
        }
    }

    /// The vote rule this store pools verdicts under.
    pub fn rule(&self) -> VoteRule {
        self.rule
    }

    /// Current score of a verifier (registering it on first touch).
    pub fn score(&self, verifier: Party) -> i64 {
        *self
            .scores
            .lock()
            .expect("reputation lock poisoned")
            .entry(verifier)
            .or_insert(Self::INITIAL)
    }

    /// Returns `true` if the verifier is still trusted (above the exclusion
    /// threshold).
    pub fn is_trusted(&self, verifier: Party) -> bool {
        self.score(verifier) > Self::EXCLUSION_THRESHOLD
    }

    /// Pools one round of verdicts `(verifier, accepted)`, updates
    /// reputations toward the majority, and returns the outcome.
    ///
    /// # Panics
    ///
    /// Panics if `verdicts` is empty.
    pub fn pool_verdicts(&self, verdicts: &[(Party, bool)]) -> MajorityOutcome {
        let mut scores = self.scores.lock().expect("reputation lock poisoned");
        let outcome = match self.rule {
            VoteRule::Simple => pooled_outcome(verdicts, |_| 1),
            VoteRule::Weighted => pooled_outcome(verdicts, |verifier| {
                scores.get(&verifier).copied().unwrap_or(Self::INITIAL)
            }),
        };
        for &(verifier, vote) in verdicts {
            let entry = scores.entry(verifier).or_insert(Self::INITIAL);
            if vote == outcome.accepted {
                *entry += 1;
            } else {
                *entry -= 1;
            }
        }
        // Republish while still holding the scores lock: no other round
        // can interleave between the mutation and its snapshot, so every
        // published view reflects whole rounds only.
        self.republish(&scores);
        outcome
    }

    /// Swaps in a fresh snapshot of `scores`. Callers hold the scores
    /// lock, which serializes republishes with mutations; the snapshot
    /// slot itself is a leaf lock held only for the pointer swap.
    fn republish(&self, scores: &HashMap<Party, i64>) {
        let mut slot = self
            .snapshot
            .lock()
            .expect("reputation snapshot lock poisoned");
        let panel_version = if trusted_set_changed(&slot.scores, scores) {
            slot.panel_version + 1
        } else {
            slot.panel_version
        };
        *slot = Arc::new(ReputationSnapshot {
            version: slot.version + 1,
            panel_version,
            scores: scores.clone(),
        });
    }

    /// Records an unresponsive observation (−1, like a dissent) against
    /// each listed verifier, republishing the snapshot under the same
    /// lock so the panel version moves as soon as a silent verifier
    /// crosses the exclusion threshold.
    pub fn report_unresponsive(&self, silent: &[Party]) {
        if silent.is_empty() {
            return;
        }
        let mut scores = self.scores.lock().expect("reputation lock poisoned");
        for &verifier in silent {
            *scores.entry(verifier).or_insert(Self::INITIAL) -= 1;
        }
        self.republish(&scores);
    }

    /// All verifiers currently trusted, sorted for determinism.
    pub fn trusted_verifiers(&self) -> Vec<Party> {
        let scores = self.scores.lock().expect("reputation lock poisoned");
        let mut out: Vec<Party> = scores
            .iter()
            .filter(|&(_, &s)| s > Self::EXCLUSION_THRESHOLD)
            .map(|(&p, _)| p)
            .collect();
        out.sort();
        out
    }
}

impl ReputationBackend for LocalReputation {
    fn score(&self, verifier: Party) -> i64 {
        LocalReputation::score(self, verifier)
    }

    fn pool_verdicts(&self, verdicts: &[(Party, bool)]) -> MajorityOutcome {
        LocalReputation::pool_verdicts(self, verdicts)
    }

    fn trusted_verifiers(&self) -> Vec<Party> {
        LocalReputation::trusted_verifiers(self)
    }

    fn report_unresponsive(&self, silent: &[Party]) {
        LocalReputation::report_unresponsive(self, silent);
    }

    fn snapshot(&self) -> Arc<ReputationSnapshot> {
        Arc::clone(
            &self
                .snapshot
                .lock()
                .expect("reputation snapshot lock poisoned"),
        )
    }
}

/// A PN-counter: separate grow-only increment and decrement tallies whose
/// difference is the counter's value. Merging takes the componentwise
/// maximum, which is the state-based CRDT join — commutative, associative
/// and idempotent — provided each component is only ever advanced by its
/// owning replica.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PnCounter {
    /// Times the owning replica observed the verifier agree with the
    /// majority.
    pub increments: u64,
    /// Times the owning replica observed the verifier dissent.
    pub decrements: u64,
}

impl PnCounter {
    /// The counter's value: increments minus decrements.
    pub fn value(&self) -> i64 {
        self.increments as i64 - self.decrements as i64
    }

    /// CRDT join: componentwise maximum.
    pub fn merge(&mut self, other: &PnCounter) {
        self.increments = self.increments.max(other.increments);
        self.decrements = self.decrements.max(other.decrements);
    }
}

/// A replica-sharded, *generation-indexed* map of PN-counters: one
/// [`PnCounter`] per `(verifier, replica, generation)` coordinate, where a
/// replica is a shard of the engine and a generation is a gossip epoch
/// index.
///
/// Generations are what make decay merge-safe. A plain PN counter only
/// grows, so "multiply the value by ½" is not expressible as a lattice
/// join — two replicas decaying at different moments would never converge.
/// Segmenting observations by the (globally agreed, epoch-derived)
/// generation keeps every coordinate grow-only: each replica advances only
/// its own `(replica, generation)` cells, closed generations are
/// immutable, and [`DecayingPnCounterMap::merge`] (coordinatewise
/// [`PnCounter::merge`] plus a max of the generation cursors) remains a
/// join — commutative, associative and idempotent, property-tested in
/// `tests/proptests.rs`. Decay is then a pure *read-side* weighting:
/// [`DecayingPnCounterMap::decayed_value`] halves each generation's
/// contribution per generation of age under
/// [`ReputationDecay::HalfLife`], and [`ReputationDecay::None`] reads the
/// undecayed sum (exactly the pre-decay PN-counter semantics).
///
/// The map is kept in `BTreeMap`s so iteration — and therefore the wire
/// encoding used by [`Message::Gossip`] — is deterministic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DecayingPnCounterMap {
    current_gen: u64,
    slots: BTreeMap<Party, BTreeMap<u64, BTreeMap<u64, PnCounter>>>,
}

impl DecayingPnCounterMap {
    /// Creates an empty map at generation 0.
    pub fn new() -> DecayingPnCounterMap {
        DecayingPnCounterMap::default()
    }

    /// The map's generation cursor: records land in this generation.
    pub fn current_generation(&self) -> u64 {
        self.current_gen
    }

    /// Records one observation made by `replica` about `verifier` in the
    /// current generation: `agreed` advances the increment tally, dissent
    /// the decrement tally.
    pub fn record(&mut self, replica: u64, verifier: Party, agreed: bool) {
        let slot = self
            .slots
            .entry(verifier)
            .or_default()
            .entry(replica)
            .or_default()
            .entry(self.current_gen)
            .or_default();
        if agreed {
            slot.increments += 1;
        } else {
            slot.decrements += 1;
        }
    }

    /// Ensures `(replica, verifier)` has a slot in the current generation
    /// without changing any tally (registration on first touch, the
    /// identity of the join).
    pub fn touch(&mut self, replica: u64, verifier: Party) {
        self.slots
            .entry(verifier)
            .or_default()
            .entry(replica)
            .or_default()
            .entry(self.current_gen)
            .or_default();
    }

    /// The counter at one `(verifier, replica, generation)` coordinate,
    /// or `None` if no slot exists there yet.
    pub fn get_counter(&self, replica: u64, verifier: Party, generation: u64) -> Option<PnCounter> {
        self.slots
            .get(&verifier)?
            .get(&replica)?
            .get(&generation)
            .copied()
    }

    /// Replaces the counter at one `(verifier, replica, generation)`
    /// coordinate. This exists for wire decoding and for tests; real
    /// replicas only ever advance their own coordinates through
    /// [`DecayingPnCounterMap::record`], which is what keeps the merge a
    /// CRDT join.
    pub fn set_counter(
        &mut self,
        replica: u64,
        verifier: Party,
        generation: u64,
        counter: PnCounter,
    ) {
        self.slots
            .entry(verifier)
            .or_default()
            .entry(replica)
            .or_default()
            .insert(generation, counter);
    }

    /// Sets the generation cursor (wire decoding; replicas advance through
    /// [`DecayingPnCounterMap::advance_to`]).
    pub fn set_generation(&mut self, generation: u64) {
        self.current_gen = generation;
    }

    /// Advances the generation cursor to `max(current, generation)` and,
    /// under [`ReputationDecay::HalfLife`], prunes generations old enough
    /// to contribute nothing. Replicas advance in lockstep at engine-wide
    /// epoch boundaries, so pruning is deterministic — and because
    /// [`DecayingPnCounterMap::decayed_value`] already ignores generations
    /// past retention, pruning never changes an observable score.
    pub fn advance_to(&mut self, generation: u64, decay: ReputationDecay) {
        self.current_gen = self.current_gen.max(generation);
        if let Some(keep_from) = retention_floor(self.current_gen, decay) {
            for replicas in self.slots.values_mut() {
                for gens in replicas.values_mut() {
                    gens.retain(|&g, _| g >= keep_from);
                }
            }
        }
    }

    /// CRDT join: coordinatewise componentwise maximum, plus a max of the
    /// generation cursors.
    pub fn merge(&mut self, other: &DecayingPnCounterMap) {
        self.current_gen = self.current_gen.max(other.current_gen);
        for (&verifier, replicas) in &other.slots {
            let own = self.slots.entry(verifier).or_default();
            for (&replica, gens) in replicas {
                let own_gens = own.entry(replica).or_default();
                for (&generation, counter) in gens {
                    own_gens.entry(generation).or_default().merge(counter);
                }
            }
        }
    }

    /// The verifier's undecayed global value: the sum of its counters
    /// across every replica and generation.
    pub fn value(&self, verifier: Party) -> i64 {
        self.decayed_value(verifier, ReputationDecay::None)
    }

    /// The verifier's global value under `decay`: per generation, the
    /// summed counter values across replicas, weighted by
    /// `1 / 2^(current_gen - generation)` (truncating division, so old
    /// single observations fade to exactly zero) and dropped entirely at
    /// `retention` generations of age.
    ///
    /// This runs on the consult hot path ([`ReputationBackend::score`]),
    /// so the undecayed read is a plain allocation-free sum; only the
    /// half-life read pays for a per-generation aggregation (truncating
    /// division does not distribute over addition, so generations must be
    /// summed before weighting).
    pub fn decayed_value(&self, verifier: Party, decay: ReputationDecay) -> i64 {
        let Some(replicas) = self.slots.get(&verifier) else {
            return 0;
        };
        let ReputationDecay::HalfLife { retention } = decay else {
            return replicas
                .values()
                .flat_map(BTreeMap::values)
                .map(PnCounter::value)
                .sum();
        };
        let mut by_generation: BTreeMap<u64, i64> = BTreeMap::new();
        for gens in replicas.values() {
            for (&generation, counter) in gens {
                *by_generation.entry(generation).or_insert(0) += counter.value();
            }
        }
        by_generation
            .iter()
            .map(|(&generation, &raw)| {
                let age = self.current_gen.saturating_sub(generation);
                if age >= u64::from(retention) || age >= 63 {
                    0
                } else {
                    raw / (1i64 << age)
                }
            })
            .sum()
    }

    /// Every verifier with at least one slot, sorted.
    pub fn verifiers(&self) -> Vec<Party> {
        self.slots.keys().copied().collect()
    }

    /// Number of `(verifier, replica, generation)` slots.
    pub fn len(&self) -> usize {
        self.slots
            .values()
            .flat_map(BTreeMap::values)
            .map(BTreeMap::len)
            .sum()
    }

    /// Returns `true` if no slot exists yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates every `(verifier, replica, generation, counter)` slot in
    /// sorted order (the wire-encoding order).
    pub fn iter_slots(&self) -> impl Iterator<Item = (Party, u64, u64, PnCounter)> + '_ {
        self.slots.iter().flat_map(|(&verifier, replicas)| {
            replicas.iter().flat_map(move |(&replica, gens)| {
                gens.iter()
                    .map(move |(&generation, &counter)| (verifier, replica, generation, counter))
            })
        })
    }

    /// The sub-map holding only `replica`'s own coordinates (every
    /// generation), carrying the same generation cursor — the delta a
    /// shard publishes at an epoch boundary. Bounded by the verifiers the
    /// shard has seen, not by the engine-wide merged state.
    pub fn replica_slice(&self, replica: u64) -> DecayingPnCounterMap {
        let mut out = DecayingPnCounterMap {
            current_gen: self.current_gen,
            slots: BTreeMap::new(),
        };
        for (&verifier, replicas) in &self.slots {
            if let Some(gens) = replicas.get(&replica) {
                out.slots
                    .entry(verifier)
                    .or_default()
                    .insert(replica, gens.clone());
            }
        }
        out
    }
}

/// The oldest generation still inside the retention window at
/// `generation` under `decay`, or `None` when nothing is ever pruned.
/// Shared by [`DecayingPnCounterMap::advance_to`] and the gossip hub's
/// slot-index pruning, so the merged state and the per-slot version index
/// can never desynchronize — versioned pulls are only sound if a slot is
/// pruned from both (or neither).
fn retention_floor(generation: u64, decay: ReputationDecay) -> Option<u64> {
    match decay {
        ReputationDecay::None => None,
        ReputationDecay::HalfLife { retention } => {
            Some(generation.saturating_sub(u64::from(retention).saturating_sub(1)))
        }
    }
}

/// A per-source version vector: source shard (replica id) → the highest
/// hub version of that replica's rows the holder has merged.
///
/// The gossip hub bumps a replica's version every time a publish actually
/// changes that replica's rows of the merged state, and remembers per
/// `(verifier, generation)` slot the version at which it last changed.
/// A shard pulling with its vector as a watermark therefore receives only
/// the slots it has not seen — the delta-state replication trick of the
/// delta-CRDT literature — instead of the hub's full merged snapshot, so
/// pull payloads are bounded by unseen updates rather than by
/// verifiers × shards × retained generations. An up-to-date shard pulls
/// for zero wire bytes: the hub sends no frame at all.
///
/// # Examples
///
/// ```
/// use ra_authority::VersionVector;
///
/// let mut seen = VersionVector::new();
/// assert_eq!(seen.get(3), 0, "never-seen sources are at version 0");
/// seen.set(3, 2);
/// let mut newer = VersionVector::new();
/// newer.set(3, 1);
/// newer.set(4, 7);
/// seen.merge(&newer);
/// assert_eq!(seen.get(3), 2, "merge is a pointwise max");
/// assert_eq!(seen.get(4), 7);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VersionVector {
    entries: BTreeMap<u64, u64>,
}

impl VersionVector {
    /// An empty vector: every source is at version 0.
    pub fn new() -> VersionVector {
        VersionVector::default()
    }

    /// The recorded version for `replica` (0 when never seen).
    pub fn get(&self, replica: u64) -> u64 {
        self.entries.get(&replica).copied().unwrap_or(0)
    }

    /// Sets the version for `replica`.
    pub fn set(&mut self, replica: u64, version: u64) {
        self.entries.insert(replica, version);
    }

    /// Pointwise maximum — the join of two vectors.
    pub fn merge(&mut self, other: &VersionVector) {
        for (&replica, &version) in &other.entries {
            let entry = self.entries.entry(replica).or_insert(0);
            *entry = (*entry).max(version);
        }
    }

    /// Iterates `(replica, version)` entries in replica order (the wire
    /// encoding order).
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.entries.iter().map(|(&r, &v)| (r, v))
    }

    /// Number of sources with a recorded version.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no source has a recorded version yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The hub side of the versioned gossip protocol: the merged CRDT state
/// plus the per-generation change index that lets pulls ship deltas.
#[derive(Debug, Default)]
struct HubState {
    merged: DecayingPnCounterMap,
    /// Per replica: the version of that replica's rows (bumped on every
    /// publish that changes them).
    versions: VersionVector,
    /// Per replica: `(verifier, generation)` → the version at which that
    /// slot of the merged state last changed.
    slot_versions: BTreeMap<u64, BTreeMap<(Party, u64), u64>>,
}

impl HubState {
    /// Joins `delta` into the merged state, bumping the version of every
    /// replica whose rows actually changed and indexing each changed slot
    /// under the new version. Re-delivering already-merged state changes
    /// nothing — including the versions, so idle re-publishes never make
    /// peers re-pull.
    fn ingest(&mut self, delta: &DecayingPnCounterMap) {
        let mut bumped: BTreeMap<u64, u64> = BTreeMap::new();
        for (verifier, replica, generation, counter) in delta.iter_slots() {
            let own = self.merged.get_counter(replica, verifier, generation);
            let mut joined = own.unwrap_or_default();
            joined.merge(&counter);
            if Some(joined) != own {
                self.merged
                    .set_counter(replica, verifier, generation, joined);
                let version = *bumped
                    .entry(replica)
                    .or_insert_with(|| self.versions.get(replica) + 1);
                self.slot_versions
                    .entry(replica)
                    .or_default()
                    .insert((verifier, generation), version);
            }
        }
        for (replica, version) in bumped {
            self.versions.set(replica, version);
        }
        if delta.current_generation() > self.merged.current_generation() {
            self.merged.set_generation(delta.current_generation());
        }
    }

    /// The slots `seen` has not merged yet, excluding `for_shard`'s own
    /// rows (the hub only ever knows a subset of what the shard itself
    /// holds, so shipping them back would be pure redundancy). The delta
    /// carries the hub's generation cursor.
    fn delta_since(&self, for_shard: u64, seen: &VersionVector) -> DecayingPnCounterMap {
        let mut out = DecayingPnCounterMap::new();
        out.set_generation(self.merged.current_generation());
        for (&replica, slots) in &self.slot_versions {
            if replica == for_shard {
                continue;
            }
            let watermark = seen.get(replica);
            if self.versions.get(replica) <= watermark {
                continue;
            }
            for (&(verifier, generation), &version) in slots {
                if version > watermark {
                    if let Some(counter) = self.merged.get_counter(replica, verifier, generation) {
                        out.set_counter(replica, verifier, generation, counter);
                    }
                }
            }
        }
        out
    }

    /// Prunes generations old enough to contribute nothing under `decay`
    /// from the merged state *and* the change index, so hub memory — and
    /// with it the worst-case pull — stays bounded by the retention
    /// window. Pruned slots are never shipped again; that is sound because
    /// [`DecayingPnCounterMap::decayed_value`] already ignores them.
    fn prune(&mut self, decay: ReputationDecay) {
        let generation = self.merged.current_generation();
        self.merged.advance_to(generation, decay);
        if let Some(keep_from) = retention_floor(generation, decay) {
            for slots in self.slot_versions.values_mut() {
                slots.retain(|&(_, g), _| g >= keep_from);
            }
        }
    }
}

/// The shared rendezvous of the gossip backends: the join of every state
/// published so far. Shards touch it only at epoch boundaries (publish /
/// pull), never on the consult hot path.
///
/// Built with [`GossipPlane::new`] the plane is a plain in-memory join —
/// merges cost no simulated network traffic. Built with
/// [`GossipPlane::over_bus`] the plane owns a dedicated inter-shard
/// [`Bus`]: every publish is a real framed [`Message::Gossip`] send from
/// `Party::Shard(s)` to [`GOSSIP_HUB`], every pull a framed send back, so
/// control-plane bytes land in the same Lemma 1 accounting as
/// consultation traffic (and are subject to the same fault injection —
/// a dropped frame is simply never merged).
///
/// Pulls are *versioned*: the hub indexes every merged slot by the
/// [`VersionVector`] version at which it last changed, and
/// [`GossipPlane::pull_into`] ships only the slots above the caller's
/// watermark — nothing at all when the caller is up to date. A pull reply
/// dropped by fault injection leaves the caller's watermark untouched, so
/// the missed delta is simply re-shipped by the next successful pull.
#[derive(Debug, Default)]
pub struct GossipPlane {
    hub: Mutex<HubState>,
    decay: ReputationDecay,
    transport: Option<GossipTransport>,
}

/// The transport wiring of a [`GossipPlane::over_bus`] /
/// [`GossipPlane::over_transport_with`] plane.
#[derive(Debug)]
struct GossipTransport {
    bus: Arc<dyn Transport>,
    hub: Mutex<Endpoint>,
    shard_endpoints: Mutex<HashMap<u64, Endpoint>>,
}

impl GossipTransport {
    /// Registers `shard`'s endpoint on first use.
    fn ensure_shard(&self, shard: u64) {
        let mut endpoints = self
            .shard_endpoints
            .lock()
            .expect("gossip endpoints lock poisoned");
        endpoints
            .entry(shard)
            .or_insert_with(|| self.bus.register(Party::Shard(shard)));
    }
}

impl GossipPlane {
    /// Creates an empty in-memory plane (no bus, merges are free).
    pub fn new() -> GossipPlane {
        GossipPlane::default()
    }

    /// Creates an empty plane whose merges travel over a dedicated
    /// inter-shard [`Bus`] as framed [`Message::Gossip`] sends.
    pub fn over_bus() -> GossipPlane {
        GossipPlane::over_bus_with(ReputationDecay::None)
    }

    /// Like [`GossipPlane::over_bus`], but the plane knows the engine's
    /// decay policy and prunes aged-out generations from its merged state
    /// after every publish. Without this the hub — which only ever joins
    /// — would accumulate one generation per epoch forever, and the pull
    /// snapshots it frames onto the bus would grow without bound.
    /// Pruning only drops generations [`DecayingPnCounterMap::decayed_value`]
    /// already ignores, so no observable score changes.
    pub fn over_bus_with(decay: ReputationDecay) -> GossipPlane {
        GossipPlane::over_transport_with(decay, Arc::new(Bus::new()))
    }

    /// Like [`GossipPlane::over_bus_with`], but over an explicit
    /// [`Transport`] — this is how a [`crate::SimNet`] gets under the
    /// control plane, so gossip frames can be delayed, dropped, or cut off
    /// by a partition schedule like any other traffic.
    pub fn over_transport_with(
        decay: ReputationDecay,
        transport: Arc<dyn Transport>,
    ) -> GossipPlane {
        let hub = transport.register(GOSSIP_HUB);
        GossipPlane {
            hub: Mutex::new(HubState::default()),
            decay,
            transport: Some(GossipTransport {
                bus: transport,
                hub: Mutex::new(hub),
                shard_endpoints: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// The inter-shard gossip bus, if this plane was built with
    /// [`GossipPlane::over_bus`] — byte accounting and fault injection for
    /// the control plane.
    pub fn gossip_bus(&self) -> Option<&dyn Transport> {
        self.transport.as_ref().map(|t| &*t.bus)
    }

    /// Joins `delta` (normally a shard's
    /// [`DecayingPnCounterMap::replica_slice`], taken by value so the
    /// frame is delivered by move — no payload clone on the publish path)
    /// into the plane. Over a bus, the delta travels as a framed
    /// [`Message::Gossip`] from `Party::Shard(from_shard)` to
    /// [`GOSSIP_HUB`]; a frame dropped by fault injection is accounted but
    /// never merged.
    pub fn publish_from(&self, from_shard: u64, delta: DecayingPnCounterMap) {
        match &self.transport {
            None => {
                let mut hub = self.hub.lock().expect("gossip plane lock poisoned");
                hub.ingest(&delta);
                hub.prune(self.decay);
            }
            Some(transport) => {
                transport.ensure_shard(from_shard);
                transport
                    .bus
                    .send(
                        Party::Shard(from_shard),
                        GOSSIP_HUB,
                        Message::Gossip {
                            delta,
                            versions: VersionVector::new(),
                        },
                    )
                    .expect("gossip hub endpoint registered");
                // Land any latency-delayed frames before the hub drains
                // (no-op on the perfect bus).
                transport.bus.settle();
                let endpoint = transport.hub.lock().expect("gossip hub lock poisoned");
                let mut hub = self.hub.lock().expect("gossip plane lock poisoned");
                for (_, message) in endpoint.drain() {
                    if let Message::Gossip { delta, .. } = message {
                        hub.ingest(&delta);
                    }
                }
                // Keep the hub state — and with it every future pull
                // delta — bounded under decay.
                hub.prune(self.decay);
            }
        }
    }

    /// Joins everything `seen` has not witnessed yet into `state`, and
    /// advances `seen` to the hub's current versions. Over a bus, the
    /// delta travels as a framed [`Message::Gossip`] from [`GOSSIP_HUB`]
    /// to `Party::Shard(to_shard)` — unless the caller is already up to
    /// date, in which case *no frame is sent at all*: an idle pull costs
    /// zero wire bytes instead of re-framing the full merged snapshot.
    pub fn pull_into(
        &self,
        to_shard: u64,
        state: &mut DecayingPnCounterMap,
        seen: &mut VersionVector,
    ) {
        let (delta, versions) = {
            let hub = self.hub.lock().expect("gossip plane lock poisoned");
            (hub.delta_since(to_shard, seen), hub.versions.clone())
        };
        match &self.transport {
            None => {
                state.merge(&delta);
                seen.merge(&versions);
            }
            Some(transport) => {
                transport.ensure_shard(to_shard);
                if delta.is_empty() && delta.current_generation() <= state.current_generation() {
                    // Nothing unseen — no slots, and the hub's generation
                    // cursor is not ahead of the caller's — so no frame
                    // at all. An empty delta proves every hub version is
                    // already covered (its changes were merged earlier,
                    // pruned, or are the puller's own rows), so the
                    // watermark still advances, exactly as the in-memory
                    // path's would. (A cursor-only advance still ships a
                    // slotless frame: decayed reads depend on the local
                    // cursor, so it must propagate even when no counter
                    // changed.)
                    seen.merge(&versions);
                    return;
                }
                transport
                    .bus
                    .send(
                        GOSSIP_HUB,
                        Party::Shard(to_shard),
                        Message::Gossip { delta, versions },
                    )
                    .expect("gossip shard endpoint registered");
                transport.bus.settle();
                let endpoints = transport
                    .shard_endpoints
                    .lock()
                    .expect("gossip endpoints lock poisoned");
                let endpoint = endpoints
                    .get(&to_shard)
                    .expect("shard endpoint ensured above");
                // A frame dropped by fault injection never reaches the
                // drain: the state and the watermark both stay put, and
                // the missed delta is re-shipped on the next clean pull.
                for (_, message) in endpoint.drain() {
                    if let Message::Gossip { delta, versions } = message {
                        state.merge(&delta);
                        seen.merge(&versions);
                    }
                }
            }
        }
    }
}

/// A gossiping reputation backend: one per shard, all sharing a
/// [`GossipPlane`].
///
/// On the consult hot path ([`ReputationBackend::pool_verdicts`],
/// [`ReputationBackend::score`]) only this shard's own mutex is taken;
/// observations land in the shard's replica slots of a local
/// [`DecayingPnCounterMap`]. At epoch boundaries — every `every`
/// consultations when driven by [`crate::ShardedAuthority`], or on an
/// explicit [`GossipReputation::sync`] — the shard's own slice is
/// published to the plane and the plane's join is pulled back, so a
/// verifier voted out anywhere is excluded everywhere within one epoch. A
/// verifier's score is [`INITIAL_SCORE`] plus the (possibly decayed)
/// summed counter values across all replicas this shard has seen.
#[derive(Debug)]
pub struct GossipReputation {
    shard: u64,
    plane: Arc<GossipPlane>,
    rule: VoteRule,
    decay: ReputationDecay,
    local: Mutex<DecayingPnCounterMap>,
    /// Versioned-pull watermark: the highest hub version of every peer
    /// replica's rows this shard has merged ([`GossipPlane::pull_into`]).
    seen: Mutex<VersionVector>,
    /// Latest immutable score view, republished under the `local` lock
    /// after every pooled round, epoch pull and generation advance.
    snapshot: Mutex<Arc<ReputationSnapshot>>,
}

impl GossipReputation {
    /// Creates the backend for `shard`, wired to the shared `plane`, with
    /// [`VoteRule::Simple`] and no decay.
    pub fn new(shard: u64, plane: Arc<GossipPlane>) -> GossipReputation {
        GossipReputation::with_config(shard, plane, VoteRule::Simple, ReputationDecay::None)
    }

    /// Creates the backend for `shard` with an explicit vote rule and
    /// decay policy.
    ///
    /// # Panics
    ///
    /// Panics on [`ReputationDecay::HalfLife`] with a zero retention — a
    /// zero-generation memory would silently zero every score.
    pub fn with_config(
        shard: u64,
        plane: Arc<GossipPlane>,
        rule: VoteRule,
        decay: ReputationDecay,
    ) -> GossipReputation {
        if let ReputationDecay::HalfLife { retention } = decay {
            assert!(retention > 0, "decay retention must be positive");
        }
        GossipReputation {
            shard,
            plane,
            rule,
            decay,
            local: Mutex::new(DecayingPnCounterMap::new()),
            seen: Mutex::new(VersionVector::new()),
            snapshot: Mutex::new(Arc::new(ReputationSnapshot::default())),
        }
    }

    /// Swaps in a fresh snapshot of `local`. Callers hold the local lock,
    /// so a snapshot can only ever capture a fully applied round, fully
    /// merged epoch, or fully advanced generation — never the middle of
    /// one.
    fn republish(&self, local: &DecayingPnCounterMap) {
        let scores = local
            .verifiers()
            .into_iter()
            .map(|p| (p, INITIAL_SCORE + local.decayed_value(p, self.decay)))
            .collect();
        let mut slot = self.snapshot.lock().expect("gossip snapshot lock poisoned");
        let panel_version = if trusted_set_changed(&slot.scores, &scores) {
            slot.panel_version + 1
        } else {
            slot.panel_version
        };
        *slot = Arc::new(ReputationSnapshot {
            version: slot.version + 1,
            panel_version,
            scores,
        });
    }

    /// The shard (replica id) this backend writes observations under.
    pub fn shard(&self) -> u64 {
        self.shard
    }

    /// The vote rule this backend pools verdicts under.
    pub fn rule(&self) -> VoteRule {
        self.rule
    }

    /// The decay policy applied when reading scores.
    pub fn decay(&self) -> ReputationDecay {
        self.decay
    }

    /// Publishes this shard's own slice to the plane (first half of an
    /// epoch merge). The full slice is re-published every time — pushes
    /// are fire-and-forget, so the redundancy is what lets a push dropped
    /// by fault injection heal on the next epoch.
    pub fn push(&self) {
        let slice = {
            let local = self.local.lock().expect("gossip local lock poisoned");
            local.replica_slice(self.shard)
        };
        self.plane.publish_from(self.shard, slice);
    }

    /// Pulls everything this shard has not seen from the plane's join
    /// into its local state (second half of an epoch merge). Versioned: an
    /// up-to-date shard pulls for zero wire bytes.
    pub fn pull(&self) {
        let mut local = self.local.lock().expect("gossip local lock poisoned");
        let mut seen = self.seen.lock().expect("gossip watermark lock poisoned");
        self.plane.pull_into(self.shard, &mut local, &mut seen);
        self.republish(&local);
    }

    /// One-shard epoch merge: publish, then pull. Brings this shard up to
    /// date with everything published so far; for a barrier merge across
    /// all shards (everyone sees everyone), push all shards first and pull
    /// all shards second — [`crate::ShardedAuthority::sync_reputation`]
    /// does exactly that.
    pub fn sync(&self) {
        self.push();
        self.pull();
    }

    /// Advances this shard's generation cursor (new observations land in
    /// the new generation; old generations start decaying under
    /// [`ReputationDecay::HalfLife`]). Driven by
    /// [`crate::ShardedAuthority`] at engine-wide epoch boundaries so all
    /// shards advance in lockstep.
    pub fn advance_generation(&self, generation: u64) {
        let mut local = self.local.lock().expect("gossip local lock poisoned");
        local.advance_to(generation, self.decay);
        self.republish(&local);
    }

    /// The shard's current generation cursor.
    pub fn current_generation(&self) -> u64 {
        self.local
            .lock()
            .expect("gossip local lock poisoned")
            .current_generation()
    }
}

impl ReputationBackend for GossipReputation {
    fn score(&self, verifier: Party) -> i64 {
        let mut local = self.local.lock().expect("gossip local lock poisoned");
        local.touch(self.shard, verifier);
        INITIAL_SCORE + local.decayed_value(verifier, self.decay)
    }

    fn pool_verdicts(&self, verdicts: &[(Party, bool)]) -> MajorityOutcome {
        let mut local = self.local.lock().expect("gossip local lock poisoned");
        let outcome = match self.rule {
            VoteRule::Simple => pooled_outcome(verdicts, |_| 1),
            VoteRule::Weighted => pooled_outcome(verdicts, |verifier| {
                INITIAL_SCORE + local.decayed_value(verifier, self.decay)
            }),
        };
        for &(verifier, vote) in verdicts {
            local.record(self.shard, verifier, vote == outcome.accepted);
        }
        self.republish(&local);
        outcome
    }

    fn trusted_verifiers(&self) -> Vec<Party> {
        let local = self.local.lock().expect("gossip local lock poisoned");
        local
            .verifiers()
            .into_iter()
            .filter(|&p| INITIAL_SCORE + local.decayed_value(p, self.decay) > EXCLUSION_THRESHOLD)
            .collect()
    }

    fn report_unresponsive(&self, silent: &[Party]) {
        if silent.is_empty() {
            return;
        }
        let mut local = self.local.lock().expect("gossip local lock poisoned");
        for &verifier in silent {
            // Mechanically a decrement on the CRDT — the same tally a
            // dissent pays — so the observation gossips to every shard
            // with the ordinary epoch merges.
            local.record(self.shard, verifier, false);
        }
        self.republish(&local);
    }

    fn snapshot(&self) -> Arc<ReputationSnapshot> {
        Arc::clone(&self.snapshot.lock().expect("gossip snapshot lock poisoned"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u64) -> Party {
        Party::Verifier(i)
    }

    #[test]
    fn majority_decides_and_updates() {
        let store = LocalReputation::new();
        let outcome = store.pool_verdicts(&[(v(0), true), (v(1), true), (v(2), false)]);
        assert!(outcome.accepted);
        assert_eq!(outcome.accept_votes, 2);
        assert_eq!(outcome.accept_stake, 2, "simple rule: stake == votes");
        assert_eq!(outcome.dissenters, vec![v(2)]);
        assert_eq!(store.score(v(0)), LocalReputation::INITIAL + 1);
        assert_eq!(store.score(v(2)), LocalReputation::INITIAL - 1);
    }

    #[test]
    fn ties_reject() {
        let store = LocalReputation::new();
        let outcome = store.pool_verdicts(&[(v(0), true), (v(1), false)]);
        assert!(!outcome.accepted, "ties resolve to the safe side");
    }

    #[test]
    fn even_split_penalizes_accept_voters() {
        // A 2-2 tie rejects, so the accept voters are the dissenters and
        // lose a point while the reject voters gain one.
        let store = LocalReputation::new();
        let outcome =
            store.pool_verdicts(&[(v(0), true), (v(1), true), (v(2), false), (v(3), false)]);
        assert!(!outcome.accepted);
        assert_eq!(outcome.dissenters, vec![v(0), v(1)]);
        assert_eq!(store.score(v(0)), LocalReputation::INITIAL - 1);
        assert_eq!(store.score(v(1)), LocalReputation::INITIAL - 1);
        assert_eq!(store.score(v(2)), LocalReputation::INITIAL + 1);
        assert_eq!(store.score(v(3)), LocalReputation::INITIAL + 1);
    }

    #[test]
    fn persistent_deviants_get_excluded() {
        let store = LocalReputation::new();
        // Verifier 2 always disagrees with the honest majority.
        for _ in 0..LocalReputation::INITIAL {
            store.pool_verdicts(&[(v(0), true), (v(1), true), (v(2), false)]);
        }
        assert!(!store.is_trusted(v(2)));
        assert!(store.is_trusted(v(0)));
        assert_eq!(store.trusted_verifiers(), vec![v(0), v(1)]);
    }

    #[test]
    fn recovery_is_possible() {
        let store = LocalReputation::new();
        for _ in 0..3 {
            store.pool_verdicts(&[(v(0), true), (v(1), true), (v(2), false)]);
        }
        let before = store.score(v(2));
        for _ in 0..5 {
            store.pool_verdicts(&[(v(0), true), (v(1), true), (v(2), true)]);
        }
        assert!(store.score(v(2)) > before);
    }

    #[test]
    fn recovered_verifier_reappears_in_trusted_set() {
        let store = LocalReputation::new();
        // Drive verifier 2 to the exclusion threshold…
        for _ in 0..LocalReputation::INITIAL {
            store.pool_verdicts(&[(v(0), true), (v(1), true), (v(2), false)]);
        }
        assert_eq!(store.trusted_verifiers(), vec![v(0), v(1)]);
        // …then let it agree with the majority until it climbs back over.
        store.pool_verdicts(&[(v(0), true), (v(1), true), (v(2), true)]);
        assert!(store.is_trusted(v(2)));
        assert_eq!(store.trusted_verifiers(), vec![v(0), v(1), v(2)]);
    }

    #[test]
    #[should_panic(expected = "at least one verdict")]
    fn empty_pool_panics() {
        LocalReputation::new().pool_verdicts(&[]);
    }

    #[test]
    fn weighted_rule_lets_stake_outvote_headcount() {
        // Verifier 0 earns stake by agreeing with rounds where everyone
        // votes the same way; then its single vote outweighs two
        // newcomers under the weighted rule.
        let store = LocalReputation::with_rule(VoteRule::Weighted);
        for _ in 0..25 {
            store.pool_verdicts(&[(v(0), false), (v(9), false)]);
        }
        assert_eq!(store.score(v(0)), LocalReputation::INITIAL + 25);
        let outcome = store.pool_verdicts(&[(v(0), false), (v(1), true), (v(2), true)]);
        assert!(
            !outcome.accepted,
            "35 stake on reject beats 20 on accept despite the 2-1 headcount"
        );
        assert_eq!(outcome.accept_votes, 2);
        assert_eq!(outcome.reject_votes, 1);
        assert!(outcome.reject_stake > outcome.accept_stake);
        assert_eq!(outcome.dissenters, vec![v(1), v(2)]);
    }

    #[test]
    fn weighted_rule_ties_still_reject() {
        let store = LocalReputation::with_rule(VoteRule::Weighted);
        // Equal stakes, one vote each way: stake tie → reject.
        let outcome = store.pool_verdicts(&[(v(0), true), (v(1), false)]);
        assert!(!outcome.accepted);
        assert_eq!(outcome.accept_stake, outcome.reject_stake);
    }

    #[test]
    fn weighted_and_simple_agree_on_fresh_panels() {
        // With all-equal stakes the weighted rule degenerates to the
        // simple one.
        let simple = LocalReputation::new();
        let weighted = LocalReputation::with_rule(VoteRule::Weighted);
        let round = [(v(0), true), (v(1), true), (v(2), false)];
        let a = simple.pool_verdicts(&round);
        let b = weighted.pool_verdicts(&round);
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.dissenters, b.dissenters);
    }

    #[test]
    fn backends_agree_through_the_trait() {
        // The same verdict stream produces the same scores whether the
        // backend is local or a single-shard gossip instance.
        let local = LocalReputation::new();
        let gossip = GossipReputation::new(0, Arc::new(GossipPlane::new()));
        let rounds = [
            vec![(v(0), true), (v(1), true), (v(2), false)],
            vec![(v(0), false), (v(1), false), (v(2), false)],
            vec![(v(0), true), (v(1), false)],
        ];
        for round in &rounds {
            let a = ReputationBackend::pool_verdicts(&local, round);
            let b = gossip.pool_verdicts(round);
            assert_eq!(a, b);
        }
        for i in 0..3 {
            assert_eq!(
                ReputationBackend::score(&local, v(i)),
                gossip.score(v(i)),
                "verifier {i}"
            );
        }
        assert_eq!(
            ReputationBackend::trusted_verifiers(&local),
            gossip.trusted_verifiers()
        );
    }

    #[test]
    fn pn_counter_map_sums_across_replicas() {
        let mut map = DecayingPnCounterMap::new();
        map.record(0, v(7), false);
        map.record(1, v(7), false);
        map.record(2, v(7), true);
        assert_eq!(map.value(v(7)), -1);
        assert_eq!(map.verifiers(), vec![v(7)]);
        assert_eq!(map.len(), 3);
    }

    #[test]
    fn decayed_value_halves_per_generation() {
        let mut map = DecayingPnCounterMap::new();
        let decay = ReputationDecay::HalfLife { retention: 4 };
        for _ in 0..8 {
            map.record(0, v(1), false); // -8 in generation 0
        }
        assert_eq!(map.decayed_value(v(1), decay), -8);
        map.advance_to(1, decay);
        assert_eq!(map.decayed_value(v(1), decay), -4);
        map.advance_to(2, decay);
        assert_eq!(map.decayed_value(v(1), decay), -2);
        map.advance_to(3, decay);
        assert_eq!(map.decayed_value(v(1), decay), -1);
        // At retention the generation stops counting (and is pruned).
        map.advance_to(4, decay);
        assert_eq!(map.decayed_value(v(1), decay), 0);
        assert!(map.is_empty(), "pruned at retention");
        // Undecayed reads of the same data would have kept the full -8.
        let mut undecayed = DecayingPnCounterMap::new();
        for _ in 0..8 {
            undecayed.record(0, v(1), false);
        }
        undecayed.advance_to(4, ReputationDecay::None);
        assert_eq!(undecayed.value(v(1)), -8);
    }

    #[test]
    fn decay_forgives_single_ancient_dissent() {
        // A lone dissent decays to zero after one generation (truncating
        // division), so a single ancient mistake stops mattering.
        let decay = ReputationDecay::HalfLife { retention: 8 };
        let mut map = DecayingPnCounterMap::new();
        map.record(0, v(1), false);
        map.advance_to(1, decay);
        assert_eq!(map.decayed_value(v(1), decay), 0);
    }

    #[test]
    fn pruning_does_not_change_observable_value() {
        let decay = ReputationDecay::HalfLife { retention: 3 };
        let mut pruned = DecayingPnCounterMap::new();
        let mut unpruned = DecayingPnCounterMap::new();
        for gen in 0..6u64 {
            for _ in 0..4 {
                pruned.record(0, v(1), gen % 2 == 0);
                unpruned.record(0, v(1), gen % 2 == 0);
            }
            pruned.advance_to(gen + 1, decay);
            unpruned.advance_to(gen + 1, ReputationDecay::None);
            unpruned.set_generation(gen + 1);
            assert_eq!(
                pruned.decayed_value(v(1), decay),
                unpruned.decayed_value(v(1), decay),
                "generation {gen}"
            );
        }
        assert!(pruned.len() < unpruned.len(), "pruning reclaimed slots");
    }

    #[test]
    fn replica_slice_extracts_own_rows() {
        let mut map = DecayingPnCounterMap::new();
        map.record(0, v(1), true);
        map.record(1, v(1), false);
        map.record(0, v(2), false);
        let slice = map.replica_slice(0);
        assert_eq!(slice.len(), 2);
        assert_eq!(slice.value(v(1)), 1, "replica 1's dissent not included");
        assert_eq!(slice.value(v(2)), -1);
        assert_eq!(slice.current_generation(), map.current_generation());
    }

    #[test]
    fn gossip_exclusion_crosses_shards_after_sync() {
        let plane = Arc::new(GossipPlane::new());
        let a = GossipReputation::new(0, plane.clone());
        let b = GossipReputation::new(1, plane);
        // Verifier 2 dissents INITIAL times — all observed on shard 0.
        for _ in 0..INITIAL_SCORE {
            a.pool_verdicts(&[(v(0), true), (v(1), true), (v(2), false)]);
        }
        assert!(!a.is_trusted(v(2)), "observing shard excludes immediately");
        assert!(b.is_trusted(v(2)), "peer shard has not gossiped yet");
        a.push();
        b.pull();
        assert!(!b.is_trusted(v(2)), "one epoch propagates the exclusion");
        assert_eq!(b.trusted_verifiers(), vec![v(0), v(1)]);
    }

    #[test]
    fn gossip_sync_is_idempotent() {
        let plane = Arc::new(GossipPlane::new());
        let a = GossipReputation::new(0, plane.clone());
        let b = GossipReputation::new(1, plane);
        a.pool_verdicts(&[(v(0), true), (v(1), false)]);
        b.pool_verdicts(&[(v(0), true), (v(1), true)]);
        for _ in 0..3 {
            a.sync();
            b.sync();
        }
        let score_a = a.score(v(1));
        a.sync();
        assert_eq!(a.score(v(1)), score_a, "re-syncing changes nothing");
        assert_eq!(a.score(v(0)), b.score(v(0)));
        assert_eq!(a.score(v(1)), b.score(v(1)));
    }

    #[test]
    fn bus_carried_plane_reaches_the_same_state_and_accounts_bytes() {
        // The same observations through an in-memory plane and a
        // bus-carried plane converge on identical scores; only the
        // bus-carried one generates accounted traffic.
        let free = Arc::new(GossipPlane::new());
        let framed = Arc::new(GossipPlane::over_bus());
        let run = |plane: &Arc<GossipPlane>| {
            let a = GossipReputation::new(0, plane.clone());
            let b = GossipReputation::new(1, plane.clone());
            for _ in 0..4 {
                a.pool_verdicts(&[(v(0), true), (v(1), false)]);
                b.pool_verdicts(&[(v(0), true), (v(1), true)]);
            }
            a.push();
            b.push();
            a.pull();
            b.pull();
            (a.score(v(0)), a.score(v(1)), b.score(v(0)), b.score(v(1)))
        };
        assert_eq!(run(&free), run(&framed));
        assert!(free.gossip_bus().is_none());
        let bus = framed.gossip_bus().expect("bus-carried plane");
        assert_eq!(bus.message_count(), 4, "2 pushes + 2 pulls");
        assert!(bus.total_bytes() > 0, "gossip frames are byte-accounted");
        assert_eq!(
            bus.delivered_bytes(),
            bus.total_bytes(),
            "no faults injected: everything delivered"
        );
        // Per-pair accounting: shard 0's push went to the hub.
        assert!(bus.bytes_between(Party::Shard(0), GOSSIP_HUB) > 0);
        assert!(bus.bytes_between(GOSSIP_HUB, Party::Shard(0)) > 0);
    }

    #[test]
    fn dropped_gossip_frame_is_never_merged() {
        let plane = Arc::new(GossipPlane::over_bus());
        let a = GossipReputation::new(0, plane.clone());
        let b = GossipReputation::new(1, plane.clone());
        for _ in 0..INITIAL_SCORE {
            a.pool_verdicts(&[(v(0), true), (v(1), true), (v(2), false)]);
        }
        // Pre-register shard 0's endpoint (first contact), then cut its
        // uplink to the hub: the push frame is accounted but dropped.
        a.push();
        let before_total = {
            let bus = plane.gossip_bus().unwrap();
            bus.drop_link(Party::Shard(0), GOSSIP_HUB);
            bus.total_bytes()
        };
        // A fresh batch of dissents that never reaches the hub.
        a.pool_verdicts(&[(v(0), true), (v(1), true), (v(2), false)]);
        a.push();
        b.pull();
        let bus = plane.gossip_bus().unwrap();
        assert!(bus.total_bytes() > before_total, "dropped frame accounted");
        assert!(
            bus.delivered_bytes() < bus.total_bytes(),
            "dropped frame excluded from delivered bytes"
        );
        // The pull b received reflects only the first (delivered) push.
        assert_eq!(b.score(v(2)), INITIAL_SCORE - INITIAL_SCORE);
    }

    #[test]
    fn cursor_only_advance_still_reaches_a_caught_up_puller() {
        // Shard A advances its decay generation with no new observations
        // and pushes; shard B is fully caught up on slots. B's pull must
        // still receive the new generation cursor (a slotless frame —
        // decayed reads depend on the local cursor), matching what an
        // in-memory plane's merge would have produced.
        let decay = ReputationDecay::HalfLife { retention: 4 };
        let plane = Arc::new(GossipPlane::over_bus_with(decay));
        let a = GossipReputation::with_config(0, plane.clone(), VoteRule::Simple, decay);
        let b = GossipReputation::with_config(1, plane.clone(), VoteRule::Simple, decay);
        for _ in 0..4 {
            a.pool_verdicts(&[(v(0), true), (v(1), true), (v(2), false)]);
        }
        a.push();
        b.pull();
        assert_eq!(b.score(v(2)), INITIAL_SCORE - 4, "b caught up on slots");
        // Cursor-only advance on a: generation moves, no counter changes.
        a.advance_generation(2);
        a.push();
        b.pull();
        assert_eq!(
            b.current_generation(),
            2,
            "the generation cursor must propagate even without new slots"
        );
        assert_eq!(
            b.score(v(2)),
            INITIAL_SCORE - 1,
            "b now decays the old dissents like a itself does"
        );
        // And once cursors agree, an idle pull is frameless again.
        let bus = plane.gossip_bus().unwrap();
        let before = bus.bytes_between(GOSSIP_HUB, Party::Shard(1));
        b.pull();
        assert_eq!(
            bus.bytes_between(GOSSIP_HUB, Party::Shard(1)),
            before,
            "caught-up pulls stay zero-byte"
        );
    }

    #[test]
    #[should_panic(expected = "decay retention must be positive")]
    fn zero_retention_rejected() {
        GossipReputation::with_config(
            0,
            Arc::new(GossipPlane::new()),
            VoteRule::Simple,
            ReputationDecay::HalfLife { retention: 0 },
        );
    }

    #[test]
    fn decaying_backend_forgives_after_enough_generations() {
        let plane = Arc::new(GossipPlane::new());
        let decay = ReputationDecay::HalfLife { retention: 4 };
        let backend = GossipReputation::with_config(0, plane, VoteRule::Simple, decay);
        for _ in 0..INITIAL_SCORE {
            backend.pool_verdicts(&[(v(0), true), (v(1), true), (v(2), false)]);
        }
        assert!(!backend.is_trusted(v(2)), "freshly excluded");
        // Four generations later the dissent has fully decayed away.
        for generation in 1..=4 {
            backend.advance_generation(generation);
        }
        assert!(
            backend.is_trusted(v(2)),
            "ancient dissent is forgiven under decay"
        );
        assert_eq!(backend.score(v(2)), INITIAL_SCORE);
    }

    #[test]
    fn snapshots_track_published_scores() {
        let store = LocalReputation::new();
        let empty = store.snapshot();
        assert!(empty.is_empty());
        assert_eq!(empty.version(), 0);
        assert_eq!(
            empty.score(v(7)),
            INITIAL_SCORE,
            "unseen defaults match live"
        );
        store.pool_verdicts(&[(v(0), true), (v(1), true), (v(2), false)]);
        let after = store.snapshot();
        assert_eq!(after.version(), 1);
        assert_eq!(after.len(), 3);
        for verifier in [v(0), v(1), v(2)] {
            assert_eq!(after.score(verifier), store.score(verifier));
            assert_eq!(after.is_trusted(verifier), store.is_trusted(verifier));
        }
        // The stale Arc is immutable: later rounds never reach into it.
        // The second round is a tie, which rejects — so v2's reject vote
        // now agrees with the majority and wins its point back.
        store.pool_verdicts(&[(v(2), false), (v(0), true)]);
        assert_eq!(after.score(v(2)), INITIAL_SCORE - 1, "stale view unchanged");
        assert_eq!(store.snapshot().score(v(2)), INITIAL_SCORE);
    }

    #[test]
    fn unresponsive_reports_cost_one_point_and_republish() {
        let store = LocalReputation::new();
        store.report_unresponsive(&[v(1), v(2)]);
        assert_eq!(store.score(v(1)), INITIAL_SCORE - 1);
        assert_eq!(store.score(v(2)), INITIAL_SCORE - 1);
        let published = store.snapshot();
        assert_eq!(published.score(v(1)), INITIAL_SCORE - 1);
        // An empty report is a no-op: no lock churn, no version bump.
        let version = published.version();
        store.report_unresponsive(&[]);
        assert_eq!(store.snapshot().version(), version);
        // Repeated silence drives the verifier below the threshold and
        // moves the panel version, exactly like repeated dissent.
        let panel_before = store.snapshot().panel_version();
        for _ in 0..INITIAL_SCORE {
            store.report_unresponsive(&[v(1)]);
        }
        assert!(!store.is_trusted(v(1)));
        assert!(store.snapshot().panel_version() > panel_before);
    }

    #[test]
    fn unresponsive_reports_gossip_like_dissent() {
        // The observation is a plain CRDT decrement, so an epoch merge
        // carries it to every other shard.
        let plane = Arc::new(GossipPlane::new());
        let reporter = GossipReputation::new(0, Arc::clone(&plane));
        let observer = GossipReputation::new(1, Arc::clone(&plane));
        reporter.report_unresponsive(&[v(5)]);
        assert_eq!(reporter.score(v(5)), INITIAL_SCORE - 1);
        assert_eq!(observer.score(v(5)), INITIAL_SCORE, "not merged yet");
        reporter.sync();
        observer.sync();
        assert_eq!(observer.score(v(5)), INITIAL_SCORE - 1);
    }

    #[test]
    fn gossip_snapshot_includes_merged_epochs() {
        let plane = Arc::new(GossipPlane::new());
        let a = GossipReputation::new(0, Arc::clone(&plane));
        let b = GossipReputation::new(1, Arc::clone(&plane));
        for _ in 0..3 {
            a.pool_verdicts(&[(v(0), true), (v(1), true), (v(2), false)]);
        }
        let b_before = b.snapshot();
        assert_eq!(
            b_before.score(v(2)),
            INITIAL_SCORE,
            "b has not merged a's epoch yet"
        );
        a.push();
        b.pull();
        let b_after = b.snapshot();
        assert_eq!(b_after.score(v(2)), INITIAL_SCORE - 3, "pull republishes");
        assert_eq!(
            b_before.score(v(2)),
            INITIAL_SCORE,
            "the pre-pull snapshot is unchanged by the merge"
        );
        assert!(b_after.version() > b_before.version());
    }

    #[test]
    fn concurrent_snapshots_never_observe_a_half_merged_epoch() {
        // Every round is the tie `[(v0, true), (v1, false)]`, which
        // rejects: v0 loses a point, v1 gains one. So for any view built
        // from WHOLE rounds — however many — the two scores always sum to
        // 2 * INITIAL_SCORE. A snapshot cut mid-round or mid-merge would
        // break that invariant; this hammers snapshot reads against a
        // writer applying rounds and epoch merges and checks the sum on
        // every read.
        use std::sync::atomic::{AtomicBool, Ordering};
        let plane = Arc::new(GossipPlane::new());
        let writer_backend = Arc::new(GossipReputation::new(0, Arc::clone(&plane)));
        let reader_backend = Arc::clone(&writer_backend);
        let done = Arc::new(AtomicBool::new(false));
        let writer_done = Arc::clone(&done);
        let writer = std::thread::spawn(move || {
            for round in 0..200u64 {
                writer_backend.pool_verdicts(&[(v(0), true), (v(1), false)]);
                if round % 16 == 0 {
                    writer_backend.sync();
                }
            }
            writer_done.store(true, Ordering::SeqCst);
        });
        let mut last_version = 0u64;
        loop {
            // Read the flag before the snapshot so the final iteration is
            // guaranteed to validate the writer's finished state.
            let finished = done.load(Ordering::SeqCst);
            let snap = reader_backend.snapshot();
            if !snap.is_empty() {
                assert_eq!(
                    snap.score(v(0)) + snap.score(v(1)),
                    2 * INITIAL_SCORE,
                    "snapshot v{} shows a torn round or half-merged epoch",
                    snap.version()
                );
                assert!(snap.version() >= last_version, "versions are monotone");
                last_version = snap.version();
            }
            if finished {
                break;
            }
        }
        writer.join().unwrap();
        let final_snap = reader_backend.snapshot();
        assert_eq!(final_snap.score(v(0)), INITIAL_SCORE - 200);
        assert_eq!(final_snap.score(v(1)), INITIAL_SCORE + 200);
    }
}
