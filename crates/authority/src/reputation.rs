//! Verifier reputation and majority voting.
//!
//! The paper: "We note the possibility of having several verifiers, such
//! that their majority is trusted. The reputation of the verifiers can be
//! updated according to the (majority of their) results." This module
//! implements exactly that: verdicts are pooled per query, the majority
//! decides, and each verifier's reputation moves toward or away from the
//! majority. Persistently deviant verifiers fall below the exclusion
//! threshold and stop being consulted.

use std::collections::HashMap;

use std::sync::Mutex;

use crate::messages::Party;

/// Reputation bookkeeping for verifiers.
///
/// Scores start at [`ReputationStore::INITIAL`] and move by ±1 per pooled
/// query depending on agreement with the majority; verifiers at or below
/// [`ReputationStore::EXCLUSION_THRESHOLD`] are excluded.
#[derive(Debug, Default)]
pub struct ReputationStore {
    scores: Mutex<HashMap<Party, i64>>,
}

/// Outcome of pooling one round of verdicts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MajorityOutcome {
    /// The majority verdict (ties resolve to `false` — reject, the safe
    /// side for advice adoption).
    pub accepted: bool,
    /// Number of verifiers voting accept.
    pub accept_votes: usize,
    /// Number of verifiers voting reject.
    pub reject_votes: usize,
    /// Verifiers that disagreed with the majority this round.
    pub dissenters: Vec<Party>,
}

impl ReputationStore {
    /// Starting reputation score.
    pub const INITIAL: i64 = 10;
    /// At or below this score a verifier is no longer consulted.
    pub const EXCLUSION_THRESHOLD: i64 = 0;

    /// Creates an empty store.
    pub fn new() -> ReputationStore {
        ReputationStore::default()
    }

    /// Current score of a verifier (registering it on first touch).
    pub fn score(&self, verifier: Party) -> i64 {
        *self
            .scores
            .lock()
            .expect("reputation lock poisoned")
            .entry(verifier)
            .or_insert(Self::INITIAL)
    }

    /// Returns `true` if the verifier is still trusted (above the exclusion
    /// threshold).
    pub fn is_trusted(&self, verifier: Party) -> bool {
        self.score(verifier) > Self::EXCLUSION_THRESHOLD
    }

    /// Pools one round of verdicts `(verifier, accepted)`, updates
    /// reputations toward the majority, and returns the outcome.
    ///
    /// # Panics
    ///
    /// Panics if `verdicts` is empty.
    pub fn pool_verdicts(&self, verdicts: &[(Party, bool)]) -> MajorityOutcome {
        assert!(
            !verdicts.is_empty(),
            "pooling requires at least one verdict"
        );
        let accept_votes = verdicts.iter().filter(|&&(_, a)| a).count();
        let reject_votes = verdicts.len() - accept_votes;
        let accepted = accept_votes > reject_votes;
        let mut scores = self.scores.lock().expect("reputation lock poisoned");
        let mut dissenters = Vec::new();
        for &(verifier, vote) in verdicts {
            let entry = scores.entry(verifier).or_insert(Self::INITIAL);
            if vote == accepted {
                *entry += 1;
            } else {
                *entry -= 1;
                dissenters.push(verifier);
            }
        }
        MajorityOutcome {
            accepted,
            accept_votes,
            reject_votes,
            dissenters,
        }
    }

    /// All verifiers currently trusted, sorted for determinism.
    pub fn trusted_verifiers(&self) -> Vec<Party> {
        let scores = self.scores.lock().expect("reputation lock poisoned");
        let mut out: Vec<Party> = scores
            .iter()
            .filter(|&(_, &s)| s > Self::EXCLUSION_THRESHOLD)
            .map(|(&p, _)| p)
            .collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u64) -> Party {
        Party::Verifier(i)
    }

    #[test]
    fn majority_decides_and_updates() {
        let store = ReputationStore::new();
        let outcome = store.pool_verdicts(&[(v(0), true), (v(1), true), (v(2), false)]);
        assert!(outcome.accepted);
        assert_eq!(outcome.accept_votes, 2);
        assert_eq!(outcome.dissenters, vec![v(2)]);
        assert_eq!(store.score(v(0)), ReputationStore::INITIAL + 1);
        assert_eq!(store.score(v(2)), ReputationStore::INITIAL - 1);
    }

    #[test]
    fn ties_reject() {
        let store = ReputationStore::new();
        let outcome = store.pool_verdicts(&[(v(0), true), (v(1), false)]);
        assert!(!outcome.accepted, "ties resolve to the safe side");
    }

    #[test]
    fn persistent_deviants_get_excluded() {
        let store = ReputationStore::new();
        // Verifier 2 always disagrees with the honest majority.
        for _ in 0..ReputationStore::INITIAL {
            store.pool_verdicts(&[(v(0), true), (v(1), true), (v(2), false)]);
        }
        assert!(!store.is_trusted(v(2)));
        assert!(store.is_trusted(v(0)));
        assert_eq!(store.trusted_verifiers(), vec![v(0), v(1)]);
    }

    #[test]
    fn recovery_is_possible() {
        let store = ReputationStore::new();
        for _ in 0..3 {
            store.pool_verdicts(&[(v(0), true), (v(1), true), (v(2), false)]);
        }
        let before = store.score(v(2));
        for _ in 0..5 {
            store.pool_verdicts(&[(v(0), true), (v(1), true), (v(2), true)]);
        }
        assert!(store.score(v(2)) > before);
    }

    #[test]
    #[should_panic(expected = "at least one verdict")]
    fn empty_pool_panics() {
        ReputationStore::new().pool_verdicts(&[]);
    }
}
