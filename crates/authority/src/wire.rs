//! A compact wire format for protocol messages.
//!
//! The paper's Lemma 1 argues about *bits communicated*; to measure that
//! honestly the message bus serializes every message into real bytes. No
//! general-purpose serializer is in the approved dependency set, so this is
//! a small hand-rolled format: varint-length-prefixed fields, composed
//! structurally. Encoding and decoding round-trip exactly (tested), and the
//! byte counts feed the experiment tables.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use ra_exact::Rational;

/// Errors from decoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Input ended mid-value.
    UnexpectedEnd,
    /// A tag byte was invalid for the expected type.
    BadTag(u8),
    /// A string/number failed to parse.
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::UnexpectedEnd => write!(f, "unexpected end of input"),
            WireError::BadTag(t) => write!(f, "invalid tag byte {t:#x}"),
            WireError::Malformed(s) => write!(f, "malformed value: {s}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Types that can be encoded to and decoded from the wire format.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);
    /// Decodes a value, consuming bytes from `buf`.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncated or malformed input.
    fn decode(buf: &mut Bytes) -> Result<Self, WireError>;

    /// Convenience: full encoding as bytes.
    fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        self.encode(&mut buf);
        buf.freeze()
    }

    /// Encoded size in bytes.
    fn encoded_len(&self) -> usize {
        self.to_bytes().len()
    }
}

/// LEB128-style unsigned varint.
pub fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Reads a varint.
///
/// # Errors
///
/// [`WireError::UnexpectedEnd`] on truncation, [`WireError::Malformed`] on
/// overlong encodings.
pub fn get_varint(buf: &mut Bytes) -> Result<u64, WireError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(WireError::UnexpectedEnd);
        }
        let byte = buf.get_u8();
        if shift >= 64 {
            return Err(WireError::Malformed("varint overflow".into()));
        }
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

impl Wire for u64 {
    fn encode(&self, buf: &mut BytesMut) {
        put_varint(buf, *self);
    }
    fn decode(buf: &mut Bytes) -> Result<u64, WireError> {
        get_varint(buf)
    }
}

impl Wire for usize {
    fn encode(&self, buf: &mut BytesMut) {
        put_varint(buf, *self as u64);
    }
    fn decode(buf: &mut Bytes) -> Result<usize, WireError> {
        Ok(get_varint(buf)? as usize)
    }
}

impl Wire for bool {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(u8::from(*self));
    }
    fn decode(buf: &mut Bytes) -> Result<bool, WireError> {
        if !buf.has_remaining() {
            return Err(WireError::UnexpectedEnd);
        }
        match buf.get_u8() {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl Wire for String {
    fn encode(&self, buf: &mut BytesMut) {
        put_varint(buf, self.len() as u64);
        buf.put_slice(self.as_bytes());
    }
    fn decode(buf: &mut Bytes) -> Result<String, WireError> {
        let len = get_varint(buf)? as usize;
        if buf.remaining() < len {
            return Err(WireError::UnexpectedEnd);
        }
        let raw = buf.split_to(len);
        String::from_utf8(raw.to_vec())
            .map_err(|e| WireError::Malformed(format!("invalid utf-8: {e}")))
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        put_varint(buf, self.len() as u64);
        for item in self {
            item.encode(buf);
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Vec<T>, WireError> {
        let len = get_varint(buf)? as usize;
        // Defensive cap against hostile length prefixes.
        if len > 1 << 24 {
            return Err(WireError::Malformed(format!("vector length {len} too large")));
        }
        let mut out = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> Result<Option<T>, WireError> {
        if !buf.has_remaining() {
            return Err(WireError::UnexpectedEnd);
        }
        match buf.get_u8() {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl Wire for Rational {
    fn encode(&self, buf: &mut BytesMut) {
        // Sign byte + decimal magnitudes (arbitrary precision survives).
        buf.put_u8(u8::from(self.is_negative()));
        self.numer().abs().to_string().encode(buf);
        self.denom().to_string().encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Result<Rational, WireError> {
        if !buf.has_remaining() {
            return Err(WireError::UnexpectedEnd);
        }
        let negative = match buf.get_u8() {
            0 => false,
            1 => true,
            t => return Err(WireError::BadTag(t)),
        };
        let num_str = String::decode(buf)?;
        let den_str = String::decode(buf)?;
        let num: ra_exact::BigInt = num_str
            .parse()
            .map_err(|e| WireError::Malformed(format!("numerator: {e}")))?;
        let den: ra_exact::BigInt = den_str
            .parse()
            .map_err(|e| WireError::Malformed(format!("denominator: {e}")))?;
        if den.is_zero() {
            return Err(WireError::Malformed("zero denominator".into()));
        }
        let r = Rational::from_bigints(num, den);
        Ok(if negative { -r } else { r })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ra_exact::rat;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        let mut buf = bytes.clone();
        let decoded = T::decode(&mut buf).expect("decodes");
        assert_eq!(decoded, v);
        assert!(!buf.has_remaining(), "no trailing bytes");
        assert_eq!(bytes.len(), v.encoded_len());
    }

    #[test]
    fn varints() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            round_trip(v);
        }
        // Compactness: small values take one byte.
        assert_eq!(5u64.encoded_len(), 1);
        assert_eq!(300u64.encoded_len(), 2);
    }

    #[test]
    fn strings_and_vectors() {
        round_trip(String::from("rationality authority"));
        round_trip(String::new());
        round_trip(vec![1u64, 2, 3]);
        round_trip(Vec::<u64>::new());
        round_trip(vec![String::from("a"), String::from("bc")]);
        round_trip(Some(42u64));
        round_trip(Option::<u64>::None);
        round_trip(vec![true, false, true]);
    }

    #[test]
    fn rationals() {
        round_trip(rat(0, 1));
        round_trip(rat(-3, 8));
        round_trip(rat(1, 4));
        let huge: Rational = "123456789012345678901234567890/977".parse().unwrap();
        round_trip(huge);
    }

    #[test]
    fn truncation_detected() {
        let bytes = String::from("hello").to_bytes();
        let mut short = bytes.slice(0..3);
        assert_eq!(String::decode(&mut short), Err(WireError::UnexpectedEnd));
        let mut empty = Bytes::new();
        assert_eq!(u64::decode(&mut empty), Err(WireError::UnexpectedEnd));
    }

    #[test]
    fn bad_tags_detected() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        let mut bytes = buf.freeze();
        assert_eq!(bool::decode(&mut bytes), Err(WireError::BadTag(7)));
    }

    #[test]
    fn hostile_length_rejected() {
        let mut buf = BytesMut::new();
        put_varint(&mut buf, u64::MAX);
        let mut bytes = buf.freeze();
        assert!(matches!(Vec::<u64>::decode(&mut bytes), Err(WireError::Malformed(_))));
    }
}
