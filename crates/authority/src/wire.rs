//! A compact wire format for protocol messages.
//!
//! The paper's Lemma 1 argues about *bits communicated*; to measure that
//! honestly the message bus serializes every message into real bytes. No
//! general-purpose serializer is in the approved dependency set, so this is
//! a small hand-rolled format: varint-length-prefixed fields, composed
//! structurally. Encoding and decoding round-trip exactly (tested), and the
//! byte counts feed the experiment tables.
//!
//! Encoding appends to a plain `Vec<u8>`; decoding consumes a [`WireBytes`]
//! cursor — an `Arc`-backed, cheaply cloneable byte window that replaces the
//! `bytes::Bytes` dependency with `std`-only machinery.
//!
//! # The pooled frame buffer
//!
//! The bus serializes every message *only to measure it* — delivery moves
//! the message value through a channel — so the per-send wire cost is one
//! [`Wire::encoded_len`] call. [`with_frame_scratch`] backs that call with
//! a per-thread reusable buffer: after the first consult warms a thread's
//! scratch, steady-state consults encode into recycled capacity and
//! allocate zero fresh frame buffers. [`frame_pool_misses`] counts the
//! times the pool could *not* serve a request from recycled capacity
//! (first use, growth, or re-entrant nesting), which is what the
//! zero-allocation tests and the wire microbench assert against.

use std::cell::{Cell, RefCell};
use std::sync::Arc;

use ra_exact::Rational;

thread_local! {
    /// The per-thread reusable encode buffer behind [`with_frame_scratch`].
    static FRAME_SCRATCH: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
    /// How many times this thread's scratch failed to serve a request from
    /// already-recycled capacity.
    static FRAME_POOL_MISSES: Cell<u64> = const { Cell::new(0) };
}

/// Runs `f` with this thread's recycled frame buffer, cleared but keeping
/// its capacity. The buffer is recycled when `f` returns, so steady-state
/// encoding (same thread, messages no larger than the high-water mark)
/// allocates nothing.
///
/// Re-entrant calls (an encoder calling back into the pool while the
/// scratch is borrowed) fall back to a fresh buffer; both that fallback
/// and any capacity growth inside `f` count as a pool miss in
/// [`frame_pool_misses`].
pub fn with_frame_scratch<R>(f: impl FnOnce(&mut Vec<u8>) -> R) -> R {
    FRAME_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut buf) => {
            buf.clear();
            let capacity_before = buf.capacity();
            let out = f(&mut buf);
            if buf.capacity() > capacity_before {
                FRAME_POOL_MISSES.with(|misses| misses.set(misses.get() + 1));
            }
            out
        }
        Err(_) => {
            FRAME_POOL_MISSES.with(|misses| misses.set(misses.get() + 1));
            f(&mut Vec::new())
        }
    })
}

/// This thread's running count of frame-pool misses: requests
/// [`with_frame_scratch`] could not serve from recycled capacity (first
/// use on the thread, a message larger than every previous one, or a
/// re-entrant borrow). A warmed steady state holds this constant — the
/// property the zero-allocation tests pin down.
pub fn frame_pool_misses() -> u64 {
    FRAME_POOL_MISSES.with(Cell::get)
}

/// An immutable, cheaply cloneable window of bytes with cursor semantics.
///
/// Reads (`get_u8`, [`WireBytes::split_to`]) advance the window's start, so
/// `len()` always reports the bytes *remaining*, exactly like the
/// `bytes::Bytes` type this replaces.
#[derive(Clone)]
pub struct WireBytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl WireBytes {
    /// An empty byte window.
    pub fn new() -> WireBytes {
        WireBytes {
            data: Arc::from([] as [u8; 0]),
            start: 0,
            end: 0,
        }
    }

    /// Remaining bytes in the window.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Remaining bytes (alias kept for `bytes::Buf` familiarity).
    pub fn remaining(&self) -> usize {
        self.len()
    }

    /// Whether at least one byte remains.
    pub fn has_remaining(&self) -> bool {
        !self.is_empty()
    }

    /// Returns the next byte without consuming it, or `None` if the
    /// window is empty. Decoders of non-recursive envelope types use this
    /// to reject an illegally nested inner tag *before* recursing, so a
    /// hostile chain of envelope tags errors out instead of exhausting
    /// the stack.
    pub fn peek_u8(&self) -> Option<u8> {
        if self.has_remaining() {
            Some(self.data[self.start])
        } else {
            None
        }
    }

    /// Consumes and returns the next byte.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty; decoders check `has_remaining` first.
    pub fn get_u8(&mut self) -> u8 {
        assert!(self.has_remaining(), "get_u8 on empty WireBytes");
        let byte = self.data[self.start];
        self.start += 1;
        byte
    }

    /// Splits off and returns the first `n` remaining bytes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` bytes remain.
    pub fn split_to(&mut self, n: usize) -> WireBytes {
        assert!(n <= self.len(), "split_to past end of WireBytes");
        let head = WireBytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + n,
        };
        self.start += n;
        head
    }

    /// A sub-window of the remaining bytes (indices relative to the cursor).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> WireBytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of bounds"
        );
        WireBytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// The remaining bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the remaining bytes into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for WireBytes {
    fn default() -> WireBytes {
        WireBytes::new()
    }
}

impl From<Vec<u8>> for WireBytes {
    fn from(v: Vec<u8>) -> WireBytes {
        let end = v.len();
        WireBytes {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for WireBytes {
    fn from(v: &[u8]) -> WireBytes {
        WireBytes::from(v.to_vec())
    }
}

impl AsRef<[u8]> for WireBytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for WireBytes {
    fn eq(&self, other: &WireBytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for WireBytes {}

impl std::fmt::Debug for WireBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WireBytes({:02x?})", self.as_slice())
    }
}

/// Errors from decoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Input ended mid-value.
    UnexpectedEnd,
    /// A tag byte was invalid for the expected type.
    BadTag(u8),
    /// A string/number failed to parse.
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::UnexpectedEnd => write!(f, "unexpected end of input"),
            WireError::BadTag(t) => write!(f, "invalid tag byte {t:#x}"),
            WireError::Malformed(s) => write!(f, "malformed value: {s}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Types that can be encoded to and decoded from the wire format.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);
    /// Decodes a value, consuming bytes from `buf`.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncated or malformed input.
    fn decode(buf: &mut WireBytes) -> Result<Self, WireError>;

    /// Convenience: full encoding as bytes.
    fn to_bytes(&self) -> WireBytes {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        WireBytes::from(buf)
    }

    /// Encoded size in bytes.
    ///
    /// Measured by encoding into the thread's recycled frame scratch
    /// ([`with_frame_scratch`]), so the bus accounting path — which
    /// serializes only to measure — allocates no fresh buffer per message
    /// once the thread is warm.
    fn encoded_len(&self) -> usize {
        with_frame_scratch(|buf| {
            self.encode(buf);
            buf.len()
        })
    }
}

/// LEB128-style unsigned varint.
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads a varint.
///
/// # Errors
///
/// [`WireError::UnexpectedEnd`] on truncation, [`WireError::Malformed`] on
/// overlong encodings.
pub fn get_varint(buf: &mut WireBytes) -> Result<u64, WireError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(WireError::UnexpectedEnd);
        }
        let byte = buf.get_u8();
        if shift >= 64 {
            return Err(WireError::Malformed("varint overflow".into()));
        }
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

impl Wire for u64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(buf, *self);
    }
    fn decode(buf: &mut WireBytes) -> Result<u64, WireError> {
        get_varint(buf)
    }
}

impl Wire for usize {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(buf, *self as u64);
    }
    fn decode(buf: &mut WireBytes) -> Result<usize, WireError> {
        Ok(get_varint(buf)? as usize)
    }
}

impl Wire for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }
    fn decode(buf: &mut WireBytes) -> Result<bool, WireError> {
        if !buf.has_remaining() {
            return Err(WireError::UnexpectedEnd);
        }
        match buf.get_u8() {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl Wire for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.len() as u64);
        buf.extend_from_slice(self.as_bytes());
    }
    fn decode(buf: &mut WireBytes) -> Result<String, WireError> {
        let len = get_varint(buf)? as usize;
        if buf.remaining() < len {
            return Err(WireError::UnexpectedEnd);
        }
        let raw = buf.split_to(len);
        String::from_utf8(raw.to_vec())
            .map_err(|e| WireError::Malformed(format!("invalid utf-8: {e}")))
    }
}

/// Reads a sequence-length prefix, applying the defensive cap against
/// hostile length values (shared by every length-prefixed decoder).
pub(crate) fn get_len_prefix(buf: &mut WireBytes) -> Result<usize, WireError> {
    let len = get_varint(buf)? as usize;
    if len > 1 << 24 {
        return Err(WireError::Malformed(format!(
            "vector length {len} too large"
        )));
    }
    Ok(len)
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.len() as u64);
        for item in self {
            item.encode(buf);
        }
    }
    fn decode(buf: &mut WireBytes) -> Result<Vec<T>, WireError> {
        let len = get_len_prefix(buf)?;
        let mut out = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
    fn decode(buf: &mut WireBytes) -> Result<Option<T>, WireError> {
        if !buf.has_remaining() {
            return Err(WireError::UnexpectedEnd);
        }
        match buf.get_u8() {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            t => Err(WireError::BadTag(t)),
        }
    }
}

/// Length-prefixed ASCII decimal of `value`: the exact bytes of
/// `value.to_string().encode(buf)` with no intermediate `String`.
fn put_decimal_u64(buf: &mut Vec<u8>, value: u64) {
    let mut digits = [0u8; 20];
    let mut at = digits.len();
    let mut v = value;
    loop {
        at -= 1;
        digits[at] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    put_varint(buf, (digits.len() - at) as u64);
    buf.extend_from_slice(&digits[at..]);
}

impl Wire for Rational {
    fn encode(&self, buf: &mut Vec<u8>) {
        // Sign byte + decimal magnitudes (arbitrary precision survives).
        buf.push(u8::from(self.is_negative()));
        match (self.numer().magnitude_u64(), self.denom().magnitude_u64()) {
            // Single-limb fast path: write the decimal digits straight
            // into the frame. Byte-identical to the string path below,
            // without its magnitude clone and per-chunk `format!`
            // allocations — payoff tables are almost always word-sized,
            // and spec digests re-encode them on every cache probe.
            (Some(num), Some(den)) => {
                put_decimal_u64(buf, num);
                put_decimal_u64(buf, den);
            }
            _ => {
                self.numer().abs().to_string().encode(buf);
                self.denom().to_string().encode(buf);
            }
        }
    }
    fn decode(buf: &mut WireBytes) -> Result<Rational, WireError> {
        if !buf.has_remaining() {
            return Err(WireError::UnexpectedEnd);
        }
        let negative = match buf.get_u8() {
            0 => false,
            1 => true,
            t => return Err(WireError::BadTag(t)),
        };
        let num_str = String::decode(buf)?;
        let den_str = String::decode(buf)?;
        let num: ra_exact::BigInt = num_str
            .parse()
            .map_err(|e| WireError::Malformed(format!("numerator: {e}")))?;
        let den: ra_exact::BigInt = den_str
            .parse()
            .map_err(|e| WireError::Malformed(format!("denominator: {e}")))?;
        if den.is_zero() {
            return Err(WireError::Malformed("zero denominator".into()));
        }
        let r = Rational::from_bigints(num, den);
        Ok(if negative { -r } else { r })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ra_exact::rat;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        let mut buf = bytes.clone();
        let decoded = T::decode(&mut buf).expect("decodes");
        assert_eq!(decoded, v);
        assert!(!buf.has_remaining(), "no trailing bytes");
        assert_eq!(bytes.len(), v.encoded_len());
    }

    #[test]
    fn varints() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            round_trip(v);
        }
        // Compactness: small values take one byte.
        assert_eq!(5u64.encoded_len(), 1);
        assert_eq!(300u64.encoded_len(), 2);
    }

    #[test]
    fn strings_and_vectors() {
        round_trip(String::from("rationality authority"));
        round_trip(String::new());
        round_trip(vec![1u64, 2, 3]);
        round_trip(Vec::<u64>::new());
        round_trip(vec![String::from("a"), String::from("bc")]);
        round_trip(Some(42u64));
        round_trip(Option::<u64>::None);
        round_trip(vec![true, false, true]);
    }

    #[test]
    fn rationals() {
        round_trip(rat(0, 1));
        round_trip(rat(-3, 8));
        round_trip(rat(1, 4));
        let huge: Rational = "123456789012345678901234567890/977".parse().unwrap();
        round_trip(huge);
    }

    #[test]
    fn truncation_detected() {
        let bytes = String::from("hello").to_bytes();
        let mut short = bytes.slice(0..3);
        assert_eq!(String::decode(&mut short), Err(WireError::UnexpectedEnd));
        let mut empty = WireBytes::new();
        assert_eq!(u64::decode(&mut empty), Err(WireError::UnexpectedEnd));
    }

    #[test]
    fn bad_tags_detected() {
        let mut bytes = WireBytes::from(vec![7u8]);
        assert_eq!(bool::decode(&mut bytes), Err(WireError::BadTag(7)));
    }

    #[test]
    fn hostile_length_rejected() {
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX);
        let mut bytes = WireBytes::from(buf);
        assert!(matches!(
            Vec::<u64>::decode(&mut bytes),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn frame_scratch_reuse_is_allocation_free_in_steady_state() {
        let msg = vec![
            String::from("rationality"),
            String::from("authority"),
            String::from("frame pool"),
        ];
        // Warm this thread's scratch past the message's encoded size.
        let warm_len = msg.encoded_len();
        let misses_after_warmup = frame_pool_misses();
        for _ in 0..1_000 {
            assert_eq!(msg.encoded_len(), warm_len);
        }
        assert_eq!(
            frame_pool_misses(),
            misses_after_warmup,
            "steady-state encoded_len must not allocate fresh frame buffers"
        );
    }

    #[test]
    fn frame_scratch_encoding_is_byte_identical_to_fresh() {
        let values = vec![0u64, 1, 127, 128, 300, u64::MAX];
        let mut fresh = Vec::new();
        values.encode(&mut fresh);
        let pooled = with_frame_scratch(|buf| {
            values.encode(buf);
            buf.clone()
        });
        assert_eq!(pooled, fresh);
        assert_eq!(values.encoded_len(), fresh.len());
    }

    #[test]
    fn reentrant_frame_scratch_falls_back_to_a_fresh_buffer() {
        // A hostile/nested encoder that measures while encoding: the inner
        // with_frame_scratch cannot re-borrow the thread scratch, so it
        // must fall back (counted as a miss) and still produce the right
        // bytes.
        struct Nested;
        impl Wire for Nested {
            fn encode(&self, buf: &mut Vec<u8>) {
                let inner_len = with_frame_scratch(|scratch| {
                    7u64.encode(scratch);
                    scratch.len()
                });
                put_varint(buf, inner_len as u64);
            }
            fn decode(buf: &mut WireBytes) -> Result<Nested, WireError> {
                get_varint(buf)?;
                Ok(Nested)
            }
        }
        let misses_before = frame_pool_misses();
        let len = Nested.encoded_len();
        assert_eq!(len, 1, "inner length 1 encodes as one varint byte");
        assert!(
            frame_pool_misses() > misses_before,
            "the re-entrant borrow is a counted miss"
        );
    }

    #[test]
    fn wire_bytes_window_semantics() {
        let mut w = WireBytes::from(vec![1u8, 2, 3, 4, 5]);
        assert_eq!(w.len(), 5);
        assert_eq!(w.get_u8(), 1);
        assert_eq!(w.len(), 4);
        let head = w.split_to(2);
        assert_eq!(head.as_slice(), &[2, 3]);
        assert_eq!(w.as_slice(), &[4, 5]);
        assert_eq!(w.slice(1..2).as_slice(), &[5]);
        // Clones share the backing allocation but cursor independently.
        let mut c = w.clone();
        c.get_u8();
        assert_eq!(w.len(), 2);
        assert_eq!(c.len(), 1);
    }
}
