//! The pluggable transport layer.
//!
//! Everything the Fig. 1 protocol needs from a network is behind the
//! [`Transport`] trait: endpoint registration, byte-accounted sends
//! (single and batched), fault injection, and the Lemma 1 ledger view
//! (totals, per-pair sums, the merged delivery log). Two backends
//! implement it:
//!
//! * [`Bus`](crate::Bus) — the canonical synchronous in-memory network:
//!   every send delivers (or faults) immediately, `settle` is a no-op.
//! * [`SimNet`](crate::SimNet) — a deterministic seeded simulation with
//!   per-link latency, drop probability, reordering, and scripted
//!   partition/heal schedules on a virtual clock; in-flight frames land
//!   when the clock advances ([`Transport::settle`]).
//!
//! Configured lossless and zero-latency, a `SimNet` is **byte-identical**
//! to a `Bus`: both account through the same striped [`Ledger`] (moved
//! here from `bus.rs`), so the delivery log, the running totals and the
//! per-pair sums of any traffic mix are field-equal — the equivalence
//! proptest in `tests/proptests.rs` pins exactly that at this trait
//! boundary.
//!
//! The receive side stays concrete: an [`Endpoint`] is a plain mpsc
//! receiver handed out by `register`, identical across backends, which is
//! what lets [`crate::SessionDriver`] and the gossip plane drain inboxes
//! without caring which transport queued the frames. Protocol loops call
//! [`Transport::settle`] before every drain; on a `Bus` that costs
//! nothing, on a `SimNet` it flushes the frames whose delivery time has
//! come.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::{Mutex, MutexGuard};

use crate::messages::{Message, Party};

/// Number of ledger stripes. A power of two so the sender-hash maps to a
/// stripe with a mask; 8 covers the worker parallelism the shard pool
/// actually runs (one session driver per shard) without oversizing the
/// merge that read accessors pay.
pub(crate) const LEDGER_STRIPES: usize = 8;

/// A delivery record for the audit log and byte accounting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeliveryRecord {
    /// Sender.
    pub from: Party,
    /// Recipient.
    pub to: Party,
    /// Serialized size in bytes.
    pub bytes: usize,
    /// Whether the message was actually delivered (or dropped by fault
    /// injection / simulated loss).
    pub delivered: bool,
}

/// Errors from transport operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BusError {
    /// The destination party has no registered endpoint.
    UnknownParty(Party),
    /// The destination endpoint was dropped.
    Disconnected(Party),
}

impl std::fmt::Display for BusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BusError::UnknownParty(p) => write!(f, "no endpoint registered for {p}"),
            BusError::Disconnected(p) => write!(f, "endpoint for {p} disconnected"),
        }
    }
}

impl std::error::Error for BusError {}

/// A receiving endpoint handed to a registered party. Identical across
/// transport backends: frames a [`Bus`](crate::Bus) delivers synchronously
/// and frames a [`SimNet`](crate::SimNet) delivers at `settle` time drain
/// through the same channel.
#[derive(Debug)]
pub struct Endpoint {
    /// The party this endpoint belongs to.
    pub party: Party,
    pub(crate) receiver: Receiver<(Party, Message)>,
}

impl Endpoint {
    /// Receives the next message if one is queued: `(sender, message)`.
    pub fn try_recv(&self) -> Option<(Party, Message)> {
        self.receiver.try_recv().ok()
    }

    /// Drains all queued messages.
    pub fn drain(&self) -> Vec<(Party, Message)> {
        let mut out = Vec::new();
        self.drain_into(&mut out);
        out
    }

    /// Drains all queued messages, appending them to `out`; returns how
    /// many were appended. Receive loops that run per consultation reuse
    /// one buffer across calls instead of allocating a fresh `Vec` per
    /// drain — the [`crate::SessionDriver`] hot path does exactly that.
    pub fn drain_into(&self, out: &mut Vec<(Party, Message)>) -> usize {
        let before = out.len();
        while let Some(m) = self.try_recv() {
            out.push(m);
        }
        out.len() - before
    }
}

/// Deterministic sender-to-stripe hash: the shared avalanche finalizer
/// ([`rand::mix64`]) over the party's variant tag and id. Independent of
/// process randomness so a given traffic mix always lands in the same
/// stripes.
pub(crate) fn stripe_of(party: Party) -> usize {
    let (tag, id) = match party {
        Party::Inventor(i) => (0u64, i),
        Party::Agent(i) => (1, i),
        Party::Verifier(i) => (2, i),
        Party::Shard(i) => (3, i),
    };
    (rand::mix64((tag << 56) ^ id ^ 0x9E37_79B9_7F4A_7C15) as usize) & (LEDGER_STRIPES - 1)
}

/// One stripe of the decomposed ledger: a slice of the append-only audit
/// log (records stamped with their global sequence number so reads can
/// merge deterministically) plus the per-pair byte sums for the senders
/// that hash to this stripe.
#[derive(Debug, Default)]
pub(crate) struct LedgerStripe {
    records: Vec<(u64, DeliveryRecord)>,
    pair_bytes: HashMap<(Party, Party), usize>,
}

/// The striped Lemma 1 ledger, shared by every transport backend.
///
/// Running totals are atomics, and the append-only delivery log plus the
/// per-pair byte map are partitioned across sender-keyed stripes so
/// concurrent senders on different stripes never contend. The accessors
/// merge the stripes in a deterministic order (a global sequence number
/// stamped at accounting time), so their results are observably identical
/// to a single-lock serial ledger: on a quiescent transport every
/// accessor is exact, and under concurrency each accessor is individually
/// consistent with some linearization of the accounted sends.
///
/// Both [`Bus`](crate::Bus) and [`SimNet`](crate::SimNet) account through
/// this one type, which is what makes the lossless-SimNet ≡ Bus byte
/// identity a structural property rather than a re-implementation that
/// could drift.
#[derive(Debug, Default)]
pub(crate) struct Ledger {
    /// Sender-striped audit log + per-pair sums; see [`LedgerStripe`].
    stripes: [Mutex<LedgerStripe>; LEDGER_STRIPES],
    /// Global order of accounted records; stamped into each stripe entry
    /// so `delivery_log` can merge stripes back into send order.
    seq: AtomicU64,
    /// Running totals mirrored out of the stripes so the O(1) accessors
    /// stay lock-free.
    total_bytes: AtomicUsize,
    delivered_bytes: AtomicUsize,
    record_count: AtomicUsize,
    /// Bytes attributable to protocol retransmissions (resilient envelopes
    /// with a non-zero attempt number, and the replies they provoke).
    /// Subtracting this from `total_bytes` yields the goodput figure a
    /// Lemma 1 table should cite for first-attempt protocol traffic.
    retransmit_bytes: AtomicUsize,
}

/// A cached stripe guard for batched accounting: consecutive same-stripe
/// senders reuse one lock acquisition (a verdict-request fan-out has one
/// sender, so it locks its stripe exactly once per batch).
pub(crate) type StripeGuard<'a> = Option<(usize, MutexGuard<'a, LedgerStripe>)>;

impl Ledger {
    /// Accounts one attempted send. The caller already decided
    /// `delivered` and `retransmit`; this stamps the global sequence
    /// number, bumps the atomic totals and appends to the sender's stripe.
    pub(crate) fn account(
        &self,
        from: Party,
        to: Party,
        bytes: usize,
        delivered: bool,
        retransmit: bool,
    ) {
        let mut held = None;
        self.account_cached(&mut held, from, to, bytes, delivered, retransmit);
    }

    /// [`Ledger::account`] with a caller-held stripe guard cached across
    /// consecutive same-stripe senders. Ledger stripes are leaf locks
    /// taken one at a time, so holding one across a batch cannot deadlock
    /// against concurrent senders.
    pub(crate) fn account_cached<'a>(
        &'a self,
        held: &mut StripeGuard<'a>,
        from: Party,
        to: Party,
        bytes: usize,
        delivered: bool,
        retransmit: bool,
    ) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.total_bytes.fetch_add(bytes, Ordering::Relaxed);
        if delivered {
            self.delivered_bytes.fetch_add(bytes, Ordering::Relaxed);
        }
        if retransmit {
            self.retransmit_bytes.fetch_add(bytes, Ordering::Relaxed);
        }
        self.record_count.fetch_add(1, Ordering::Relaxed);
        let idx = stripe_of(from);
        let stripe = match held {
            Some((held_idx, ref mut guard)) if *held_idx == idx => &mut **guard,
            _ => {
                *held = Some((idx, self.stripes[idx].lock().expect("ledger lock poisoned")));
                let (_, ref mut guard) = held.as_mut().expect("just set");
                &mut **guard
            }
        };
        *stripe.pair_bytes.entry((from, to)).or_insert(0) += bytes;
        stripe.records.push((
            seq,
            DeliveryRecord {
                from,
                to,
                bytes,
                delivered,
            },
        ));
    }

    /// Total bytes put on the wire (delivered or not). O(1), lock-free.
    pub(crate) fn total_bytes(&self) -> usize {
        self.total_bytes.load(Ordering::Relaxed)
    }

    /// Bytes of messages that actually reached their endpoint. O(1),
    /// lock-free.
    pub(crate) fn delivered_bytes(&self) -> usize {
        self.delivered_bytes.load(Ordering::Relaxed)
    }

    /// Bytes attributable to retransmissions. O(1), lock-free.
    pub(crate) fn retransmit_bytes(&self) -> usize {
        self.retransmit_bytes.load(Ordering::Relaxed)
    }

    /// Bytes sent from `from` to `to`. O(1): per-pair sums live on the
    /// sender's stripe, so this locks exactly one stripe.
    pub(crate) fn bytes_between(&self, from: Party, to: Party) -> usize {
        self.stripes[stripe_of(from)]
            .lock()
            .expect("ledger lock poisoned")
            .pair_bytes
            .get(&(from, to))
            .copied()
            .unwrap_or(0)
    }

    /// A copy of the full delivery log, merged across stripes back into
    /// global send order.
    pub(crate) fn delivery_log(&self) -> Vec<DeliveryRecord> {
        let mut tagged: Vec<(u64, DeliveryRecord)> = Vec::with_capacity(self.message_count());
        for stripe in &self.stripes {
            let stripe = stripe.lock().expect("ledger lock poisoned");
            tagged.extend(stripe.records.iter().cloned());
        }
        // Within a stripe records are already seq-ascending (appends hold
        // the stripe lock), so an unstable sort cannot reorder equals —
        // and seqs are unique anyway.
        tagged.sort_unstable_by_key(|(seq, _)| *seq);
        tagged.into_iter().map(|(_, record)| record).collect()
    }

    /// Number of messages sent (delivered or dropped). O(1), lock-free.
    pub(crate) fn message_count(&self) -> usize {
        self.record_count.load(Ordering::Relaxed)
    }
}

/// The network boundary under the Fig. 1 protocol: registration, byte
/// accounted sends, fault injection and the Lemma 1 ledger view.
///
/// The engine layers ([`crate::SessionDriver`], [`crate::GossipPlane`],
/// [`crate::ShardedAuthority`]) are parameterized by `Arc<dyn Transport>`,
/// so the same protocol, tests and accounting run unchanged over the
/// synchronous [`Bus`](crate::Bus) or the simulated lossy
/// [`SimNet`](crate::SimNet).
///
/// # Contract
///
/// * `send`/`send_batch` account the serialized size of every attempted
///   message into the ledger — except sends to an unknown party, which
///   error *before* accounting. A message suppressed by fault injection
///   (drop rule, partition, simulated loss) returns `Ok(())` and accounts
///   as undelivered, exactly like a packet lost on a real wire.
/// * `send_batch` drains its buffer, attempts every message even after a
///   failure, returns the first error, and produces byte-identical
///   accounting to the equivalent sequence of `send` calls.
/// * `settle` makes every frame whose delivery time has been reached
///   visible to its destination endpoint. A synchronous backend delivers
///   inside `send` and settles for free; a simulated network flushes its
///   in-flight queue in timestamp order, advancing its virtual clock.
///   Receive loops must settle before draining.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use ra_authority::{Bus, Message, Party, SimNet, Transport};
///
/// // The same traffic over either backend, through the trait:
/// for transport in [
///     Arc::new(Bus::new()) as Arc<dyn Transport>,
///     Arc::new(SimNet::lossless(1)) as Arc<dyn Transport>,
/// ] {
///     let a = Party::Agent(1);
///     let b = Party::Agent(2);
///     transport.register(a);
///     let ep = transport.register(b);
///     transport.send(a, b, Message::AdviceRequest { game_id: 7 }).unwrap();
///     transport.settle();
///     assert!(ep.try_recv().is_some());
///     assert!(transport.delivered_bytes() > 0);
/// }
/// ```
pub trait Transport: std::fmt::Debug + Send + Sync {
    /// Registers a party; returns its receiving endpoint. Re-registering
    /// replaces the old endpoint: the previous one stops receiving.
    fn register(&self, party: Party) -> Endpoint;

    /// Removes `party`'s registration. Later sends to it fail with
    /// [`BusError::UnknownParty`] (unaccounted, like any unknown
    /// destination) until it registers again; its existing [`Endpoint`]
    /// keeps any messages already queued. A no-op for unknown parties.
    fn disconnect(&self, party: Party);

    /// Sends `message` from `from` to `to`, accounting its serialized
    /// size.
    ///
    /// # Errors
    ///
    /// [`BusError::UnknownParty`] if `to` is not registered;
    /// [`BusError::Disconnected`] if `to`'s endpoint was dropped (only
    /// detectable at send time on a synchronous backend).
    fn send(&self, from: Party, to: Party, message: Message) -> Result<(), BusError>;

    /// Sends every `(from, to, message)` in `batch` — draining it, so
    /// callers can reuse the buffer's allocation. Accounting is
    /// byte-identical to the equivalent sequence of [`Transport::send`]
    /// calls; every send is attempted even after an earlier one fails.
    ///
    /// # Errors
    ///
    /// The first [`BusError`] among the attempted messages.
    fn send_batch(&self, batch: &mut Vec<(Party, Party, Message)>) -> Result<(), BusError>;

    /// Injects a drop rule: all messages `from → to` are silently dropped
    /// (accounted as undelivered).
    fn drop_link(&self, from: Party, to: Party);

    /// Removes all fault injection: drop rules, and on a simulated
    /// network also every active partition.
    fn heal(&self);

    /// Delivers every in-flight frame whose time has come. A no-op on a
    /// synchronous backend; on a [`SimNet`](crate::SimNet) this flushes
    /// the pending queue in `(deliver_at, send order)` order and advances
    /// the virtual clock to the latest delivery.
    fn settle(&self);

    /// Total bytes put on the wire (delivered or not).
    fn total_bytes(&self) -> usize;

    /// Bytes of messages that actually reached their endpoint — attempts
    /// dropped by fault injection, lost in simulation, or failed
    /// (undelivered per [`DeliveryRecord::delivered`]) are excluded. This
    /// is the figure Lemma 1 tables should cite for *communicated* bits;
    /// `total_bytes` additionally counts wasted attempts.
    fn delivered_bytes(&self) -> usize;

    /// Bytes sent from `from` to `to`.
    fn bytes_between(&self, from: Party, to: Party) -> usize;

    /// A copy of the full delivery log, merged back into global send
    /// order.
    fn delivery_log(&self) -> Vec<DeliveryRecord>;

    /// Number of messages sent (delivered or dropped).
    fn message_count(&self) -> usize;

    /// Bytes attributable to protocol retransmissions: resilient
    /// envelopes carrying a non-zero attempt number, and replies echoing
    /// one. Zero on any run that never retransmits, regardless of loss.
    fn retransmit_bytes(&self) -> usize;

    /// First-attempt protocol bytes: [`Transport::total_bytes`] minus
    /// [`Transport::retransmit_bytes`]. The ledger maintains the identity
    /// `total_bytes == goodput_bytes + retransmit_bytes` by construction,
    /// so Lemma 1 tables can split communicated bits from retry overhead.
    fn goodput_bytes(&self) -> usize {
        self.total_bytes() - self.retransmit_bytes()
    }

    /// The backend's virtual clock, in ticks. A synchronous backend has
    /// no clock and reports 0 forever; a [`SimNet`](crate::SimNet)
    /// reports the tick its last `settle`/`advance` reached. Resilient
    /// session drivers read this to deplete deadline budgets.
    fn now(&self) -> u64 {
        0
    }

    /// Advances the virtual clock by `ticks`, delivering every in-flight
    /// frame that comes due — the hook a retransmit loop uses to wait out
    /// a backoff interval. A no-op on a synchronous backend (where every
    /// send already settled and waiting cannot change anything).
    fn advance(&self, _ticks: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripe_hash_is_pinned() {
        // The sender→stripe assignment after the mix64 dedup must equal
        // the pre-refactor inline finalizer bit-for-bit: these constants
        // were computed from the original `bus.rs` implementation.
        let cases = [
            (Party::Inventor(0), 6),
            (Party::Inventor(1), 7),
            (Party::Agent(0), 3),
            (Party::Agent(1), 2),
            (Party::Agent(2), 1),
            (Party::Verifier(0), 4),
            (Party::Verifier(1), 5),
            (Party::Verifier(2), 6),
            (Party::Shard(0), 1),
            (Party::Shard(5), 4),
            (Party::Shard(u64::MAX), 1),
        ];
        for (party, stripe) in cases {
            assert_eq!(stripe_of(party), stripe, "{party:?}");
        }
    }

    #[test]
    fn ledger_merges_like_a_serial_log() {
        let ledger = Ledger::default();
        let a = Party::Agent(1);
        let b = Party::Verifier(2);
        ledger.account(a, b, 10, true, false);
        ledger.account(b, a, 7, false, false);
        ledger.account(a, b, 5, true, true);
        assert_eq!(ledger.total_bytes(), 22);
        assert_eq!(ledger.delivered_bytes(), 15);
        assert_eq!(ledger.retransmit_bytes(), 5);
        assert_eq!(ledger.message_count(), 3);
        assert_eq!(ledger.bytes_between(a, b), 15);
        assert_eq!(ledger.bytes_between(b, a), 7);
        let log = ledger.delivery_log();
        assert_eq!(log.len(), 3);
        assert_eq!(
            log.iter().map(|r| r.bytes).collect::<Vec<_>>(),
            vec![10, 7, 5],
            "merged log preserves send order across stripes"
        );
    }

    #[test]
    fn cached_guard_accounts_identically() {
        let serial = Ledger::default();
        let cached = Ledger::default();
        let a = Party::Agent(1);
        let b = Party::Agent(2);
        let traffic = [
            (a, b, 4, true, false),
            (a, b, 9, false, true),
            (b, a, 2, true, false),
        ];
        for (from, to, bytes, delivered, retransmit) in traffic {
            serial.account(from, to, bytes, delivered, retransmit);
        }
        let mut held = None;
        for (from, to, bytes, delivered, retransmit) in traffic {
            cached.account_cached(&mut held, from, to, bytes, delivered, retransmit);
        }
        drop(held);
        assert_eq!(serial.delivery_log(), cached.delivery_log());
        assert_eq!(serial.total_bytes(), cached.total_bytes());
        assert_eq!(serial.delivered_bytes(), cached.delivered_bytes());
        assert_eq!(serial.retransmit_bytes(), cached.retransmit_bytes());
        assert_eq!(serial.bytes_between(a, b), cached.bytes_between(a, b));
    }
}
