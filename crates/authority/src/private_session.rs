//! The P2 interactive proof run *over the bus* — §4's private consultation
//! as an actual protocol, with every query and answer crossing the wire.
//!
//! The in-crate [`crate::messages::Message::SupportQuery`] /
//! [`crate::messages::Message::SupportAnswer`] pair realizes Fig. 4's
//! oracle; the inventor end answers from its (secret) equilibrium, the
//! agent end runs the same verification logic as
//! `ra_proofs::verify_private_advice` but with the oracle remoted. Byte
//! accounting on the bus then *measures* the privacy claim: the only
//! opponent information on the wire is the advice-free answer bits.

use rand::Rng;

use ra_games::{BimatrixGame, MixedProfile};
use ra_proofs::{P2Advice, P2Rejection};

use crate::messages::{Advice, Message, Party};
use crate::transport::Transport;
use crate::wire::Wire;

/// The inventor's secret state for a P2 session: the full equilibrium.
#[derive(Clone, Debug)]
pub struct P2Prover {
    /// Protocol identity.
    pub id: Party,
    equilibrium: MixedProfile,
    /// If `true`, the prover lies about every membership query (a maximally
    /// dishonest oracle, for fault-injection runs).
    pub lies: bool,
}

impl P2Prover {
    /// An honest prover holding the true equilibrium.
    pub fn honest(id: u64, equilibrium: MixedProfile) -> P2Prover {
        P2Prover {
            id: Party::Inventor(id),
            equilibrium,
            lies: false,
        }
    }

    /// A prover that inverts every oracle answer.
    pub fn lying(id: u64, equilibrium: MixedProfile) -> P2Prover {
        P2Prover {
            id: Party::Inventor(id),
            equilibrium,
            lies: true,
        }
    }

    /// The advice message for the row agent (own data + λ values only).
    pub fn row_advice(&self, game: &BimatrixGame) -> P2Advice {
        ra_proofs::honest_row_advice(game, &self.equilibrium)
    }

    fn answer(&self, index: usize) -> bool {
        let truthful = !self.equilibrium.col.prob(index).is_zero();
        truthful ^ self.lies
    }
}

/// Outcome of a P2 session over the bus.
#[derive(Clone, Debug)]
pub struct P2SessionOutcome {
    /// Accepted / rejected (with the protocol-level reason).
    pub accepted: bool,
    /// Rejection reason if any.
    pub rejection: Option<P2Rejection>,
    /// Oracle queries that crossed the wire.
    pub queries: u64,
    /// Total session bytes on the bus.
    pub session_bytes: usize,
    /// Bytes of opponent-revealing traffic (the answer messages).
    pub opponent_answer_bytes: usize,
}

/// Runs a full P2 consultation for the **row agent** over `bus`:
/// advice delivery, then query/answer rounds until `required_conclusive`
/// conclusive pair tests or `max_queries` queries.
///
/// # Panics
///
/// Panics if bus endpoints cannot be registered (never, in-process).
pub fn run_p2_session(
    bus: &dyn Transport,
    game: &BimatrixGame,
    prover: &P2Prover,
    agent_id: u64,
    required_conclusive: u64,
    max_queries: u64,
    rng: &mut dyn rand::RngCore,
) -> P2SessionOutcome {
    let agent = Party::Agent(agent_id);
    let agent_ep = bus.register(agent);
    let prover_ep = bus.register(prover.id);
    let game_id = 1u64;
    let bytes_before = bus.total_bytes();
    let mut opponent_answer_bytes = 0usize;

    // 1. Advice delivery (own data + λs — no opponent information).
    let advice = prover.row_advice(game);
    bus.send(
        prover.id,
        agent,
        Message::AdviceWithProof {
            game_id,
            advice: Box::new(Advice::Private(advice)),
        },
    )
    .expect("agent registered");
    bus.settle();
    let Some((_, Message::AdviceWithProof { advice, .. })) = agent_ep.try_recv() else {
        panic!("advice delivery is synchronous in-process");
    };
    let Advice::Private(advice) = *advice else {
        panic!("P2 advice expected")
    };

    // Local well-formedness.
    let m = game.cols();
    if advice.own_strategy.len() != game.rows() {
        return P2SessionOutcome {
            accepted: false,
            rejection: Some(P2Rejection::MalformedOwnStrategy {
                reason: "dimension mismatch".to_owned(),
            }),
            queries: 0,
            session_bytes: bus.total_bytes() - bytes_before,
            opponent_answer_bytes,
        };
    }

    // 2. Interactive rounds.
    let mut conclusive = 0u64;
    let mut queries = 0u64;
    let mut rejection: Option<P2Rejection> = None;
    'outer: while conclusive < required_conclusive && queries + 2 <= max_queries {
        let pair = [rng.random_range(0..m), rng.random_range(0..m)];
        let mut answers = [false; 2];
        for (slot, &j) in pair.iter().enumerate() {
            bus.send(
                agent,
                prover.id,
                Message::SupportQuery { game_id, index: j },
            )
            .expect("prover registered");
            // Prover end: answer the queued query (settle first so a
            // latency transport has landed the frame).
            bus.settle();
            for (from, msg) in prover_ep.drain() {
                if let Message::SupportQuery { index, .. } = msg {
                    let reply = Message::SupportAnswer {
                        game_id,
                        index,
                        in_support: prover.answer(index),
                    };
                    opponent_answer_bytes += reply.encoded_len();
                    bus.send(prover.id, from, reply).expect("agent registered");
                }
            }
            // Agent end: receive the answer.
            bus.settle();
            for (_, msg) in agent_ep.drain() {
                if let Message::SupportAnswer {
                    index, in_support, ..
                } = msg
                {
                    if index == j {
                        answers[slot] = in_support;
                    }
                }
            }
            queries += 1;
        }
        // Fig. 4 case analysis, exactly as the local verifier.
        for (&j, &inside) in pair.iter().zip(answers.iter()) {
            let actual = game.col_payoff_against(&advice.own_strategy, j);
            if inside && actual != advice.lambda_opp {
                rejection = Some(P2Rejection::InSupportPayoffMismatch { index: j, actual });
                break 'outer;
            }
            if !inside && actual > advice.lambda_opp {
                rejection = Some(P2Rejection::OutsideSupportExceeds { index: j, actual });
                break 'outer;
            }
        }
        if answers[0] || answers[1] {
            conclusive += 1;
        }
    }
    P2SessionOutcome {
        accepted: rejection.is_none() && conclusive >= required_conclusive,
        rejection,
        queries,
        session_bytes: bus.total_bytes() - bytes_before,
        opponent_answer_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::Bus;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use ra_exact::rat;
    use ra_games::named::battle_of_the_sexes;
    use ra_games::MixedStrategy;

    fn bos_equilibrium() -> (BimatrixGame, MixedProfile) {
        let game = battle_of_the_sexes();
        let profile = MixedProfile {
            row: MixedStrategy::try_new(vec![rat(2, 3), rat(1, 3)]).unwrap(),
            col: MixedStrategy::try_new(vec![rat(1, 3), rat(2, 3)]).unwrap(),
        };
        assert!(game.is_nash(&profile));
        (game, profile)
    }

    #[test]
    fn honest_p2_session_accepts() {
        let (game, eq) = bos_equilibrium();
        let bus = Bus::new();
        let prover = P2Prover::honest(0, eq);
        let mut rng = StdRng::seed_from_u64(1);
        let outcome = run_p2_session(&bus, &game, &prover, 0, 3, 100, &mut rng);
        assert!(outcome.accepted, "{:?}", outcome.rejection);
        assert!(outcome.queries >= 6);
        assert!(outcome.session_bytes > 0);
        // Opponent-revealing traffic is a small fraction of the session —
        // and every one of those bytes carries exactly one membership bit.
        assert!(outcome.opponent_answer_bytes < outcome.session_bytes);
    }

    #[test]
    fn lying_prover_wrong_lambda_detected_via_wire() {
        // A prover whose equilibrium does not match its λ claims: use the
        // true mixed equilibrium for λ but lie on every membership answer.
        // With full support {0,1}, "all out" answers are only inconclusive —
        // so instead lie about a dominated-column game (index 2 earns less).
        let game =
            BimatrixGame::from_i64_tables(&[&[2, 0, 0], &[0, 1, 0]], &[&[1, 0, -1], &[0, 2, -1]]);
        let eq = MixedProfile {
            row: MixedStrategy::try_new(vec![rat(2, 3), rat(1, 3)]).unwrap(),
            col: MixedStrategy::try_new(vec![rat(1, 3), rat(2, 3), rat(0, 1)]).unwrap(),
        };
        assert!(game.is_nash(&eq));
        let bus = Bus::new();
        let prover = P2Prover::lying(0, eq);
        let mut rejections = 0;
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let outcome = run_p2_session(&bus, &game, &prover, seed, 3, 200, &mut rng);
            if !outcome.accepted {
                rejections += 1;
            }
        }
        assert!(
            rejections >= 15,
            "lying prover caught in {rejections}/20 sessions"
        );
    }

    #[test]
    fn session_is_deterministic_per_seed() {
        let (game, eq) = bos_equilibrium();
        let run = |seed: u64| {
            let bus = Bus::new();
            let prover = P2Prover::honest(0, eq.clone());
            let mut rng = StdRng::seed_from_u64(seed);
            let o = run_p2_session(&bus, &game, &prover, 0, 3, 100, &mut rng);
            (o.accepted, o.queries, o.session_bytes)
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn query_budget_respected() {
        let (game, eq) = bos_equilibrium();
        let bus = Bus::new();
        let prover = P2Prover::honest(0, eq);
        let mut rng = StdRng::seed_from_u64(3);
        let outcome = run_p2_session(&bus, &game, &prover, 0, 50, 4, &mut rng);
        assert!(!outcome.accepted);
        assert!(outcome.queries <= 4);
    }
}
