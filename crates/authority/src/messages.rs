//! Protocol messages of the rationality authority, with exact wire
//! encodings.
//!
//! The flows mirror Fig. 1 of the paper: the inventor announces a game and
//! sends advice-with-proof to agents; agents fetch verification procedures
//! from verifiers (modelled as verdict requests/responses since procedures
//! are code); verdicts are reported for reputation updates. Every payload —
//! including recursive §3 proof trees — encodes to real bytes so the bus
//! can account for communication exactly.

use ra_exact::{Matrix, Rational};
use ra_games::{BimatrixGame, Dominance, MixedStrategy, StrategicGame, StrategyProfile};
use ra_proofs::kernel::{NotAboveWitness, ProfileVerdict, Proof, Prop, Term};
use ra_proofs::{
    OnlineAdviceCertificate, P2Advice, ParticipationCertificate, PureNashCertificate,
    SupportCertificate,
};
use ra_solvers::{EquilibriumRoot, ParticipationParams};

use std::sync::Arc;

use crate::inventor::GameSpec;
use crate::reputation::{DecayingPnCounterMap, PnCounter, VersionVector};
use crate::wire::{get_varint, put_varint, Wire, WireBytes, WireError};

/// Identity of a protocol party.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Party {
    /// A game inventor.
    Inventor(u64),
    /// A participating agent.
    Agent(u64),
    /// A verification-procedure provider.
    Verifier(u64),
    /// A shard's control-plane endpoint on the inter-shard gossip bus
    /// (reputation merges travel as [`Message::Gossip`] frames between
    /// these identities and [`crate::GOSSIP_HUB`]).
    Shard(u64),
}

impl std::fmt::Display for Party {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Party::Inventor(i) => write!(f, "inventor-{i}"),
            Party::Agent(i) => write!(f, "agent-{i}"),
            Party::Verifier(i) => write!(f, "verifier-{i}"),
            Party::Shard(i) => write!(f, "shard-{i}"),
        }
    }
}

impl Wire for Party {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Party::Inventor(i) => {
                buf.push(0);
                put_varint(buf, *i);
            }
            Party::Agent(i) => {
                buf.push(1);
                put_varint(buf, *i);
            }
            Party::Verifier(i) => {
                buf.push(2);
                put_varint(buf, *i);
            }
            Party::Shard(i) => {
                buf.push(3);
                put_varint(buf, *i);
            }
        }
    }
    fn decode(buf: &mut WireBytes) -> Result<Party, WireError> {
        if !buf.has_remaining() {
            return Err(WireError::UnexpectedEnd);
        }
        let tag = buf.get_u8();
        let id = get_varint(buf)?;
        match tag {
            0 => Ok(Party::Inventor(id)),
            1 => Ok(Party::Agent(id)),
            2 => Ok(Party::Verifier(id)),
            3 => Ok(Party::Shard(id)),
            t => Err(WireError::BadTag(t)),
        }
    }
}

/// Advice payloads, one per case-study certificate family.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Advice {
    /// §3: a pure-profile advice with a kernel proof.
    PureNash(PureNashCertificate),
    /// §4 P1: the two supports.
    Support(SupportCertificate),
    /// §4 P2: the agent's own data plus λ values.
    Private(P2Advice),
    /// §5: the participation probability.
    Participation(ParticipationCertificate),
    /// §6: online link advice with its equilibrium assignment.
    Online(OnlineAdviceCertificate),
    /// Auctions: a dominant-strategy claim.
    Dominant {
        /// The agent being advised.
        agent: usize,
        /// The claimed dominant strategy.
        strategy: usize,
        /// Strict or weak.
        strict: bool,
    },
}

/// A protocol message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Message {
    /// Inventor → everyone: a new game exists; `commitment` binds the
    /// inventor to the game description (opened on demand).
    GameAnnouncement {
        /// Game identifier.
        game_id: u64,
        /// Human-readable description.
        description: String,
        /// SHA-256 commitment to the full game data.
        commitment: Vec<u64>,
    },
    /// Agent → inventor: request advice for a game.
    AdviceRequest {
        /// Which game.
        game_id: u64,
    },
    /// Inventor → agent: advice plus proof.
    AdviceWithProof {
        /// Which game.
        game_id: u64,
        /// The advice payload.
        advice: Box<Advice>,
    },
    /// Agent → verifier: please check this advice. The payload is shared
    /// (`Arc`) because one consultation fans the *same* advice out to the
    /// whole verifier panel: each frame costs a reference-count bump
    /// instead of a deep clone of the proof tree, while the wire encoding
    /// is identical to an owned payload.
    VerdictRequest {
        /// Which game.
        game_id: u64,
        /// The advice to check.
        advice: Arc<Advice>,
    },
    /// Verifier → agent: verdict.
    Verdict {
        /// Which game.
        game_id: u64,
        /// Accept or reject.
        accepted: bool,
        /// Reason (for rejections and audits).
        detail: String,
    },
    /// Agent → reputation system: report a verifier's verdict for audit.
    VerdictReport {
        /// The reporting agent's view of the verifier.
        verifier: Party,
        /// Which game.
        game_id: u64,
        /// The verdict reported.
        accepted: bool,
    },
    /// Agent → inventor (P2): "is this pure strategy in my opponent's
    /// support?" — the Fig. 4 oracle query.
    SupportQuery {
        /// Which game.
        game_id: u64,
        /// The queried strategy index.
        index: usize,
    },
    /// Inventor → agent (P2): the one-bit oracle answer.
    SupportAnswer {
        /// Which game.
        game_id: u64,
        /// The queried strategy index.
        index: usize,
        /// Membership bit.
        in_support: bool,
    },
    /// Shard ↔ gossip hub: one reputation-plane merge frame. Pushes carry
    /// a shard's own PN-counter slice to [`crate::GOSSIP_HUB`]; pulls
    /// carry only the slots above the puller's [`VersionVector`]
    /// watermark back (the hub's versions ride along so the puller can
    /// advance its watermark). The sender's identity rides the bus
    /// envelope (every delivery is `(from, message)`), so the frame is
    /// just the payload. Framing these as real bus sends is what puts the
    /// control plane inside the Lemma 1 byte accounting.
    Gossip {
        /// The PN-counter delta being merged.
        delta: DecayingPnCounterMap,
        /// The sender's per-replica versions: the hub's current versions
        /// on a pull (the puller's new watermark), empty on a push.
        versions: VersionVector,
    },
    /// A resilient-session envelope around any other protocol message.
    ///
    /// The loss-tolerant consultation path wraps its sends in this frame
    /// so receivers can dedup retries idempotently: `session` identifies
    /// the consultation (the game id, unique per driver) and `attempt` is
    /// the 0-based retransmission sequence number for this hop. Replies
    /// echo the request's `attempt`, so the ledger can classify both
    /// directions of a retry (`attempt > 0`) as retransmit bytes. The
    /// envelope never nests: `inner` holding another `Resilient` frame is
    /// a decode error, rejected before recursing.
    Resilient {
        /// Consultation id the frame belongs to.
        session: u64,
        /// 0-based retransmission sequence number; 0 is the first try.
        attempt: u32,
        /// The wrapped protocol message.
        inner: Box<Message>,
    },
}

impl Message {
    /// Whether this frame is a retransmission (a resilient envelope with
    /// a non-zero attempt number, or a reply echoing one). Transports
    /// call this at their accounting sites to split retransmit bytes from
    /// goodput; every non-enveloped message is goodput by definition.
    pub fn is_retransmit(&self) -> bool {
        matches!(self, Message::Resilient { attempt, .. } if *attempt > 0)
    }
}

// ---- Wire impls for foreign certificate types -------------------------------

/// Maximum nesting depth accepted when decoding the recursive proof payloads
/// (`Term`/`Prop`/`Proof`). Honest certificates are a handful of levels deep;
/// without a cap, hostile wire bytes (e.g. millions of repeated `Term::Add`
/// tags) would abort the process via stack overflow instead of returning a
/// [`WireError`].
const MAX_PROOF_NESTING: u32 = 256;

fn deeper(depth: u32) -> Result<u32, WireError> {
    if depth >= MAX_PROOF_NESTING {
        Err(WireError::Malformed(format!(
            "proof nesting deeper than {MAX_PROOF_NESTING}"
        )))
    } else {
        Ok(depth + 1)
    }
}

/// Length-prefixed sequence of depth-tracked elements (same hostile-length
/// cap as `Vec::<T>::decode`, via the shared prefix reader).
fn decode_seq<T>(
    buf: &mut WireBytes,
    depth: u32,
    elem: impl Fn(&mut WireBytes, u32) -> Result<T, WireError>,
) -> Result<Vec<T>, WireError> {
    let len = crate::wire::get_len_prefix(buf)?;
    let mut out = Vec::with_capacity(len.min(1024));
    for _ in 0..len {
        out.push(elem(buf, depth)?);
    }
    Ok(out)
}

fn decode_term(buf: &mut WireBytes, depth: u32) -> Result<Term, WireError> {
    if !buf.has_remaining() {
        return Err(WireError::UnexpectedEnd);
    }
    Ok(match buf.get_u8() {
        0 => Term::Const(Rational::decode(buf)?),
        1 => Term::Utility {
            agent: usize::decode(buf)?,
            profile: StrategyProfile::decode(buf)?,
        },
        2 => {
            let d = deeper(depth)?;
            Term::Add(
                Box::new(decode_term(buf, d)?),
                Box::new(decode_term(buf, d)?),
            )
        }
        3 => {
            let d = deeper(depth)?;
            Term::Sub(
                Box::new(decode_term(buf, d)?),
                Box::new(decode_term(buf, d)?),
            )
        }
        4 => {
            let d = deeper(depth)?;
            Term::Mul(
                Box::new(decode_term(buf, d)?),
                Box::new(decode_term(buf, d)?),
            )
        }
        t => return Err(WireError::BadTag(t)),
    })
}

fn decode_prop(buf: &mut WireBytes, depth: u32) -> Result<Prop, WireError> {
    if !buf.has_remaining() {
        return Err(WireError::UnexpectedEnd);
    }
    Ok(match buf.get_u8() {
        0 => {
            let d = deeper(depth)?;
            Prop::Le(decode_term(buf, d)?, decode_term(buf, d)?)
        }
        1 => {
            let d = deeper(depth)?;
            Prop::Lt(decode_term(buf, d)?, decode_term(buf, d)?)
        }
        2 => {
            let d = deeper(depth)?;
            Prop::Eq(decode_term(buf, d)?, decode_term(buf, d)?)
        }
        3 => Prop::IsStrat(StrategyProfile::decode(buf)?),
        4 => Prop::EqStrat(StrategyProfile::decode(buf)?, StrategyProfile::decode(buf)?),
        5 => Prop::LeStrat(StrategyProfile::decode(buf)?, StrategyProfile::decode(buf)?),
        6 => Prop::NoComp(StrategyProfile::decode(buf)?, StrategyProfile::decode(buf)?),
        7 => Prop::IsNash(StrategyProfile::decode(buf)?),
        8 => Prop::NotNash(StrategyProfile::decode(buf)?),
        9 => Prop::IsMaxNash(StrategyProfile::decode(buf)?),
        10 => Prop::IsMinNash(StrategyProfile::decode(buf)?),
        11 => Prop::And(decode_seq(buf, deeper(depth)?, decode_prop)?),
        12 => Prop::Or(decode_seq(buf, deeper(depth)?, decode_prop)?),
        t => return Err(WireError::BadTag(t)),
    })
}

fn decode_proof(buf: &mut WireBytes, depth: u32) -> Result<Proof, WireError> {
    if !buf.has_remaining() {
        return Err(WireError::UnexpectedEnd);
    }
    Ok(match buf.get_u8() {
        0 => Proof::EvalAtom(decode_prop(buf, deeper(depth)?)?),
        1 => Proof::AndIntro(decode_seq(buf, deeper(depth)?, decode_proof)?),
        2 => {
            let d = deeper(depth)?;
            Proof::OrIntro {
                disjuncts: decode_seq(buf, d, decode_prop)?,
                index: usize::decode(buf)?,
                witness: Box::new(decode_proof(buf, d)?),
            }
        }
        3 => Proof::NashIntro {
            profile: StrategyProfile::decode(buf)?,
        },
        4 => Proof::NashRefute {
            profile: StrategyProfile::decode(buf)?,
            agent: usize::decode(buf)?,
            strategy: usize::decode(buf)?,
        },
        5 => {
            let d = deeper(depth)?;
            Proof::MaxNashIntro {
                profile: StrategyProfile::decode(buf)?,
                nash: Box::new(decode_proof(buf, d)?),
                classification: Vec::<ProfileVerdict>::decode(buf)?,
            }
        }
        6 => {
            let d = deeper(depth)?;
            Proof::MinNashIntro {
                profile: StrategyProfile::decode(buf)?,
                nash: Box::new(decode_proof(buf, d)?),
                classification: Vec::<ProfileVerdict>::decode(buf)?,
            }
        }
        t => return Err(WireError::BadTag(t)),
    })
}

impl Wire for StrategyProfile {
    fn encode(&self, buf: &mut Vec<u8>) {
        // Byte-identical to encoding `strategies().to_vec()`, without the
        // intermediate clone (this runs on the consult hot path for every
        // advice frame).
        let strategies = self.strategies();
        put_varint(buf, strategies.len() as u64);
        for strategy in strategies {
            strategy.encode(buf);
        }
    }
    fn decode(buf: &mut WireBytes) -> Result<StrategyProfile, WireError> {
        Ok(StrategyProfile::new(Vec::<usize>::decode(buf)?))
    }
}

impl Wire for MixedStrategy {
    fn encode(&self, buf: &mut Vec<u8>) {
        // As with `StrategyProfile`: the slice encodes directly, skipping
        // the `to_vec` clone of every probability.
        let probs = self.probs();
        put_varint(buf, probs.len() as u64);
        for prob in probs {
            prob.encode(buf);
        }
    }
    fn decode(buf: &mut WireBytes) -> Result<MixedStrategy, WireError> {
        let probs = Vec::<Rational>::decode(buf)?;
        MixedStrategy::try_new(probs)
            .map_err(|e| WireError::Malformed(format!("mixed strategy: {e}")))
    }
}

impl Wire for Term {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Term::Const(v) => {
                buf.push(0);
                v.encode(buf);
            }
            Term::Utility { agent, profile } => {
                buf.push(1);
                agent.encode(buf);
                profile.encode(buf);
            }
            Term::Add(a, b) => {
                buf.push(2);
                a.encode(buf);
                b.encode(buf);
            }
            Term::Sub(a, b) => {
                buf.push(3);
                a.encode(buf);
                b.encode(buf);
            }
            Term::Mul(a, b) => {
                buf.push(4);
                a.encode(buf);
                b.encode(buf);
            }
        }
    }
    fn decode(buf: &mut WireBytes) -> Result<Term, WireError> {
        decode_term(buf, 0)
    }
}

impl Wire for Prop {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Prop::Le(a, b) => {
                buf.push(0);
                a.encode(buf);
                b.encode(buf);
            }
            Prop::Lt(a, b) => {
                buf.push(1);
                a.encode(buf);
                b.encode(buf);
            }
            Prop::Eq(a, b) => {
                buf.push(2);
                a.encode(buf);
                b.encode(buf);
            }
            Prop::IsStrat(s) => {
                buf.push(3);
                s.encode(buf);
            }
            Prop::EqStrat(a, b) => {
                buf.push(4);
                a.encode(buf);
                b.encode(buf);
            }
            Prop::LeStrat(a, b) => {
                buf.push(5);
                a.encode(buf);
                b.encode(buf);
            }
            Prop::NoComp(a, b) => {
                buf.push(6);
                a.encode(buf);
                b.encode(buf);
            }
            Prop::IsNash(s) => {
                buf.push(7);
                s.encode(buf);
            }
            Prop::NotNash(s) => {
                buf.push(8);
                s.encode(buf);
            }
            Prop::IsMaxNash(s) => {
                buf.push(9);
                s.encode(buf);
            }
            Prop::IsMinNash(s) => {
                buf.push(10);
                s.encode(buf);
            }
            Prop::And(ps) => {
                buf.push(11);
                ps.encode(buf);
            }
            Prop::Or(ps) => {
                buf.push(12);
                ps.encode(buf);
            }
        }
    }
    fn decode(buf: &mut WireBytes) -> Result<Prop, WireError> {
        decode_prop(buf, 0)
    }
}

impl Wire for ProfileVerdict {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            ProfileVerdict::NotNash { agent, strategy } => {
                buf.push(0);
                agent.encode(buf);
                strategy.encode(buf);
            }
            ProfileVerdict::NotStrictlyBetter(NotAboveWitness::PrefersCandidate { agent }) => {
                buf.push(1);
                agent.encode(buf);
            }
            ProfileVerdict::NotStrictlyBetter(NotAboveWitness::LeCandidate) => {
                buf.push(2);
            }
        }
    }
    fn decode(buf: &mut WireBytes) -> Result<ProfileVerdict, WireError> {
        if !buf.has_remaining() {
            return Err(WireError::UnexpectedEnd);
        }
        Ok(match buf.get_u8() {
            0 => ProfileVerdict::NotNash {
                agent: usize::decode(buf)?,
                strategy: usize::decode(buf)?,
            },
            1 => ProfileVerdict::NotStrictlyBetter(NotAboveWitness::PrefersCandidate {
                agent: usize::decode(buf)?,
            }),
            2 => ProfileVerdict::NotStrictlyBetter(NotAboveWitness::LeCandidate),
            t => return Err(WireError::BadTag(t)),
        })
    }
}

impl Wire for Proof {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Proof::EvalAtom(p) => {
                buf.push(0);
                p.encode(buf);
            }
            Proof::AndIntro(ps) => {
                buf.push(1);
                ps.encode(buf);
            }
            Proof::OrIntro {
                disjuncts,
                index,
                witness,
            } => {
                buf.push(2);
                disjuncts.encode(buf);
                index.encode(buf);
                witness.encode(buf);
            }
            Proof::NashIntro { profile } => {
                buf.push(3);
                profile.encode(buf);
            }
            Proof::NashRefute {
                profile,
                agent,
                strategy,
            } => {
                buf.push(4);
                profile.encode(buf);
                agent.encode(buf);
                strategy.encode(buf);
            }
            Proof::MaxNashIntro {
                profile,
                nash,
                classification,
            } => {
                buf.push(5);
                profile.encode(buf);
                nash.encode(buf);
                classification.encode(buf);
            }
            Proof::MinNashIntro {
                profile,
                nash,
                classification,
            } => {
                buf.push(6);
                profile.encode(buf);
                nash.encode(buf);
                classification.encode(buf);
            }
        }
    }
    fn decode(buf: &mut WireBytes) -> Result<Proof, WireError> {
        decode_proof(buf, 0)
    }
}

impl Wire for PnCounter {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.increments);
        put_varint(buf, self.decrements);
    }
    fn decode(buf: &mut WireBytes) -> Result<PnCounter, WireError> {
        Ok(PnCounter {
            increments: get_varint(buf)?,
            decrements: get_varint(buf)?,
        })
    }
}

impl Wire for DecayingPnCounterMap {
    /// Generation cursor, then a flat length-prefixed sequence of
    /// `(verifier, replica, generation, counter)` slots in sorted order
    /// (the map's `BTreeMap` backing makes the encoding deterministic, so
    /// gossip byte counts are reproducible).
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.current_generation());
        let slots: Vec<_> = self.iter_slots().collect();
        put_varint(buf, slots.len() as u64);
        for (verifier, replica, generation, counter) in slots {
            verifier.encode(buf);
            put_varint(buf, replica);
            put_varint(buf, generation);
            counter.encode(buf);
        }
    }
    fn decode(buf: &mut WireBytes) -> Result<DecayingPnCounterMap, WireError> {
        let mut map = DecayingPnCounterMap::new();
        map.set_generation(get_varint(buf)?);
        let len = crate::wire::get_len_prefix(buf)?;
        for _ in 0..len {
            let verifier = Party::decode(buf)?;
            let replica = get_varint(buf)?;
            let generation = get_varint(buf)?;
            let counter = PnCounter::decode(buf)?;
            map.set_counter(replica, verifier, generation, counter);
        }
        Ok(map)
    }
}

impl Wire for VersionVector {
    /// Length-prefixed `(replica, version)` varint pairs in replica order
    /// (deterministic, like every gossip encoding, so control-plane byte
    /// counts are reproducible).
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.len() as u64);
        for (replica, version) in self.iter() {
            put_varint(buf, replica);
            put_varint(buf, version);
        }
    }
    fn decode(buf: &mut WireBytes) -> Result<VersionVector, WireError> {
        let len = crate::wire::get_len_prefix(buf)?;
        let mut out = VersionVector::new();
        for _ in 0..len {
            let replica = get_varint(buf)?;
            let version = get_varint(buf)?;
            out.set(replica, version);
        }
        Ok(out)
    }
}

impl Wire for ParticipationParams {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.n.encode(buf);
        self.k.encode(buf);
        self.v.encode(buf);
        self.c.encode(buf);
    }
    fn decode(buf: &mut WireBytes) -> Result<ParticipationParams, WireError> {
        let n = u64::decode(buf)?;
        let k = u64::decode(buf)?;
        let v = Rational::decode(buf)?;
        let c = Rational::decode(buf)?;
        ParticipationParams::new(n, k, v, c).map_err(WireError::Malformed)
    }
}

impl Wire for EquilibriumRoot {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            EquilibriumRoot::Exact(p) => {
                buf.push(0);
                p.encode(buf);
            }
            EquilibriumRoot::Bracket { lo, hi } => {
                buf.push(1);
                lo.encode(buf);
                hi.encode(buf);
            }
        }
    }
    fn decode(buf: &mut WireBytes) -> Result<EquilibriumRoot, WireError> {
        if !buf.has_remaining() {
            return Err(WireError::UnexpectedEnd);
        }
        Ok(match buf.get_u8() {
            0 => EquilibriumRoot::Exact(Rational::decode(buf)?),
            1 => EquilibriumRoot::Bracket {
                lo: Rational::decode(buf)?,
                hi: Rational::decode(buf)?,
            },
            t => return Err(WireError::BadTag(t)),
        })
    }
}

impl Wire for Advice {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Advice::PureNash(c) => {
                buf.push(0);
                c.profile.encode(buf);
                c.proof.encode(buf);
            }
            Advice::Support(c) => {
                buf.push(1);
                c.row_support.encode(buf);
                c.col_support.encode(buf);
            }
            Advice::Private(a) => {
                buf.push(2);
                a.own_strategy.encode(buf);
                a.lambda_own.encode(buf);
                a.lambda_opp.encode(buf);
            }
            Advice::Participation(c) => {
                buf.push(3);
                c.params.encode(buf);
                c.root.encode(buf);
            }
            Advice::Online(c) => {
                buf.push(4);
                c.current_loads.encode(buf);
                c.own_load.encode(buf);
                c.expected_future_load.encode(buf);
                c.expected_future_agents.encode(buf);
                c.assignment.encode(buf);
                c.suggested_link.encode(buf);
            }
            Advice::Dominant {
                agent,
                strategy,
                strict,
            } => {
                buf.push(5);
                agent.encode(buf);
                strategy.encode(buf);
                strict.encode(buf);
            }
        }
    }
    fn decode(buf: &mut WireBytes) -> Result<Advice, WireError> {
        if !buf.has_remaining() {
            return Err(WireError::UnexpectedEnd);
        }
        Ok(match buf.get_u8() {
            0 => Advice::PureNash(PureNashCertificate {
                profile: StrategyProfile::decode(buf)?,
                proof: Proof::decode(buf)?,
            }),
            1 => Advice::Support(SupportCertificate {
                row_support: Vec::<usize>::decode(buf)?,
                col_support: Vec::<usize>::decode(buf)?,
            }),
            2 => Advice::Private(P2Advice {
                own_strategy: MixedStrategy::decode(buf)?,
                lambda_own: Rational::decode(buf)?,
                lambda_opp: Rational::decode(buf)?,
            }),
            3 => Advice::Participation(ParticipationCertificate {
                params: ParticipationParams::decode(buf)?,
                root: EquilibriumRoot::decode(buf)?,
            }),
            4 => Advice::Online(OnlineAdviceCertificate {
                current_loads: Vec::<Rational>::decode(buf)?,
                own_load: Rational::decode(buf)?,
                expected_future_load: Rational::decode(buf)?,
                expected_future_agents: usize::decode(buf)?,
                assignment: Vec::<usize>::decode(buf)?,
                suggested_link: usize::decode(buf)?,
            }),
            5 => Advice::Dominant {
                agent: usize::decode(buf)?,
                strategy: usize::decode(buf)?,
                strict: bool::decode(buf)?,
            },
            t => return Err(WireError::BadTag(t)),
        })
    }
}

impl Advice {
    /// The dominance kind of a [`Advice::Dominant`] payload.
    pub fn dominance_kind(strict: bool) -> Dominance {
        if strict {
            Dominance::Strict
        } else {
            Dominance::Weak
        }
    }
}

impl Wire for StrategicGame {
    /// Strategy counts, then every profile's per-agent payoff vector in
    /// [`ProfileIter`](ra_games::ProfileIter) (odometer) order — exactly the
    /// order [`StrategicGame::from_payoff_fn`] evaluates, so the encoding is
    /// canonical: equal games encode to equal bytes.
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.strategy_counts().len() as u64);
        for &count in self.strategy_counts() {
            put_varint(buf, count as u64);
        }
        for row in self.payoff_rows() {
            for utility in row {
                utility.encode(buf);
            }
        }
    }
    fn decode(buf: &mut WireBytes) -> Result<StrategicGame, WireError> {
        let agents = crate::wire::get_len_prefix(buf)?;
        if agents == 0 {
            return Err(WireError::Malformed(
                "strategic game with zero agents".to_owned(),
            ));
        }
        let mut counts = Vec::with_capacity(agents.min(64));
        for _ in 0..agents {
            let count = get_varint(buf)? as usize;
            if count == 0 {
                return Err(WireError::Malformed(
                    "agent with zero strategies".to_owned(),
                ));
            }
            counts.push(count);
        }
        let profiles = counts
            .iter()
            .try_fold(1usize, |acc, &c| acc.checked_mul(c))
            .filter(|&total| total <= 1 << 20)
            .ok_or(WireError::Malformed("profile space too large".to_owned()))?;
        let mut table = Vec::with_capacity(profiles.min(1 << 12));
        for _ in 0..profiles {
            let mut row = Vec::with_capacity(agents);
            for _ in 0..agents {
                row.push(Rational::decode(buf)?);
            }
            table.push(row);
        }
        let mut rows = table.into_iter();
        Ok(StrategicGame::from_payoff_fn(counts, |_| {
            rows.next().expect("one payoff row per profile")
        }))
    }
}

impl Wire for BimatrixGame {
    /// Row/column counts, then the `A` matrix row-major, then `B`.
    fn encode(&self, buf: &mut Vec<u8>) {
        put_varint(buf, self.rows() as u64);
        put_varint(buf, self.cols() as u64);
        for i in 0..self.rows() {
            for j in 0..self.cols() {
                self.a(i, j).encode(buf);
            }
        }
        for i in 0..self.rows() {
            for j in 0..self.cols() {
                self.b(i, j).encode(buf);
            }
        }
    }
    fn decode(buf: &mut WireBytes) -> Result<BimatrixGame, WireError> {
        let rows = crate::wire::get_len_prefix(buf)?;
        let cols = crate::wire::get_len_prefix(buf)?;
        if rows == 0 || cols == 0 {
            return Err(WireError::Malformed("empty bimatrix game".to_owned()));
        }
        if rows.saturating_mul(cols) > 1 << 20 {
            return Err(WireError::Malformed("bimatrix game too large".to_owned()));
        }
        let decode_matrix = |buf: &mut WireBytes| -> Result<Matrix, WireError> {
            let mut out = Vec::with_capacity(rows);
            for _ in 0..rows {
                let mut row = Vec::with_capacity(cols);
                for _ in 0..cols {
                    row.push(Rational::decode(buf)?);
                }
                out.push(row);
            }
            Ok(Matrix::from_rows(out))
        };
        let a = decode_matrix(buf)?;
        let b = decode_matrix(buf)?;
        Ok(BimatrixGame::new(a, b))
    }
}

impl Wire for GameSpec {
    /// Tagged by family (`0` strategic, `1` bimatrix, `2` participation,
    /// `3` parallel links). This canonical encoding is the preimage of
    /// [`crate::cache::spec_digest`], so it must stay deterministic:
    /// identical specs must produce identical bytes on every encode.
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            GameSpec::Strategic(game) => {
                buf.push(0);
                game.encode(buf);
            }
            GameSpec::Bimatrix(game) => {
                buf.push(1);
                game.encode(buf);
            }
            GameSpec::Participation(params) => {
                buf.push(2);
                params.encode(buf);
            }
            GameSpec::ParallelLinks {
                current_loads,
                own_load,
                expected_future_load,
                expected_future_agents,
            } => {
                buf.push(3);
                current_loads.encode(buf);
                own_load.encode(buf);
                expected_future_load.encode(buf);
                expected_future_agents.encode(buf);
            }
        }
    }
    fn decode(buf: &mut WireBytes) -> Result<GameSpec, WireError> {
        if !buf.has_remaining() {
            return Err(WireError::UnexpectedEnd);
        }
        Ok(match buf.get_u8() {
            0 => GameSpec::Strategic(StrategicGame::decode(buf)?),
            1 => GameSpec::Bimatrix(BimatrixGame::decode(buf)?),
            2 => GameSpec::Participation(ParticipationParams::decode(buf)?),
            3 => GameSpec::ParallelLinks {
                current_loads: Vec::<Rational>::decode(buf)?,
                own_load: Rational::decode(buf)?,
                expected_future_load: Rational::decode(buf)?,
                expected_future_agents: usize::decode(buf)?,
            },
            t => return Err(WireError::BadTag(t)),
        })
    }
}

impl Wire for Message {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Message::GameAnnouncement {
                game_id,
                description,
                commitment,
            } => {
                buf.push(0);
                game_id.encode(buf);
                description.encode(buf);
                commitment.encode(buf);
            }
            Message::AdviceRequest { game_id } => {
                buf.push(1);
                game_id.encode(buf);
            }
            Message::AdviceWithProof { game_id, advice } => {
                buf.push(2);
                game_id.encode(buf);
                advice.encode(buf);
            }
            Message::VerdictRequest { game_id, advice } => {
                buf.push(3);
                game_id.encode(buf);
                advice.encode(buf);
            }
            Message::Verdict {
                game_id,
                accepted,
                detail,
            } => {
                buf.push(4);
                game_id.encode(buf);
                accepted.encode(buf);
                detail.encode(buf);
            }
            Message::VerdictReport {
                verifier,
                game_id,
                accepted,
            } => {
                buf.push(5);
                verifier.encode(buf);
                game_id.encode(buf);
                accepted.encode(buf);
            }
            Message::SupportQuery { game_id, index } => {
                buf.push(6);
                game_id.encode(buf);
                index.encode(buf);
            }
            Message::SupportAnswer {
                game_id,
                index,
                in_support,
            } => {
                buf.push(7);
                game_id.encode(buf);
                index.encode(buf);
                in_support.encode(buf);
            }
            Message::Gossip { delta, versions } => {
                buf.push(8);
                delta.encode(buf);
                versions.encode(buf);
            }
            Message::Resilient {
                session,
                attempt,
                inner,
            } => {
                buf.push(9);
                session.encode(buf);
                u64::from(*attempt).encode(buf);
                inner.encode(buf);
            }
        }
    }
    fn decode(buf: &mut WireBytes) -> Result<Message, WireError> {
        if !buf.has_remaining() {
            return Err(WireError::UnexpectedEnd);
        }
        Ok(match buf.get_u8() {
            0 => Message::GameAnnouncement {
                game_id: u64::decode(buf)?,
                description: String::decode(buf)?,
                commitment: Vec::<u64>::decode(buf)?,
            },
            1 => Message::AdviceRequest {
                game_id: u64::decode(buf)?,
            },
            2 => Message::AdviceWithProof {
                game_id: u64::decode(buf)?,
                advice: Box::new(Advice::decode(buf)?),
            },
            3 => Message::VerdictRequest {
                game_id: u64::decode(buf)?,
                advice: Arc::new(Advice::decode(buf)?),
            },
            4 => Message::Verdict {
                game_id: u64::decode(buf)?,
                accepted: bool::decode(buf)?,
                detail: String::decode(buf)?,
            },
            5 => Message::VerdictReport {
                verifier: Party::decode(buf)?,
                game_id: u64::decode(buf)?,
                accepted: bool::decode(buf)?,
            },
            6 => Message::SupportQuery {
                game_id: u64::decode(buf)?,
                index: usize::decode(buf)?,
            },
            7 => Message::SupportAnswer {
                game_id: u64::decode(buf)?,
                index: usize::decode(buf)?,
                in_support: bool::decode(buf)?,
            },
            8 => Message::Gossip {
                delta: DecayingPnCounterMap::decode(buf)?,
                versions: VersionVector::decode(buf)?,
            },
            9 => {
                let session = u64::decode(buf)?;
                let attempt = u32::try_from(u64::decode(buf)?)
                    .map_err(|_| WireError::Malformed("attempt exceeds u32".to_string()))?;
                // Reject a nested envelope *before* recursing: a hostile
                // byte chain of repeated tag-9 frames must fail with a
                // decode error, not a stack overflow.
                match buf.peek_u8() {
                    None => return Err(WireError::UnexpectedEnd),
                    Some(9) => {
                        return Err(WireError::Malformed(
                            "nested resilient envelope".to_string(),
                        ))
                    }
                    Some(_) => {}
                }
                Message::Resilient {
                    session,
                    attempt,
                    inner: Box::new(Message::decode(buf)?),
                }
            }
            t => return Err(WireError::BadTag(t)),
        })
    }
}

impl<T: Wire> Wire for Box<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (**self).encode(buf);
    }
    fn decode(buf: &mut WireBytes) -> Result<Box<T>, WireError> {
        Ok(Box::new(T::decode(buf)?))
    }
}

impl<T: Wire> Wire for Arc<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (**self).encode(buf);
    }
    fn decode(buf: &mut WireBytes) -> Result<Arc<T>, WireError> {
        Ok(Arc::new(T::decode(buf)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ra_exact::rat;
    use ra_proofs::{prove_is_nash, prove_max_nash};

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: T) -> usize {
        let bytes = v.to_bytes();
        let mut buf = bytes.clone();
        let decoded = T::decode(&mut buf).expect("decodes");
        assert_eq!(decoded, v);
        assert!(!buf.has_remaining());
        bytes.len()
    }

    #[test]
    fn party_round_trips() {
        round_trip(Party::Inventor(0));
        round_trip(Party::Agent(12345));
        round_trip(Party::Verifier(7));
        round_trip(Party::Shard(3));
        round_trip(crate::reputation::GOSSIP_HUB);
    }

    fn sample_delta() -> DecayingPnCounterMap {
        let mut delta = DecayingPnCounterMap::new();
        delta.record(0, Party::Verifier(2), false);
        delta.record(0, Party::Verifier(2), false);
        delta.record(0, Party::Verifier(1), true);
        delta.set_generation(3);
        delta.record(1, Party::Verifier(2), true);
        delta
    }

    fn sample_versions() -> VersionVector {
        let mut versions = VersionVector::new();
        versions.set(0, 3);
        versions.set(2, 1);
        versions
    }

    #[test]
    fn gossip_message_round_trips() {
        let msg = Message::Gossip {
            delta: sample_delta(),
            versions: sample_versions(),
        };
        let size = round_trip(msg);
        // Lemma 1 sanity: a 3-slot delta is tens of bytes, so control-plane
        // frames stay the same order of magnitude as consultation frames.
        assert!(size < 64, "3-slot gossip frame took {size} bytes");
        round_trip(Message::Gossip {
            delta: DecayingPnCounterMap::new(),
            versions: VersionVector::new(),
        });
    }

    #[test]
    fn version_vector_round_trips() {
        round_trip(VersionVector::new());
        let mut versions = VersionVector::new();
        versions.set(u64::MAX, u64::MAX);
        versions.set(0, 1);
        let size = round_trip(versions);
        assert!(size < 32, "version vectors are a handful of varints");
    }

    #[test]
    fn truncated_gossip_payload_rejected() {
        let msg = Message::Gossip {
            delta: sample_delta(),
            versions: sample_versions(),
        };
        let bytes = msg.to_bytes();
        // Every strict prefix must fail cleanly (never panic, never
        // succeed): the slot count promises more data than remains.
        for cut in 1..bytes.len() {
            let mut truncated = bytes.slice(0..cut);
            assert!(
                Message::decode(&mut truncated).is_err(),
                "prefix of {cut} bytes decoded successfully"
            );
        }
    }

    #[test]
    fn resilient_envelope_round_trips_and_flags_retransmits() {
        let first = Message::Resilient {
            session: 7,
            attempt: 0,
            inner: Box::new(Message::AdviceRequest { game_id: 7 }),
        };
        assert!(!first.is_retransmit(), "attempt 0 is the first try");
        assert!(!Message::AdviceRequest { game_id: 7 }.is_retransmit());
        let size = round_trip(first);
        // The envelope adds a tag byte plus two varints to the inner
        // frame: single-digit overhead, so Lemma 1 tables stay honest.
        assert!(size < 16, "tiny envelope, got {size} bytes");
        let retry = Message::Resilient {
            session: u64::MAX,
            attempt: 3,
            inner: Box::new(Message::Verdict {
                game_id: 9,
                accepted: true,
                detail: String::new(),
            }),
        };
        assert!(retry.is_retransmit());
        round_trip(retry);
    }

    #[test]
    fn truncated_resilient_envelope_rejected() {
        let msg = Message::Resilient {
            session: 3,
            attempt: 1,
            inner: Box::new(Message::SupportAnswer {
                game_id: 3,
                index: 2,
                in_support: true,
            }),
        };
        let bytes = msg.to_bytes();
        for cut in 1..bytes.len() {
            let mut truncated = bytes.slice(0..cut);
            assert!(
                Message::decode(&mut truncated).is_err(),
                "prefix of {cut} bytes decoded successfully"
            );
        }
    }

    #[test]
    fn nested_resilient_envelope_rejected_without_recursing() {
        // A hostile chain of envelope tags must fail with a decode error
        // on the *first* nesting, long before the stack could overflow.
        let mut attack = Vec::new();
        for _ in 0..1_000_000 {
            attack.push(9u8); // Message::Resilient tag
            put_varint(&mut attack, 1); // session
            put_varint(&mut attack, 0); // attempt
        }
        let mut buf = WireBytes::from(attack);
        assert!(matches!(
            Message::decode(&mut buf),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_gossip_slot_count_rejected() {
        // Frame claiming u64::MAX slots: the defensive length cap must
        // reject it as malformed instead of attempting the allocation.
        let mut attack = Vec::new();
        attack.push(8u8); // Message::Gossip tag
        put_varint(&mut attack, 0); // generation cursor
        put_varint(&mut attack, u64::MAX); // hostile slot count
        let mut buf = WireBytes::from(attack);
        assert!(matches!(
            Message::decode(&mut buf),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn support_certificate_size_matches_lemma1_order() {
        // The P1 certificate for an n × m game is O(n + m) small on the
        // wire: a handful of bytes, independent of the payoff values.
        let cert = SupportCertificate {
            row_support: vec![0, 2],
            col_support: vec![1],
        };
        let size = round_trip(Advice::Support(cert));
        assert!(size < 16, "tiny certificate, got {size} bytes");
    }

    #[test]
    fn recursive_proofs_round_trip() {
        let game = ra_games::named::coordination_game(3);
        let max_proof = prove_max_nash(&game, &vec![2, 2].into()).unwrap();
        round_trip(max_proof);
        round_trip(prove_is_nash(vec![0, 1].into()));
        let or = Proof::OrIntro {
            disjuncts: vec![
                Prop::IsNash(vec![0, 0].into()),
                Prop::Lt(Term::constant(rat(1, 2)), Term::constant(rat(2, 3))),
            ],
            index: 1,
            witness: Box::new(Proof::EvalAtom(Prop::Lt(
                Term::constant(rat(1, 2)),
                Term::constant(rat(2, 3)),
            ))),
        };
        round_trip(or);
    }

    #[test]
    fn all_advice_variants_round_trip() {
        round_trip(Advice::PureNash(PureNashCertificate {
            profile: vec![1, 1].into(),
            proof: prove_is_nash(vec![1, 1].into()),
        }));
        round_trip(Advice::Private(P2Advice {
            own_strategy: MixedStrategy::try_new(vec![rat(1, 3), rat(2, 3)]).unwrap(),
            lambda_own: rat(5, 8),
            lambda_opp: rat(-1, 2),
        }));
        round_trip(Advice::Participation(ParticipationCertificate {
            params: ParticipationParams::paper_example(),
            root: EquilibriumRoot::Exact(rat(1, 4)),
        }));
        round_trip(Advice::Participation(ParticipationCertificate {
            params: ParticipationParams::paper_example(),
            root: EquilibriumRoot::Bracket {
                lo: rat(1, 5),
                hi: rat(2, 5),
            },
        }));
        round_trip(Advice::Online(ra_proofs::honest_online_advice(
            &[rat(3, 1), rat(1, 2)],
            &rat(7, 3),
            &rat(1, 1),
            2,
        )));
        round_trip(Advice::Dominant {
            agent: 1,
            strategy: 4,
            strict: false,
        });
    }

    #[test]
    fn all_message_variants_round_trip() {
        round_trip(Message::GameAnnouncement {
            game_id: 9,
            description: "participation auction".into(),
            commitment: vec![1, 2, 3, 4],
        });
        round_trip(Message::AdviceRequest { game_id: 9 });
        round_trip(Message::AdviceWithProof {
            game_id: 9,
            advice: Box::new(Advice::Support(SupportCertificate {
                row_support: vec![0],
                col_support: vec![1],
            })),
        });
        round_trip(Message::Verdict {
            game_id: 9,
            accepted: false,
            detail: "indifference system inconsistent".into(),
        });
        round_trip(Message::VerdictReport {
            verifier: Party::Verifier(3),
            game_id: 9,
            accepted: true,
        });
    }

    #[test]
    fn hostile_nesting_rejected_not_crashing() {
        // A flood of Term::Add tags used to blow the stack; it must now be
        // a clean decode error. Depth-first, each 0x02 opens another level.
        let mut attack = WireBytes::from(vec![2u8; 2_000_000]);
        assert!(matches!(
            Term::decode(&mut attack),
            Err(WireError::Malformed(_))
        ));
        // Same shape through Prop (And-of-And) and Proof (AndIntro chains):
        // tag 11 + varint length 1, repeated.
        let mut and_chain = Vec::new();
        for _ in 0..100_000 {
            and_chain.extend_from_slice(&[11u8, 1]);
        }
        let mut attack = WireBytes::from(and_chain);
        assert!(matches!(
            Prop::decode(&mut attack),
            Err(WireError::Malformed(_))
        ));
        let mut proof_chain = Vec::new();
        for _ in 0..100_000 {
            proof_chain.extend_from_slice(&[1u8, 1]);
        }
        let mut attack = WireBytes::from(proof_chain);
        assert!(matches!(
            Proof::decode(&mut attack),
            Err(WireError::Malformed(_))
        ));
        // Legitimately deep-but-bounded trees still round-trip.
        let mut term = Term::constant(rat(1, 1));
        for _ in 0..200 {
            term = Term::Add(Box::new(term), Box::new(Term::constant(rat(1, 1))));
        }
        round_trip(Prop::Le(term, Term::constant(rat(500, 1))));
    }

    #[test]
    fn corrupted_messages_rejected() {
        let msg = Message::AdviceRequest { game_id: 1 };
        let bytes = msg.to_bytes();
        let mut truncated = bytes.slice(0..bytes.len() - 1);
        // Either decodes to something else or errors — but with one byte cut
        // from a varint tail it must error.
        assert!(Message::decode(&mut truncated).is_err() || truncated.has_remaining());
        let mut bad_tag = WireBytes::from(vec![99u8]);
        assert!(matches!(
            Message::decode(&mut bad_tag),
            Err(WireError::BadTag(99))
        ));
    }

    fn sample_specs() -> Vec<GameSpec> {
        vec![
            GameSpec::Strategic(ra_games::named::prisoners_dilemma().to_strategic()),
            GameSpec::Strategic(StrategicGame::from_payoff_fn(vec![2, 3, 2], |p| {
                (0..3)
                    .map(|agent| rat((p.strategy_of(agent) + agent) as i64, 2))
                    .collect()
            })),
            GameSpec::Bimatrix(ra_games::named::matching_pennies()),
            GameSpec::Participation(ParticipationParams::paper_example()),
            GameSpec::ParallelLinks {
                current_loads: vec![rat(1, 2), rat(3, 1), rat(0, 1)],
                own_load: rat(5, 4),
                expected_future_load: rat(1, 1),
                expected_future_agents: 7,
            },
        ]
    }

    #[test]
    fn game_specs_round_trip() {
        for spec in sample_specs() {
            round_trip(spec);
        }
    }

    #[test]
    fn game_spec_encoding_is_deterministic() {
        for spec in sample_specs() {
            assert_eq!(
                spec.to_bytes().as_slice(),
                spec.clone().to_bytes().as_slice()
            );
        }
    }

    #[test]
    fn truncated_game_specs_rejected() {
        for spec in sample_specs() {
            let bytes = spec.to_bytes();
            for cut in 0..bytes.len() {
                let mut truncated = bytes.slice(0..cut);
                assert!(
                    GameSpec::decode(&mut truncated).is_err(),
                    "prefix of {cut} bytes decoded successfully"
                );
            }
        }
    }

    #[test]
    fn degenerate_game_specs_rejected() {
        // Strategic game claiming zero agents.
        let mut zero_agents = WireBytes::from(vec![0u8, 0]);
        assert!(matches!(
            GameSpec::decode(&mut zero_agents),
            Err(WireError::Malformed(_))
        ));
        // Strategic game with an astronomically large profile space: the
        // counts alone must be refused before any payoff allocation.
        let mut huge = vec![0u8];
        put_varint(&mut huge, 8);
        for _ in 0..8 {
            put_varint(&mut huge, 1 << 12);
        }
        let mut huge = WireBytes::from(huge);
        assert!(matches!(
            GameSpec::decode(&mut huge),
            Err(WireError::Malformed(_))
        ));
        // Empty bimatrix game.
        let mut empty = WireBytes::from(vec![1u8, 0, 0]);
        assert!(matches!(
            GameSpec::decode(&mut empty),
            Err(WireError::Malformed(_))
        ));
    }
}
