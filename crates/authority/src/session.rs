//! End-to-end consultation sessions — the Fig. 1 flow, over the bus.
//!
//! One consultation: the agent asks the inventor for advice, receives
//! advice-with-proof, forwards it to every currently-trusted verifier,
//! pools the verdicts by majority, updates reputations, and adopts the
//! advice only on acceptance. Every hop crosses the [`Bus`], so the outcome
//! carries exact byte counts.
//!
//! Two layers live here. [`SessionDriver`] is the *protocol*: it runs one
//! Fig. 1 message flow against whatever bus, inventor, verifier panel and
//! reputation backend it was assembled with. [`RationalityAuthority`] is
//! the single-bus *orchestration* on top: it owns one driver, assigns
//! game ids and exposes the classic `consult` API. The sharded, multi-bus
//! orchestration lives in [`crate::ShardedAuthority`], which reuses the
//! same driver per shard.
//!
//! The driver is deliberately ignorant of reputation *policy*: whether
//! verdicts are pooled one-verifier-one-vote or stake-weighted
//! ([`crate::VoteRule`]), whether scores decay
//! ([`crate::ReputationDecay`]), and whether the scores are shard-local
//! or gossiped engine-wide all live behind the [`ReputationBackend`]
//! trait, so the Fig. 1 flow never changes when the plane does.
//!
//! The flow is also the engine's *hot path*, and it is written to stay
//! off the allocator and off contended locks in the steady state: endpoint
//! drains reuse one receive buffer ([`Endpoint::drain_into`]), the
//! verdict fan-out and the replies each ship as one [`Bus::send_batch`]
//! accounting critical section from a reused staging buffer, and trust
//! checks read a single immutable
//! [`crate::ReputationSnapshot`] taken at the top of the
//! fan-out instead of locking the backend per verifier.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use crate::bus::Bus;
use crate::cache::{spec_digest, CacheMode, CachedConsultation, CertCache};
use crate::inventor::{GameSpec, Inventor};
use crate::messages::{Advice, Message, Party};
use crate::reputation::{LocalReputation, MajorityOutcome, ReputationBackend};
use crate::transport::{Endpoint, Transport};
use crate::verifier::{kernel_check, VerifierService};
use crate::wire::Wire;

/// How much of the verifier panel a consultation's verdict pool heard
/// from before closing.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum PanelOutcome {
    /// Every trusted verifier's verdict arrived (always the case when
    /// resilience is off: whatever arrived *is* the panel the legacy
    /// protocol pools).
    #[default]
    Full,
    /// The vote closed at quorum after the deadline budget ran out; the
    /// listed verifiers never responded and were reported to the
    /// reputation plane as unresponsive.
    Degraded {
        /// Trusted verifiers that never answered, in panel order.
        missing: Vec<Party>,
    },
}

/// Which protocol stage a resilient consultation was in when its
/// deadline budget ran out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConsultStage {
    /// Waiting for the inventor's advice-with-proof.
    Advice,
    /// Waiting for verifier verdicts.
    Panel,
}

impl std::fmt::Display for ConsultStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConsultStage::Advice => write!(f, "advice"),
            ConsultStage::Panel => write!(f, "panel"),
        }
    }
}

/// A typed consultation failure — what a resilient session returns
/// instead of a silently half-empty [`SessionOutcome`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConsultError {
    /// The deadline budget (or retry budget) ran out before the stage
    /// could complete.
    Deadline {
        /// The stage that starved.
        stage: ConsultStage,
        /// Retransmitted frames spent before giving up.
        attempts: u64,
        /// Virtual ticks elapsed since the session started.
        elapsed: u64,
        /// Responses received in the starved stage.
        received: usize,
        /// The quorum the stage needed.
        quorum: usize,
        /// Parties that never responded, in panel order.
        missing: Vec<Party>,
    },
}

impl std::fmt::Display for ConsultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConsultError::Deadline {
                stage,
                attempts,
                elapsed,
                received,
                quorum,
                missing,
            } => write!(
                f,
                "{stage} stage deadline: {received}/{quorum} responses after \
                 {attempts} retransmits and {elapsed} ticks ({} silent)",
                missing.len()
            ),
        }
    }
}

impl std::error::Error for ConsultError {}

/// Result type of a resilient consultation.
pub type ConsultResult = Result<SessionOutcome, ConsultError>;

/// Exponential-backoff shape for resilient retransmissions: the k-th
/// retry waits `min(cap, base * factor^k) + U[0, jitter]` virtual ticks
/// (drawn from the driver's seeded stream, so runs are replayable).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BackoffConfig {
    /// First retry interval in virtual ticks (≥ 1).
    pub base: u64,
    /// Multiplier applied per successive retry (≥ 1).
    pub factor: u64,
    /// Ceiling on the un-jittered interval.
    pub cap: u64,
    /// Maximum additive jitter in ticks (0 disables the draw).
    pub jitter: u64,
}

impl Default for BackoffConfig {
    fn default() -> BackoffConfig {
        BackoffConfig {
            base: 4,
            factor: 2,
            cap: 256,
            jitter: 3,
        }
    }
}

impl BackoffConfig {
    /// The wait before retry `attempt` (0-based): exponential growth,
    /// capped, plus a seeded jitter draw.
    fn rto(&self, attempt: u32, rng: &mut u64) -> u64 {
        let mut interval = self.base;
        for _ in 0..attempt {
            if interval >= self.cap {
                break;
            }
            interval = interval.saturating_mul(self.factor);
        }
        interval = interval.min(self.cap);
        if self.jitter > 0 {
            interval += rand::splitmix64(rng) % (self.jitter + 1);
        }
        interval
    }

    /// Validates the shape's invariants.
    fn check(&self) {
        assert!(self.base >= 1, "backoff base must be at least one tick");
        assert!(self.factor >= 1, "backoff factor must be at least 1");
        assert!(self.cap >= self.base, "backoff cap below base");
    }
}

/// Per-consultation resilience budget: deadlines, retransmission and
/// quorum degradation for the Fig. 1 flow. Attach with
/// [`SessionDriver::set_resilience`] /
/// [`RationalityAuthority::set_resilience`]; the default (no config) is
/// the legacy fire-and-forget protocol, bit-for-bit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResilienceConfig {
    /// Total virtual-tick budget per consultation; when the transport's
    /// clock passes it, the current stage closes (at quorum or with a
    /// [`ConsultError::Deadline`]). On a clockless synchronous transport
    /// only `max_attempts` bounds the retries.
    pub deadline: u64,
    /// Minimum trusted-verifier responses for a degraded panel close
    /// (clamped to the live panel size; ≥ 1).
    pub quorum: usize,
    /// Maximum sends per hop, first try included (≥ 1).
    pub max_attempts: u32,
    /// Retry backoff shape.
    pub backoff: BackoffConfig,
    /// Seed of the driver-local jitter stream (kept separate from any
    /// transport seed so retry timing is reproducible on its own).
    pub seed: u64,
}

impl Default for ResilienceConfig {
    fn default() -> ResilienceConfig {
        ResilienceConfig {
            deadline: 4096,
            quorum: 1,
            max_attempts: 8,
            backoff: BackoffConfig::default(),
            seed: 0x5EED_0FBA_C0FF,
        }
    }
}

impl ResilienceConfig {
    /// Validates the budget's invariants.
    fn check(&self) {
        assert!(self.deadline >= 1, "deadline must be at least one tick");
        assert!(self.quorum >= 1, "quorum must be at least one verifier");
        assert!(self.max_attempts >= 1, "need at least one attempt");
        self.backoff.check();
    }
}

/// Outcome of one consultation.
#[derive(Clone, Debug)]
pub struct SessionOutcome {
    /// The advice received (if the inventor answered).
    pub advice: Option<Advice>,
    /// The pooled verdict (if advice was received and verifiers exist).
    pub majority: Option<MajorityOutcome>,
    /// Whether the agent adopts the advice.
    pub adopted: bool,
    /// Wire bytes of the advice message itself (Lemma 1 measurements).
    pub advice_bytes: usize,
    /// Total wire bytes of the whole session.
    pub session_bytes: usize,
    /// Per-verifier verdict details, for the audit log.
    pub verdict_details: Vec<(Party, bool, String)>,
    /// Whether this outcome was served from the certificate cache (no
    /// protocol messages flowed: `session_bytes` is zero, `majority` /
    /// `verdict_details` replay the cold session's, and the reputation
    /// plane was not touched).
    pub cached: bool,
    /// Whether the panel vote closed full or degraded (always
    /// [`PanelOutcome::Full`] when resilience is off or on a cache hit).
    pub panel: PanelOutcome,
    /// Retransmitted frames this session spent (0 when resilience is off
    /// or on a cache hit).
    pub attempts: u64,
}

/// The reusable per-consultation protocol: one bus, one inventor, one
/// verifier panel, one reputation backend, and the endpoints of every
/// registered party.
///
/// [`SessionDriver::run`] executes exactly one Fig. 1 flow for an explicit
/// `game_id`; id assignment and routing are the caller's concern, which is
/// what lets a single driver serve both the monolithic
/// [`RationalityAuthority`] and each shard of a
/// [`crate::ShardedAuthority`]. The reputation plane is pluggable: by
/// default a driver owns a private [`LocalReputation`], but
/// [`SessionDriver::with_reputation`] accepts any shared
/// [`ReputationBackend`] — a gossiping one, say — without the protocol
/// changing at all.
pub struct SessionDriver {
    bus: Arc<dyn Transport>,
    reputation: Arc<dyn ReputationBackend>,
    inventor: Inventor,
    verifiers: Vec<VerifierService>,
    endpoints: HashMap<Party, Endpoint>,
    /// Reusable receive buffer: every endpoint drain on the hot path lands
    /// here via [`Endpoint::drain_into`], so steady-state consults never
    /// allocate a fresh inbox `Vec`.
    recv_buf: Vec<(Party, Message)>,
    /// Reusable fan-out buffer for [`Bus::send_batch`]: verdict requests
    /// and verdict replies are staged here and shipped in one accounting
    /// critical section each.
    send_buf: Vec<(Party, Party, Message)>,
    /// Optional content-addressed certificate cache, shared across drivers
    /// (`None` — the default — leaves the protocol bit-for-bit unchanged).
    cert_cache: Option<Arc<CertCache>>,
    /// Optional resilience budget (`None` — the default — leaves the
    /// protocol bit-for-bit unchanged: no envelopes, no retries).
    resilience: Option<ResilienceConfig>,
    /// Driver-local jitter stream for retry backoff, seeded from
    /// [`ResilienceConfig::seed`] so resilient runs are replayable.
    jitter_rng: u64,
}

impl SessionDriver {
    /// Assembles a driver with a private [`LocalReputation`] backend:
    /// registers the inventor and every verifier on a fresh bus.
    pub fn new(
        inventor: Inventor,
        verifier_behaviors: &[crate::verifier::VerifierBehavior],
    ) -> SessionDriver {
        SessionDriver::with_reputation(
            inventor,
            verifier_behaviors,
            Arc::new(LocalReputation::new()),
        )
    }

    /// Assembles a driver around an explicit reputation backend (shared
    /// with other drivers when `reputation` is a cross-shard plane).
    pub fn with_reputation(
        inventor: Inventor,
        verifier_behaviors: &[crate::verifier::VerifierBehavior],
        reputation: Arc<dyn ReputationBackend>,
    ) -> SessionDriver {
        SessionDriver::with_transport(
            inventor,
            verifier_behaviors,
            reputation,
            Arc::new(Bus::new()),
        )
    }

    /// Assembles a driver over an explicit [`Transport`] — the perfect
    /// [`Bus`], a lossy [`crate::SimNet`], or anything else implementing
    /// the trait. The protocol itself is transport-agnostic; only the
    /// fate of its frames changes.
    pub fn with_transport(
        inventor: Inventor,
        verifier_behaviors: &[crate::verifier::VerifierBehavior],
        reputation: Arc<dyn ReputationBackend>,
        bus: Arc<dyn Transport>,
    ) -> SessionDriver {
        let mut endpoints = HashMap::new();
        endpoints.insert(inventor.id, bus.register(inventor.id));
        let verifiers: Vec<VerifierService> = verifier_behaviors
            .iter()
            .enumerate()
            .map(|(i, &b)| VerifierService::new(i as u64, b))
            .collect();
        for v in &verifiers {
            endpoints.insert(v.id, bus.register(v.id));
        }
        SessionDriver {
            bus,
            reputation,
            inventor,
            verifiers,
            endpoints,
            recv_buf: Vec::new(),
            send_buf: Vec::new(),
            cert_cache: None,
            resilience: None,
            jitter_rng: 0,
        }
    }

    /// Attaches (or with `None` removes) a resilience budget: subsequent
    /// sessions run the loss-tolerant protocol — enveloped frames with
    /// deadlines, retransmit/backoff and quorum degradation — via
    /// [`SessionDriver::try_run`]. Without one, the legacy
    /// fire-and-forget flow runs unchanged.
    ///
    /// # Panics
    ///
    /// Panics if the config violates its invariants (zero deadline,
    /// quorum, attempts or backoff base).
    pub fn set_resilience(&mut self, config: Option<ResilienceConfig>) {
        if let Some(cfg) = &config {
            cfg.check();
            self.jitter_rng = cfg.seed;
        }
        self.resilience = config;
    }

    /// The attached resilience budget, if any.
    pub fn resilience(&self) -> Option<&ResilienceConfig> {
        self.resilience.as_ref()
    }

    /// Attaches a shared certificate cache: subsequent [`SessionDriver::run`]
    /// calls consult it before running the Fig. 1 protocol and memoize
    /// their results into it.
    pub fn set_cert_cache(&mut self, cache: Arc<CertCache>) {
        self.cert_cache = Some(cache);
    }

    /// The attached certificate cache, if any.
    pub fn cert_cache(&self) -> Option<&Arc<CertCache>> {
        self.cert_cache.as_ref()
    }

    /// The reputation backend consulted by this driver's sessions.
    pub fn reputation(&self) -> &dyn ReputationBackend {
        &*self.reputation
    }

    /// The underlying transport (byte accounting, fault injection).
    pub fn bus(&self) -> &dyn Transport {
        &*self.bus
    }

    /// Registers the agent's endpoint on first contact; later calls reuse
    /// the existing endpoint rather than re-registering.
    pub fn ensure_agent(&mut self, agent: Party) {
        if !self.endpoints.contains_key(&agent) {
            let endpoint = self.bus.register(agent);
            self.endpoints.insert(agent, endpoint);
        }
    }

    /// Runs one consultation for `agent` about `spec`, under the
    /// caller-assigned `game_id`.
    ///
    /// With no certificate cache attached (the default) this *is* the full
    /// Fig. 1 protocol. With one attached, the spec's digest is looked up
    /// first: a hit short-circuits the protocol entirely — zero bus bytes,
    /// no reputation update, `cached: true` — after replaying the
    /// `ra-proofs` kernel check when the cache is in
    /// [`CacheMode::Replay`] (a verdict mismatch discards the hit and
    /// falls back to the full protocol). Misses run the protocol and
    /// memoize the result.
    pub fn run(&mut self, agent: Party, game_id: u64, spec: &GameSpec) -> SessionOutcome {
        match self.try_run(agent, game_id, spec) {
            Ok(outcome) => outcome,
            Err(e) => panic!("resilient consultation failed ({e}); use try_run to handle errors"),
        }
    }

    /// [`SessionDriver::run`] with typed failure: the resilient protocol
    /// (when a [`ResilienceConfig`] is attached) returns
    /// [`ConsultError::Deadline`] when a stage's budget runs out instead
    /// of a half-empty outcome. Without a config this never errors — it
    /// runs exactly the legacy flow.
    pub fn try_run(&mut self, agent: Party, game_id: u64, spec: &GameSpec) -> ConsultResult {
        let Some(cache) = self.cert_cache.clone() else {
            return self.dispatch(agent, game_id, spec);
        };
        let digest = spec_digest(spec);
        // Replay hits are panel-guarded: an entry minted under a
        // different trusted-verifier set (ReputationSnapshot
        // panel_version) is treated as a miss, so exclusions invalidate
        // warm advice. Trust mode serves the digest hit unconditionally.
        let panel_guard = match cache.mode() {
            CacheMode::Replay => Some(self.reputation.snapshot().panel_version()),
            CacheMode::Trust => None,
        };
        if let Some(entry) = cache.lookup(&digest, panel_guard) {
            match cache.mode() {
                CacheMode::Trust => return Ok(Self::outcome_from_cache(&entry)),
                CacheMode::Replay => {
                    let (kernel_accepts, _) = kernel_check(spec, &entry.advice);
                    if kernel_accepts == entry.kernel_accepts {
                        return Ok(Self::outcome_from_cache(&entry));
                    }
                    cache.note_replay_failure();
                }
            }
        }
        let outcome = self.dispatch(agent, game_id, spec)?;
        // Degraded closes are never memoized: their majority was pooled
        // over a partial panel, so serving them warm would replay a
        // quorum vote as if the full panel had vouched for it.
        if let (Some(advice), PanelOutcome::Full) = (&outcome.advice, &outcome.panel) {
            // Record the kernel's own verdict once, so replay hits compare
            // kernel-to-kernel (deterministic) rather than against the
            // panel's — possibly corrupt — adoption decision.
            let (kernel_accepts, _) = kernel_check(spec, advice);
            cache.insert(
                digest,
                CachedConsultation {
                    advice: advice.clone(),
                    kernel_accepts,
                    majority: outcome.majority.clone(),
                    adopted: outcome.adopted,
                    advice_bytes: outcome.advice_bytes,
                    verdict_details: outcome.verdict_details.clone(),
                    // Stamped *after* run_protocol, so an exclusion caused
                    // by this very consult is already reflected.
                    panel_version: self.reputation.snapshot().panel_version(),
                },
            );
        }
        Ok(outcome)
    }

    /// Materializes a cache hit: the stored session's result with zero
    /// fresh bus traffic.
    fn outcome_from_cache(entry: &CachedConsultation) -> SessionOutcome {
        SessionOutcome {
            advice: Some(entry.advice.clone()),
            majority: entry.majority.clone(),
            adopted: entry.adopted,
            advice_bytes: entry.advice_bytes,
            session_bytes: 0,
            verdict_details: entry.verdict_details.clone(),
            cached: true,
            panel: PanelOutcome::Full,
            attempts: 0,
        }
    }

    /// Routes a consultation to the legacy fire-and-forget flow (no
    /// resilience attached — infallible, bit-for-bit the pre-resilience
    /// protocol) or to the loss-tolerant enveloped flow.
    fn dispatch(&mut self, agent: Party, game_id: u64, spec: &GameSpec) -> ConsultResult {
        match self.resilience {
            None => Ok(self.run_protocol(agent, game_id, spec)),
            Some(cfg) => self.run_resilient(agent, game_id, spec, cfg),
        }
    }

    /// The full Fig. 1 message flow (always what runs on a cache miss or
    /// with no cache attached).
    fn run_protocol(&mut self, agent: Party, game_id: u64, spec: &GameSpec) -> SessionOutcome {
        self.ensure_agent(agent);
        let bytes_before = self.bus.total_bytes();

        // 1. Agent → inventor: request.
        self.bus
            .send(agent, self.inventor.id, Message::AdviceRequest { game_id })
            .expect("inventor registered");
        // Inventor processes its queue. Drains reuse `recv_buf` so the
        // steady state allocates no inbox Vec per hop. Every drain is
        // preceded by a settle so latency-delayed frames land first (a
        // no-op on the perfect bus).
        self.bus.settle();
        self.recv_buf.clear();
        self.endpoints[&self.inventor.id].drain_into(&mut self.recv_buf);
        let mut advice: Option<Advice> = None;
        for (from, msg) in self.recv_buf.drain(..) {
            if let (Message::AdviceRequest { game_id: gid }, true) = (&msg, from == agent) {
                if *gid == game_id {
                    advice = self.inventor.advise(spec);
                }
            }
        }
        let mut advice_bytes = 0;
        if let Some(a) = advice {
            // Single recipient: the advice moves into the frame (the agent
            // hands it back through its endpoint below), so the inventor→
            // agent hop costs no payload clone.
            let msg = Message::AdviceWithProof {
                game_id,
                advice: Box::new(a),
            };
            advice_bytes = msg.encoded_len();
            self.bus
                .send(self.inventor.id, agent, msg)
                .expect("agent registered");
        }
        // Agent receives.
        self.bus.settle();
        self.recv_buf.clear();
        self.endpoints[&agent].drain_into(&mut self.recv_buf);
        let received = self.recv_buf.drain(..).find_map(|(_, m)| match m {
            Message::AdviceWithProof { advice, .. } => Some(*advice),
            _ => None,
        });
        let Some(received_advice) = received else {
            return SessionOutcome {
                advice: None,
                majority: None,
                adopted: false,
                advice_bytes: 0,
                session_bytes: self.bus.total_bytes() - bytes_before,
                verdict_details: Vec::new(),
                cached: false,
                panel: PanelOutcome::Full,
                attempts: 0,
            };
        };

        // 2. Agent → trusted verifiers: verdict requests (and replies).
        // The same advice fans out to the whole panel, so it is shared:
        // every frame is a reference-count bump, not a proof-tree clone.
        // Trust checks read one immutable snapshot taken here — the
        // backend's data lock is untouched until the verdicts pool, so a
        // gossip merge on another shard never contends with this fan-out
        // (and the panel seen by one consult is always a whole epoch).
        let reputation_view = self.reputation.snapshot();
        let advice_payload = Arc::new(received_advice);
        self.send_buf.clear();
        for verifier in &self.verifiers {
            if !reputation_view.is_trusted(verifier.id) {
                continue;
            }
            self.send_buf.push((
                agent,
                verifier.id,
                Message::VerdictRequest {
                    game_id,
                    advice: Arc::clone(&advice_payload),
                },
            ));
        }
        // One accounting critical section for the whole request fan-out;
        // send_batch drains the buffer so its allocation is reused.
        self.bus
            .send_batch(&mut self.send_buf)
            .expect("verifier registered");
        // Each verifier processes its queue; the replies batch the same
        // way back to the agent.
        self.bus.settle();
        let mut verdict_details = Vec::new();
        for verifier in &self.verifiers {
            if !reputation_view.is_trusted(verifier.id) {
                continue;
            }
            self.recv_buf.clear();
            self.endpoints[&verifier.id].drain_into(&mut self.recv_buf);
            for (from, msg) in self.recv_buf.drain(..) {
                if let Message::VerdictRequest { advice, .. } = msg {
                    let (accepted, detail) = verifier.verify(spec, &advice);
                    self.send_buf.push((
                        verifier.id,
                        from,
                        Message::Verdict {
                            game_id,
                            accepted,
                            detail: detail.clone(),
                        },
                    ));
                    verdict_details.push((verifier.id, accepted, detail));
                }
            }
        }
        self.bus
            .send_batch(&mut self.send_buf)
            .expect("agent registered");
        // Agent collects verdicts.
        self.bus.settle();
        let mut verdicts: Vec<(Party, bool)> = Vec::new();
        self.recv_buf.clear();
        self.endpoints[&agent].drain_into(&mut self.recv_buf);
        for (from, msg) in self.recv_buf.drain(..) {
            if let Message::Verdict { accepted, .. } = msg {
                verdicts.push((from, accepted));
            }
        }

        // 3. Majority + reputation update.
        let majority = if verdicts.is_empty() {
            None
        } else {
            Some(self.reputation.pool_verdicts(&verdicts))
        };
        let adopted = majority.as_ref().is_some_and(|m| m.accepted);
        // Every verifier has processed its queue, so the shared payload is
        // normally unique again and unwraps without copying.
        let received_advice = Arc::try_unwrap(advice_payload).unwrap_or_else(|a| (*a).clone());
        SessionOutcome {
            advice: Some(received_advice),
            majority,
            adopted,
            advice_bytes,
            session_bytes: self.bus.total_bytes() - bytes_before,
            verdict_details,
            cached: false,
            panel: PanelOutcome::Full,
            attempts: 0,
        }
    }

    /// The loss-tolerant Fig. 1 flow. Every frame ships inside a
    /// [`Message::Resilient`] envelope carrying the session id and an
    /// attempt sequence number; the agent retransmits on the configured
    /// exponential backoff (driven through the transport's virtual clock)
    /// until the stage completes, `max_attempts` sends are spent, or the
    /// deadline budget runs out. Responders answer each distinct attempt
    /// exactly once — duplicates from at-least-once links are dropped —
    /// and compute their advice/verdict a single time per session; replies
    /// echo the request's attempt number, so the Lemma 1 ledger classifies
    /// all retry traffic (both directions) as retransmit bytes.
    ///
    /// The panel stage closes *full* when every trusted verifier answers,
    /// or *degraded* at `quorum` responses once the budget is spent — in
    /// which case the silent verifiers are reported to the reputation
    /// plane as unresponsive. Sub-quorum exhaustion (and a starved advice
    /// stage) returns [`ConsultError::Deadline`] without punishing anyone:
    /// with no responding majority there is no evidence the silence was
    /// the verifiers' fault rather than the network's.
    ///
    /// On a clockless transport (the perfect [`Bus`], whose `now()` never
    /// moves) each attempt gets exactly one service pass and only
    /// `max_attempts` bounds the loop.
    fn run_resilient(
        &mut self,
        agent: Party,
        game_id: u64,
        spec: &GameSpec,
        cfg: ResilienceConfig,
    ) -> ConsultResult {
        self.ensure_agent(agent);
        let bytes_before = self.bus.total_bytes();
        let started = self.bus.now();
        let deadline_at = started.saturating_add(cfg.deadline);
        let mut st = ResilientState::default();

        // Stage 1: advice, at-least-once.
        let mut attempt: u32 = 0;
        loop {
            if attempt > 0 {
                st.retransmits += 1;
            }
            self.bus
                .send(
                    agent,
                    self.inventor.id,
                    Message::Resilient {
                        session: game_id,
                        attempt,
                        inner: Box::new(Message::AdviceRequest { game_id }),
                    },
                )
                .expect("inventor registered");
            let wait_until = self.wait_until(attempt, &cfg, deadline_at);
            loop {
                self.bus.settle();
                self.serve_inventor(&mut st, spec, agent, game_id);
                self.bus.settle();
                self.collect_agent(&mut st, agent, game_id);
                if st.agent_advice.is_some() || self.bus.now() >= wait_until {
                    break;
                }
                let before = self.bus.now();
                self.bus.advance(1);
                if self.bus.now() == before {
                    // Clockless transport: one service pass per attempt.
                    break;
                }
            }
            if st.agent_advice.is_some() {
                break;
            }
            attempt += 1;
            if attempt >= cfg.max_attempts || self.bus.now() >= deadline_at {
                return Err(ConsultError::Deadline {
                    stage: ConsultStage::Advice,
                    attempts: st.retransmits,
                    elapsed: self.bus.now().saturating_sub(started),
                    received: 0,
                    quorum: 1,
                    missing: vec![self.inventor.id],
                });
            }
        }
        let received_advice = st.agent_advice.take().expect("advice stage completed");

        // Stage 2: panel fan-out, closing full or at quorum. Trust checks
        // read one immutable snapshot, exactly like the legacy flow.
        let reputation_view = self.reputation.snapshot();
        let panel: Vec<Party> = self
            .verifiers
            .iter()
            .map(|v| v.id)
            .filter(|&v| reputation_view.is_trusted(v))
            .collect();
        let advice_payload = Arc::new(received_advice);
        let quorum = cfg.quorum.min(panel.len());
        let mut panel_outcome = PanelOutcome::Full;
        if !panel.is_empty() {
            let mut attempt: u32 = 0;
            loop {
                self.send_buf.clear();
                for &verifier in &panel {
                    if st.agent_verdicts.contains_key(&verifier) {
                        continue;
                    }
                    if attempt > 0 {
                        st.retransmits += 1;
                    }
                    self.send_buf.push((
                        agent,
                        verifier,
                        Message::Resilient {
                            session: game_id,
                            attempt,
                            inner: Box::new(Message::VerdictRequest {
                                game_id,
                                advice: Arc::clone(&advice_payload),
                            }),
                        },
                    ));
                }
                self.bus
                    .send_batch(&mut self.send_buf)
                    .expect("verifier registered");
                let wait_until = self.wait_until(attempt, &cfg, deadline_at);
                loop {
                    self.bus.settle();
                    self.serve_verifiers(&mut st, spec, game_id);
                    self.bus.settle();
                    self.collect_agent(&mut st, agent, game_id);
                    if st.agent_verdicts.len() == panel.len() || self.bus.now() >= wait_until {
                        break;
                    }
                    let before = self.bus.now();
                    self.bus.advance(1);
                    if self.bus.now() == before {
                        break;
                    }
                }
                if st.agent_verdicts.len() == panel.len() {
                    break;
                }
                attempt += 1;
                if attempt >= cfg.max_attempts || self.bus.now() >= deadline_at {
                    let missing: Vec<Party> = panel
                        .iter()
                        .copied()
                        .filter(|v| !st.agent_verdicts.contains_key(v))
                        .collect();
                    if st.agent_verdicts.len() >= quorum {
                        // A responding quorum evidences a live network, so
                        // the silent rest pays: close degraded and report
                        // them to the reputation plane.
                        self.reputation.report_unresponsive(&missing);
                        panel_outcome = PanelOutcome::Degraded { missing };
                        break;
                    }
                    return Err(ConsultError::Deadline {
                        stage: ConsultStage::Panel,
                        attempts: st.retransmits,
                        elapsed: self.bus.now().saturating_sub(started),
                        received: st.agent_verdicts.len(),
                        quorum,
                        missing,
                    });
                }
            }
        }

        // Stage 3: majority + reputation update, pooled in panel order so
        // resilient runs are deterministic regardless of arrival order.
        let mut verdicts: Vec<(Party, bool)> = Vec::new();
        let mut verdict_details = Vec::new();
        for &verifier in &panel {
            if let Some((accepted, detail)) = st.agent_verdicts.get(&verifier) {
                verdicts.push((verifier, *accepted));
                verdict_details.push((verifier, *accepted, detail.clone()));
            }
        }
        let majority = if verdicts.is_empty() {
            None
        } else {
            Some(self.reputation.pool_verdicts(&verdicts))
        };
        let adopted = majority.as_ref().is_some_and(|m| m.accepted);
        let received_advice = Arc::try_unwrap(advice_payload).unwrap_or_else(|a| (*a).clone());
        Ok(SessionOutcome {
            advice: Some(received_advice),
            majority,
            adopted,
            advice_bytes: st.advice_bytes,
            session_bytes: self.bus.total_bytes() - bytes_before,
            verdict_details,
            cached: false,
            panel: panel_outcome,
            attempts: st.retransmits,
        })
    }

    /// The virtual-clock instant at which attempt `attempt`'s wait window
    /// closes: the backoff interval from now, clamped to the deadline —
    /// except for the final permitted attempt, which spends whatever
    /// remains of the whole budget.
    fn wait_until(&mut self, attempt: u32, cfg: &ResilienceConfig, deadline_at: u64) -> u64 {
        if attempt + 1 >= cfg.max_attempts {
            deadline_at
        } else {
            self.bus
                .now()
                .saturating_add(cfg.backoff.rto(attempt, &mut self.jitter_rng))
                .min(deadline_at)
        }
    }

    /// Inventor-side service pass: answers each distinct `(session,
    /// attempt)` advice request exactly once — duplicated frames are
    /// dropped — computing the advice a single time per session. Replies
    /// echo the request's attempt, so retries classify as retransmit
    /// bytes in the ledger.
    fn serve_inventor(
        &mut self,
        st: &mut ResilientState,
        spec: &GameSpec,
        agent: Party,
        game_id: u64,
    ) {
        self.recv_buf.clear();
        self.endpoints[&self.inventor.id].drain_into(&mut self.recv_buf);
        for (from, msg) in self.recv_buf.drain(..) {
            let Message::Resilient {
                session,
                attempt,
                inner,
            } = msg
            else {
                continue;
            };
            if session != game_id || from != agent {
                continue;
            }
            let Message::AdviceRequest { .. } = *inner else {
                continue;
            };
            if !st.served_advice.insert(attempt) {
                continue;
            }
            if !st.advice_computed {
                st.advice_computed = true;
                st.inventor_advice = self.inventor.advise(spec);
            }
            // A Silent inventor never answers; the agent's budget starves
            // and the session fails loudly with a Deadline error.
            let Some(advice) = st.inventor_advice.clone() else {
                continue;
            };
            let payload = Message::AdviceWithProof {
                game_id,
                advice: Box::new(advice),
            };
            if st.advice_bytes == 0 {
                st.advice_bytes = payload.encoded_len();
            }
            self.bus
                .send(
                    self.inventor.id,
                    from,
                    Message::Resilient {
                        session: game_id,
                        attempt,
                        inner: Box::new(payload),
                    },
                )
                .expect("agent registered");
        }
    }

    /// Verifier-side service pass: each panel member answers each distinct
    /// `(session, attempt)` verdict request once, memoizing its verdict so
    /// retries never re-verify. Replies batch back to the agent in one
    /// accounting critical section.
    fn serve_verifiers(&mut self, st: &mut ResilientState, spec: &GameSpec, game_id: u64) {
        for i in 0..self.verifiers.len() {
            let vid = self.verifiers[i].id;
            self.recv_buf.clear();
            self.endpoints[&vid].drain_into(&mut self.recv_buf);
            for (from, msg) in self.recv_buf.drain(..) {
                let Message::Resilient {
                    session,
                    attempt,
                    inner,
                } = msg
                else {
                    continue;
                };
                if session != game_id {
                    continue;
                }
                let Message::VerdictRequest { advice, .. } = *inner else {
                    continue;
                };
                if !st.served_verdicts.insert((vid, attempt)) {
                    continue;
                }
                let (accepted, detail) = match st.verifier_verdicts.get(&vid) {
                    Some(memoized) => memoized.clone(),
                    // Not `entry().or_insert_with(..)`: the closure would
                    // capture `self` alongside the live `recv_buf` drain.
                    None => {
                        let computed = self.verifiers[i].verify(spec, &advice);
                        st.verifier_verdicts.insert(vid, computed.clone());
                        computed
                    }
                };
                self.send_buf.push((
                    vid,
                    from,
                    Message::Resilient {
                        session: game_id,
                        attempt,
                        inner: Box::new(Message::Verdict {
                            game_id,
                            accepted,
                            detail,
                        }),
                    },
                ));
            }
        }
        self.bus
            .send_batch(&mut self.send_buf)
            .expect("agent registered");
    }

    /// Agent-side collection pass: takes the first advice-with-proof and
    /// the first verdict per verifier for this session, dropping
    /// duplicates (idempotent receive) and frames from other sessions.
    fn collect_agent(&mut self, st: &mut ResilientState, agent: Party, game_id: u64) {
        self.recv_buf.clear();
        self.endpoints[&agent].drain_into(&mut self.recv_buf);
        for (from, msg) in self.recv_buf.drain(..) {
            let Message::Resilient { session, inner, .. } = msg else {
                continue;
            };
            if session != game_id {
                continue;
            }
            match *inner {
                Message::AdviceWithProof { advice, .. } if st.agent_advice.is_none() => {
                    st.agent_advice = Some(*advice);
                }
                Message::Verdict {
                    accepted, detail, ..
                } => {
                    st.agent_verdicts.entry(from).or_insert((accepted, detail));
                }
                _ => {}
            }
        }
    }
}

/// Scratch state for one resilient session: the responders' dedup sets
/// and memoized answers, plus what the agent has collected so far.
#[derive(Default)]
struct ResilientState {
    /// Advice-request attempts the inventor has already answered.
    served_advice: HashSet<u32>,
    /// Whether the inventor has computed (or declined) its advice.
    advice_computed: bool,
    /// The inventor's memoized advice for this session.
    inventor_advice: Option<Advice>,
    /// `(verifier, attempt)` verdict requests already answered.
    served_verdicts: HashSet<(Party, u32)>,
    /// Verifier-side memoized verdicts.
    verifier_verdicts: HashMap<Party, (bool, String)>,
    /// The first advice-with-proof the agent received.
    agent_advice: Option<Advice>,
    /// First verdict per verifier collected by the agent.
    agent_verdicts: HashMap<Party, (bool, String)>,
    /// Driver-side retransmitted request frames.
    retransmits: u64,
    /// Encoded length of the advice-with-proof payload (Lemma 1).
    advice_bytes: usize,
}

/// The assembled single-bus infrastructure: one [`SessionDriver`] plus
/// game-id assignment.
///
/// # Examples
///
/// ```
/// use ra_authority::{
///     GameSpec, Inventor, InventorBehavior, RationalityAuthority, VerifierBehavior,
/// };
/// use ra_games::named::prisoners_dilemma;
///
/// let mut authority = RationalityAuthority::new(
///     Inventor::new(0, InventorBehavior::Honest),
///     &[VerifierBehavior::Honest; 3],
/// );
/// let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
/// let outcome = authority.consult(0, &spec);
/// assert!(outcome.adopted);
/// ```
pub struct RationalityAuthority {
    driver: SessionDriver,
    next_game_id: u64,
}

impl RationalityAuthority {
    /// Builds the infrastructure with one inventor, the given verifier
    /// panel, and a private [`LocalReputation`] backend.
    pub fn new(
        inventor: Inventor,
        verifier_behaviors: &[crate::verifier::VerifierBehavior],
    ) -> RationalityAuthority {
        RationalityAuthority {
            driver: SessionDriver::new(inventor, verifier_behaviors),
            next_game_id: 1,
        }
    }

    /// Builds the infrastructure around an explicit reputation backend
    /// (how [`crate::ShardedAuthority`] wires every shard to one gossip
    /// plane).
    pub fn with_reputation(
        inventor: Inventor,
        verifier_behaviors: &[crate::verifier::VerifierBehavior],
        reputation: Arc<dyn ReputationBackend>,
    ) -> RationalityAuthority {
        RationalityAuthority {
            driver: SessionDriver::with_reputation(inventor, verifier_behaviors, reputation),
            next_game_id: 1,
        }
    }

    /// Attaches a shared certificate cache (see
    /// [`SessionDriver::set_cert_cache`]).
    pub fn set_cert_cache(&mut self, cache: Arc<CertCache>) {
        self.driver.set_cert_cache(cache);
    }

    /// The attached certificate cache, if any.
    pub fn cert_cache(&self) -> Option<&Arc<CertCache>> {
        self.driver.cert_cache()
    }

    /// The reputation backend consulted by this authority's sessions.
    pub fn reputation(&self) -> &dyn ReputationBackend {
        self.driver.reputation()
    }

    /// Builds the infrastructure over an explicit [`Transport`] (see
    /// [`SessionDriver::with_transport`]).
    pub fn with_transport(
        inventor: Inventor,
        verifier_behaviors: &[crate::verifier::VerifierBehavior],
        reputation: Arc<dyn ReputationBackend>,
        transport: Arc<dyn Transport>,
    ) -> RationalityAuthority {
        RationalityAuthority {
            driver: SessionDriver::with_transport(
                inventor,
                verifier_behaviors,
                reputation,
                transport,
            ),
            next_game_id: 1,
        }
    }

    /// The underlying transport (byte accounting, fault injection).
    pub fn bus(&self) -> &dyn Transport {
        self.driver.bus()
    }

    /// Attaches (or with `None` removes) a resilience budget (see
    /// [`SessionDriver::set_resilience`]).
    ///
    /// # Panics
    ///
    /// Panics if the config violates its invariants.
    pub fn set_resilience(&mut self, config: Option<ResilienceConfig>) {
        self.driver.set_resilience(config);
    }

    /// The attached resilience budget, if any.
    pub fn resilience(&self) -> Option<&ResilienceConfig> {
        self.driver.resilience()
    }

    /// Runs one full consultation for agent `agent_id` about `spec`.
    ///
    /// # Panics
    ///
    /// With a resilience budget attached, panics if the consultation's
    /// budget runs out — use [`RationalityAuthority::try_consult`] to
    /// handle [`ConsultError`] instead. Without one this never panics.
    pub fn consult(&mut self, agent_id: u64, spec: &GameSpec) -> SessionOutcome {
        let game_id = self.next_game_id;
        self.next_game_id += 1;
        self.driver.run(Party::Agent(agent_id), game_id, spec)
    }

    /// [`RationalityAuthority::consult`] with typed failure: resilient
    /// sessions whose deadline budget starves return
    /// [`ConsultError::Deadline`]. The game id is consumed either way.
    pub fn try_consult(&mut self, agent_id: u64, spec: &GameSpec) -> ConsultResult {
        let game_id = self.next_game_id;
        self.next_game_id += 1;
        self.driver.try_run(Party::Agent(agent_id), game_id, spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inventor::InventorBehavior;
    use crate::verifier::VerifierBehavior;
    use ra_games::named::{battle_of_the_sexes, prisoners_dilemma};
    use ra_solvers::ParticipationParams;

    fn all_specs() -> Vec<GameSpec> {
        use ra_exact::rat;
        vec![
            GameSpec::Strategic(prisoners_dilemma().to_strategic()),
            GameSpec::Bimatrix(battle_of_the_sexes()),
            GameSpec::Participation(ParticipationParams::paper_example()),
            GameSpec::ParallelLinks {
                current_loads: vec![rat(5, 1), rat(2, 1), rat(0, 1)],
                own_load: rat(3, 1),
                expected_future_load: rat(2, 1),
                expected_future_agents: 4,
            },
        ]
    }

    #[test]
    fn honest_end_to_end_adopts_everywhere() {
        for spec in all_specs() {
            let mut authority = RationalityAuthority::new(
                Inventor::new(0, InventorBehavior::Honest),
                &[VerifierBehavior::Honest; 3],
            );
            let outcome = authority.consult(0, &spec);
            assert!(outcome.adopted, "spec {spec:?}");
            assert!(outcome.advice_bytes > 0);
            assert!(outcome.session_bytes >= outcome.advice_bytes);
            let majority = outcome.majority.unwrap();
            assert_eq!(majority.accept_votes, 3);
        }
    }

    #[test]
    fn corrupt_inventor_rejected_everywhere() {
        for spec in all_specs() {
            let mut authority = RationalityAuthority::new(
                Inventor::new(0, InventorBehavior::Corrupt),
                &[VerifierBehavior::Honest; 3],
            );
            let outcome = authority.consult(0, &spec);
            assert!(!outcome.adopted, "spec {spec:?}");
            assert!(outcome.advice.is_some(), "advice was given but rejected");
        }
    }

    #[test]
    fn silent_inventor_yields_no_adoption() {
        let mut authority = RationalityAuthority::new(
            Inventor::new(0, InventorBehavior::Silent),
            &[VerifierBehavior::Honest; 3],
        );
        let outcome = authority.consult(0, &all_specs()[0]);
        assert!(!outcome.adopted);
        assert!(outcome.advice.is_none());
    }

    #[test]
    fn minority_of_bad_verifiers_is_outvoted() {
        let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
        // 3 honest + 2 rubber-stampers, corrupt inventor: majority rejects.
        let mut authority = RationalityAuthority::new(
            Inventor::new(0, InventorBehavior::Corrupt),
            &[
                VerifierBehavior::Honest,
                VerifierBehavior::Honest,
                VerifierBehavior::Honest,
                VerifierBehavior::AlwaysAccept,
                VerifierBehavior::AlwaysAccept,
            ],
        );
        let outcome = authority.consult(0, &spec);
        assert!(!outcome.adopted);
        let majority = outcome.majority.unwrap();
        assert_eq!(majority.accept_votes, 2);
        assert_eq!(majority.reject_votes, 3);
    }

    #[test]
    fn deviant_verifiers_lose_reputation_and_get_excluded() {
        let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
        let mut authority = RationalityAuthority::new(
            Inventor::new(0, InventorBehavior::Honest),
            &[
                VerifierBehavior::Honest,
                VerifierBehavior::Honest,
                VerifierBehavior::AlwaysReject,
            ],
        );
        let saboteur = Party::Verifier(2);
        for round in 0..20 {
            let outcome = authority.consult(round, &spec);
            assert!(outcome.adopted, "honest majority keeps adopting");
        }
        assert!(!authority.reputation().is_trusted(saboteur));
        // Once excluded, consultations proceed with the remaining panel.
        let outcome = authority.consult(99, &spec);
        assert_eq!(outcome.verdict_details.len(), 2);
        assert!(outcome.adopted);
    }

    #[test]
    fn support_certificate_bytes_are_small() {
        // Lemma 1, measured end-to-end: the advice message for a bimatrix
        // game is dominated by framing, not payoffs.
        let spec = GameSpec::Bimatrix(battle_of_the_sexes());
        let mut authority = RationalityAuthority::new(
            Inventor::new(0, InventorBehavior::Honest),
            &[VerifierBehavior::Honest],
        );
        let outcome = authority.consult(0, &spec);
        assert!(outcome.adopted);
        assert!(
            outcome.advice_bytes < 32,
            "P1 advice should be tens of bytes, got {}",
            outcome.advice_bytes
        );
    }

    #[test]
    fn dropped_advice_link_fails_gracefully() {
        let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
        let mut authority = RationalityAuthority::new(
            Inventor::new(0, InventorBehavior::Honest),
            &[VerifierBehavior::Honest],
        );
        authority
            .bus()
            .drop_link(Party::Inventor(0), Party::Agent(0));
        let outcome = authority.consult(0, &spec);
        assert!(!outcome.adopted);
        assert!(outcome.advice.is_none());
    }

    #[test]
    fn trust_hit_skips_the_protocol_entirely() {
        use crate::cache::CertCacheConfig;
        for spec in all_specs() {
            let mut authority = RationalityAuthority::new(
                Inventor::new(0, InventorBehavior::Honest),
                &[VerifierBehavior::Honest; 3],
            );
            authority.set_cert_cache(Arc::new(CertCache::new(CertCacheConfig::trust(64))));
            let cold = authority.consult(0, &spec);
            assert!(!cold.cached);
            assert!(cold.session_bytes > 0);
            let bus_bytes_after_cold = authority.bus().total_bytes();
            let hit = authority.consult(1, &spec);
            assert!(hit.cached, "second consult of the same spec hits");
            assert_eq!(hit.session_bytes, 0, "a hit moves zero bus bytes");
            assert_eq!(
                authority.bus().total_bytes(),
                bus_bytes_after_cold,
                "Lemma 1 ledger untouched by the hit"
            );
            assert_eq!(hit.advice, cold.advice);
            assert_eq!(hit.majority, cold.majority);
            assert_eq!(hit.adopted, cold.adopted);
            assert_eq!(hit.advice_bytes, cold.advice_bytes);
            let stats = authority.cert_cache().unwrap().stats();
            assert_eq!((stats.hits, stats.misses), (1, 1));
        }
    }

    #[test]
    fn replay_hit_rechecks_the_kernel_and_matches_cold() {
        use crate::cache::CertCacheConfig;
        let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
        let mut authority = RationalityAuthority::new(
            Inventor::new(0, InventorBehavior::Honest),
            &[VerifierBehavior::Honest; 3],
        );
        authority.set_cert_cache(Arc::new(CertCache::new(CertCacheConfig::replay(64))));
        let cold = authority.consult(0, &spec);
        let hit = authority.consult(1, &spec);
        assert!(hit.cached);
        assert_eq!(hit.advice, cold.advice);
        assert_eq!(hit.adopted, cold.adopted);
        assert_eq!(hit.verdict_details, cold.verdict_details);
        let stats = authority.cert_cache().unwrap().stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.replay_failures, 0);
    }

    #[test]
    fn exclusion_between_prime_and_probe_invalidates_replay_hits() {
        // The PR 7 follow-up: a Replay-mode hit must not serve advice
        // vouched for under an older verifier panel. Prime the cache on
        // one spec, drive a saboteur below the exclusion threshold with
        // *different* consultations, then probe the primed spec: the
        // panel version moved, so the probe re-runs the full protocol
        // (and re-primes the entry under the new panel).
        use crate::cache::CertCacheConfig;
        let primed = GameSpec::Strategic(prisoners_dilemma().to_strategic());
        let churn = GameSpec::Bimatrix(battle_of_the_sexes());
        let mut authority = RationalityAuthority::new(
            Inventor::new(0, InventorBehavior::Honest),
            &[
                VerifierBehavior::Honest,
                VerifierBehavior::Honest,
                VerifierBehavior::AlwaysReject,
            ],
        );
        authority.set_cert_cache(Arc::new(CertCache::new(CertCacheConfig::replay(64))));
        let cold = authority.consult(0, &primed);
        assert!(!cold.cached);
        assert!(
            authority.consult(1, &primed).cached,
            "warm hit before the panel changes"
        );
        let panel_before = authority.reputation().snapshot().panel_version();
        // Score churn alone (every cold consult republishes) must not
        // invalidate: consult a different spec while the saboteur is
        // still above threshold.
        authority.consult(2, &churn);
        assert!(
            authority.consult(3, &primed).cached,
            "score drift within the trusted band keeps hitting"
        );
        // Now drive the saboteur to exclusion with distinct cold specs
        // (warm hits would skip the protocol and never move scores); the
        // panel version moves exactly once, at the threshold crossing.
        let saboteur = Party::Verifier(2);
        let mut rounds: u64 = 0;
        while authority.reputation().is_trusted(saboteur) {
            let distinct = GameSpec::ParallelLinks {
                current_loads: vec![ra_exact::rat(rounds as i64 + 1, 1)],
                own_load: ra_exact::rat(1, 1),
                expected_future_load: ra_exact::rat(1, 1),
                expected_future_agents: 1,
            };
            authority.consult(100 + rounds, &distinct);
            rounds += 1;
            assert!(rounds < 50, "saboteur must be excluded eventually");
        }
        assert!(
            authority.reputation().snapshot().panel_version() > panel_before,
            "exclusion bumps the panel version"
        );
        let probe = authority.consult(999, &primed);
        assert!(
            !probe.cached,
            "the stale hit is treated as a miss after the exclusion"
        );
        assert_eq!(
            probe.verdict_details.len(),
            2,
            "the probe re-ran under the reduced panel"
        );
        assert!(authority.cert_cache().unwrap().stats().stale >= 1);
        // The probe re-primed the entry under the new panel.
        assert!(authority.consult(1000, &primed).cached);
    }

    #[test]
    fn replay_caches_rejected_advice_too() {
        // A corrupt inventor's advice fails the kernel; the cached entry
        // records that verdict, so replay hits reproduce the rejection
        // without re-running the panel.
        use crate::cache::CertCacheConfig;
        let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
        let mut authority = RationalityAuthority::new(
            Inventor::new(0, InventorBehavior::Corrupt),
            &[VerifierBehavior::Honest; 3],
        );
        authority.set_cert_cache(Arc::new(CertCache::new(CertCacheConfig::replay(64))));
        let cold = authority.consult(0, &spec);
        assert!(!cold.adopted);
        let hit = authority.consult(1, &spec);
        assert!(hit.cached);
        assert!(!hit.adopted);
        assert_eq!(hit.advice, cold.advice);
        assert_eq!(authority.cert_cache().unwrap().stats().replay_failures, 0);
    }

    #[test]
    fn cached_hits_do_not_move_reputation() {
        use crate::cache::CertCacheConfig;
        let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
        let mut authority = RationalityAuthority::new(
            Inventor::new(0, InventorBehavior::Honest),
            &[
                VerifierBehavior::Honest,
                VerifierBehavior::Honest,
                VerifierBehavior::AlwaysReject,
            ],
        );
        authority.set_cert_cache(Arc::new(CertCache::new(CertCacheConfig::trust(64))));
        let saboteur = Party::Verifier(2);
        let cold = authority.consult(0, &spec);
        assert!(cold.adopted);
        let score_after_cold = authority.reputation().score(saboteur);
        // Twenty cache hits: had these been protocol runs, the saboteur
        // would long be excluded (see the exclusion test above).
        for round in 1..=20 {
            let hit = authority.consult(round, &spec);
            assert!(hit.cached);
        }
        assert_eq!(
            authority.reputation().score(saboteur),
            score_after_cold,
            "hits never pool verdicts"
        );
        assert!(authority.reputation().is_trusted(saboteur));
    }

    #[test]
    fn silent_inventor_outcomes_are_not_cached() {
        use crate::cache::CertCacheConfig;
        let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
        let mut authority = RationalityAuthority::new(
            Inventor::new(0, InventorBehavior::Silent),
            &[VerifierBehavior::Honest; 3],
        );
        authority.set_cert_cache(Arc::new(CertCache::new(CertCacheConfig::trust(64))));
        for round in 0..3 {
            let outcome = authority.consult(round, &spec);
            assert!(!outcome.cached, "adviceless outcomes never hit");
            assert!(outcome.advice.is_none());
        }
        let stats = authority.cert_cache().unwrap().stats();
        assert_eq!((stats.hits, stats.misses), (0, 3));
        assert!(authority.cert_cache().unwrap().is_empty());
    }

    #[test]
    fn driver_runs_with_explicit_game_ids() {
        // The protocol layer on its own: caller-assigned ids, reused
        // endpoint across consultations.
        let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
        let mut driver = SessionDriver::new(
            Inventor::new(0, InventorBehavior::Honest),
            &[VerifierBehavior::Honest; 3],
        );
        let agent = Party::Agent(7);
        let first = driver.run(agent, 100, &spec);
        let second = driver.run(agent, 101, &spec);
        assert!(first.adopted && second.adopted);
        assert_eq!(first.session_bytes, second.session_bytes);
        // Both consultations flowed over the same agent endpoint: the
        // request byte count doubles rather than resetting.
        assert_eq!(
            driver.bus().bytes_between(agent, Party::Inventor(0)),
            2 * Message::AdviceRequest { game_id: 100 }.encoded_len()
        );
    }

    // ---- session resilience -------------------------------------------

    use crate::simnet::{LinkProfile, SimNet, SimNetConfig};

    fn resilient_authority(
        inventor: InventorBehavior,
        panel: &[VerifierBehavior],
        transport: Arc<dyn Transport>,
        cfg: ResilienceConfig,
    ) -> RationalityAuthority {
        let mut authority = RationalityAuthority::with_transport(
            Inventor::new(0, inventor),
            panel,
            Arc::new(LocalReputation::new()),
            transport,
        );
        authority.set_resilience(Some(cfg));
        authority
    }

    #[test]
    fn resilient_over_perfect_bus_matches_legacy_outcome() {
        for spec in all_specs() {
            let mut legacy = RationalityAuthority::new(
                Inventor::new(0, InventorBehavior::Honest),
                &[VerifierBehavior::Honest; 3],
            );
            let mut resilient = RationalityAuthority::new(
                Inventor::new(0, InventorBehavior::Honest),
                &[VerifierBehavior::Honest; 3],
            );
            resilient.set_resilience(Some(ResilienceConfig::default()));
            let want = legacy.consult(0, &spec);
            let got = resilient.try_consult(0, &spec).expect("perfect bus");
            assert_eq!(got.advice, want.advice, "spec {spec:?}");
            assert_eq!(got.majority, want.majority);
            assert_eq!(got.adopted, want.adopted);
            assert_eq!(got.verdict_details, want.verdict_details);
            assert_eq!(got.panel, PanelOutcome::Full);
            assert_eq!(got.attempts, 0, "perfect bus needs no retries");
            assert_eq!(resilient.bus().retransmit_bytes(), 0);
            // The envelope costs bytes; goodput still accounts them all.
            assert!(got.session_bytes > want.session_bytes);
            assert_eq!(
                resilient.bus().goodput_bytes(),
                resilient.bus().total_bytes()
            );
        }
    }

    #[test]
    fn resilience_off_is_byte_identical_to_legacy() {
        // The legacy protocol must not pay for the feature it didn't ask
        // for: a driver with no config attached moves exactly the same
        // bytes as before the resilience layer existed.
        let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
        let mut a = RationalityAuthority::new(
            Inventor::new(0, InventorBehavior::Honest),
            &[VerifierBehavior::Honest; 3],
        );
        let mut b = RationalityAuthority::new(
            Inventor::new(0, InventorBehavior::Honest),
            &[VerifierBehavior::Honest; 3],
        );
        b.set_resilience(Some(ResilienceConfig::default()));
        b.set_resilience(None);
        let want = a.consult(0, &spec);
        let got = b.consult(0, &spec);
        assert_eq!(got.session_bytes, want.session_bytes);
        assert_eq!(got.attempts, 0);
        assert_eq!(b.bus().retransmit_bytes(), 0);
    }

    #[test]
    fn retransmits_recover_a_lossy_network() {
        let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
        let net = Arc::new(SimNet::new(SimNetConfig {
            seed: 7,
            default_link: LinkProfile::lossy(0.4),
            ..SimNetConfig::default()
        }));
        let mut authority = resilient_authority(
            InventorBehavior::Honest,
            &[VerifierBehavior::Honest; 3],
            net,
            ResilienceConfig::default(),
        );
        let mut total_attempts = 0;
        for round in 0..20 {
            let outcome = authority
                .try_consult(round, &spec)
                .expect("budget generous enough for 40% loss");
            assert!(outcome.adopted);
            total_attempts += outcome.attempts;
        }
        assert!(
            total_attempts > 0,
            "40% loss over 20 consults must force at least one retry"
        );
        let bus = authority.bus();
        assert!(bus.retransmit_bytes() > 0);
        assert_eq!(
            bus.total_bytes(),
            bus.goodput_bytes() + bus.retransmit_bytes()
        );
    }

    #[test]
    fn legacy_lossy_link_pins_quiet_minority_vote() {
        // The documented legacy hazard this PR's quorum layer fixes:
        // with resilience off, dropping the request links to two of three
        // verifiers silently shrinks the panel vote to a single voice.
        let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
        let mut authority = RationalityAuthority::new(
            Inventor::new(0, InventorBehavior::Honest),
            &[VerifierBehavior::Honest; 3],
        );
        authority
            .bus()
            .drop_link(Party::Agent(0), Party::Verifier(1));
        authority
            .bus()
            .drop_link(Party::Agent(0), Party::Verifier(2));
        let outcome = authority.consult(0, &spec);
        assert!(outcome.adopted, "one verdict is quietly pooled as if full");
        assert_eq!(outcome.majority.unwrap().accept_votes, 1);
        assert_eq!(outcome.panel, PanelOutcome::Full);
    }

    #[test]
    fn sub_quorum_exhaustion_is_a_typed_error_not_a_minority_vote() {
        // Same fault as above, resilience on with quorum 2: the session
        // fails loudly instead of pooling a quiet minority vote.
        let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
        let mut authority = RationalityAuthority::new(
            Inventor::new(0, InventorBehavior::Honest),
            &[VerifierBehavior::Honest; 3],
        );
        authority.set_resilience(Some(ResilienceConfig {
            quorum: 2,
            max_attempts: 3,
            ..ResilienceConfig::default()
        }));
        authority
            .bus()
            .drop_link(Party::Agent(0), Party::Verifier(1));
        authority
            .bus()
            .drop_link(Party::Agent(0), Party::Verifier(2));
        let err = authority.try_consult(0, &spec).unwrap_err();
        let ConsultError::Deadline {
            stage,
            received,
            quorum,
            missing,
            ..
        } = err;
        assert_eq!(stage, ConsultStage::Panel);
        assert_eq!(received, 1);
        assert_eq!(quorum, 2);
        assert_eq!(missing, vec![Party::Verifier(1), Party::Verifier(2)]);
        // Sub-quorum silence is not punished: there is no responding
        // majority to evidence the network was fine.
        assert_eq!(
            authority.reputation().score(Party::Verifier(1)),
            LocalReputation::INITIAL
        );
    }

    #[test]
    fn quorum_close_is_degraded_and_punishes_the_silent() {
        let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
        let mut authority = RationalityAuthority::new(
            Inventor::new(0, InventorBehavior::Honest),
            &[VerifierBehavior::Honest; 3],
        );
        authority.set_resilience(Some(ResilienceConfig {
            quorum: 2,
            max_attempts: 3,
            ..ResilienceConfig::default()
        }));
        authority
            .bus()
            .drop_link(Party::Agent(0), Party::Verifier(2));
        let silent = Party::Verifier(2);
        let before = authority.reputation().score(silent);
        let outcome = authority.try_consult(0, &spec).expect("quorum of 2 met");
        assert!(outcome.adopted);
        assert_eq!(
            outcome.panel,
            PanelOutcome::Degraded {
                missing: vec![silent]
            }
        );
        assert_eq!(outcome.majority.as_ref().unwrap().accept_votes, 2);
        assert_eq!(outcome.verdict_details.len(), 2);
        assert_eq!(
            authority.reputation().score(silent),
            before - 1,
            "unresponsiveness costs one point, like dissent"
        );
    }

    #[test]
    fn persistent_silence_excludes_and_bumps_the_panel_version() {
        let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
        let mut authority = RationalityAuthority::new(
            Inventor::new(0, InventorBehavior::Honest),
            &[VerifierBehavior::Honest; 3],
        );
        authority.set_resilience(Some(ResilienceConfig {
            quorum: 2,
            max_attempts: 2,
            ..ResilienceConfig::default()
        }));
        let silent = Party::Verifier(2);
        authority.bus().drop_link(Party::Agent(0), silent);
        let version_before = authority.reputation().snapshot().panel_version();
        let mut round = 0;
        while authority.reputation().is_trusted(silent) {
            // Always agent 0: the dropped link is directed from it.
            let outcome = authority.try_consult(0, &spec).expect("quorum met");
            assert!(matches!(outcome.panel, PanelOutcome::Degraded { .. }));
            round += 1;
            assert!(round < 64, "exclusion must happen within the budget");
        }
        assert!(
            authority.reputation().snapshot().panel_version() > version_before,
            "losing a panel member bumps the version"
        );
        // With the dead verifier excluded, sessions close full again.
        let outcome = authority.try_consult(99, &spec).expect("live panel");
        assert_eq!(outcome.panel, PanelOutcome::Full);
        assert_eq!(outcome.verdict_details.len(), 2);
    }

    #[test]
    fn silent_inventor_starves_the_advice_stage() {
        let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
        let mut authority = RationalityAuthority::new(
            Inventor::new(0, InventorBehavior::Silent),
            &[VerifierBehavior::Honest; 3],
        );
        authority.set_resilience(Some(ResilienceConfig {
            max_attempts: 3,
            ..ResilienceConfig::default()
        }));
        let err = authority.try_consult(0, &spec).unwrap_err();
        let ConsultError::Deadline {
            stage,
            attempts,
            missing,
            ..
        } = err;
        assert_eq!(stage, ConsultStage::Advice);
        assert_eq!(attempts, 2, "three sends, two of them retransmits");
        assert_eq!(missing, vec![Party::Inventor(0)]);
    }

    #[test]
    fn duplicated_traffic_is_outcome_identical_to_lossless() {
        // The dedup half of at-least-once delivery: a link that delivers
        // every frame twice must produce exactly the outcome of a clean
        // one — same advice, same vote, no spurious retries.
        for spec in all_specs() {
            let clean = Arc::new(SimNet::lossless(11));
            let doubled = Arc::new(SimNet::new(SimNetConfig {
                seed: 11,
                default_link: LinkProfile::duplicating(1.0),
                ..SimNetConfig::default()
            }));
            let cfg = ResilienceConfig::default();
            let mut a = resilient_authority(
                InventorBehavior::Honest,
                &[VerifierBehavior::Honest; 3],
                clean,
                cfg,
            );
            let mut b = resilient_authority(
                InventorBehavior::Honest,
                &[VerifierBehavior::Honest; 3],
                doubled,
                cfg,
            );
            let want = a.try_consult(0, &spec).expect("lossless");
            let got = b.try_consult(0, &spec).expect("duplicates never starve");
            assert_eq!(got.advice, want.advice, "spec {spec:?}");
            assert_eq!(got.majority, want.majority);
            assert_eq!(got.adopted, want.adopted);
            assert_eq!(got.verdict_details, want.verdict_details);
            assert_eq!(got.panel, want.panel);
            assert_eq!(got.attempts, want.attempts);
            assert_eq!(got.attempts, 0, "duplication alone never forces a retry");
        }
    }

    #[test]
    fn latency_only_networks_complete_within_the_clock_budget() {
        let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
        let net = Arc::new(SimNet::new(SimNetConfig {
            seed: 3,
            default_link: LinkProfile::with_latency(2, 6),
            ..SimNetConfig::default()
        }));
        let transport: Arc<dyn Transport> = Arc::clone(&net) as Arc<dyn Transport>;
        let mut authority = resilient_authority(
            InventorBehavior::Honest,
            &[VerifierBehavior::Honest; 3],
            transport,
            ResilienceConfig {
                backoff: BackoffConfig {
                    base: 16,
                    ..BackoffConfig::default()
                },
                ..ResilienceConfig::default()
            },
        );
        let outcome = authority.try_consult(0, &spec).expect("no loss");
        assert!(outcome.adopted);
        assert_eq!(outcome.panel, PanelOutcome::Full);
        assert_eq!(outcome.attempts, 0, "RTO above RTT never fires spuriously");
        assert!(net.now() > 0, "the driver drove the virtual clock forward");
        assert_eq!(authority.bus().retransmit_bytes(), 0);
    }

    #[test]
    fn degraded_outcomes_are_never_memoized() {
        use crate::cache::CertCacheConfig;
        let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
        let mut authority = RationalityAuthority::new(
            Inventor::new(0, InventorBehavior::Honest),
            &[VerifierBehavior::Honest; 3],
        );
        authority.set_cert_cache(Arc::new(CertCache::new(CertCacheConfig::replay(64))));
        authority.set_resilience(Some(ResilienceConfig {
            quorum: 1,
            max_attempts: 2,
            ..ResilienceConfig::default()
        }));
        authority
            .bus()
            .drop_link(Party::Agent(0), Party::Verifier(2));
        let degraded = authority.try_consult(0, &spec).expect("quorum met");
        assert!(matches!(degraded.panel, PanelOutcome::Degraded { .. }));
        let probe = authority.try_consult(1, &spec).expect("quorum met");
        assert!(
            !probe.cached,
            "a quorum vote must not be replayed as if the full panel vouched"
        );
    }

    #[test]
    fn resilient_jitter_stream_is_seed_deterministic() {
        let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
        let run = |seed: u64| {
            let net = Arc::new(SimNet::new(SimNetConfig {
                seed: 99,
                default_link: LinkProfile {
                    latency_min: 1,
                    latency_max: 4,
                    drop_prob: 0.3,
                    duplicate_probability: 0.0,
                },
                ..SimNetConfig::default()
            }));
            let mut authority = resilient_authority(
                InventorBehavior::Honest,
                &[VerifierBehavior::Honest; 3],
                net,
                ResilienceConfig {
                    seed,
                    ..ResilienceConfig::default()
                },
            );
            (0..10)
                .map(|round| {
                    let o = authority.try_consult(round, &spec).expect("budget");
                    (o.attempts, o.session_bytes, o.adopted)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1), "same seeds, same retry trace");
    }
}
